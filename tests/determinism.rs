//! Reproducibility: one seed pins the entire pipeline — topology, overlay,
//! protocol run, workload, and measured numbers — bit for bit.

use prop::prelude::*;
use std::sync::Arc;

fn full_run(seed: u64) -> (f64, u64, u64, Vec<u32>) {
    let mut rng = SimRng::seed_from(seed);
    let phys = generate(&TransitStubParams::ts_small(), &mut rng);
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, 80, &mut rng));
    let (gn, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    let mut sim = ProtocolSim::new(net, PropConfig::prop_o(), &mut rng);
    sim.run_for(Duration::from_minutes(45));
    let o = sim.overhead();
    let net = sim.into_net();
    let live: Vec<Slot> = net.graph().live_slots().collect();
    let pairs = LookupGen::new(&rng).uniform_pairs(&live, 200);
    let lat = avg_lookup_latency(&net, &gn, &pairs);
    let degrees: Vec<u32> =
        net.graph().live_slots().map(|s| net.graph().degree(s) as u32).collect();
    (lat.mean_ms, o.trials, o.exchanges, degrees)
}

#[test]
fn identical_seeds_identical_runs() {
    let a = full_run(12345);
    let b = full_run(12345);
    assert_eq!(a.0.to_bits(), b.0.to_bits(), "mean latency must match bit-for-bit");
    assert_eq!(a.1, b.1, "trial counts must match");
    assert_eq!(a.2, b.2, "exchange counts must match");
    assert_eq!(a.3, b.3, "final degrees must match");
}

#[test]
fn different_seeds_differ() {
    let a = full_run(1);
    let b = full_run(2);
    // Overwhelmingly likely to differ in at least the trial count or mean.
    assert!(
        a.0.to_bits() != b.0.to_bits() || a.1 != b.1 || a.3 != b.3,
        "two seeds produced identical runs"
    );
}

#[test]
fn experiment_kernels_are_deterministic() {
    use prop::experiments::{fig5, Scale};
    let a = fig5::panel_c(Scale::Quick, 777);
    let b = fig5::panel_c(Scale::Quick, 777);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.series.label, y.series.label);
        assert_eq!(x.series.points, y.series.points, "series diverged for {}", x.series.label);
    }
}
