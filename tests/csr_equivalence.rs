//! csr-equivalence: the CSR adjacency view is a pure representation change.
//!
//! The repo's signature guarantee is bit-identical results for a given
//! seed. The CSR refactor moves the traversal hot paths (floods, walks,
//! flood-cost BFS, both protocol drivers) onto a second representation of
//! the same graph, so this group proves the representation is
//! unobservable: every metric, ledger counter, and final overlay state is
//! bit-identical between `csr` and `vecvec` runs, across churn, rewires,
//! stale-epoch rebuilds, and prefetch batching.

use prop::prelude::*;
use prop_core::Overhead;
use prop_metrics::{flood_messages, mean_flood_messages, par_mean_flood_messages};
use prop_overlay::walk::random_walk;
use prop_overlay::GraphPatch;
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// CsrView traversal ≡ LogicalGraph::neighbors under random mutation storms
// ---------------------------------------------------------------------------

/// One step of a mutation storm, driven by proptest-chosen bytes.
fn apply_op(g: &mut LogicalGraph, op: u8, a: u32, b: u32) {
    let n = g.num_slots() as u32;
    let (a, b) = (Slot(a % n), Slot(b % n));
    match op % 5 {
        // Rewire: toggle an edge between two live slots.
        0 | 1 => {
            if a != b && g.is_alive(a) && g.is_alive(b) {
                if g.has_edge(a, b) {
                    g.remove_edge(a, b);
                } else {
                    g.add_edge(a, b);
                }
            }
        }
        // Churn out: kill a live slot (keep at least two alive).
        2 => {
            if g.is_alive(a) && g.live_slots().count() > 2 {
                g.remove_slot(a);
            }
        }
        // Churn in: fresh slot wired to a live anchor.
        3 => {
            let s = g.add_slot();
            if g.is_alive(b) && s != b {
                g.add_edge(s, b);
            }
        }
        // Burst: enough paired mutations to age the view far behind.
        _ => {
            if a != b && g.is_alive(a) && g.is_alive(b) && !g.has_edge(a, b) {
                for _ in 0..20 {
                    g.add_edge(a, b);
                    g.remove_edge(a, b);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_rows_match_graph_rows_across_mutation_storms(
        ops in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..200),
        sync_every in 1usize..13,
    ) {
        let mut g = LogicalGraph::new(12);
        for i in 0..12u32 {
            g.add_edge(Slot(i), Slot((i + 1) % 12));
        }
        let mut view = CsrView::build(&g);
        for (i, &(op, a, b)) in ops.iter().enumerate() {
            apply_op(&mut g, op, a, b);
            // Sync at irregular intervals so the view replays patch runs of
            // many lengths (and, after bursts, takes the rebuild path).
            if i % sync_every == 0 {
                view.sync(&g);
                prop_assert!(view.is_current(&g));
                for s in 0..g.num_slots() {
                    prop_assert_eq!(view.neighbors(Slot(s as u32)), g.neighbors(Slot(s as u32)));
                }
            }
        }
        view.sync(&g);
        for s in 0..g.num_slots() {
            prop_assert_eq!(view.neighbors(Slot(s as u32)), g.neighbors(Slot(s as u32)));
        }
    }

    #[test]
    fn stale_epoch_beyond_the_log_forces_a_correct_rebuild(extra in 0usize..8) {
        let mut g = LogicalGraph::new(6);
        for i in 0..6u32 {
            g.add_edge(Slot(i), Slot((i + 1) % 6));
        }
        let mut view = CsrView::build(&g);
        let half = prop_overlay::logical::MAX_PATCH_LOG / 2;
        for _ in 0..(half + 1 + extra) {
            g.add_edge(Slot(0), Slot(3));
            g.remove_edge(Slot(0), Slot(3));
        }
        // The log was truncated past the view's epoch: no incremental path.
        prop_assert!(g.patches_since(view.epoch()).is_none());
        view.sync(&g);
        prop_assert!(view.is_current(&g));
        for s in 0..6u32 {
            prop_assert_eq!(view.neighbors(Slot(s)), g.neighbors(Slot(s)));
        }
    }
}

#[test]
fn patch_log_records_every_mutation_kind() {
    let mut g = LogicalGraph::new(3);
    g.add_edge(Slot(0), Slot(1));
    let epoch = g.generation();
    g.add_edge(Slot(1), Slot(2));
    let s = g.add_slot();
    g.add_edge(s, Slot(0));
    g.remove_edge(Slot(0), Slot(1));
    g.remove_slot(Slot(2));
    let patches = g.patches_since(epoch).expect("log covers the gap");
    assert_eq!(
        patches,
        &[
            GraphPatch::AddEdge(Slot(1), Slot(2)),
            GraphPatch::AddSlot,
            GraphPatch::AddEdge(s, Slot(0)),
            GraphPatch::RemoveEdge(Slot(0), Slot(1)),
            GraphPatch::RemoveEdge(Slot(2), Slot(1)),
            GraphPatch::KillSlot(Slot(2)),
        ]
    );
}

// ---------------------------------------------------------------------------
// Driver runs: csr vs vecvec, batched vs unbatched — bit-identical
// ---------------------------------------------------------------------------

fn sync_run(
    seed: u64,
    cfg: PropConfig,
    csr: bool,
    batch: usize,
) -> (Overhead, u64, Vec<(Slot, Slot)>) {
    let mut rng = SimRng::seed_from(seed);
    let phys = generate(&TransitStubParams::tiny(), &mut rng);
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, 30, &mut rng));
    let (_, mut net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    net.set_csr_enabled(csr);
    let mut sim = ProtocolSim::new(net, cfg, &mut rng);
    sim.set_trial_batch(batch);
    sim.run_for(Duration::from_minutes(45));
    let o = sim.overhead();
    let net = sim.into_net();
    (o, net.total_link_latency(), net.graph().edges().collect())
}

#[test]
fn sync_driver_is_repr_invariant() {
    for (seed, cfg) in [(1, PropConfig::prop_g()), (2, PropConfig::prop_o())] {
        let csr = sync_run(seed, cfg.clone(), true, 64);
        let legacy = sync_run(seed, cfg, false, 1);
        assert_eq!(csr.0, legacy.0, "Overhead diverged (seed {seed})");
        assert_eq!(csr.1, legacy.1, "total latency diverged (seed {seed})");
        assert_eq!(csr.2, legacy.2, "final edges diverged (seed {seed})");
    }
}

fn async_run(seed: u64, cfg: PropConfig, csr: bool, batch: usize) -> (prop_core::AsyncStats, u64) {
    let mut rng = SimRng::seed_from(seed);
    let phys = generate(&TransitStubParams::tiny(), &mut rng);
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, 30, &mut rng));
    let (_, mut net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    net.set_csr_enabled(csr);
    let mut sim = AsyncProtocolSim::new(net, cfg, &mut rng);
    sim.set_trial_batch(batch);
    sim.run_for(Duration::from_minutes(45));
    let s = sim.stats();
    let net = sim.into_net();
    (s, net.total_link_latency())
}

#[test]
fn async_driver_is_repr_invariant() {
    for (seed, cfg) in [(3, PropConfig::prop_g()), (4, PropConfig::prop_o())] {
        let csr = async_run(seed, cfg.clone(), true, 64);
        let legacy = async_run(seed, cfg, false, 1);
        assert_eq!(csr.0, legacy.0, "AsyncStats diverged (seed {seed})");
        assert_eq!(csr.1, legacy.1, "total latency diverged (seed {seed})");
    }
}

// ---------------------------------------------------------------------------
// Measurement plane: floods, stretch, walks, flood cost — bit-identical
// ---------------------------------------------------------------------------

fn measured_net(seed: u64, csr: bool) -> (Gnutella, OverlayNet) {
    let mut rng = SimRng::seed_from(seed);
    let phys = generate(&TransitStubParams::tiny(), &mut rng);
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, 40, &mut rng));
    let (gn, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    let mut sim = ProtocolSim::new(net, PropConfig::prop_o(), &mut rng);
    sim.run_for(Duration::from_minutes(20));
    let mut net = sim.into_net();
    net.set_csr_enabled(csr);
    (gn, net)
}

#[test]
fn flood_latency_and_ledger_are_repr_invariant() {
    let (_, net_a) = measured_net(5, true);
    let (_, net_b) = measured_net(5, false);
    let mut sa = FloodScratch::new();
    let mut sb = FloodScratch::new();
    let live: Vec<Slot> = net_a.graph().live_slots().collect();
    for &src in &live {
        for &dst in live.iter().take(10) {
            let a = net_a.min_latency_within_hops_with(src, dst, 5, &mut sa);
            let b = net_b.min_latency_within_hops_with(src, dst, 5, &mut sb);
            assert_eq!(a, b, "{src:?}→{dst:?}");
        }
    }
    // Same traversal order ⇒ the work ledger agrees counter for counter.
    assert_eq!(sa.edges_scanned(), sb.edges_scanned());
    assert_eq!(sa.improvements(), sb.improvements());
    assert_eq!(sa.frontier_pushes(), sb.frontier_pushes());
}

#[test]
fn stretch_and_lookup_metrics_are_repr_invariant() {
    let (gn_a, net_a) = measured_net(6, true);
    let (gn_b, net_b) = measured_net(6, false);
    let live: Vec<Slot> = net_a.graph().live_slots().collect();
    let mut rng = SimRng::seed_from(99);
    let pairs = LookupGen::new(&rng.fork("pairs")).uniform_pairs(&live, 150);
    let la = avg_lookup_latency(&net_a, &gn_a, &pairs);
    let lb = avg_lookup_latency(&net_b, &gn_b, &pairs);
    assert_eq!(la.mean_ms.to_bits(), lb.mean_ms.to_bits());
    assert_eq!(la.mean_hops.to_bits(), lb.mean_hops.to_bits());
    assert_eq!((la.delivered, la.failed), (lb.delivered, lb.failed));
    // Parallel plane over CSR vs serial plane over vecvec: still identical.
    let lp = par_avg_lookup_latency(&net_a, &gn_a, &pairs);
    assert_eq!(lp.mean_ms.to_bits(), lb.mean_ms.to_bits());
    let sa = path_stretch(&net_a, &gn_a, &pairs);
    let sb = path_stretch(&net_b, &gn_b, &pairs);
    assert_eq!(sa.mean.to_bits(), sb.mean.to_bits());
}

#[test]
fn walk_traces_are_repr_invariant() {
    let (_, net_a) = measured_net(7, true);
    let (_, net_b) = measured_net(7, false);
    let live: Vec<Slot> = net_a.graph().live_slots().collect();
    for (i, &origin) in live.iter().enumerate() {
        let first = net_a.graph().neighbors(origin)[0];
        let mut ra = SimRng::seed_from(i as u64);
        let mut rb = SimRng::seed_from(i as u64);
        let wa = net_a.probe_walk(origin, first, 4, &mut ra);
        let wb = net_b.probe_walk(origin, first, 4, &mut rb);
        assert_eq!(wa, wb, "walk from {origin:?} diverged");
        // And against the raw graph-rows walk, for good measure.
        let mut rc = SimRng::seed_from(i as u64);
        let wc = random_walk(net_b.graph(), origin, first, 4, &mut rc);
        assert_eq!(wa, wc);
    }
}

#[test]
fn flood_cost_is_repr_invariant() {
    let (_, net_a) = measured_net(8, true);
    let (_, net_b) = measured_net(8, false);
    let live: Vec<Slot> = net_a.graph().live_slots().collect();
    for &src in &live {
        let view = net_a.csr().expect("csr current after into_net");
        assert_eq!(flood_messages(view, src, 4), flood_messages(net_b.graph(), src, 4));
    }
    let a = mean_flood_messages(&net_a, &live, 4);
    let b = mean_flood_messages(&net_b, &live, 4);
    let c = par_mean_flood_messages(&net_a, &live, 4);
    assert_eq!(a.to_bits(), b.to_bits());
    assert_eq!(a.to_bits(), c.to_bits());
}

#[test]
fn stale_view_falls_back_without_changing_answers() {
    // Mutate the graph without refreshing: csr() must report stale and the
    // flood path must silently use the legacy rows — same answers as a net
    // that never had CSR enabled.
    let (_, mut net_a) = measured_net(9, true);
    let (_, mut net_b) = measured_net(9, false);
    assert!(net_a.csr().is_some());
    for net in [&mut net_a, &mut net_b] {
        let (u, v) = net.graph().edges().next().unwrap();
        net.graph_mut().remove_edge(u, v);
        net.graph_mut().add_edge(u, v);
    }
    assert!(net_a.csr().is_none(), "view must read as stale after mutation");
    let live: Vec<Slot> = net_a.graph().live_slots().collect();
    for &src in live.iter().take(10) {
        for &dst in live.iter().take(10) {
            assert_eq!(
                net_a.min_latency_within_hops(src, dst, 5),
                net_b.min_latency_within_hops(src, dst, 5)
            );
        }
    }
    net_a.refresh_csr();
    assert!(net_a.csr().is_some(), "refresh must restore the fast path");
}
