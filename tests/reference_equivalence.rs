//! Cross-validation of the production PROP-G implementation against the
//! paper's literal description.
//!
//! Production PROP-G is a *placement transposition* (slot bookkeeping);
//! the paper describes it as two peers *exchanging their neighbor sets*
//! (Figure 1). These must be the same operation on the peer-space overlay.
//! This test drives full protocol runs and checks, exchange by exchange,
//! that the two formulations agree — and that the Theorem-2 transposition
//! witness validates.

use prop::core::exchange::{self, PlanKind};
use prop::overlay::iso::{
    is_isomorphic_via, peer_adjacency, reference_propg_exchange, transposition,
};
use prop::prelude::*;
use proptest::test_runner::Config as ProptestConfig;
use proptest::{prop_assert, prop_assert_eq, proptest};
use std::sync::Arc;

fn gnutella_net(n: usize, seed: u64) -> OverlayNet {
    let mut rng = SimRng::seed_from(seed);
    let phys = generate(&TransitStubParams::tiny(), &mut rng);
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
    let (_, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Placement-swap PROP-G ≡ neighbor-set-exchange PROP-G, in peer space.
    #[test]
    fn production_equals_reference(seed in 0u64..5_000, swaps in 1usize..25) {
        let mut net = gnutella_net(24, seed);
        let mut rng = SimRng::seed_from(seed ^ 0xabcd);
        let mut reference = peer_adjacency(&net);
        for _ in 0..swaps {
            let a = Slot(rng.range(0..24u32));
            let b = Slot(rng.range(0..24u32));
            if a == b {
                continue;
            }
            let (pa, pb) = (net.peer(a), net.peer(b));
            let plan = exchange::plan_propg(&net, a, b);
            prop_assert_eq!(&plan.kind, &PlanKind::SwapAll);
            exchange::apply(&mut net, &plan);
            reference = reference_propg_exchange(&reference, pa, pb);
            prop_assert_eq!(&peer_adjacency(&net), &reference,
                "placement swap diverged from the paper's neighbor exchange");
        }
    }

    /// Theorem 2 witness: the slot transposition is a verified isomorphism
    /// between the peer-space graphs before and after an exchange.
    #[test]
    fn transposition_is_an_isomorphism_witness(seed in 0u64..5_000) {
        let mut net = gnutella_net(20, seed);
        let mut rng = SimRng::seed_from(seed ^ 0x1357);
        let a = Slot(rng.range(0..20u32));
        let b = Slot(rng.range(0..20u32));
        if a == b {
            return Ok(());
        }
        // Peer-space graphs, expressed with *peer* labels (u32 for the
        // checker).
        let before: std::collections::BTreeSet<(u32, u32)> = peer_adjacency(&net)
            .into_iter()
            .map(|(x, y)| (x as u32, y as u32))
            .collect();
        let (pa, pb) = (net.peer(a), net.peer(b));
        let plan = exchange::plan_propg(&net, a, b);
        exchange::apply(&mut net, &plan);
        let after: std::collections::BTreeSet<(u32, u32)> = peer_adjacency(&net)
            .into_iter()
            .map(|(x, y)| (x as u32, y as u32))
            .collect();
        // φ = the transposition of the two *peers*.
        let phi = transposition(20, Slot(pa as u32), Slot(pb as u32));
        prop_assert!(is_isomorphic_via(&before, &after, &phi));
        // And the identity is NOT a witness unless the swap was symmetric.
        let identity: Vec<u32> = (0..20).collect();
        if before != after {
            prop_assert!(!is_isomorphic_via(&before, &after, &identity));
        }
    }
}

#[test]
fn full_protocol_run_stays_reference_equivalent() {
    // Run the real event-driven protocol and verify at checkpoints that the
    // peer-space overlay is a relabeling of the initial one (Theorem 2 over
    // an arbitrary number of exchanges).
    let mut rng = SimRng::seed_from(77);
    let phys = generate(&TransitStubParams::tiny(), &mut rng);
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, 30, &mut rng));
    let (_, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    let initial_edges: Vec<(Slot, Slot)> = net.graph().edges().collect();

    let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
    for _ in 0..10 {
        sim.run_for(Duration::from_minutes(6));
        // Slot-space graph is literally unchanged…
        assert_eq!(sim.net().graph().edges().collect::<Vec<_>>(), initial_edges);
        // …and the placement is the Theorem-2 bijection: peer-space edges
        // are the slot edges relabeled through it.
        let via_placement: std::collections::BTreeSet<_> = initial_edges
            .iter()
            .map(|&(a, b)| {
                let (pa, pb) = (sim.net().peer(a), sim.net().peer(b));
                (pa.min(pb), pa.max(pb))
            })
            .collect();
        assert_eq!(peer_adjacency(sim.net()), via_placement);
    }
    assert!(sim.overhead().exchanges > 0, "want a nontrivial run");
}
