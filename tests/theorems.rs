//! Property-based tests for the paper's §4 theorems, run against randomized
//! overlays and exchange sequences.
//!
//! * Theorem 1 (connectivity persistence): no PROP-G/PROP-O exchange ever
//!   disconnects a connected overlay.
//! * Theorem 2 (isomorphic characteristic): PROP-G leaves the logical graph
//!   literally identical (our placement construction makes the isomorphism
//!   the identity on slots).
//! * Degree preservation: PROP-O never changes any node's degree.
//! * The Var identity (§4.2): applying a plan changes total logical link
//!   latency by exactly −Var.

use prop::core::exchange::{self, PlanKind};
use prop::core::Policy;
use prop::netsim::graph::{LinkClass, NodeClass, PhysGraphBuilder};
use prop::overlay::walk::random_walk;
use prop::prelude::*;
use proptest::test_runner::Config as ProptestConfig;
use proptest::{prop_assert, prop_assert_eq, proptest};
use std::sync::Arc;

/// A random physical "line-with-chords" metric: n hosts on a 10 ms line
/// plus a few random shortcut links, giving irregular but metric distances.
fn line_oracle(n: usize, shortcut_seed: u64) -> Arc<LatencyOracle> {
    let mut b = PhysGraphBuilder::new();
    let ids: Vec<_> = (0..n).map(|_| b.add_node(NodeClass::Transit { domain: 0 })).collect();
    for w in ids.windows(2) {
        b.add_link(w[0], w[1], 10, LinkClass::TransitTransit);
    }
    let mut rng = SimRng::seed_from(shortcut_seed);
    for _ in 0..n / 4 {
        let a = rng.range(0..n);
        let c = rng.range(0..n);
        if a != c && !b.has_link(ids[a], ids[c]) {
            b.add_link(ids[a], ids[c], rng.range(5..50u32), LinkClass::TransitTransit);
        }
    }
    let g = b.build();
    Arc::new(LatencyOracle::build(&g, ids))
}

/// A random connected overlay (spanning tree + extra random edges).
fn random_net(n: usize, extra_edges: usize, seed: u64) -> OverlayNet {
    let mut rng = SimRng::seed_from(seed);
    let oracle = line_oracle(n, seed ^ 0xdead);
    let mut g = LogicalGraph::new(n);
    for i in 1..n as u32 {
        let parent = rng.range(0..i);
        g.add_edge(Slot(i), Slot(parent));
    }
    for _ in 0..extra_edges {
        let a = Slot(rng.range(0..n as u32));
        let b = Slot(rng.range(0..n as u32));
        if a != b && !g.has_edge(a, b) {
            g.add_edge(a, b);
        }
    }
    OverlayNet::new(g, Placement::identity(n), oracle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorems 1+2 under PROP-G: connectivity and the exact logical graph
    /// survive arbitrary accepted-exchange sequences.
    #[test]
    fn propg_preserves_connectivity_and_topology(
        n in 6usize..40,
        extra in 0usize..30,
        seed in 0u64..10_000,
        steps in 1usize..60,
    ) {
        let mut net = random_net(n, extra, seed);
        let mut rng = SimRng::seed_from(seed.wrapping_mul(31));
        let edges_before: Vec<_> = net.graph().edges().collect();
        prop_assert!(net.graph().is_connected());
        for _ in 0..steps {
            let u = Slot(rng.range(0..n as u32));
            let v = Slot(rng.range(0..n as u32));
            if u == v { continue; }
            let plan = exchange::plan_propg(&net, u, v);
            if plan.var > 0 {
                exchange::apply(&mut net, &plan);
            }
            prop_assert!(net.graph().is_connected(), "Theorem 1 violated");
        }
        prop_assert_eq!(edges_before, net.graph().edges().collect::<Vec<_>>(),
            "Theorem 2 violated: logical graph changed");
        prop_assert!(net.placement().is_consistent());
    }

    /// Theorem 1 + degree preservation under PROP-O with real probe walks.
    #[test]
    fn propo_preserves_connectivity_and_degrees(
        n in 8usize..40,
        extra in 4usize..30,
        seed in 0u64..10_000,
        steps in 1usize..60,
        nhops in 2u32..5,
        m in 1usize..4,
    ) {
        let mut net = random_net(n, extra, seed);
        let mut rng = SimRng::seed_from(seed.wrapping_mul(37));
        let degrees_before: Vec<usize> =
            (0..n as u32).map(|i| net.graph().degree(Slot(i))).collect();
        for _ in 0..steps {
            let u = Slot(rng.range(0..n as u32));
            let nbrs = net.graph().neighbors(u).to_vec();
            let Some(&first) = rng.pick(&nbrs) else { continue };
            let walk = random_walk(net.graph(), u, first, nhops, &mut rng);
            if walk.counterpart(nhops).is_none() { continue; }
            if let Some(plan) = exchange::plan_exchange(
                &net, Policy::PropO { m: Some(m) }, &walk, m,
            ) {
                if plan.var > 0 {
                    exchange::apply(&mut net, &plan);
                }
            }
            prop_assert!(net.graph().is_connected(), "Theorem 1 violated");
        }
        let degrees_after: Vec<usize> =
            (0..n as u32).map(|i| net.graph().degree(Slot(i))).collect();
        prop_assert_eq!(degrees_before, degrees_after, "PROP-O changed a degree");
    }

    /// §4.2: Var equals the exact total-latency delta, for both policies.
    #[test]
    fn var_is_exact_latency_delta(
        n in 6usize..30,
        extra in 2usize..20,
        seed in 0u64..10_000,
    ) {
        let mut net = random_net(n, extra, seed);
        let mut rng = SimRng::seed_from(seed.wrapping_mul(41));

        // PROP-G between two random slots (applied regardless of sign, to
        // exercise negative Var too).
        let u = Slot(rng.range(0..n as u32));
        let v = Slot(rng.range(0..n as u32));
        if u != v {
            let before = net.total_link_latency() as i64;
            let plan = exchange::plan_propg(&net, u, v);
            exchange::apply(&mut net, &plan);
            let after = net.total_link_latency() as i64;
            prop_assert_eq!(before - after, plan.var, "PROP-G Var mismatch");
        }

        // PROP-O from a random walk.
        let u = Slot(rng.range(0..n as u32));
        let nbrs = net.graph().neighbors(u).to_vec();
        if let Some(&first) = rng.pick(&nbrs) {
            let walk = random_walk(net.graph(), u, first, 2, &mut rng);
            if walk.counterpart(2).is_some() {
                if let Some(plan) = exchange::plan_propo(&net, &walk, 2) {
                    let before = net.total_link_latency() as i64;
                    exchange::apply(&mut net, &plan);
                    let after = net.total_link_latency() as i64;
                    prop_assert_eq!(before - after, plan.var, "PROP-O Var mismatch");
                }
            }
        }
    }

    /// PROP-O plans never touch the probe path and never duplicate edges.
    #[test]
    fn propo_plans_are_well_formed(
        n in 8usize..35,
        extra in 4usize..25,
        seed in 0u64..10_000,
        m in 1usize..5,
    ) {
        let net = random_net(n, extra, seed);
        let mut rng = SimRng::seed_from(seed.wrapping_mul(43));
        let u = Slot(rng.range(0..n as u32));
        let nbrs = net.graph().neighbors(u).to_vec();
        let Some(&first) = rng.pick(&nbrs) else { return Ok(()); };
        let walk = random_walk(net.graph(), u, first, 3, &mut rng);
        if walk.counterpart(3).is_none() { return Ok(()); }
        if let Some(plan) = exchange::plan_propo(&net, &walk, m) {
            let v = *walk.path.last().unwrap();
            if let PlanKind::Subset { from_u, from_v } = &plan.kind {
                prop_assert_eq!(from_u.len(), from_v.len(), "unequal exchange");
                prop_assert!(from_u.len() <= m);
                for &x in from_u {
                    prop_assert!(!walk.contains(x));
                    prop_assert!(net.graph().has_edge(u, x));
                    prop_assert!(!net.graph().has_edge(v, x), "duplicate edge would form");
                }
                for &y in from_v {
                    prop_assert!(!walk.contains(y));
                    prop_assert!(net.graph().has_edge(v, y));
                    prop_assert!(!net.graph().has_edge(u, y), "duplicate edge would form");
                }
            } else {
                prop_assert!(false, "PROP-O produced a non-subset plan");
            }
        }
    }
}
