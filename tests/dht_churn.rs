//! PROP-G on a *churning* Chord ring: the structured half of the paper's
//! dynamic-environment claim. Peers leave and rejoin mid-optimization; the
//! routing tables stabilize after every event; PROP-G keeps swapping
//! identifiers; every invariant holds throughout.

use prop::core::{PropConfig, ProtocolSim};
use prop::overlay::chord_dynamic::DynamicChord;
use prop::prelude::*;
use std::sync::Arc;

fn setup(n: usize, seed: u64) -> (DynamicChord, ProtocolSim, SimRng) {
    let mut rng = SimRng::seed_from(seed);
    let phys = generate(&TransitStubParams::ts_small(), &mut rng);
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
    let (dc, net) = DynamicChord::build(ChordParams::default(), oracle, &mut rng);
    let sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
    (dc, sim, rng)
}

#[test]
fn propg_optimizes_a_churning_ring() {
    let (mut dc, mut sim, mut rng) = setup(120, 1);
    let live: Vec<Slot> = sim.net().graph().live_slots().collect();
    let pairs = LookupGen::new(&rng).uniform_pairs(&live, 400);
    let initial = path_stretch(sim.net(), &dc, &pairs).mean;

    let mut absent: Vec<usize> = Vec::new();
    for round in 0..12 {
        sim.run_for(Duration::from_minutes(8));
        // Alternate a leave and a join per round.
        if round % 2 == 0 {
            let live: Vec<Slot> = sim.net().graph().live_slots().collect();
            let victim = *rng.pick(&live).unwrap();
            let peer = sim.net().peer(victim);
            let affected = dc.leave(sim.net_mut(), victim);
            sim.handle_leave(victim, &affected);
            absent.push(peer);
        } else if let Some(peer) = absent.pop() {
            let (slot, affected) = dc.join(sim.net_mut(), peer);
            sim.handle_join(slot);
            // The join rewired other nodes' fingers too; their protocol
            // state resyncs exactly as the paper's churn handling says.
            sim.handle_rewire(&affected);
        }
        assert!(sim.net().graph().is_connected());
        assert!(sim.net().placement().is_consistent());
        // Routing still terminates everywhere among the living.
        let live_now: Vec<Slot> = sim.net().graph().live_slots().collect();
        for &a in live_now.iter().take(10) {
            for &b in live_now.iter().take(10) {
                let out = dc.lookup(sim.net(), a, b).unwrap();
                assert!(out.hops as usize <= live_now.len());
            }
        }
    }

    // Measure stretch over pairs whose endpoints survived.
    let live_final: std::collections::HashSet<Slot> = sim.net().graph().live_slots().collect();
    let surviving: Vec<(Slot, Slot)> = pairs
        .iter()
        .copied()
        .filter(|&(a, b)| live_final.contains(&a) && live_final.contains(&b))
        .collect();
    assert!(surviving.len() > 200);
    let final_stretch = path_stretch(sim.net(), &dc, &surviving).mean;
    assert!(
        final_stretch < initial,
        "PROP-G should beat the initial stretch despite churn: {initial:.2} → {final_stretch:.2}"
    );
    assert!(sim.overhead().exchanges > 0);
}

#[test]
fn heavy_dht_churn_never_breaks_invariants() {
    let (mut dc, mut sim, mut rng) = setup(80, 2);
    let mut absent: Vec<usize> = Vec::new();
    for i in 0..60 {
        sim.run_for(Duration::from_minutes(1));
        let live: Vec<Slot> = sim.net().graph().live_slots().collect();
        if (i % 3 != 2 || absent.is_empty()) && live.len() > 20 {
            let victim = *rng.pick(&live).unwrap();
            let peer = sim.net().peer(victim);
            let affected = dc.leave(sim.net_mut(), victim);
            sim.handle_leave(victim, &affected);
            absent.push(peer);
        } else if let Some(peer) = absent.pop() {
            let (slot, _) = dc.join(sim.net_mut(), peer);
            sim.handle_join(slot);
        }
        assert!(sim.net().graph().is_connected(), "partition at event {i}");
        assert!(sim.net().placement().is_consistent());
    }
    // Ring bookkeeping and graph agree on the live population.
    assert_eq!(dc.ring_len(), sim.net().graph().num_live());
}
