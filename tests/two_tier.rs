//! PROP on the two-tier (ultrapeer/leaf) Gnutella: the architecture whose
//! bimodal degree structure makes degree preservation non-negotiable.

use prop::overlay::ultrapeer::{Ultrapeer, UltrapeerParams};
use prop::prelude::*;
use std::sync::Arc;

fn setup(n: usize, seed: u64) -> (Ultrapeer, OverlayNet, SimRng) {
    let mut rng = SimRng::seed_from(seed);
    let phys = generate(&TransitStubParams::ts_small(), &mut rng);
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
    let (up, net) = Ultrapeer::build(UltrapeerParams::default(), oracle, &mut rng);
    (up, net, rng)
}

#[test]
fn propo_improves_two_tier_lookups_and_keeps_the_architecture() {
    let (up, net, rng) = setup(150, 1);
    let live: Vec<Slot> = net.graph().live_slots().collect();
    let pairs = LookupGen::new(&rng).uniform_pairs(&live, 600);
    let before = avg_lookup_latency(&net, &up, &pairs);
    assert_eq!(before.failed, 0, "two-tier floods must deliver");

    // Leaf degrees before: exactly leaf_links each.
    let leaf_degrees: Vec<usize> =
        live.iter().filter(|&&s| !up.is_ultrapeer(s)).map(|&s| net.graph().degree(s)).collect();

    let mut rng2 = SimRng::seed_from(2);
    let mut sim = ProtocolSim::new(net, PropConfig::prop_o(), &mut rng2);
    sim.run_for(Duration::from_minutes(60));
    let net = sim.into_net();

    let after = avg_lookup_latency(&net, &up, &pairs);
    assert!(
        after.mean_ms < before.mean_ms,
        "two-tier lookups should improve: {:.1} → {:.1}",
        before.mean_ms,
        after.mean_ms
    );
    // The bimodal degree architecture survives PROP-O exactly.
    let leaf_degrees_after: Vec<usize> =
        live.iter().filter(|&&s| !up.is_ultrapeer(s)).map(|&s| net.graph().degree(s)).collect();
    assert_eq!(leaf_degrees, leaf_degrees_after);
    assert!(net.graph().is_connected());
}

#[test]
fn propg_improves_two_tier_lookups_with_identical_topology() {
    let (up, net, rng) = setup(150, 3);
    let live: Vec<Slot> = net.graph().live_slots().collect();
    let pairs = LookupGen::new(&rng).uniform_pairs(&live, 600);
    let before = avg_lookup_latency(&net, &up, &pairs);
    let edges: Vec<_> = net.graph().edges().collect();

    let mut rng2 = SimRng::seed_from(4);
    let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng2);
    sim.run_for(Duration::from_minutes(60));
    let exchanges = sim.overhead().exchanges;
    let net = sim.into_net();

    assert_eq!(edges, net.graph().edges().collect::<Vec<_>>());
    let after = avg_lookup_latency(&net, &up, &pairs);
    assert!(after.mean_ms < before.mean_ms, "{:.1} → {:.1}", before.mean_ms, after.mean_ms);
    assert!(exchanges > 0);
}

#[test]
fn propg_swaps_capable_peers_into_the_mesh() {
    // Give ultrapeer *positions* the heavy traffic (they relay all floods)
    // and measure whether PROP-G reduces the mean latency between mesh
    // positions specifically — the tier that matters for query routing.
    let (up, net, _) = setup(200, 5);
    let ups: Vec<Slot> = net.graph().live_slots().filter(|&s| up.is_ultrapeer(s)).collect();
    let mesh_latency = |net: &OverlayNet| -> f64 {
        let mut total = 0u64;
        let mut cnt = 0u64;
        for &a in &ups {
            for &b in &ups {
                if a != b {
                    total += net.d(a, b) as u64;
                    cnt += 1;
                }
            }
        }
        total as f64 / cnt as f64
    };
    let before = mesh_latency(&net);
    let mut rng = SimRng::seed_from(6);
    let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
    sim.run_for(Duration::from_minutes(90));
    let net = sim.into_net();
    let after = mesh_latency(&net);
    assert!(after < before, "mesh-position pairwise latency should drop: {before:.1} → {after:.1}");
}
