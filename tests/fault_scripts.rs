//! Fault-plane scenario tests: random scripts must never break the
//! theorems, and a pinned (seed, script) pair must replay bit-for-bit.

use prop::faults::{FaultHarness, FaultScript};
use prop::prelude::*;
use proptest::collection::vec;
use proptest::strategy::Strategy;
use proptest::test_runner::Config as ProptestConfig;
use proptest::{prop_assert, prop_assert_eq, proptest};

const MEMBERS: usize = 30;

/// The harness preset shortened for property testing (each case replays the
/// script against BOTH drivers).
fn harness(cfg: PropConfig, script: FaultScript, seed: u64) -> FaultHarness {
    let mut h = FaultHarness::small(cfg, script, seed);
    h.horizon = Duration::from_minutes(20);
    h.checkpoint_every = Duration::from_minutes(4);
    h
}

/// Random but bounded scenarios: loss ≤ 20%, at most 2 partitions, crashes
/// hitting ≤ 10% of the membership.
fn script_strategy() -> impl Strategy<Value = FaultScript> {
    let rates = (0.0..=0.20f64, 0.0..=0.10f64, 0.0..=0.25f64, 0u64..=300);
    let partitions = vec((60_000u64..900_000, 30_000u64..180_000), 0..=2);
    let crashes = vec((0..MEMBERS, 60_000u64..900_000, 30_000u64..120_000), 0..=3);
    (rates, partitions, crashes).prop_map(|((loss, dup, reord, reord_max), parts, crashes)| {
        let mut s = FaultScript::new();
        if loss > 0.0 {
            s = s.loss(0, loss);
        }
        if dup > 0.0 {
            s = s.duplicate(0, dup);
        }
        if reord > 0.0 && reord_max > 0 {
            s = s.reorder(0, reord, reord_max);
        }
        for (at, heal) in parts {
            s = s.partition(at, heal);
        }
        for (peer, at, restart) in crashes {
            s = s.crash(at, peer, restart);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Theorem 1 (global + per-side) and Theorem 2 survive arbitrary
    /// bounded fault scripts, for both policies, on both drivers.
    #[test]
    fn random_scripts_preserve_the_theorems(script in script_strategy(), seed in 0u64..1000) {
        for cfg in [PropConfig::prop_g(), PropConfig::prop_o()] {
            let report = harness(cfg, script.clone(), seed).run();
            prop_assert!(report.is_ok(), "invariant violated: {:?}", report.as_ref().err());
            let report = report.unwrap();
            prop_assert_eq!(report.sync.checkpoints, report.r#async.checkpoints);
        }
    }
}

/// Golden trace: one pinned (seed, script) pair replays byte-identically —
/// same fault counters (compared through their serialized bytes) and the
/// same final overlay fingerprint, on both drivers.
#[test]
fn golden_trace_is_reproducible() {
    let script = FaultScript::new()
        .loss(0, 0.10)
        .duplicate(0, 0.05)
        .reorder(0, 0.15, 250)
        .partition(300_000, 120_000)
        .crash(420_000, 7, 90_000);

    let a = harness(PropConfig::prop_g(), script.clone(), 2024).run().expect("run a");
    let b = harness(PropConfig::prop_g(), script, 2024).run().expect("run b");

    let bytes = |c: &FaultCounters| serde_json::to_vec(c).expect("counters serialize");
    assert_eq!(bytes(&a.sync.counters), bytes(&b.sync.counters), "sync counters diverged");
    assert_eq!(bytes(&a.r#async.counters), bytes(&b.r#async.counters), "async counters diverged");
    assert_eq!(a.sync.final_latency, b.sync.final_latency, "sync overlay diverged");
    assert_eq!(a.r#async.final_latency, b.r#async.final_latency, "async overlay diverged");
    assert_eq!(a, b);

    // The script actually did something: the plane ruled against traffic.
    assert!(a.r#async.counters.total_events() > 0, "{:?}", a.r#async.counters);
}
