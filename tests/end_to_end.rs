//! Cross-crate integration: the full pipeline from topology generation to
//! optimized overlays, for all three overlay families and both protocols.

use prop::baselines::pis::build_pis_can;
use prop::baselines::pns::build_pns_chord;
use prop::baselines::{LtmConfig, LtmSim};
use prop::prelude::*;
use std::sync::Arc;

fn setup(n: usize, seed: u64) -> (Arc<LatencyOracle>, SimRng) {
    let mut rng = SimRng::seed_from(seed);
    let phys = generate(&TransitStubParams::ts_small(), &mut rng);
    assert!(phys.is_connected());
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
    (oracle, rng)
}

#[test]
fn propg_improves_gnutella_lookups_end_to_end() {
    let (oracle, mut rng) = setup(150, 1);
    let (gn, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    let live: Vec<Slot> = net.graph().live_slots().collect();
    let pairs = LookupGen::new(&rng).uniform_pairs(&live, 600);
    let before = avg_lookup_latency(&net, &gn, &pairs);

    let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
    sim.run_for(Duration::from_minutes(60));
    let net = sim.into_net();
    let after = avg_lookup_latency(&net, &gn, &pairs);

    assert!(before.failed == 0 && after.failed == 0, "TTL-7 floods should deliver");
    assert!(
        after.mean_ms < before.mean_ms * 0.95,
        "lookups should get ≥5% faster: {:.1} → {:.1}",
        before.mean_ms,
        after.mean_ms
    );
}

#[test]
fn propo_improves_gnutella_and_keeps_power_law() {
    let (oracle, mut rng) = setup(150, 2);
    let (gn, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    let degseq = net.graph().degree_sequence();
    let live: Vec<Slot> = net.graph().live_slots().collect();
    let pairs = LookupGen::new(&rng).uniform_pairs(&live, 600);
    let before = avg_lookup_latency(&net, &gn, &pairs);

    let mut sim = ProtocolSim::new(net, PropConfig::prop_o(), &mut rng);
    sim.run_for(Duration::from_minutes(60));
    let net = sim.into_net();

    assert_eq!(net.graph().degree_sequence(), degseq, "PROP-O must preserve degrees");
    let after = avg_lookup_latency(&net, &gn, &pairs);
    assert!(after.mean_ms < before.mean_ms, "{:.1} → {:.1}", before.mean_ms, after.mean_ms);
}

#[test]
fn propg_improves_chord_stretch_without_touching_routing() {
    let (oracle, mut rng) = setup(150, 3);
    let (chord, net) = Chord::build(ChordParams::default(), oracle, &mut rng);
    let live: Vec<Slot> = net.graph().live_slots().collect();
    let pairs = LookupGen::new(&rng).uniform_pairs(&live, 600);
    let s0 = path_stretch(&net, &chord, &pairs).mean;
    let hops0: u32 = pairs.iter().map(|&(a, b)| chord.lookup(&net, a, b).unwrap().hops).sum();

    let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
    sim.run_for(Duration::from_minutes(60));
    let net = sim.into_net();

    let s1 = path_stretch(&net, &chord, &pairs).mean;
    let hops1: u32 = pairs.iter().map(|&(a, b)| chord.lookup(&net, a, b).unwrap().hops).sum();
    assert_eq!(hops0, hops1, "identifier swaps must not change any route");
    assert!(s1 < s0, "stretch should drop: {s0:.2} → {s1:.2}");
}

#[test]
fn propg_improves_can_stretch() {
    let (oracle, mut rng) = setup(120, 4);
    let (can, net) = Can::build(oracle, &mut rng);
    let live: Vec<Slot> = net.graph().live_slots().collect();
    let pairs = LookupGen::new(&rng).uniform_pairs(&live, 500);
    let s0 = path_stretch(&net, &can, &pairs).mean;

    let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
    sim.run_for(Duration::from_minutes(60));
    let net = sim.into_net();
    let s1 = path_stretch(&net, &can, &pairs).mean;
    assert!(s1 < s0, "CAN stretch should drop: {s0:.2} → {s1:.2}");
}

#[test]
fn stacking_propg_on_pns_and_pis_never_hurts() {
    let (oracle, mut rng) = setup(120, 5);
    let live: Vec<Slot> = (0..120).map(Slot).collect();
    let pairs = LookupGen::new(&rng).uniform_pairs(&live, 500);

    let (pns, net) = build_pns_chord(ChordParams::default(), Arc::clone(&oracle), &mut rng);
    let s0 = path_stretch(&net, &pns, &pairs).mean;
    let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
    sim.run_for(Duration::from_minutes(45));
    let s1 = path_stretch(&sim.into_net(), &pns, &pairs).mean;
    assert!(s1 <= s0 * 1.02, "PNS+PROP-G regressed: {s0:.2} → {s1:.2}");

    let (pis, net) = build_pis_can(oracle, &mut rng);
    let c0 = path_stretch(&net, &pis, &pairs).mean;
    let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
    sim.run_for(Duration::from_minutes(45));
    let c1 = path_stretch(&sim.into_net(), &pis, &pairs).mean;
    assert!(c1 <= c0 * 1.02, "PIS+PROP-G regressed: {c0:.2} → {c1:.2}");
}

#[test]
fn ltm_and_prop_both_beat_unoptimized() {
    let (oracle, mut rng) = setup(120, 6);
    let (gn, net) = Gnutella::build(GnutellaParams::default(), Arc::clone(&oracle), &mut rng);
    let base = net.mean_link_latency();

    let mut prop_sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
    prop_sim.run_for(Duration::from_minutes(45));
    let prop_lat = prop_sim.into_net().mean_link_latency();

    let (_, net2) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    let mut ltm_sim = LtmSim::new(net2, LtmConfig::default(), &mut rng);
    ltm_sim.run_for(Duration::from_minutes(45));
    let ltm_lat = ltm_sim.into_net().mean_link_latency();

    assert!(prop_lat < base, "PROP-G: {base:.1} → {prop_lat:.1}");
    assert!(ltm_lat < base, "LTM: {base:.1} → {ltm_lat:.1}");
    let _ = gn;
}

#[test]
fn heterogeneous_lookup_pipeline() {
    use prop::workloads::hetero;
    let (oracle, mut rng) = setup(100, 7);
    let params = BimodalParams::default();
    let assignment = hetero::assign(&params, 100, &mut rng);
    let (gn, mut net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    net.set_processing_delays(assignment.delay_ms.clone());

    let live: Vec<Slot> = net.graph().live_slots().collect();
    let is_fast = |s: Slot| assignment.is_fast[net.peer(s)];
    let fast_pairs = LookupGen::new(&rng).skewed_pairs(&live, is_fast, 1.0, 300);
    let slow_pairs = LookupGen::new(&rng).skewed_pairs(&live, is_fast, 0.0, 300);
    let fast = avg_lookup_latency(&net, &gn, &fast_pairs);
    let slow = avg_lookup_latency(&net, &gn, &slow_pairs);
    // Destination processing delay alone separates the two classes.
    assert!(
        fast.mean_ms < slow.mean_ms,
        "fast-destination lookups should be quicker: {:.1} vs {:.1}",
        fast.mean_ms,
        slow.mean_ms
    );
}
