//! DHT structural invariants under arbitrary PROP-G identifier swaps.
//!
//! PROP-G's pitch for structured overlays: it optimizes *without affecting
//! the characteristics of the original systems*. These property tests pin
//! that down for all three DHT geometries: after any sequence of placement
//! swaps, routing still terminates at the correct owner, hop counts are
//! unchanged (the route is a function of slots, not peers), and the
//! structural invariants (ring order, prefix tables, zone tiling) hold.

use prop::overlay::can::Can;
use prop::overlay::pastry::{Pastry, PastryParams};
use prop::prelude::*;
use proptest::test_runner::Config as ProptestConfig;
use proptest::{prop_assert, prop_assert_eq, proptest};
use std::sync::Arc;

fn oracle(n: usize, seed: u64) -> Arc<LatencyOracle> {
    let mut rng = SimRng::seed_from(seed);
    let phys = generate(&TransitStubParams::tiny(), &mut rng);
    Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng))
}

fn apply_random_swaps(net: &mut OverlayNet, n: u32, swaps: usize, seed: u64) {
    let mut rng = SimRng::seed_from(seed);
    for _ in 0..swaps {
        let a = Slot(rng.range(0..n));
        let b = Slot(rng.range(0..n));
        if a != b {
            net.swap_peers(a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chord_invariants_survive_swaps(seed in 0u64..5_000, swaps in 0usize..40) {
        let n = 24usize;
        let mut rng = SimRng::seed_from(seed);
        let (chord, mut net) = Chord::build(ChordParams::default(), oracle(n, seed), &mut rng);
        let hops_before: Vec<u32> = (0..n as u32)
            .map(|b| chord.lookup(&net, Slot(0), Slot(b)).unwrap().hops)
            .collect();
        apply_random_swaps(&mut net, n as u32, swaps, seed ^ 0xff);
        prop_assert!(net.placement().is_consistent());
        // Ring/finger structure is slot-level: routes byte-identical.
        let hops_after: Vec<u32> = (0..n as u32)
            .map(|b| chord.lookup(&net, Slot(0), Slot(b)).unwrap().hops)
            .collect();
        prop_assert_eq!(hops_before, hops_after);
        // Every key still resolves to the slot owning it.
        for s in 0..n as u32 {
            prop_assert_eq!(chord.owner_of(chord.id(Slot(s))), Slot(s));
        }
    }

    #[test]
    fn pastry_invariants_survive_swaps(seed in 0u64..5_000, swaps in 0usize..40) {
        let n = 24usize;
        let mut rng = SimRng::seed_from(seed);
        let (pastry, mut net) =
            Pastry::build(PastryParams::default(), oracle(n, seed), &mut rng);
        let hops_before: Vec<u32> = (0..n as u32)
            .map(|b| pastry.lookup(&net, Slot(1), Slot(b)).unwrap().hops)
            .collect();
        apply_random_swaps(&mut net, n as u32, swaps, seed ^ 0xaa);
        let hops_after: Vec<u32> = (0..n as u32)
            .map(|b| pastry.lookup(&net, Slot(1), Slot(b)).unwrap().hops)
            .collect();
        prop_assert_eq!(hops_before, hops_after);
        for s in 0..n as u32 {
            prop_assert_eq!(pastry.owner_of(pastry.id(Slot(s))), Slot(s));
        }
    }

    #[test]
    fn can_invariants_survive_swaps(seed in 0u64..5_000, swaps in 0usize..40) {
        let n = 20usize;
        let mut rng = SimRng::seed_from(seed);
        let (can, mut net) = Can::build(oracle(n, seed), &mut rng);
        apply_random_swaps(&mut net, n as u32, swaps, seed ^ 0x55);
        // Zones still tile the unit torus…
        let area: f64 = (0..n as u32)
            .map(|s| {
                let z = can.zone(Slot(s));
                z.extent(0) * z.extent(1)
            })
            .sum();
        prop_assert!((area - 1.0).abs() < 1e-9);
        // …and greedy routing still delivers everywhere.
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let out = can.lookup(&net, Slot(a), Slot(b)).unwrap();
                prop_assert!(out.hops <= n as u32);
            }
        }
    }

    /// Latency (unlike hops) DOES depend on placement — that is the whole
    /// point of PROP-G. Sanity-check the two facets together.
    #[test]
    fn swaps_change_latency_but_not_structure(seed in 0u64..5_000) {
        let n = 24usize;
        let mut rng = SimRng::seed_from(seed);
        let (chord, mut net) = Chord::build(ChordParams::default(), oracle(n, seed), &mut rng);
        let total_before = net.total_link_latency();
        let edges_before: Vec<_> = net.graph().edges().collect();
        // One definite swap.
        net.swap_peers(Slot(0), Slot(n as u32 / 2));
        prop_assert_eq!(edges_before, net.graph().edges().collect::<Vec<_>>());
        // Latency may or may not change (it usually does); structure never.
        let _ = total_before;
        let out = chord.lookup(&net, Slot(1), Slot(2)).unwrap();
        prop_assert!(out.latency_ms < 1_000_000);
    }
}
