//! Sudden (ungraceful) failures: peers vanish without patching the hole.
//! The paper's §3.2 churn handling ("in order to handle departures and
//! sudden failures gracefully…") resets timers and re-probes; the protocol
//! must tolerate a temporarily degraded — even partitioned — overlay
//! without panicking, and recover once survivors rejoin around the hole.

use prop::prelude::*;
use std::sync::Arc;

fn setup(n: usize, seed: u64) -> (Gnutella, ProtocolSim, SimRng) {
    let mut rng = SimRng::seed_from(seed);
    let phys = generate(&TransitStubParams::ts_small(), &mut rng);
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
    let (gn, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    let sim = ProtocolSim::new(net, PropConfig::prop_o(), &mut rng);
    (gn, sim, rng)
}

#[test]
fn protocol_survives_crashes_without_patching() {
    let (gn, mut sim, mut rng) = setup(100, 1);
    sim.run_for(Duration::from_minutes(10));
    // Crash a quarter of the population, no patch-up at all.
    for _ in 0..25 {
        let live: Vec<Slot> = sim.net().graph().live_slots().collect();
        let victim = *rng.pick(&live).unwrap();
        let orphans = gn.crash(sim.net_mut(), victim);
        sim.handle_leave(victim, &orphans);
        // The overlay may be partitioned here — the driver must keep
        // running regardless.
        sim.run_for(Duration::from_minutes(2));
    }
    assert_eq!(sim.net().graph().num_live(), 75);
    assert!(sim.net().placement().is_consistent());
    // Lookups within the surviving majority component still work.
    let live: Vec<Slot> = sim.net().graph().live_slots().collect();
    let mut delivered = 0;
    let mut total = 0;
    for &a in live.iter().take(30) {
        for &b in live.iter().take(30) {
            if a != b {
                total += 1;
                if gn.lookup(sim.net(), a, b).is_some() {
                    delivered += 1;
                }
            }
        }
    }
    assert!(
        delivered as f64 / total as f64 > 0.5,
        "majority component should still route: {delivered}/{total}"
    );
}

#[test]
fn rejoins_heal_a_crash_partition() {
    let (gn, mut sim, mut rng) = setup(60, 2);
    sim.run_for(Duration::from_minutes(5));

    // Crash nodes until the graph actually partitions (or we run out of
    // attempts — preferential graphs are robust, so target the hubs).
    let mut crashed: Vec<usize> = Vec::new();
    let mut partitioned = false;
    for _ in 0..20 {
        let hub =
            sim.net().graph().live_slots().max_by_key(|&s| sim.net().graph().degree(s)).unwrap();
        let peer = sim.net().peer(hub);
        let orphans = gn.crash(sim.net_mut(), hub);
        sim.handle_leave(hub, &orphans);
        crashed.push(peer);
        if !sim.net().graph().is_connected() {
            partitioned = true;
            break;
        }
    }
    // Either way, rejoining everyone must restore a connected overlay:
    // join() wires each returnee to live peers across components.
    for peer in crashed {
        let slot = gn.join(sim.net_mut(), peer, &mut rng);
        sim.handle_join(slot);
    }
    // Joins attach to random live slots; with several returnees the
    // overlay reconnects with overwhelming probability. If it is still
    // split (possible when the partition was never bridged), one more
    // graceful pass must fix it; assert the common case directly.
    if partitioned && !sim.net().graph().is_connected() {
        // Bridge deterministically: connect the lowest live slot to every
        // component representative it cannot reach yet (BFS marks).
        let live: Vec<Slot> = sim.net().graph().live_slots().collect();
        let a = live[0];
        for &b in live.iter().skip(1) {
            if !sim.net().graph().has_edge(a, b) {
                sim.net_mut().graph_mut().add_edge(a, b);
                sim.handle_rewire(&[a, b]);
                if sim.net().graph().is_connected() {
                    break;
                }
            }
        }
    }
    sim.run_for(Duration::from_minutes(20));
    assert!(sim.net().placement().is_consistent());
    assert!(sim.overhead().trials > 0);
    // The population is whole again.
    assert_eq!(sim.net().graph().num_live(), 60);
}

#[test]
fn crash_of_every_neighbor_isolates_but_does_not_panic() {
    let (gn, mut sim, _rng) = setup(40, 3);
    // Isolate slot 20 by crashing all of its neighbors.
    let victim_neighbors: Vec<Slot> = sim.net().graph().neighbors(Slot(20)).to_vec();
    for v in victim_neighbors {
        if sim.net().graph().is_alive(v) {
            let orphans = gn.crash(sim.net_mut(), v);
            sim.handle_leave(v, &orphans);
        }
    }
    // Slot 20 may now be isolated; the protocol driver must keep ticking.
    sim.run_for(Duration::from_minutes(30));
    assert!(sim.net().placement().is_consistent());
    // An isolated node's lookups fail gracefully (None), not catastrophically.
    if sim.net().graph().degree(Slot(20)) == 0 {
        assert!(gn.lookup(sim.net(), Slot(20), Slot(0)).is_none());
    }
}
