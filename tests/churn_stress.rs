//! Churn stress: sustained heavy join/leave against a running PROP overlay
//! must never violate the structural invariants.

use prop::prelude::*;
use prop::workloads::churn::{ChurnOp, ChurnTrace};
use std::sync::Arc;

fn run_storm(seed: u64, policy_cfg: PropConfig, leaves_per_min: f64) {
    let mut rng = SimRng::seed_from(seed);
    let phys = generate(&TransitStubParams::ts_small(), &mut rng);
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, 100, &mut rng));
    let (gn, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    let mut sim = ProtocolSim::new(net, policy_cfg, &mut rng);
    let mut churn_rng = SimRng::seed_from(seed ^ 0xbeef);

    let trace = ChurnTrace::poisson(
        SimTime::ZERO + Duration::from_minutes(5),
        Duration::from_minutes(40),
        leaves_per_min,
        leaves_per_min,
        &mut churn_rng,
    );
    assert!(!trace.is_empty());

    let mut absent: Vec<usize> = Vec::new();
    for &(t, op) in &trace.events {
        sim.run_until(t);
        match op {
            ChurnOp::Leave => {
                let live: Vec<Slot> = sim.net().graph().live_slots().collect();
                if live.len() <= 30 {
                    continue;
                }
                let victim = *churn_rng.pick(&live).unwrap();
                let peer = sim.net().peer(victim);
                let affected: Vec<Slot> = sim.net().graph().neighbors(victim).to_vec();
                gn.leave(sim.net_mut(), victim, &mut churn_rng);
                sim.handle_leave(victim, &affected);
                absent.push(peer);
            }
            ChurnOp::Join => {
                let Some(peer) = absent.pop() else { continue };
                let slot = gn.join(sim.net_mut(), peer, &mut churn_rng);
                sim.handle_join(slot);
            }
        }
        // Invariants after *every* churn event.
        assert!(sim.net().graph().is_connected(), "partition at {t:?}");
        assert!(sim.net().placement().is_consistent(), "placement broken at {t:?}");
    }
    // Let the protocol settle afterwards; it should still be improving.
    let stretch_post_churn = sim.net().stretch();
    sim.run_for(Duration::from_minutes(30));
    assert!(sim.net().graph().is_connected());
    assert!(
        sim.net().stretch() <= stretch_post_churn * 1.05,
        "stretch should not blow up after churn settles: {:.2} → {:.2}",
        stretch_post_churn,
        sim.net().stretch()
    );
}

#[test]
fn propg_survives_heavy_churn() {
    run_storm(1, PropConfig::prop_g(), 6.0);
}

#[test]
fn propo_survives_heavy_churn() {
    run_storm(2, PropConfig::prop_o(), 6.0);
}

#[test]
fn propo_m1_survives_extreme_churn() {
    run_storm(3, PropConfig::prop_o_m(1), 12.0);
}

#[test]
fn population_can_shrink_and_regrow() {
    let mut rng = SimRng::seed_from(9);
    let phys = generate(&TransitStubParams::ts_small(), &mut rng);
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, 60, &mut rng));
    let (gn, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    let mut sim = ProtocolSim::new(net, PropConfig::prop_o(), &mut rng);
    sim.run_for(Duration::from_minutes(5));

    // Remove a third of the overlay, then bring everyone back.
    let mut absent = Vec::new();
    for _ in 0..20 {
        let live: Vec<Slot> = sim.net().graph().live_slots().collect();
        let victim = *rng.pick(&live).unwrap();
        let peer = sim.net().peer(victim);
        let affected: Vec<Slot> = sim.net().graph().neighbors(victim).to_vec();
        gn.leave(sim.net_mut(), victim, &mut rng);
        sim.handle_leave(victim, &affected);
        absent.push(peer);
        assert!(sim.net().graph().is_connected());
    }
    assert_eq!(sim.net().graph().num_live(), 40);
    sim.run_for(Duration::from_minutes(10));

    for peer in absent {
        let slot = gn.join(sim.net_mut(), peer, &mut rng);
        sim.handle_join(slot);
        assert!(sim.net().graph().is_connected());
    }
    assert_eq!(sim.net().graph().num_live(), 60);
    sim.run_for(Duration::from_minutes(20));
    assert!(sim.net().placement().is_consistent());
    assert!(sim.overhead().exchanges > 0);
}
