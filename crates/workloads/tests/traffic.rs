//! Traffic-plane property tests (PR satellite suite):
//!
//! * serde round-trip: compile → serialize → deserialize → compile is the
//!   identity on the event trace;
//! * determinism across rayon worker counts;
//! * flash crowds never emit events outside their windows (and never
//!   perturb the base streams);
//! * legacy-stream regression: `ChurnTrace::poisson` and `zipf_pairs`
//!   produce bit-identical output to the pre-refactor hand-rolled loops
//!   they were deduplicated from.

use prop_engine::{Duration, SimRng, SimTime};
use prop_overlay::Slot;
use prop_workloads::churn::{ChurnOp, ChurnTrace};
use prop_workloads::traffic::{self, DomainProfile, FlashCrowd, TrafficScript};
use prop_workloads::zipf::{zipf_pairs, Zipf};
use proptest::prelude::*;

fn arb_script() -> impl Strategy<Value = TrafficScript> {
    let profile = (0u16..6, 0.0f64..2.0, 0.0f64..2.0, 0.0f64..6.0, 0u8..24).prop_map(
        |(domain, j, l, lk, off)| {
            DomainProfile::flat(domain, j, l, lk)
                .with_hourly(traffic::script::DIURNAL_SHAPE.to_vec())
                .with_offset(off)
        },
    );
    let shift = (0u64..3_000_000, 0.0f64..1.8, 0u32..200)
        .prop_map(|(at_ms, alpha, rotate)| (at_ms, alpha, rotate));
    let flash = (0u64..3_000_000, 1u64..400_000, 1.0f64..5.0, 1u32..12).prop_map(
        |(at_ms, dur, mult, hot)| FlashCrowd {
            at_ms,
            duration_ms: dur,
            multiplier: mult,
            hot_keys: hot,
        },
    );
    (
        20_000u64..120_000,
        2u64..30,
        1u32..64,
        proptest::collection::vec(profile, 1..4),
        proptest::collection::vec(shift, 0..3),
        proptest::collection::vec(flash, 0..3),
    )
        .prop_map(|(hour_ms, hours, catalog, domains, shifts, flashes)| {
            let mut s = TrafficScript::new(hour_ms, hours * hour_ms, catalog);
            for d in domains {
                s = s.domain(d);
            }
            for (at_ms, alpha, rotate) in shifts {
                s = s.shift(at_ms, alpha, rotate);
            }
            s.flash_crowds = flashes;
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn serde_round_trip_compiles_identically(script in arb_script(), seed in 0u64..1000) {
        let json = serde_json::to_string(&script).unwrap();
        let back: TrafficScript = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&script, &back, "script must round-trip structurally");
        let a = traffic::compile(&script, seed);
        let b = traffic::compile(&back, seed);
        prop_assert_eq!(a.events(), b.events());
    }

    #[test]
    fn trace_is_sorted_and_inside_horizon(script in arb_script(), seed in 0u64..1000) {
        let c = traffic::compile(&script, seed);
        for w in c.events().windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        for &(t, _) in c.events() {
            prop_assert!(t.as_millis() < script.horizon_ms);
        }
    }

    #[test]
    fn flash_crowds_stay_inside_their_windows(script in arb_script(), seed in 0u64..1000) {
        let mut base_script = script.clone();
        base_script.flash_crowds.clear();
        let with_flash = traffic::compile(&script, seed);
        let base = traffic::compile(&base_script, seed);

        // Flash streams are independent forks: the base trace must survive
        // as an ordered subsequence, and every extra event must be a
        // hot-set lookup inside some flash window.
        let mut base_iter = base.events().iter().peekable();
        for ev in with_flash.events() {
            if base_iter.peek() == Some(&ev) {
                base_iter.next();
                continue;
            }
            let (t, extra) = *ev;
            let host = script
                .flash_crowds
                .iter()
                .find(|f| f.contains_ms(t.as_millis()));
            prop_assert!(host.is_some(), "extra event at {:?} outside every flash window", t);
            match extra {
                prop_core::TrafficEvent::Lookup { rank, .. } => {
                    prop_assert!(rank < host.unwrap().hot_keys.min(script.catalog));
                }
                other => prop_assert!(false, "flash emitted non-lookup {:?}", other),
            }
        }
        prop_assert!(base_iter.peek().is_none(), "flash crowds perturbed the base streams");
    }
}

#[test]
fn compile_is_worker_count_independent() {
    let scripts = [
        TrafficScript::preset_diurnal_regional(60_000, 12 * 60_000, 50, 1.0, 5.0),
        TrafficScript::preset_flash_crowd(60_000, 12 * 60_000, 50, 1.0, 5.0),
    ];
    for (i, script) in scripts.iter().enumerate() {
        let single = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| traffic::compile(script, 42 + i as u64));
        let many = rayon::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap()
            .install(|| traffic::compile(script, 42 + i as u64));
        assert_eq!(single.events(), many.events(), "script {i}");
    }
}

/// The pre-refactor `ChurnTrace::poisson` body, verbatim: the dedupe
/// through `traffic::process::poisson_train` must preserve this stream
/// bit-for-bit on the paper presets (same fork label, same draw order).
fn legacy_poisson(
    start: SimTime,
    window: Duration,
    leaves_per_min: f64,
    joins_per_min: f64,
    rng: &mut SimRng,
) -> Vec<(SimTime, ChurnOp)> {
    let mut rng = rng.fork("churn-trace");
    let mut events = Vec::new();
    for (rate, op) in [(leaves_per_min, ChurnOp::Leave), (joins_per_min, ChurnOp::Join)] {
        if rate <= 0.0 {
            continue;
        }
        let mean_gap_ms = 60_000.0 / rate;
        let mut t = start;
        loop {
            let gap = Duration::from_millis(rng.exp_millis(mean_gap_ms).max(1));
            t += gap;
            if t.since(start) >= window {
                break;
            }
            events.push((t, op));
        }
    }
    events.sort_by_key(|&(t, _)| t);
    events
}

#[test]
fn churn_trace_stream_is_preserved() {
    // Paper-preset rates (A2 uses n/100 per minute at both scales) plus
    // edge cases: zero rates and asymmetric churn.
    let cases = [(10.0, 10.0), (1.2, 1.2), (3.0, 1.0), (0.0, 2.0), (0.0, 0.0)];
    for seed in 0..4u64 {
        for &(leaves, joins) in &cases {
            let start = SimTime::ZERO + Duration::from_minutes(seed);
            let window = Duration::from_minutes(45);
            let expect = legacy_poisson(start, window, leaves, joins, &mut SimRng::seed_from(seed));
            let got =
                ChurnTrace::poisson(start, window, leaves, joins, &mut SimRng::seed_from(seed));
            assert_eq!(expect, got.events, "seed {seed}, rates ({leaves}, {joins})");
        }
    }
}

/// The pre-refactor `zipf_pairs` body, verbatim.
fn legacy_zipf_pairs(
    live: &[Slot],
    ranking: &[Slot],
    alpha: f64,
    count: usize,
    rng: &mut SimRng,
) -> Vec<(Slot, Slot)> {
    let zipf = Zipf::new(ranking.len(), alpha);
    let mut rng = rng.fork("zipf-pairs");
    (0..count)
        .map(|_| loop {
            let src = *rng.pick(live).unwrap();
            let dst = ranking[zipf.sample(&mut rng)];
            if src != dst {
                return (src, dst);
            }
        })
        .collect()
}

#[test]
fn zipf_pairs_stream_is_preserved() {
    let live: Vec<Slot> = (0..40).map(Slot).collect();
    let mut ranking = live.clone();
    ranking.reverse();
    for seed in 0..4u64 {
        for &alpha in &[0.0, 0.8, 1.0, 1.2] {
            let expect =
                legacy_zipf_pairs(&live, &ranking, alpha, 600, &mut SimRng::seed_from(seed));
            let got = zipf_pairs(&live, &ranking, alpha, 600, &mut SimRng::seed_from(seed));
            assert_eq!(expect, got, "seed {seed}, alpha {alpha}");
        }
    }
}
