//! Lookup-pair generators.
//!
//! A lookup is "peer `src` retrieves an object held by peer `dst`". The
//! Gnutella experiments average "1[0,000] lookup operations"; the Fig. 7
//! experiment skews destinations toward fast nodes with a controllable
//! fraction.

use prop_engine::SimRng;
use prop_overlay::Slot;

/// Deterministic lookup-pair generator over a fixed live-slot population.
pub struct LookupGen {
    rng: SimRng,
}

impl LookupGen {
    /// A generator with its own derived stream, so drawing lookups never
    /// perturbs protocol randomness.
    pub fn new(rng: &SimRng) -> Self {
        LookupGen { rng: rng.fork("lookup-gen") }
    }

    /// `count` uniform (src, dst) pairs with `src != dst`, both live.
    pub fn uniform_pairs(&mut self, live: &[Slot], count: usize) -> Vec<(Slot, Slot)> {
        assert!(live.len() >= 2, "need at least two live slots");
        (0..count)
            .map(|_| {
                let src = *self.rng.pick(live).unwrap();
                loop {
                    let dst = *self.rng.pick(live).unwrap();
                    if dst != src {
                        return (src, dst);
                    }
                }
            })
            .collect()
    }

    /// `count` pairs whose destination is a *fast* slot with probability
    /// `frac_fast` and a *slow* slot otherwise (the Fig. 7 workload).
    /// Sources are uniform. `is_fast` is indexed by slot.
    pub fn skewed_pairs(
        &mut self,
        live: &[Slot],
        is_fast: impl Fn(Slot) -> bool,
        frac_fast: f64,
        count: usize,
    ) -> Vec<(Slot, Slot)> {
        let fast: Vec<Slot> = live.iter().copied().filter(|&s| is_fast(s)).collect();
        let slow: Vec<Slot> = live.iter().copied().filter(|&s| !is_fast(s)).collect();
        assert!(!fast.is_empty() && !slow.is_empty(), "need both classes populated");
        (0..count)
            .map(|_| {
                let pool = if self.rng.chance(frac_fast) { &fast } else { &slow };
                loop {
                    let src = *self.rng.pick(live).unwrap();
                    let dst = *self.rng.pick(pool).unwrap();
                    if src != dst {
                        return (src, dst);
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(n: u32) -> Vec<Slot> {
        (0..n).map(Slot).collect()
    }

    #[test]
    fn uniform_pairs_are_valid() {
        let mut g = LookupGen::new(&SimRng::seed_from(1));
        let pool = live(20);
        let pairs = g.uniform_pairs(&pool, 500);
        assert_eq!(pairs.len(), 500);
        for (s, d) in pairs {
            assert_ne!(s, d);
            assert!(pool.contains(&s) && pool.contains(&d));
        }
    }

    #[test]
    fn uniform_pairs_cover_the_population() {
        let mut g = LookupGen::new(&SimRng::seed_from(2));
        let pool = live(10);
        let pairs = g.uniform_pairs(&pool, 2000);
        let mut seen = vec![false; 10];
        for (s, d) in pairs {
            seen[s.index()] = true;
            seen[d.index()] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn skew_fraction_respected() {
        let mut g = LookupGen::new(&SimRng::seed_from(3));
        let pool = live(50);
        // Slots 0..10 are fast.
        let is_fast = |s: Slot| s.0 < 10;
        for &frac in &[0.0, 0.5, 1.0] {
            let pairs = g.skewed_pairs(&pool, is_fast, frac, 4000);
            let hits = pairs.iter().filter(|&&(_, d)| is_fast(d)).count() as f64 / 4000.0;
            assert!((hits - frac).abs() < 0.03, "frac {frac}: observed {hits}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pool = live(30);
        let a = LookupGen::new(&SimRng::seed_from(4)).uniform_pairs(&pool, 100);
        let b = LookupGen::new(&SimRng::seed_from(4)).uniform_pairs(&pool, 100);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn skew_requires_both_classes() {
        let mut g = LookupGen::new(&SimRng::seed_from(5));
        let pool = live(10);
        let _ = g.skewed_pairs(&pool, |_| true, 0.5, 10);
    }
}
