//! Poisson churn traces.
//!
//! The paper's dynamic-environment claim: PROP "is adaptive to dynamic
//! change of peers" — after churn the probe frequency spikes (timers reset)
//! and then decays again. A churn trace is a timestamped sequence of
//! leave/join operations; the experiment layer applies each to the overlay
//! and notifies the protocol driver.

use prop_engine::{Duration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// One churn operation. Victims/joiners are resolved at apply time (the
/// population changes as the trace plays), so the trace only carries kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnOp {
    /// A uniformly random live peer departs.
    Leave,
    /// A previously departed (or fresh) peer joins.
    Join,
}

/// A timestamped churn schedule.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChurnTrace {
    pub events: Vec<(SimTime, ChurnOp)>,
}

impl ChurnTrace {
    /// A Poisson trace over `[start, start + window)` with independent
    /// leave/join processes of the given rates (events per minute).
    /// Leaves and joins alternate fairly on average, keeping the population
    /// roughly stable when the rates match.
    ///
    /// Arrival sampling routes through the shared
    /// [`crate::traffic::process::poisson_train`] process — same
    /// `"churn-trace"` fork and draw order as the original hand-rolled
    /// loop, so traces are bit-identical to every prior release
    /// (regression-pinned in `tests/traffic.rs`).
    pub fn poisson(
        start: SimTime,
        window: Duration,
        leaves_per_min: f64,
        joins_per_min: f64,
        rng: &mut SimRng,
    ) -> Self {
        let mut rng = rng.fork("churn-trace");
        let mut events = Vec::new();
        for (rate, op) in [(leaves_per_min, ChurnOp::Leave), (joins_per_min, ChurnOp::Join)] {
            for t in crate::traffic::process::poisson_train(start, window, rate, &mut rng) {
                events.push((t, op));
            }
        }
        events.sort_by_key(|&(t, _)| t);
        ChurnTrace { events }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events within `[from, to)`.
    pub fn in_window(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = (SimTime, ChurnOp)> + '_ {
        self.events.iter().copied().filter(move |&(t, _)| t >= from && t < to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_time_ordered_and_bounded() {
        let mut rng = SimRng::seed_from(1);
        let start = SimTime::ZERO + Duration::from_minutes(10);
        let window = Duration::from_minutes(30);
        let trace = ChurnTrace::poisson(start, window, 2.0, 2.0, &mut rng);
        for w in trace.events.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for &(t, _) in &trace.events {
            assert!(t >= start && t.since(start) < window);
        }
    }

    #[test]
    fn rates_roughly_respected() {
        let mut rng = SimRng::seed_from(2);
        let trace =
            ChurnTrace::poisson(SimTime::ZERO, Duration::from_minutes(1000), 3.0, 1.0, &mut rng);
        let leaves = trace.events.iter().filter(|&&(_, op)| op == ChurnOp::Leave).count();
        let joins = trace.len() - leaves;
        let leave_rate = leaves as f64 / 1000.0;
        let join_rate = joins as f64 / 1000.0;
        assert!((leave_rate - 3.0).abs() < 0.3, "leave rate {leave_rate}");
        assert!((join_rate - 1.0).abs() < 0.2, "join rate {join_rate}");
    }

    #[test]
    fn zero_rate_means_no_events() {
        let mut rng = SimRng::seed_from(3);
        let trace =
            ChurnTrace::poisson(SimTime::ZERO, Duration::from_minutes(60), 0.0, 0.0, &mut rng);
        assert!(trace.is_empty());
    }

    #[test]
    fn window_filter() {
        let mut rng = SimRng::seed_from(4);
        let trace =
            ChurnTrace::poisson(SimTime::ZERO, Duration::from_minutes(60), 5.0, 5.0, &mut rng);
        let mid_from = SimTime::ZERO + Duration::from_minutes(20);
        let mid_to = SimTime::ZERO + Duration::from_minutes(40);
        let mid: Vec<_> = trace.in_window(mid_from, mid_to).collect();
        assert!(!mid.is_empty());
        for (t, _) in mid {
            assert!(t >= mid_from && t < mid_to);
        }
    }
}
