//! # The traffic plane: replayable production workload
//!
//! Real P2P deployments do not see the paper's static uniform churn: they
//! see time-of-day arrival waves that follow regional clocks, flash crowds
//! that pile lookups onto a handful of hot objects for a bounded window,
//! and content popularity whose skew and hot set drift over a run. This
//! module scripts all three:
//!
//! * [`script`] — the serde-round-trippable [`TrafficScript`]: per-transit-
//!   domain diurnal rate tables (piecewise-constant by simulated hour, with
//!   a per-domain clock offset), [`FlashCrowd`] windows, and
//!   [`PopularityShift`] step changes.
//! * [`process`] — the arrival processes: the legacy constant-rate Poisson
//!   train (shared with `ChurnTrace::poisson`, bit-for-bit) and the
//!   time-bucketed train that derives one `SimRng::fork_indexed` stream per
//!   `(generator, hour-bucket)` so compilation is a pure function of the
//!   bucket — independent of worker count and generation order.
//! * [`popularity`] — the [`PopularityProcess`]: Zipf rank sampling whose
//!   exponent and rotation follow the script's shifts (shared with the
//!   legacy `zipf_pairs`, bit-for-bit).
//! * [`compile`] turns `(script, seed)` into a [`CompiledTraffic`] — a
//!   sorted, replayable event trace implementing
//!   [`prop_core::TrafficPlane`].
//!
//! **Determinism argument.** Every generator draws from a stream that is a
//! pure function of `(seed, label, bucket index)`; per-domain generation
//! fans out over rayon but collects in domain order, and the final stable
//! sort by time keeps same-instant events in authoring order (domains
//! first, flash crowds after). Hence `compile(script, seed)` is
//! bit-identical on any worker count, and a scenario (topology +
//! TrafficScript + FaultScript under one seed) replays exactly.

pub mod popularity;
pub mod process;
pub mod script;

pub use popularity::PopularityProcess;
pub use script::{DomainProfile, FlashCrowd, PopularityShift, TrafficScript, HOURS_PER_DAY};

use prop_core::{TrafficCounters, TrafficEvent, TrafficPlane};
use prop_engine::{Duration, SimRng, SimTime};
use rayon::prelude::*;

/// A compiled, replayable traffic trace: the whole event schedule of one
/// `(script, seed)` pair, consumed in time order through the
/// [`TrafficPlane`] contract.
#[derive(Clone, Debug)]
pub struct CompiledTraffic {
    events: Vec<(SimTime, TrafficEvent)>,
    cursor: usize,
    counters: TrafficCounters,
}

impl CompiledTraffic {
    /// The full schedule (sorted by time), for inspection and tests.
    pub fn events(&self) -> &[(SimTime, TrafficEvent)] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events not yet consumed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }
}

impl TrafficPlane for CompiledTraffic {
    fn next_event(&mut self, deadline: SimTime) -> Option<(SimTime, TrafficEvent)> {
        let &(t, ev) = self.events.get(self.cursor)?;
        if t > deadline {
            return None;
        }
        self.cursor += 1;
        match ev {
            TrafficEvent::Join { .. } => self.counters.joins += 1,
            TrafficEvent::Leave { .. } => self.counters.leaves += 1,
            TrafficEvent::Lookup { .. } => self.counters.lookups += 1,
        }
        Some((t, ev))
    }

    fn peek(&self) -> Option<SimTime> {
        self.events.get(self.cursor).map(|&(t, _)| t)
    }

    fn counters(&self) -> TrafficCounters {
        self.counters
    }
}

/// Compile `script` under `seed` into the full deterministic event trace.
///
/// Stream discipline (see module docs): domain profile `i` draws its joins,
/// leaves, and lookups from `fork_indexed("traffic-{kind}-p{i}", bucket)`
/// streams — one per simulated hour — and flash crowd `j` draws its extra
/// hot-set lookups from `fork_indexed("traffic-flash", j)`. Base streams
/// are therefore untouched by adding or removing flash crowds, and the
/// whole trace is bit-identical on any rayon worker count.
pub fn compile(script: &TrafficScript, seed: u64) -> CompiledTraffic {
    let root = SimRng::seed_from(seed).fork("traffic");
    let pop = PopularityProcess::new(script);
    let buckets = script.buckets();

    let per_domain: Vec<Vec<(SimTime, TrafficEvent)>> = script
        .domains
        .par_iter()
        .enumerate()
        .map(|(i, d)| {
            let mut evs = Vec::new();
            let rates =
                |base: f64| -> Vec<f64> { (0..buckets).map(|b| d.rate_at(b, base)).collect() };
            let domain = d.domain;
            for t in process::bucketed_train(
                &root,
                &format!("traffic-join-p{i}"),
                script.hour_ms,
                &rates(d.joins_per_min),
            ) {
                evs.push((t, TrafficEvent::Join { domain }));
            }
            for t in process::bucketed_train(
                &root,
                &format!("traffic-leave-p{i}"),
                script.hour_ms,
                &rates(d.leaves_per_min),
            ) {
                evs.push((t, TrafficEvent::Leave { domain }));
            }
            for (t, rank) in process::bucketed_events(
                &root,
                &format!("traffic-lookup-p{i}"),
                script.hour_ms,
                &rates(d.lookups_per_min),
                |t, rng| pop.sample_rank(t.as_millis(), rng),
            ) {
                evs.push((t, TrafficEvent::Lookup { domain, rank }));
            }
            evs.sort_by_key(|&(t, _)| t);
            evs
        })
        .collect();

    let mut events: Vec<(SimTime, TrafficEvent)> = per_domain.into_iter().flatten().collect();

    // Flash crowds: extra arrivals at (multiplier − 1) × the script's total
    // base lookup rate, confined to [at, at+duration), targeting the hot
    // set. Sources are attributed to domains proportionally to their base
    // lookup rates, so regional load shares survive the spike.
    let base_lookup = script.base_lookup_rate_per_min();
    for (j, f) in script.flash_crowds.iter().enumerate() {
        let extra = (f.multiplier - 1.0).max(0.0) * base_lookup;
        let hot = f.hot_keys.min(script.catalog);
        if extra <= 0.0 || f.duration_ms == 0 || hot == 0 {
            continue;
        }
        let mut rng = root.fork_indexed("traffic-flash", j as u64);
        let start = SimTime(f.at_ms);
        let window = Duration::from_millis(f.duration_ms);
        for t in process::poisson_train(start, window, extra, &mut rng) {
            let mut pick = rng.unit() * base_lookup;
            let mut domain = script.domains.last().map(|d| d.domain).unwrap_or(0);
            for d in &script.domains {
                pick -= d.lookups_per_min;
                if pick < 0.0 {
                    domain = d.domain;
                    break;
                }
            }
            let rank = rng.range(0..hot);
            events.push((t, TrafficEvent::Lookup { domain, rank }));
        }
    }

    events.retain(|&(t, _)| t.as_millis() < script.horizon_ms);
    // Stable: same-instant events keep authoring order (profiles in
    // declaration order, flash crowds after).
    events.sort_by_key(|&(t, _)| t);
    CompiledTraffic { events, cursor: 0, counters: TrafficCounters::default() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> TrafficScript {
        TrafficScript::new(60_000, 24 * 60_000, 50)
            .domain(DomainProfile::flat(0, 1.0, 1.0, 6.0))
            .domain(DomainProfile::flat(1, 0.5, 0.5, 3.0).with_offset(12))
            .shift(12 * 60_000, 1.2, 10)
            .flash(6 * 60_000, 3 * 60_000, 4.0, 5)
    }

    #[test]
    fn compiled_trace_is_sorted_and_bounded() {
        let c = compile(&demo(), 7);
        assert!(!c.is_empty());
        for w in c.events().windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for &(t, _) in c.events() {
            assert!(t.as_millis() < demo().horizon_ms);
        }
    }

    #[test]
    fn same_seed_same_trace_different_seed_differs() {
        let s = demo();
        let a = compile(&s, 7);
        let b = compile(&s, 7);
        assert_eq!(a.events(), b.events());
        let c = compile(&s, 8);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn flash_crowd_only_adds_hot_lookups_inside_its_window() {
        let mut without = demo();
        without.flash_crowds.clear();
        let with_flash = compile(&demo(), 3);
        let base = compile(&without, 3);
        // Base streams are independent of flash crowds: the flash trace is
        // a superset of the base trace.
        let mut base_iter = base.events().iter().peekable();
        let mut extras = Vec::new();
        for ev in with_flash.events() {
            if base_iter.peek() == Some(&ev) {
                base_iter.next();
            } else {
                extras.push(*ev);
            }
        }
        assert!(base_iter.peek().is_none(), "flash removed base events");
        assert!(!extras.is_empty(), "a 4x flash must add arrivals");
        let f = &demo().flash_crowds[0];
        for (t, ev) in extras {
            assert!(f.contains_ms(t.as_millis()), "extra event at {t:?} outside flash window");
            match ev {
                TrafficEvent::Lookup { rank, .. } => assert!(rank < f.hot_keys),
                other => panic!("flash emitted non-lookup {other:?}"),
            }
        }
    }

    #[test]
    fn diurnal_shaping_moves_load_between_hours() {
        // One domain, strongly peaked at hour 12.
        let mut hourly = vec![0.1; 24];
        hourly[12] = 4.0;
        let s = TrafficScript::new(60_000, 24 * 60_000, 10).domain(DomainProfile {
            domain: 0,
            joins_per_min: 0.0,
            leaves_per_min: 0.0,
            lookups_per_min: 10.0,
            hourly,
            hour_offset: 0,
        });
        let c = compile(&s, 1);
        let in_hour =
            |h: u64| c.events().iter().filter(|(t, _)| t.as_millis() / 60_000 == h).count();
        assert!(
            in_hour(12) > 4 * in_hour(3).max(1),
            "peak hour {} vs off hour {}",
            in_hour(12),
            in_hour(3)
        );
    }

    #[test]
    fn plane_consumption_counts_by_kind() {
        let mut c = compile(&demo(), 5);
        let total = c.len() as u64;
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = c.next_event(SimTime(u64::MAX)) {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(c.counters().total(), total);
        assert!(c.counters().lookups > 0 && c.counters().joins > 0 && c.counters().leaves > 0);
        assert_eq!(c.remaining(), 0);
    }
}
