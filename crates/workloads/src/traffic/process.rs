//! Arrival processes.
//!
//! Two Poisson generators with one draw discipline:
//!
//! * [`poisson_train`] — the legacy constant-rate train: exponential gaps
//!   of mean `60_000 / rate` ms, clamped to ≥ 1 ms, until the window
//!   closes. `ChurnTrace::poisson` has always consumed exactly this
//!   sequence; it now delegates here, so the static churn generator and
//!   the traffic compiler share one process (regression-pinned in
//!   `tests/traffic.rs`).
//! * [`bucketed_events`] / [`bucketed_train`] — the piecewise-constant
//!   train: the clock is tiled into `bucket_ms`-wide buckets
//!   ([`SimTime::bucket`]), each with its own rate and its own
//!   `fork_indexed(label, bucket)` stream. Generation is a pure function
//!   of `(root, label, bucket)` — buckets can be generated in any order,
//!   on any number of workers, and the trace is bit-identical.
//!
//! The per-bucket process restarts its gap accumulation at each bucket
//! boundary (a fresh exponential draw), which slightly thins arrivals
//! straddling boundaries relative to a true inhomogeneous process; for
//! hour-scale buckets and minute-scale gaps the distortion is negligible
//! and determinism is exact, which is the trade this plane wants.

use prop_engine::{Duration, SimRng, SimTime};

/// Constant-rate Poisson event times over `[start, start + window)` at
/// `per_min` events per simulated minute. Draws one `exp_millis` per
/// event (plus the final out-of-window one); `per_min ≤ 0` draws nothing.
pub fn poisson_train(
    start: SimTime,
    window: Duration,
    per_min: f64,
    rng: &mut SimRng,
) -> Vec<SimTime> {
    let mut out = Vec::new();
    if per_min <= 0.0 {
        return out;
    }
    let mean_gap_ms = 60_000.0 / per_min;
    let mut t = start;
    loop {
        let gap = Duration::from_millis(rng.exp_millis(mean_gap_ms).max(1));
        t += gap;
        if t.since(start) >= window {
            break;
        }
        out.push(t);
    }
    out
}

/// Piecewise-constant Poisson events: bucket `b` covers
/// `[b·bucket_ms, (b+1)·bucket_ms)` at `rates_per_min[b]` events/min,
/// drawn from the independent stream `root.fork_indexed(label, b)`. After
/// each accepted arrival, `payload` draws the event's attributes from the
/// *same* bucket stream (so times and attributes replay together).
pub fn bucketed_events<T>(
    root: &SimRng,
    label: &str,
    bucket_ms: u64,
    rates_per_min: &[f64],
    mut payload: impl FnMut(SimTime, &mut SimRng) -> T,
) -> Vec<(SimTime, T)> {
    let width = Duration::from_millis(bucket_ms.max(1));
    let mut out = Vec::new();
    for (b, &rate) in rates_per_min.iter().enumerate() {
        if rate <= 0.0 {
            continue;
        }
        let mut rng = root.fork_indexed(label, b as u64);
        let start = SimTime::bucket_start(b as u64, width);
        let mean_gap_ms = 60_000.0 / rate;
        let mut t = start;
        loop {
            let gap = Duration::from_millis(rng.exp_millis(mean_gap_ms).max(1));
            t += gap;
            if t.since(start) >= width {
                break;
            }
            let v = payload(t, &mut rng);
            out.push((t, v));
        }
    }
    out
}

/// [`bucketed_events`] without attributes: just the arrival times.
pub fn bucketed_train(
    root: &SimRng,
    label: &str,
    bucket_ms: u64,
    rates_per_min: &[f64],
) -> Vec<SimTime> {
    bucketed_events(root, label, bucket_ms, rates_per_min, |_, _| ())
        .into_iter()
        .map(|(t, ())| t)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_matches_rate_and_bounds() {
        let mut rng = SimRng::seed_from(1);
        let start = SimTime(5_000);
        let window = Duration::from_minutes(500);
        let train = poisson_train(start, window, 2.0, &mut rng);
        for w in train.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for &t in &train {
            assert!(t > start && t.since(start) < window);
        }
        let rate = train.len() as f64 / 500.0;
        assert!((rate - 2.0).abs() < 0.2, "observed {rate}");
    }

    #[test]
    fn zero_rate_is_empty() {
        let mut rng = SimRng::seed_from(2);
        assert!(poisson_train(SimTime::ZERO, Duration::from_minutes(10), 0.0, &mut rng).is_empty());
    }

    #[test]
    fn bucketed_events_stay_in_their_bucket() {
        let root = SimRng::seed_from(3);
        let rates = [3.0, 0.0, 8.0, 1.0];
        let evs = bucketed_events(&root, "t", 60_000, &rates, |t, _| t.bucket(Duration(60_000)));
        assert!(!evs.is_empty());
        for (t, b) in evs {
            assert_eq!(t.bucket(Duration::from_millis(60_000)), b);
            assert_ne!(b, 1, "zero-rate bucket emitted");
        }
    }

    #[test]
    fn buckets_are_independent_streams() {
        // Changing one bucket's rate must not perturb the other buckets.
        let root = SimRng::seed_from(4);
        let a = bucketed_train(&root, "x", 60_000, &[2.0, 5.0, 2.0]);
        let b = bucketed_train(&root, "x", 60_000, &[2.0, 0.5, 2.0]);
        let in_bucket = |evs: &[SimTime], k: u64| -> Vec<SimTime> {
            evs.iter().copied().filter(|t| t.bucket(Duration(60_000)) == k).collect()
        };
        assert_eq!(in_bucket(&a, 0), in_bucket(&b, 0));
        assert_eq!(in_bucket(&a, 2), in_bucket(&b, 2));
        assert_ne!(in_bucket(&a, 1).len(), in_bucket(&b, 1).len());
    }

    #[test]
    fn payload_draws_share_the_bucket_stream() {
        let root = SimRng::seed_from(5);
        let a = bucketed_events(&root, "p", 60_000, &[5.0], |_, rng| rng.range(0..100u32));
        let b = bucketed_events(&root, "p", 60_000, &[5.0], |_, rng| rng.range(0..100u32));
        assert_eq!(a, b);
    }
}
