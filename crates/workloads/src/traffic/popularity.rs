//! Time-varying Zipf popularity.
//!
//! A [`PopularityProcess`] resolves "which object does a lookup at time `t`
//! want?" under the script's [`PopularityShift`]s: Zipf(α) over the catalog
//! with a step-changing exponent and a rotating hot set. The legacy static
//! generator [`crate::zipf::zipf_pairs`] now routes through a constant
//! process — same fork label, same draw order, pinned by regression test.

use super::script::{PopularityShift, TrafficScript, DEFAULT_ALPHA};
use crate::zipf::Zipf;
use prop_engine::SimRng;
use prop_overlay::Slot;

struct Phase {
    from_ms: u64,
    alpha: f64,
    rotate: u32,
    zipf: Zipf,
}

/// Zipf rank sampling whose parameters follow a script's popularity
/// shifts. Zipf CDFs are precomputed per phase, so sampling is one
/// `unit()` draw plus a binary search regardless of how many shifts the
/// script declares.
pub struct PopularityProcess {
    catalog: u32,
    /// Step phases sorted by effect time; the first always covers t = 0.
    phases: Vec<Phase>,
}

impl PopularityProcess {
    /// The process a script declares: [`DEFAULT_ALPHA`], unrotated, until
    /// the first shift; each shift is a step change in force until the
    /// next.
    pub fn new(script: &TrafficScript) -> Self {
        Self::from_shifts(script.catalog, &script.sorted_shifts())
    }

    /// A shift-free process: Zipf(`alpha`) over `catalog` ranks at every
    /// instant — the legacy `zipf_pairs` distribution.
    pub fn constant(catalog: u32, alpha: f64) -> Self {
        Self::from_shifts(catalog, &[PopularityShift { at_ms: 0, alpha, rotate: 0 }])
    }

    fn from_shifts(catalog: u32, shifts: &[PopularityShift]) -> Self {
        assert!(catalog > 0, "catalog must be non-empty");
        let mut phases = Vec::with_capacity(shifts.len() + 1);
        if shifts.first().map(|s| s.at_ms > 0).unwrap_or(true) {
            phases.push(Phase {
                from_ms: 0,
                alpha: DEFAULT_ALPHA,
                rotate: 0,
                zipf: Zipf::new(catalog as usize, DEFAULT_ALPHA),
            });
        }
        for s in shifts {
            phases.push(Phase {
                from_ms: s.at_ms,
                alpha: s.alpha,
                rotate: s.rotate % catalog,
                zipf: Zipf::new(catalog as usize, s.alpha),
            });
        }
        PopularityProcess { catalog, phases }
    }

    /// Number of catalog ranks.
    pub fn catalog(&self) -> u32 {
        self.catalog
    }

    fn phase_at(&self, t_ms: u64) -> &Phase {
        let i = self.phases.partition_point(|p| p.from_ms <= t_ms);
        &self.phases[i.saturating_sub(1).min(self.phases.len() - 1)]
    }

    /// The Zipf exponent in force at `t_ms`.
    pub fn alpha_at(&self, t_ms: u64) -> f64 {
        self.phase_at(t_ms).alpha
    }

    /// The catalog rotation in force at `t_ms`.
    pub fn rotation_at(&self, t_ms: u64) -> u32 {
        self.phase_at(t_ms).rotate
    }

    /// Sample a catalog rank for a lookup at `t_ms` — one Zipf draw, then
    /// the phase's rotation.
    pub fn sample_rank(&self, t_ms: u64, rng: &mut SimRng) -> u32 {
        let ph = self.phase_at(t_ms);
        (ph.zipf.sample(rng) as u32 + ph.rotate) % self.catalog
    }

    /// A `(src, dst)` lookup workload at instant `t_ms`: uniform live
    /// sources, destinations by popularity over `ranking`
    /// (`ranking[rank % len]` holds the rank-th object). Exactly the
    /// legacy `zipf_pairs` loop when the process is
    /// [`PopularityProcess::constant`] over `ranking.len()` ranks.
    pub fn pairs_at(
        &self,
        t_ms: u64,
        live: &[Slot],
        ranking: &[Slot],
        count: usize,
        rng: &mut SimRng,
    ) -> Vec<(Slot, Slot)> {
        assert!(live.len() >= 2 && !ranking.is_empty());
        (0..count)
            .map(|_| loop {
                let src = *rng.pick(live).unwrap();
                let dst = ranking[self.sample_rank(t_ms, rng) as usize % ranking.len()];
                if src != dst {
                    return (src, dst);
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn script() -> TrafficScript {
        TrafficScript::new(1000, 100_000, 20).shift(50_000, 1.5, 5)
    }

    #[test]
    fn default_phase_covers_time_zero() {
        let p = PopularityProcess::new(&script());
        assert!((p.alpha_at(0) - DEFAULT_ALPHA).abs() < 1e-12);
        assert_eq!(p.rotation_at(0), 0);
    }

    #[test]
    fn shift_is_a_step_change_at_its_instant() {
        let p = PopularityProcess::new(&script());
        assert!((p.alpha_at(49_999) - DEFAULT_ALPHA).abs() < 1e-12);
        assert!((p.alpha_at(50_000) - 1.5).abs() < 1e-12);
        assert_eq!(p.rotation_at(50_000), 5);
        assert!((p.alpha_at(99_999) - 1.5).abs() < 1e-12, "in force until the next shift");
    }

    #[test]
    fn rotation_moves_the_hot_rank() {
        let p = PopularityProcess::new(&script());
        let mut rng = SimRng::seed_from(1);
        let mut hits_before = vec![0u32; 20];
        let mut hits_after = vec![0u32; 20];
        for _ in 0..4000 {
            hits_before[p.sample_rank(0, &mut rng) as usize] += 1;
            hits_after[p.sample_rank(60_000, &mut rng) as usize] += 1;
        }
        let argmax = |v: &[u32]| v.iter().enumerate().max_by_key(|&(_, c)| *c).unwrap().0;
        assert_eq!(argmax(&hits_before), 0);
        assert_eq!(argmax(&hits_after), 5, "rotated hot rank");
    }

    #[test]
    fn rotation_wraps_the_catalog() {
        let p = PopularityProcess::from_shifts(
            8,
            &[PopularityShift { at_ms: 0, alpha: 0.0, rotate: 19 }],
        );
        assert_eq!(p.rotation_at(0), 3);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..100 {
            assert!(p.sample_rank(0, &mut rng) < 8);
        }
    }

    #[test]
    fn pairs_reject_self_lookups() {
        let live: Vec<Slot> = (0..10).map(Slot).collect();
        let p = PopularityProcess::constant(10, 1.0);
        let mut rng = SimRng::seed_from(3);
        for (s, d) in p.pairs_at(0, &live, &live, 500, &mut rng) {
            assert_ne!(s, d);
        }
    }
}
