//! Declarative traffic scenarios.
//!
//! A [`TrafficScript`] is plain serde data — like `FaultScript` in
//! prop-faults — describing a time-varying workload: per-transit-domain
//! diurnal join/leave/lookup rate tables, flash-crowd windows, and Zipf
//! popularity shifts. Scripts carry *no* randomness; all draws happen at
//! compile time under one seed (see [`crate::traffic::compile`]).
//!
//! Time is measured in simulated milliseconds, but the diurnal machinery
//! works in *simulated hours* of configurable length (`hour_ms`): a quick
//! 30-minute run can compress a whole 24-hour day by setting
//! `hour_ms = 75_000`. Rate-table entries are piecewise-constant per hour;
//! [`PopularityShift`]s are step changes in force until the next shift;
//! [`FlashCrowd`]s are self-contained `[at, at + duration)` windows —
//! the same step/window split `FaultScript` uses.

use serde::{Deserialize, Serialize};

/// Hours per simulated day: diurnal tables index hour-of-day `0..24`.
pub const HOURS_PER_DAY: u64 = 24;

/// Diurnal phase labels, one per quarter of the simulated day.
pub const PHASES: [&str; 4] = ["night", "morning", "afternoon", "evening"];

/// Zipf exponent in force before the first [`PopularityShift`].
pub const DEFAULT_ALPHA: f64 = 0.8;

/// One transit domain's workload profile: baseline event rates (events per
/// simulated minute) shaped by per-hour multipliers and shifted by the
/// domain's local clock. Domains are indices from
/// `PhysGraph::transit_domain_of`, taken modulo the topology's actual
/// domain count at apply time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DomainProfile {
    pub domain: u16,
    /// Baseline join rate, events per simulated minute.
    pub joins_per_min: f64,
    /// Baseline leave rate, events per simulated minute.
    pub leaves_per_min: f64,
    /// Baseline lookup rate, events per simulated minute.
    pub lookups_per_min: f64,
    /// Per-hour rate multipliers, indexed by local hour-of-day modulo the
    /// table length (canonically 24 entries). Empty ⇒ flat (all 1.0).
    #[serde(default)]
    pub hourly: Vec<f64>,
    /// This domain's clock offset in simulated hours — its local midnight
    /// relative to the global clock (the regional wave: offsets stagger the
    /// same diurnal shape across domains).
    #[serde(default)]
    pub hour_offset: u8,
}

impl DomainProfile {
    /// A flat (unshaped, offset-free) profile.
    pub fn flat(
        domain: u16,
        joins_per_min: f64,
        leaves_per_min: f64,
        lookups_per_min: f64,
    ) -> Self {
        DomainProfile {
            domain,
            joins_per_min,
            leaves_per_min,
            lookups_per_min,
            hourly: Vec::new(),
            hour_offset: 0,
        }
    }

    /// Set the per-hour multiplier table.
    pub fn with_hourly(mut self, hourly: Vec<f64>) -> Self {
        self.hourly = hourly;
        self
    }

    /// Set the local-clock offset in hours.
    pub fn with_offset(mut self, hours: u8) -> Self {
        self.hour_offset = hours;
        self
    }

    /// The effective rate in global hour-bucket `hour` for a baseline of
    /// `base` events/min: `base × hourly[(hour + offset) mod 24]`.
    pub fn rate_at(&self, hour: u64, base: f64) -> f64 {
        if self.hourly.is_empty() {
            return base;
        }
        let local = (hour + self.hour_offset as u64) % HOURS_PER_DAY;
        base * self.hourly[local as usize % self.hourly.len()]
    }
}

/// A flash crowd: for `[at, at + duration)`, lookup arrivals multiply by
/// `multiplier` (relative to the script's total baseline lookup rate) and
/// the extra arrivals concentrate on the hot set — popularity ranks
/// `0..hot_keys`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowd {
    pub at_ms: u64,
    pub duration_ms: u64,
    /// Total-lookup-rate multiplier while the window is active (≥ 1; the
    /// extra `(multiplier − 1)×` arrivals are the crowd).
    pub multiplier: f64,
    /// Size of the hot set the crowd piles onto.
    pub hot_keys: u32,
}

impl FlashCrowd {
    /// The half-open active window `[start, end)` in ms.
    pub fn window(&self) -> (u64, u64) {
        (self.at_ms, self.at_ms.saturating_add(self.duration_ms))
    }

    /// Is the crowd active at `t_ms`?
    pub fn contains_ms(&self, t_ms: u64) -> bool {
        let (s, e) = self.window();
        s <= t_ms && t_ms < e
    }
}

/// A step change of the popularity distribution: from `at_ms` on (until the
/// next shift), lookup ranks follow Zipf(`alpha`) rotated by `rotate`
/// catalog positions — rotating models the hot set *moving* (yesterday's
/// hit is today's long tail), not just flattening.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PopularityShift {
    pub at_ms: u64,
    /// Zipf exponent from `at_ms` on.
    pub alpha: f64,
    /// Catalog rotation: sampled rank `r` maps to `(r + rotate) % catalog`.
    #[serde(default)]
    pub rotate: u32,
}

/// A complete declarative traffic scenario (see module docs).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficScript {
    /// Length of one simulated hour in ms (`3_600_000` = real time;
    /// smaller values compress the diurnal day into a short run).
    pub hour_ms: u64,
    /// Script horizon in ms: no events are emitted at or after it.
    pub horizon_ms: u64,
    /// Number of distinct popularity ranks lookups draw from.
    pub catalog: u32,
    pub domains: Vec<DomainProfile>,
    #[serde(default)]
    pub popularity: Vec<PopularityShift>,
    #[serde(default)]
    pub flash_crowds: Vec<FlashCrowd>,
}

impl TrafficScript {
    /// An empty script skeleton; add domains/shifts/crowds with the
    /// builder methods.
    pub fn new(hour_ms: u64, horizon_ms: u64, catalog: u32) -> Self {
        assert!(hour_ms > 0, "hour_ms must be positive");
        assert!(catalog > 0, "catalog must be non-empty");
        TrafficScript {
            hour_ms,
            horizon_ms,
            catalog,
            domains: Vec::new(),
            popularity: Vec::new(),
            flash_crowds: Vec::new(),
        }
    }

    /// Append a domain profile.
    pub fn domain(mut self, profile: DomainProfile) -> Self {
        self.domains.push(profile);
        self
    }

    /// Append a popularity step change.
    pub fn shift(mut self, at_ms: u64, alpha: f64, rotate: u32) -> Self {
        self.popularity.push(PopularityShift { at_ms, alpha, rotate });
        self
    }

    /// Append a flash-crowd window.
    pub fn flash(mut self, at_ms: u64, duration_ms: u64, multiplier: f64, hot_keys: u32) -> Self {
        self.flash_crowds.push(FlashCrowd { at_ms, duration_ms, multiplier, hot_keys });
        self
    }

    /// Popularity shifts sorted by effect time (stable).
    pub fn sorted_shifts(&self) -> Vec<PopularityShift> {
        let mut s = self.popularity.clone();
        s.sort_by_key(|p| p.at_ms);
        s
    }

    /// Number of hour buckets covering the horizon (rounding up).
    pub fn buckets(&self) -> u64 {
        self.horizon_ms.div_ceil(self.hour_ms)
    }

    /// Global hour-of-day at `t_ms`.
    pub fn hour_of_ms(&self, t_ms: u64) -> u64 {
        (t_ms / self.hour_ms) % HOURS_PER_DAY
    }

    /// Diurnal phase index at `t_ms`: the simulated day in quarters —
    /// 0 night (hours 0–6), 1 morning (6–12), 2 afternoon (12–18),
    /// 3 evening (18–24). Phases follow the *global* clock; per-domain
    /// offsets shift load across them, which is the point.
    pub fn phase_of_ms(&self, t_ms: u64) -> usize {
        (self.hour_of_ms(t_ms) / 6) as usize
    }

    /// Label for a [`TrafficScript::phase_of_ms`] index.
    pub fn phase_label(idx: usize) -> &'static str {
        PHASES[idx % PHASES.len()]
    }

    /// Sum of the domains' baseline lookup rates (events/min) — the
    /// reference a [`FlashCrowd::multiplier`] scales.
    pub fn base_lookup_rate_per_min(&self) -> f64 {
        self.domains.iter().map(|d| d.lookups_per_min).sum()
    }

    /// Canonical regional-diurnal preset: four staggered regions (local
    /// midnights at 0/6/12/18 h) sharing one day-curve, so at any instant
    /// some region is at peak while another sleeps — regionally correlated
    /// churn *and* load. `churn_per_min`/`lookups_per_min` are per-region
    /// baselines; popularity flattens and rotates mid-run.
    pub fn preset_diurnal_regional(
        hour_ms: u64,
        horizon_ms: u64,
        catalog: u32,
        churn_per_min: f64,
        lookups_per_min: f64,
    ) -> Self {
        let mut s = TrafficScript::new(hour_ms, horizon_ms, catalog);
        for (i, offset) in [0u8, 6, 12, 18].iter().enumerate() {
            s = s.domain(
                DomainProfile::flat(i as u16, churn_per_min, churn_per_min, lookups_per_min)
                    .with_hourly(DIURNAL_SHAPE.to_vec())
                    .with_offset(*offset),
            );
        }
        // Halfway through, the hot set rotates by a third of the catalog
        // and the skew flattens a little — yesterday's hits cool off.
        s.shift(horizon_ms / 2, 0.7, catalog / 3)
    }

    /// Canonical flash-crowd preset: flat background load plus two spikes —
    /// a sharp 6× crowd on a 5-key hot set early, and a broader 3× crowd
    /// later — over the same four regions.
    pub fn preset_flash_crowd(
        hour_ms: u64,
        horizon_ms: u64,
        catalog: u32,
        churn_per_min: f64,
        lookups_per_min: f64,
    ) -> Self {
        let mut s = TrafficScript::new(hour_ms, horizon_ms, catalog);
        for i in 0..4u16 {
            s = s.domain(DomainProfile::flat(i, churn_per_min, churn_per_min, lookups_per_min));
        }
        s.flash(horizon_ms / 6, horizon_ms / 8, 6.0, 5.min(catalog))
            .flash(horizon_ms / 2, horizon_ms / 4, 3.0, (catalog / 4).max(1))
            .shift(2 * horizon_ms / 3, 1.1, 0)
    }
}

/// A smooth 24-entry day curve (trough ~04:00, peak ~13:00, mean ≈ 1), the
/// shape behind [`TrafficScript::preset_diurnal_regional`].
pub const DIURNAL_SHAPE: [f64; 24] = [
    0.45, 0.35, 0.30, 0.25, 0.25, 0.30, 0.45, 0.70, 0.95, 1.20, 1.40, 1.55, 1.60, 1.60, 1.50, 1.40,
    1.30, 1.25, 1.30, 1.35, 1.25, 1.05, 0.80, 0.60,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_at_applies_offset_modulo_day() {
        let mut hourly = vec![1.0; 24];
        hourly[0] = 5.0;
        let p = DomainProfile::flat(0, 0.0, 0.0, 2.0).with_hourly(hourly).with_offset(6);
        // Local midnight (multiplier 5.0) occurs at global hour 18.
        assert!((p.rate_at(18, 2.0) - 10.0).abs() < 1e-12);
        assert!((p.rate_at(0, 2.0) - 2.0).abs() < 1e-12);
        // Day 2, same hour, same rate.
        assert!((p.rate_at(18 + 24, 2.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn flat_profile_ignores_hours() {
        let p = DomainProfile::flat(3, 1.0, 1.0, 4.0);
        for h in 0..48 {
            assert!((p.rate_at(h, 4.0) - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn phases_quarter_the_day() {
        let s = TrafficScript::new(1000, 48_000, 10);
        assert_eq!(s.phase_of_ms(0), 0);
        assert_eq!(s.phase_of_ms(6_000), 1);
        assert_eq!(s.phase_of_ms(12_500), 2);
        assert_eq!(s.phase_of_ms(18_000), 3);
        assert_eq!(s.phase_of_ms(24_000), 0, "day 2 wraps");
        assert_eq!(TrafficScript::phase_label(2), "afternoon");
    }

    #[test]
    fn flash_windows_are_half_open() {
        let f = FlashCrowd { at_ms: 100, duration_ms: 50, multiplier: 3.0, hot_keys: 4 };
        assert!(!f.contains_ms(99));
        assert!(f.contains_ms(100));
        assert!(f.contains_ms(149));
        assert!(!f.contains_ms(150));
    }

    #[test]
    fn buckets_round_up() {
        assert_eq!(TrafficScript::new(1000, 2500, 1).buckets(), 3);
        assert_eq!(TrafficScript::new(1000, 2000, 1).buckets(), 2);
    }

    #[test]
    fn presets_are_populated() {
        let d = TrafficScript::preset_diurnal_regional(60_000, 24 * 60_000, 100, 0.5, 5.0);
        assert_eq!(d.domains.len(), 4);
        assert_eq!(d.popularity.len(), 1);
        assert!((d.base_lookup_rate_per_min() - 20.0).abs() < 1e-12);
        let f = TrafficScript::preset_flash_crowd(60_000, 24 * 60_000, 100, 0.5, 5.0);
        assert_eq!(f.flash_crowds.len(), 2);
        assert!(f.flash_crowds.iter().all(|c| c.hot_keys >= 1));
    }

    #[test]
    fn sorted_shifts_by_time_stable() {
        let s =
            TrafficScript::new(1, 100, 10).shift(50, 1.0, 0).shift(10, 0.5, 1).shift(50, 0.9, 2);
        let order: Vec<u64> = s.sorted_shifts().iter().map(|p| p.at_ms).collect();
        assert_eq!(order, vec![10, 50, 50]);
        assert!((s.sorted_shifts()[1].alpha - 1.0).abs() < 1e-12, "stable at ties");
    }
}
