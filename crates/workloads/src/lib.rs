//! # prop-workloads — evaluation inputs
//!
//! Generators for everything the paper's experiments feed into an overlay:
//!
//! * [`lookups`] — streams of (source, destination) lookup pairs: uniform
//!   (Figs. 5/6) or destination-skewed toward fast nodes (Fig. 7's x-axis,
//!   "the destination of lookup operations will be concentrated on the
//!   powerful nodes").
//! * [`hetero`] — the §5.3 bimodal node-heterogeneity model: a fraction of
//!   peers are *fast* (small processing delay), the rest *slow*.
//! * [`churn`] — Poisson join/leave traces for the dynamic-environment
//!   experiments.
//! * [`traffic`] — the scripted production traffic plane: serde
//!   [`TrafficScript`]s (per-transit-domain diurnal rate tables, flash
//!   crowds, shifting Zipf popularity) compiled under one seed into a
//!   replayable [`prop_core::TrafficPlane`] event trace. The static
//!   [`churn`] and [`zipf`] generators route through its arrival and
//!   popularity processes.

pub mod churn;
pub mod hetero;
pub mod lookups;
pub mod traffic;
pub mod zipf;

pub use hetero::BimodalParams;
pub use lookups::LookupGen;
pub use traffic::{
    compile, CompiledTraffic, DomainProfile, FlashCrowd, PopularityProcess, PopularityShift,
    TrafficScript,
};
