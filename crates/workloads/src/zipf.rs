//! Zipf-distributed object popularity.
//!
//! File-sharing request streams are famously Zipf-like: a few objects draw
//! most lookups. Combined with the observation that popular content sits
//! on the well-provisioned peers, this concentrates destinations exactly
//! the way Fig. 7's "fraction of fast lookups" knob abstracts — a Zipf
//! destination workload is the mechanistic version of that experiment.

use prop_engine::SimRng;
use prop_overlay::Slot;
use serde::{Deserialize, Serialize};

/// A Zipf(α) sampler over ranks `0..n` (rank 0 most popular), using the
/// classic inverse-CDF over precomputed cumulative weights.
///
/// ```
/// use prop_workloads::zipf::Zipf;
/// let z = Zipf::new(100, 1.0);
/// // Rank 0 carries far more mass than rank 99.
/// assert!(z.pmf(0) > 50.0 * z.pmf(99));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build for `n` ranks with exponent `alpha` (α = 0 is uniform; web
    /// and P2P traces are usually α ∈ [0.6, 1.2]).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0);
        assert!(alpha >= 0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        let lo = if r == 0 { 0.0 } else { self.cdf[r - 1] };
        self.cdf[r] - lo
    }
}

/// A lookup workload whose destinations follow Zipf popularity over a
/// ranked list of holder slots (`ranking[0]` = the most popular object's
/// holder). Sources are uniform.
///
/// Sampling routes through a shift-free
/// [`crate::traffic::PopularityProcess`] — same `"zipf-pairs"` fork and
/// draw order as the original hand-rolled loop, so workloads are
/// bit-identical to every prior release (regression-pinned in
/// `tests/traffic.rs`).
pub fn zipf_pairs(
    live: &[Slot],
    ranking: &[Slot],
    alpha: f64,
    count: usize,
    rng: &mut SimRng,
) -> Vec<(Slot, Slot)> {
    assert!(live.len() >= 2 && !ranking.is_empty());
    let process = crate::traffic::PopularityProcess::constant(ranking.len() as u32, alpha);
    let mut rng = rng.fork("zipf-pairs");
    process.pairs_at(0, live, ranking, count, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 0.8);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_ranks_are_less_likely() {
        let z = Zipf::new(50, 1.0);
        for r in 1..50 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
        // Rank 0 of Zipf(1) over 50 ≈ 1/H_50 ≈ 0.222.
        assert!((z.pmf(0) - 0.2228).abs() < 0.01, "pmf(0) = {}", z.pmf(0));
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = SimRng::seed_from(1);
        let n = 100_000;
        let mut counts = vec![0usize; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in 0..20 {
            let observed = counts[r] as f64 / n as f64;
            assert!(
                (observed - z.pmf(r)).abs() < 0.01,
                "rank {r}: observed {observed:.4} vs pmf {:.4}",
                z.pmf(r)
            );
        }
    }

    #[test]
    fn zipf_pairs_concentrate_on_top_ranks() {
        let live: Vec<Slot> = (0..50).map(Slot).collect();
        let ranking: Vec<Slot> = (0..50).map(Slot).collect();
        let mut rng = SimRng::seed_from(2);
        let pairs = zipf_pairs(&live, &ranking, 1.0, 10_000, &mut rng);
        let top5 = pairs.iter().filter(|&&(_, d)| d.0 < 5).count() as f64 / 10_000.0;
        assert!(top5 > 0.4, "top-5 share {top5}");
        for (s, d) in pairs {
            assert_ne!(s, d);
        }
    }

    #[test]
    fn deterministic() {
        let live: Vec<Slot> = (0..20).map(Slot).collect();
        let a = zipf_pairs(&live, &live, 0.9, 100, &mut SimRng::seed_from(3));
        let b = zipf_pairs(&live, &live, 0.9, 100, &mut SimRng::seed_from(3));
        assert_eq!(a, b);
    }
}
