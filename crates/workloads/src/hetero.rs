//! Bimodal node heterogeneity (§5.3).
//!
//! "There are two kinds of nodes — fast and slow. The processing delay of
//! the fast nodes is 1[0] ms, while the delay of the slow ones is [100] ms.
//! The fraction of fast nodes is [20]% of the total population" (defaults
//! reconstructed per DESIGN.md §3; the setting follows Dabek et al.'s
//! bimodal distribution). Total lookup delay = link delay + per-hop
//! processing delay, so fast nodes model powerful, well-provisioned peers.

use prop_engine::SimRng;
use serde::{Deserialize, Serialize};

/// The bimodal processing-delay distribution.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BimodalParams {
    pub fast_delay_ms: u32,
    pub slow_delay_ms: u32,
    /// Fraction of peers that are fast, in `[0, 1]`.
    pub fast_fraction: f64,
}

impl Default for BimodalParams {
    fn default() -> Self {
        BimodalParams { fast_delay_ms: 10, slow_delay_ms: 100, fast_fraction: 0.2 }
    }
}

/// Per-peer assignment drawn from the bimodal distribution.
#[derive(Clone, Debug)]
pub struct HeteroAssignment {
    /// Processing delay per peer (indexed by member index).
    pub delay_ms: Vec<u32>,
    /// Class per peer.
    pub is_fast: Vec<bool>,
}

impl HeteroAssignment {
    pub fn num_fast(&self) -> usize {
        self.is_fast.iter().filter(|&&f| f).count()
    }
}

/// Assign exactly `round(n · fast_fraction)` fast peers, the rest slow
/// (exact counts, not Bernoulli, so every seed hits the configured mix).
pub fn assign(params: &BimodalParams, n: usize, rng: &mut SimRng) -> HeteroAssignment {
    assert!((0.0..=1.0).contains(&params.fast_fraction));
    let n_fast = ((n as f64) * params.fast_fraction).round() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    rng.fork("hetero-assign").shuffle(&mut order);
    let mut is_fast = vec![false; n];
    for &p in order.iter().take(n_fast) {
        is_fast[p] = true;
    }
    let delay_ms = is_fast
        .iter()
        .map(|&f| if f { params.fast_delay_ms } else { params.slow_delay_ms })
        .collect();
    HeteroAssignment { delay_ms, is_fast }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fast_count() {
        let a = assign(&BimodalParams::default(), 100, &mut SimRng::seed_from(1));
        assert_eq!(a.num_fast(), 20);
        assert_eq!(a.delay_ms.len(), 100);
    }

    #[test]
    fn delays_match_class() {
        let p = BimodalParams::default();
        let a = assign(&p, 50, &mut SimRng::seed_from(2));
        for i in 0..50 {
            let expect = if a.is_fast[i] { p.fast_delay_ms } else { p.slow_delay_ms };
            assert_eq!(a.delay_ms[i], expect);
        }
    }

    #[test]
    fn extreme_fractions() {
        let all_fast = assign(
            &BimodalParams { fast_fraction: 1.0, ..Default::default() },
            30,
            &mut SimRng::seed_from(3),
        );
        assert_eq!(all_fast.num_fast(), 30);
        let none_fast = assign(
            &BimodalParams { fast_fraction: 0.0, ..Default::default() },
            30,
            &mut SimRng::seed_from(3),
        );
        assert_eq!(none_fast.num_fast(), 0);
    }

    #[test]
    fn assignment_is_shuffled_not_prefix() {
        let a = assign(&BimodalParams::default(), 100, &mut SimRng::seed_from(4));
        let prefix_fast = a.is_fast[..20].iter().filter(|&&f| f).count();
        assert!(prefix_fast < 20, "fast nodes should be scattered, not a prefix");
    }

    #[test]
    fn deterministic() {
        let a = assign(&BimodalParams::default(), 60, &mut SimRng::seed_from(5));
        let b = assign(&BimodalParams::default(), 60, &mut SimRng::seed_from(5));
        assert_eq!(a.is_fast, b.is_fast);
    }
}
