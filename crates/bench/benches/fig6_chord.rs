//! Criterion bench for the Figure 6 kernels (PROP-G over Chord).
//!
//! Prints the regenerated panel series once, then benchmarks the Chord
//! experiment kernel and the identifier-swap hot path. Paper-scale numbers:
//! `cargo run --release -p prop-experiments --bin fig6`.

use criterion::{criterion_group, criterion_main, Criterion};
use prop_core::PropConfig;
use prop_engine::SimRng;
use prop_experiments::fig6;
use prop_experiments::setup::{Scale, Scenario, Topology};
use prop_overlay::chord::{Chord, ChordParams};
use prop_overlay::{Lookup, Slot};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration as StdDuration;

fn print_panel_once() {
    let curves = fig6::panel_c(Scale::Quick, 1);
    println!("\nFig 6(c) series at Quick scale (stretch):");
    for c in &curves {
        println!(
            "  {:<12} start {:>6.2}  end {:>6.2}  improvement {:>5.1}%",
            c.series.label,
            c.series.first_value().unwrap_or(f64::NAN),
            c.series.last_value().unwrap_or(f64::NAN),
            c.improvement * 100.0
        );
    }
}

fn bench_fig6(c: &mut Criterion) {
    print_panel_once();
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10).measurement_time(StdDuration::from_secs(20));

    let scenario = Scenario::build(Topology::TsSmall, 120, 1);
    g.bench_function("run_curve_quick_n120", |b| {
        b.iter(|| {
            black_box(fig6::run_curve(
                &scenario,
                PropConfig::prop_g(),
                Scale::Quick,
                "bench".into(),
            ))
        })
    });

    // Chord routing microbench: one lookup over a 500-node ring.
    let mut rng = SimRng::seed_from(2);
    let scenario2 = Scenario::build(Topology::TsSmall, 500, 2);
    let (chord, net) =
        Chord::build(ChordParams::default(), Arc::clone(&scenario2.oracle), &mut rng);
    g.bench_function("chord_lookup_n500", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 97) % 500;
            let j = (i * 13 + 7) % 500;
            black_box(chord.lookup(&net, Slot(i), Slot(j)))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
