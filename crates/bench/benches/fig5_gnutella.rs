//! Criterion bench for the Figure 5 kernels (PROP-G over Gnutella).
//!
//! Prints the regenerated panel series once (the rows the paper plots),
//! then benchmarks the experiment kernel and its dominant inner loops at
//! Quick scale. Run the paper-scale numbers with
//! `cargo run --release -p prop-experiments --bin fig5`.

use criterion::{criterion_group, criterion_main, Criterion};
use prop_core::PropConfig;
use prop_experiments::fig5;
use prop_experiments::setup::{Scale, Scenario, Topology};
use std::hint::black_box;
use std::time::Duration as StdDuration;

fn print_panel_once() {
    let curves = fig5::panel_c(Scale::Quick, 1);
    println!("\nFig 5(c) series at Quick scale (avg lookup latency, ms):");
    for c in &curves {
        println!(
            "  {:<12} start {:>8.1}  end {:>8.1}  improvement {:>5.1}%",
            c.series.label,
            c.series.first_value().unwrap_or(f64::NAN),
            c.series.last_value().unwrap_or(f64::NAN),
            c.improvement * 100.0
        );
    }
}

fn bench_fig5(c: &mut Criterion) {
    print_panel_once();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10).measurement_time(StdDuration::from_secs(20));

    let scenario = Scenario::build(Topology::TsSmall, 120, 1);
    g.bench_function("run_curve_quick_n120", |b| {
        b.iter(|| {
            black_box(fig5::run_curve(
                &scenario,
                PropConfig::prop_g(),
                Scale::Quick,
                "bench".into(),
            ))
        })
    });

    g.bench_function("panel_c_quick", |b| b.iter(|| black_box(fig5::panel_c(Scale::Quick, 1))));

    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
