//! Criterion bench for the ablation kernels (A1 overhead, A2 churn,
//! A3 combine, A4 selfish). Prints the Quick-scale A1 cost table once —
//! the §4.3 `nhop+2c` vs `nhop+2m` comparison — then benchmarks each
//! ablation runner. Paper-scale numbers: `cargo run --release -p prop-experiments --bin ablation`.

use criterion::{criterion_group, criterion_main, Criterion};
use prop_experiments::ablation;
use prop_experiments::setup::Scale;
use std::hint::black_box;
use std::time::Duration as StdDuration;

fn print_overhead_once() {
    let r = ablation::overhead(Scale::Quick, 1);
    println!("\nA1 at Quick scale — per-adjustment message cost:");
    for row in &r.rows {
        println!(
            "  {:<18} msgs/trial {:>7.2}  (predicted {:>7.2})  exchanges {}",
            row.label, row.msgs_per_trial, row.predicted_msgs_per_trial, row.exchanges
        );
    }
}

fn bench_ablation(c: &mut Criterion) {
    print_overhead_once();
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10).measurement_time(StdDuration::from_secs(30));
    g.bench_function("a1_overhead_quick", |b| {
        b.iter(|| black_box(ablation::overhead(Scale::Quick, 1)))
    });
    g.bench_function("a2_churn_quick", |b| b.iter(|| black_box(ablation::churn(Scale::Quick, 1))));
    g.bench_function("a4_selfish_quick", |b| {
        b.iter(|| black_box(ablation::selfish_vs_prop(Scale::Quick, 1)))
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
