//! Microbenchmarks for the hot kernels underneath every experiment:
//! topology generation, the latency-oracle APSP, flood lookups, probe
//! walks, and exchange planning/application.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use prop_core::exchange;
use prop_engine::SimRng;
use prop_netsim::{generate, LatencyOracle, TransitStubParams};
use prop_overlay::gnutella::{Gnutella, GnutellaParams};
use prop_overlay::walk::random_walk;
use prop_overlay::{FloodScratch, OverlayNet, Slot};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration as StdDuration;

fn gnutella_net(n: usize, seed: u64) -> (Gnutella, OverlayNet, SimRng) {
    let mut rng = SimRng::seed_from(seed);
    let phys = generate(&TransitStubParams::ts_large(), &mut rng);
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
    let (gn, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    (gn, net, rng)
}

fn bench_netsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim");
    g.sample_size(10).measurement_time(StdDuration::from_secs(15));

    g.bench_function("generate_ts_large", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(1);
            black_box(generate(&TransitStubParams::ts_large(), &mut rng))
        })
    });

    let mut rng = SimRng::seed_from(1);
    let phys = generate(&TransitStubParams::ts_large(), &mut rng);
    g.bench_function("oracle_apsp_500_members", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(2);
            black_box(LatencyOracle::select_and_build(&phys, 500, &mut rng))
        })
    });
    g.finish();
}

fn bench_overlay(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlay");
    g.sample_size(20).measurement_time(StdDuration::from_secs(15));

    let (_, net, _) = gnutella_net(1000, 3);
    g.bench_function("flood_lookup_ttl7_n1000", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 131) % 1000;
            let j = (i * 17 + 3) % 1000;
            black_box(net.min_latency_within_hops(Slot(i), Slot(j), 7))
        })
    });

    // Same floods through a reused scratch: the allocation-free fast path
    // every measurement loop takes. The gap to the bench above is the
    // per-lookup allocation cost the scratch removes.
    g.bench_function("flood_lookup_scratch_reuse_ttl7_n1000", |b| {
        let mut scratch = FloodScratch::new();
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 131) % 1000;
            let j = (i * 17 + 3) % 1000;
            black_box(net.min_latency_within_hops_with(Slot(i), Slot(j), 7, &mut scratch))
        })
    });

    g.bench_function("random_walk_nhops2", |b| {
        let mut rng = SimRng::seed_from(4);
        b.iter(|| {
            let u = Slot(rng.range(0..1000u32));
            let first = net.graph().neighbors(u)[0];
            black_box(random_walk(net.graph(), u, first, 2, &mut rng))
        })
    });

    g.bench_function("total_link_latency_n1000", |b| {
        b.iter(|| black_box(net.total_link_latency()))
    });
    g.finish();
}

fn bench_dhts(c: &mut Criterion) {
    use prop_overlay::chord::{Chord, ChordParams};
    use prop_overlay::kademlia::{Kademlia, KademliaParams};
    use prop_overlay::pastry::{Pastry, PastryParams};
    use prop_overlay::Lookup;

    let mut g = c.benchmark_group("dht_routing");
    g.sample_size(30).measurement_time(StdDuration::from_secs(15));

    let mut rng = SimRng::seed_from(11);
    let phys = generate(&TransitStubParams::ts_large(), &mut rng);
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, 1000, &mut rng));

    let (chord, chord_net) = Chord::build(ChordParams::default(), Arc::clone(&oracle), &mut rng);
    g.bench_function("chord_lookup_n1000", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 137) % 1000;
            black_box(chord.lookup(&chord_net, Slot(i), Slot((i * 31 + 5) % 1000)))
        })
    });

    let (pastry, pastry_net) =
        Pastry::build(PastryParams::default(), Arc::clone(&oracle), &mut rng);
    g.bench_function("pastry_lookup_n1000", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 137) % 1000;
            black_box(pastry.lookup(&pastry_net, Slot(i), Slot((i * 31 + 5) % 1000)))
        })
    });

    let (kad, kad_net) = Kademlia::build(KademliaParams::default(), Arc::clone(&oracle), &mut rng);
    g.bench_function("kademlia_lookup_n1000", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 137) % 1000;
            black_box(kad.lookup(&kad_net, Slot(i), Slot((i * 31 + 5) % 1000)))
        })
    });
    g.finish();
}

fn bench_protocol_drivers(c: &mut Criterion) {
    use prop_core::{AsyncProtocolSim, PropConfig, ProtocolSim};
    use prop_engine::Duration;

    let mut g = c.benchmark_group("protocol_drivers");
    g.sample_size(10).measurement_time(StdDuration::from_secs(20));

    g.bench_function("sync_driver_n200_30min", |b| {
        b.iter(|| {
            let (_, net, mut rng) = gnutella_net(200, 13);
            let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
            sim.run_for(Duration::from_minutes(30));
            black_box(sim.overhead())
        })
    });

    g.bench_function("async_driver_n200_30min", |b| {
        b.iter(|| {
            let (_, net, mut rng) = gnutella_net(200, 13);
            let mut sim = AsyncProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
            sim.run_for(Duration::from_minutes(30));
            black_box(sim.stats())
        })
    });
    g.finish();
}

fn bench_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange");
    g.sample_size(30).measurement_time(StdDuration::from_secs(15));

    let (_, net, _) = gnutella_net(1000, 5);
    g.bench_function("plan_propg", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 211) % 1000;
            let j = (i * 29 + 11) % 1000;
            black_box(exchange::plan_propg(&net, Slot(i), Slot(j)))
        })
    });

    g.bench_function("plan_propo_m4", |b| {
        let mut rng = SimRng::seed_from(6);
        b.iter(|| {
            let u = Slot(rng.range(0..1000u32));
            let first = net.graph().neighbors(u)[0];
            let walk = random_walk(net.graph(), u, first, 2, &mut rng);
            black_box(exchange::plan_propo(&net, &walk, 4))
        })
    });

    g.bench_function("apply_swap_and_back", |b| {
        let (_, net0, _) = gnutella_net(200, 7);
        b.iter_batched(
            || net0.placement().clone(),
            |_p| {
                // swap + unswap keeps state clean across iterations
                let plan = exchange::plan_propg(&net0, Slot(1), Slot(2));
                black_box(plan.var)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_oracle_tiers(c: &mut Criterion) {
    use prop_netsim::OracleConfig;

    let mut g = c.benchmark_group("oracle_tiers");
    g.sample_size(10).measurement_time(StdDuration::from_secs(15));

    let mut rng = SimRng::seed_from(21);
    let phys = generate(&TransitStubParams::ts_large(), &mut rng);
    let build = |cfg: &OracleConfig| {
        let mut rng = SimRng::seed_from(22);
        LatencyOracle::select_and_build_with(&phys, 1000, &mut rng, cfg)
    };

    g.bench_function("dense_build_n1000", |b| b.iter(|| black_box(build(&OracleConfig::dense()))));

    g.bench_function("cached_build_n1000", |b| {
        b.iter(|| black_box(build(&OracleConfig::cached(64 << 20))))
    });

    let dense = build(&OracleConfig::dense());
    g.bench_function("dense_query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 131) % 1000;
            black_box(dense.d(i, (i * 17 + 3) % 1000))
        })
    });

    let cached = build(&OracleConfig::cached(64 << 20));
    let all: Vec<usize> = (0..1000).collect();
    cached.warm_rows(&all);
    g.bench_function("cached_query_warm", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 131) % 1000;
            black_box(cached.d(i, (i * 17 + 3) % 1000))
        })
    });

    // 32 KiB over 16 shards holds one 4 KiB row per shard, so the striding
    // query pattern recomputes a Dijkstra row on nearly every call: the
    // worst case the cap is meant to bound.
    let thrash = build(&OracleConfig::cached(32 << 10));
    g.bench_function("cached_query_thrash", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 131) % 1000;
            black_box(thrash.d(i, (i * 17 + 3) % 1000))
        })
    });

    g.bench_function("warm_rows_256", |b| {
        let sources: Vec<usize> = (0..256).collect();
        b.iter_batched(
            || build(&OracleConfig::cached(64 << 20)),
            |o| {
                o.warm_rows(&sources);
                black_box(o.cache_stats())
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_measurement_plane(c: &mut Criterion) {
    use prop_metrics::{
        avg_lookup_latency, par_avg_lookup_latency, par_path_stretch, path_stretch,
    };
    use prop_overlay::chord::{Chord, ChordParams};
    use prop_workloads::LookupGen;

    let mut g = c.benchmark_group("measurement_plane");
    g.sample_size(10).measurement_time(StdDuration::from_secs(20));

    let (gn, net, rng) = gnutella_net(1000, 31);
    let pairs =
        LookupGen::new(&rng).uniform_pairs(&(0..1000u32).map(Slot).collect::<Vec<_>>(), 2000);

    // Serial vs parallel over the identical workload: the ratio is the
    // measurement plane's speedup on this machine (results are
    // bit-identical by construction — see prop_metrics::plane).
    g.bench_function("avg_lookup_latency_serial_2000", |b| {
        b.iter(|| black_box(avg_lookup_latency(&net, &gn, &pairs)))
    });
    g.bench_function("avg_lookup_latency_parallel_2000", |b| {
        b.iter(|| black_box(par_avg_lookup_latency(&net, &gn, &pairs)))
    });

    let mut rng2 = SimRng::seed_from(32);
    let phys = generate(&TransitStubParams::ts_large(), &mut rng2);
    let oracle = Arc::new(LatencyOracle::select_and_build(&phys, 1000, &mut rng2));
    let (chord, chord_net) = Chord::build(ChordParams::default(), oracle, &mut rng2);
    g.bench_function("path_stretch_serial_2000", |b| {
        b.iter(|| black_box(path_stretch(&chord_net, &chord, &pairs)))
    });
    g.bench_function("path_stretch_parallel_2000", |b| {
        b.iter(|| black_box(par_path_stretch(&chord_net, &chord, &pairs)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_netsim,
    bench_overlay,
    bench_dhts,
    bench_protocol_drivers,
    bench_exchange,
    bench_oracle_tiers,
    bench_measurement_plane
);
criterion_main!(benches);
