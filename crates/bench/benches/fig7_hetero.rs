//! Criterion bench for the Figure 7 kernel (PROP-O vs PROP-G vs LTM under
//! bimodal heterogeneity).
//!
//! Prints the regenerated sweep once, then benchmarks the full Quick-scale
//! sweep (all five schemes, five workload fractions). Paper-scale numbers:
//! `cargo run --release -p prop-experiments --bin fig7`.

use criterion::{criterion_group, criterion_main, Criterion};
use prop_experiments::fig7;
use prop_experiments::setup::Scale;
use std::hint::black_box;
use std::time::Duration as StdDuration;

fn print_sweep_once() {
    let curves = fig7::run(Scale::Quick, 1);
    println!("\nFig 7 at Quick scale (normalized avg lookup delay):");
    print!("{:>10}", "frac_fast");
    for c in &curves {
        print!("  {:>14}", c.label);
    }
    println!();
    for r in 0..curves[0].points.len() {
        print!("{:>10.2}", curves[0].points[r].0);
        for c in &curves {
            print!("  {:>14.3}", c.points[r].1);
        }
        println!();
    }
}

fn bench_fig7(c: &mut Criterion) {
    print_sweep_once();
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10).measurement_time(StdDuration::from_secs(40));
    g.bench_function("full_sweep_quick", |b| b.iter(|| black_box(fig7::run(Scale::Quick, 1))));
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
