//! (under construction)
