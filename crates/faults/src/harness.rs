//! The invariant harness: replay a [`FaultScript`] against both drivers
//! and prove the paper's theorems hold under faults.
//!
//! At every checkpoint (a regular cadence, plus the exact start of every
//! partition window so side snapshots are taken at the right instant) the
//! harness asserts:
//!
//! * **Theorem 1, global** — the logical graph is connected. Exchanges
//!   preserve connectivity, and the fault plane can only *suppress*
//!   exchanges (messages drop; the overlay itself is never mutated by a
//!   fault), so this holds at every checkpoint — during splits too, and in
//!   particular after heal.
//! * **Theorem 1, per side** — while a partition is active and the policy
//!   is PROP-G: the slot→side map is frozen (cross-side commits drop at
//!   the cut, and a same-side swap moves no one across it), so each side's
//!   induced subgraph — and hence its connectivity status — must match
//!   the snapshot taken at the split instant. Under PROP-O a committed
//!   swap may legitimately hand a *cross-side* neighbor over (the moved
//!   neighbor is not consulted), so only the global property is asserted.
//! * **Theorem 2** — under PROP-G the edge set is literally identical to
//!   the initial one; under PROP-O the degree sequence is preserved.
//!
//! Any violation aborts the replay with a description of what broke and
//! when.

use crate::partition::{transit_bisection, Side};
use crate::plane::compile;
use crate::script::FaultScript;
use prop_core::fault::FaultCounters;
use prop_core::{AsyncProtocolSim, Policy, PropConfig, ProtocolSim};
use prop_engine::{Duration, SimRng, SimTime};
use prop_netsim::{generate, LatencyOracle, TransitStubParams};
use prop_overlay::gnutella::{Gnutella, GnutellaParams};
use prop_overlay::{OverlayNet, Slot};
use std::sync::Arc;

/// One driver's verified replay result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayResult {
    /// Fault counters at the horizon.
    pub counters: FaultCounters,
    /// Total logical link latency at the horizon (overlay fingerprint for
    /// determinism checks).
    pub final_latency: u64,
    /// Number of checkpoints at which the invariants were verified.
    pub checkpoints: usize,
}

/// Both drivers' verified replay results for one scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HarnessReport {
    pub sync: ReplayResult,
    pub r#async: ReplayResult,
}

/// A self-contained fault scenario: topology + overlay + protocol + script.
#[derive(Clone, Debug)]
pub struct FaultHarness {
    pub topology: TransitStubParams,
    /// Overlay members drawn from the stub population.
    pub members: usize,
    pub cfg: PropConfig,
    pub script: FaultScript,
    /// Seeds topology, overlay, driver, and every injector.
    pub seed: u64,
    pub horizon: Duration,
    pub checkpoint_every: Duration,
}

impl FaultHarness {
    /// A small scenario (tiny transit-stub topology) sized for tests.
    pub fn small(cfg: PropConfig, script: FaultScript, seed: u64) -> FaultHarness {
        FaultHarness {
            topology: TransitStubParams::tiny(),
            members: 30,
            cfg,
            script,
            seed,
            horizon: Duration::from_minutes(40),
            checkpoint_every: Duration::from_minutes(2),
        }
    }

    /// Replay the script against both drivers, checking invariants at every
    /// checkpoint. `Err` describes the first violation.
    pub fn run(&self) -> Result<HarnessReport, String> {
        Ok(HarnessReport {
            sync: self.replay(DriverKind::Sync)?,
            r#async: self.replay(DriverKind::Async)?,
        })
    }

    fn replay(&self, kind: DriverKind) -> Result<ReplayResult, String> {
        let mut rng = SimRng::seed_from(self.seed);
        let phys = generate(&self.topology, &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, self.members, &mut rng));
        let sides = transit_bisection(&phys, &oracle);
        let (_, net) = Gnutella::build(GnutellaParams::default(), Arc::clone(&oracle), &mut rng);

        let edges0: Vec<(Slot, Slot)> = net.graph().edges().collect();
        let degseq0 = net.graph().degree_sequence();

        let mut driver = match kind {
            DriverKind::Sync => {
                let mut sim = ProtocolSim::new(net, self.cfg.clone(), &mut rng);
                sim.set_fault_plane(Box::new(compile(&self.script, &sides, self.seed)));
                Driver::Sync(sim)
            }
            DriverKind::Async => {
                let mut sim = AsyncProtocolSim::new(net, self.cfg.clone(), &mut rng);
                sim.set_fault_plane(Box::new(compile(&self.script, &sides, self.seed)));
                Driver::Async(sim)
            }
        };

        // Checkpoints: the regular cadence, plus every partition boundary
        // (snapshots must be taken exactly at the split instant).
        let horizon = self.horizon.as_millis();
        let step = self.checkpoint_every.as_millis().max(1);
        let mut checks: Vec<u64> = (1..).map(|k| k * step).take_while(|&t| t < horizon).collect();
        for (s, e) in self.script.partition_windows() {
            for b in [s, e] {
                if b < horizon {
                    checks.push(b);
                }
            }
        }
        checks.push(horizon);
        checks.sort_unstable();
        checks.dedup();

        let windows = self.script.partition_windows();
        let is_prop_g = self.cfg.policy == Policy::PropG;
        // (window, side-map snapshot, per-side connectivity snapshot)
        let mut split_state: Option<((u64, u64), Vec<Option<Side>>, [bool; 2])> = None;
        let mut verified = 0usize;

        for t in checks {
            driver.run_until(SimTime(t));
            let net = driver.net();

            // Theorem 1, global: faults suppress exchanges but never edit
            // the overlay, so connectivity must survive every interleaving
            // — including mid-split, including after heal.
            if !net.graph().is_connected() {
                return Err(format!("[{kind:?}] logical graph disconnected at t={t}ms"));
            }
            match self.cfg.policy {
                // Theorem 2: PROP-G trades positions, never edges.
                Policy::PropG => {
                    let edges: Vec<(Slot, Slot)> = net.graph().edges().collect();
                    if edges != edges0 {
                        return Err(format!("[{kind:?}] PROP-G edge set changed at t={t}ms"));
                    }
                    if !net.placement().is_consistent() {
                        return Err(format!("[{kind:?}] placement inconsistent at t={t}ms"));
                    }
                }
                // PROP-O: equal-sized neighbor trades preserve all degrees.
                Policy::PropO { .. } => {
                    if net.graph().degree_sequence() != degseq0 {
                        return Err(format!(
                            "[{kind:?}] PROP-O degree sequence changed at t={t}ms"
                        ));
                    }
                }
            }

            // Theorem 1, per side (PROP-G only; see module docs for why
            // PROP-O edges may legitimately cross the cut).
            if is_prop_g {
                let active = windows.iter().find(|&&(s, e)| s <= t && t < e).copied();
                match active {
                    None => split_state = None,
                    Some(w) => {
                        let map = side_map(net, &sides);
                        let conn = [
                            side_connected(net, &map, Side::A),
                            side_connected(net, &map, Side::B),
                        ];
                        let same_window = matches!(&split_state, Some((sw, _, _)) if *sw == w);
                        if same_window {
                            let (_, map0, conn0) = split_state.as_ref().unwrap();
                            if map != *map0 {
                                return Err(format!(
                                    "[{kind:?}] slot→side map changed during partition at t={t}ms \
                                     (a cross-side exchange committed through the cut)"
                                ));
                            }
                            if conn != *conn0 {
                                return Err(format!(
                                    "[{kind:?}] per-side connectivity changed during partition \
                                     at t={t}ms: {conn0:?} → {conn:?}"
                                ));
                            }
                        } else {
                            // Split instant (or a new window): take snapshots.
                            split_state = Some((w, map, conn));
                        }
                    }
                }
            }
            verified += 1;
        }

        Ok(ReplayResult {
            counters: driver.fault_counters().unwrap_or_default(),
            final_latency: driver.net().total_link_latency(),
            checkpoints: verified,
        })
    }
}

#[derive(Clone, Copy, Debug)]
enum DriverKind {
    Sync,
    Async,
}

enum Driver {
    Sync(ProtocolSim),
    Async(AsyncProtocolSim),
}

impl Driver {
    fn run_until(&mut self, t: SimTime) {
        match self {
            Driver::Sync(s) => s.run_until(t),
            Driver::Async(s) => s.run_until(t),
        }
    }

    fn net(&self) -> &OverlayNet {
        match self {
            Driver::Sync(s) => s.net(),
            Driver::Async(s) => s.net(),
        }
    }

    fn fault_counters(&mut self) -> Option<FaultCounters> {
        match self {
            Driver::Sync(s) => s.fault_counters(),
            Driver::Async(s) => s.fault_counters(),
        }
    }
}

/// Side of the peer currently occupying each slot (`None` for dead slots).
fn side_map(net: &OverlayNet, sides: &[Side]) -> Vec<Option<Side>> {
    (0..net.graph().num_slots())
        .map(|i| {
            let slot = Slot(i as u32);
            if net.graph().is_alive(slot) {
                Some(sides.get(net.peer(slot)).copied().unwrap_or(Side::A))
            } else {
                None
            }
        })
        .collect()
}

/// Is the subgraph induced by the slots on `side` connected? (Vacuously
/// true when the side holds at most one live slot.)
fn side_connected(net: &OverlayNet, map: &[Option<Side>], side: Side) -> bool {
    let members: Vec<Slot> =
        (0..map.len()).filter(|&i| map[i] == Some(side)).map(|i| Slot(i as u32)).collect();
    if members.len() <= 1 {
        return true;
    }
    let mut seen = vec![false; map.len()];
    let mut stack = vec![members[0]];
    seen[members[0].index()] = true;
    let mut reached = 1usize;
    while let Some(u) = stack.pop() {
        for &v in net.graph().neighbors(u) {
            if map[v.index()] == Some(side) && !seen[v.index()] {
                seen[v.index()] = true;
                reached += 1;
                stack.push(v);
            }
        }
    }
    reached == members.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_script_passes_both_drivers() {
        let h = FaultHarness::small(PropConfig::prop_g(), FaultScript::new(), 11);
        let report = h.run().expect("perfect network must satisfy all invariants");
        assert!(report.sync.checkpoints > 10);
        assert_eq!(report.sync.counters, FaultCounters::default());
        assert_eq!(report.r#async.counters, FaultCounters::default());
    }

    #[test]
    fn partition_script_passes_and_counts() {
        // 5-minute split starting at t = 10 min.
        let script = FaultScript::new().partition(600_000, 300_000);
        for cfg in [PropConfig::prop_g(), PropConfig::prop_o()] {
            let h = FaultHarness::small(cfg, script.clone(), 12);
            let report = h.run().expect("partition must not break the theorems");
            assert_eq!(report.sync.counters.partition_ms, 300_000);
            assert_eq!(report.r#async.counters.partition_ms, 300_000);
        }
    }

    #[test]
    fn lossy_crashy_script_passes() {
        let script = FaultScript::new()
            .loss(0, 0.15)
            .duplicate(0, 0.05)
            .reorder(0, 0.2, 400)
            .drift(300_000, 300_000, 80)
            .crash(600_000, 3, 120_000)
            .partition(900_000, 180_000);
        for cfg in [PropConfig::prop_g(), PropConfig::prop_o()] {
            let h = FaultHarness::small(cfg, script.clone(), 13);
            let report = h.run().expect("mixed faults must not break the theorems");
            let total = report.r#async.counters;
            assert!(total.drops > 0, "15% loss over 40 min must drop something: {total:?}");
        }
    }

    #[test]
    fn harness_is_deterministic() {
        let script =
            FaultScript::new().loss(0, 0.1).partition(600_000, 120_000).crash(300_000, 5, 60_000);
        let h = FaultHarness::small(PropConfig::prop_o(), script, 14);
        let a = h.run().expect("run a");
        let b = h.run().expect("run b");
        assert_eq!(a, b, "same seed + script must replay identically");
    }
}
