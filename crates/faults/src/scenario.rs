//! Scenario bundles: one JSON document, one seed, one reproducible run.
//!
//! A [`Scenario`] composes everything that defines an experiment besides
//! the driver under test: the physical topology, the population size, the
//! scripted traffic plane ([`TrafficScript`]) and the scripted fault plane
//! ([`FaultScript`]), all replayed under a single seed. Experiments load a
//! scenario from disk (see `examples/*.json` at the repo root), compile
//! both scripts, and run — the same file on the same seed reproduces the
//! same trace byte-for-byte on any worker count.

use crate::script::FaultScript;
use prop_workloads::TrafficScript;
use serde::{Deserialize, Serialize};

/// A named, self-contained experiment input.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name — used for output file naming and report labels.
    pub name: String,
    /// Topology label as understood by the experiment layer
    /// (`"ts-large"`, `"ts-small"`, `"tiny"`).
    pub topology: String,
    /// Overlay population (member count).
    pub n: usize,
    /// Master seed. Traffic, faults, topology, and the driver all fork
    /// from it with distinct labels.
    pub seed: u64,
    /// The production traffic plane: diurnal per-domain churn/lookup
    /// rates, flash crowds, popularity shifts.
    pub traffic: TrafficScript,
    /// Optional fault plane composed alongside the traffic (defaults to
    /// no faults).
    #[serde(default)]
    pub faults: FaultScript,
}

impl Scenario {
    /// A fault-free scenario around a traffic script.
    pub fn new(
        name: impl Into<String>,
        topology: impl Into<String>,
        n: usize,
        seed: u64,
        traffic: TrafficScript,
    ) -> Self {
        Scenario {
            name: name.into(),
            topology: topology.into(),
            n,
            seed,
            traffic,
            faults: FaultScript::default(),
        }
    }

    /// Attach a fault script.
    pub fn with_faults(mut self, faults: FaultScript) -> Self {
        self.faults = faults;
        self
    }

    /// Re-seed a scenario (sweeps shard one scenario across many seeds).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        let traffic = TrafficScript::preset_diurnal_regional(60_000, 24 * 60_000, 40, 1.0, 5.0);
        Scenario::new("diurnal", "tiny", 24, 7, traffic)
            .with_faults(FaultScript::new().loss(0, 0.05))
    }

    #[test]
    fn round_trips_through_serde() {
        let s = sample();
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn faults_default_to_empty() {
        let json = r#"{
            "name": "bare",
            "topology": "tiny",
            "n": 24,
            "seed": 1,
            "traffic": {
                "hour_ms": 60000,
                "horizon_ms": 120000,
                "catalog": 10,
                "domains": [
                    {"domain": 0, "joins_per_min": 1.0,
                     "leaves_per_min": 1.0, "lookups_per_min": 4.0}
                ]
            }
        }"#;
        let s: Scenario = serde_json::from_str(json).unwrap();
        assert!(s.faults.events.is_empty());
        assert_eq!(s.traffic.domains.len(), 1);
        assert!(s.traffic.flash_crowds.is_empty(), "script defaults apply too");
    }

    #[test]
    fn reseeding_changes_only_the_seed() {
        let s = sample();
        let t = s.clone().with_seed(99);
        assert_eq!(t.seed, 99);
        assert_eq!(s.traffic, t.traffic);
        assert_eq!(s.name, t.name);
    }
}
