//! Partition geometry: which peer lands on which side of a transit split.
//!
//! The paper's substrate is a GT-ITM transit-stub internet: stub domains
//! (where all overlay members live) hang off transit gateways, and the
//! transit domains form the backbone. The realistic large-scale failure is
//! a *backbone* split — transit-to-transit links go down and the internet
//! bisects along transit-domain lines, stranding each stub domain with its
//! gateway's half. [`transit_bisection`] reproduces exactly that: members
//! whose gateway sits in the lower half of the transit-domain id space are
//! [`Side::A`], the rest [`Side::B`].

use prop_netsim::oracle::MemberIdx;
use prop_netsim::{LatencyOracle, PhysGraph};
use serde::{Deserialize, Serialize};

/// Which half of the bisected transit core a peer is attached to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    A,
    B,
}

/// Per-member sides for a bisection of the transit core along transit
/// links: members gatewayed through transit domains `0 .. D/2` are
/// [`Side::A`], domains `D/2 .. D` are [`Side::B`] (`D` = number of
/// transit domains). Indexed by [`MemberIdx`]; a member whose transit
/// domain cannot be resolved (hand-built graphs only) defaults to
/// [`Side::A`].
pub fn transit_bisection(phys: &PhysGraph, oracle: &LatencyOracle) -> Vec<Side> {
    let domains = phys.num_transit_domains() as u16;
    let cut = domains / 2;
    (0..oracle.len())
        .map(|i: MemberIdx| {
            let dom = phys.transit_domain_of(oracle.host(i)).unwrap_or(0);
            if dom < cut.max(1) {
                Side::A
            } else {
                Side::B
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::SimRng;
    use prop_netsim::{generate, TransitStubParams};

    #[test]
    fn tiny_topology_bisects_nontrivially() {
        // `tiny()` has exactly two transit domains, so the cut must put
        // members on both sides (each domain carries half the stubs).
        let mut rng = SimRng::seed_from(42);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = LatencyOracle::select_and_build(&phys, 40, &mut rng);
        let sides = transit_bisection(&phys, &oracle);
        assert_eq!(sides.len(), 40);
        let a = sides.iter().filter(|&&s| s == Side::A).count();
        assert!(a > 0 && a < 40, "both sides must be populated, got {a}/40 on side A");
    }

    #[test]
    fn sides_are_deterministic() {
        let mut rng = SimRng::seed_from(7);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = LatencyOracle::select_and_build(&phys, 30, &mut rng);
        let mut rng2 = SimRng::seed_from(7);
        let phys2 = generate(&TransitStubParams::tiny(), &mut rng2);
        let oracle2 = LatencyOracle::select_and_build(&phys2, 30, &mut rng2);
        assert_eq!(transit_bisection(&phys, &oracle), transit_bisection(&phys2, &oracle2));
    }
}
