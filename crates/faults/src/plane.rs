//! The injectors: concrete [`FaultPlane`] implementations.
//!
//! Each injector models one failure mode and owns one forked [`SimRng`]
//! stream, so its decisions depend only on (seed, script, query order) —
//! the drivers consult the plane in event order, which makes every run
//! bit-reproducible. [`ComposedPlane`] stacks injectors and consults *all*
//! of them for every query in fixed order (no short-circuiting — a drop
//! verdict from the first injector must not starve the RNG streams of the
//! later ones, or composition would perturb their decisions).
//!
//! [`compile`] turns a declarative [`FaultScript`] into a ready-to-attach
//! plane.

use crate::partition::Side;
use crate::script::{FaultEvent, FaultScript};
use prop_core::fault::{Delivery, FaultCounters, FaultPlane, MsgKind};
use prop_engine::{window_overlap_ms, SimRng, SimTime};

/// Value of a step function (last step at or before `t`, else 0).
fn step_value<T: Copy + Default>(steps: &[(u64, T)], t: u64) -> T {
    steps.iter().rev().find(|&&(at, _)| at <= t).map(|&(_, v)| v).unwrap_or_default()
}

/// Random per-message loss, probability scheduled as a step function.
pub struct LossInjector {
    steps: Vec<(u64, f64)>,
    rng: SimRng,
    counters: FaultCounters,
}

impl LossInjector {
    /// `steps` are `(at_ms, probability)` pairs, already sorted by time.
    pub fn new(steps: Vec<(u64, f64)>, rng: SimRng) -> Self {
        LossInjector { steps, rng, counters: FaultCounters::default() }
    }
}

impl FaultPlane for LossInjector {
    fn deliver(&mut self, now: SimTime, _kind: MsgKind, _from: usize, _to: usize) -> Delivery {
        let p = step_value(&self.steps, now.as_millis());
        if self.rng.chance(p) {
            self.counters.drops += 1;
            Delivery::DROPPED
        } else {
            Delivery::CLEAN
        }
    }

    fn is_up(&mut self, _now: SimTime, _peer: usize) -> bool {
        true
    }

    fn link_extra_ms(&mut self, _now: SimTime, _a: usize, _b: usize) -> u64 {
        0
    }

    fn counters(&mut self, _now: SimTime) -> FaultCounters {
        self.counters
    }
}

/// Random per-message duplication, probability scheduled as a step function.
pub struct DupInjector {
    steps: Vec<(u64, f64)>,
    rng: SimRng,
    counters: FaultCounters,
}

impl DupInjector {
    pub fn new(steps: Vec<(u64, f64)>, rng: SimRng) -> Self {
        DupInjector { steps, rng, counters: FaultCounters::default() }
    }
}

impl FaultPlane for DupInjector {
    fn deliver(&mut self, now: SimTime, _kind: MsgKind, _from: usize, _to: usize) -> Delivery {
        let p = step_value(&self.steps, now.as_millis());
        if self.rng.chance(p) {
            self.counters.dup_deliveries += 1;
            Delivery { delivered: true, duplicate: true, extra_delay_ms: 0 }
        } else {
            Delivery::CLEAN
        }
    }

    fn is_up(&mut self, _now: SimTime, _peer: usize) -> bool {
        true
    }

    fn link_extra_ms(&mut self, _now: SimTime, _a: usize, _b: usize) -> u64 {
        0
    }

    fn counters(&mut self, _now: SimTime) -> FaultCounters {
        self.counters
    }
}

/// Random out-of-order delivery: with the scheduled probability a message
/// arrives up to `max_extra_ms` late (overtaken by later traffic).
pub struct ReorderInjector {
    /// `(at_ms, (probability, max_extra_ms))` steps, sorted by time.
    steps: Vec<(u64, (f64, u64))>,
    rng: SimRng,
    counters: FaultCounters,
}

impl ReorderInjector {
    pub fn new(steps: Vec<(u64, (f64, u64))>, rng: SimRng) -> Self {
        ReorderInjector { steps, rng, counters: FaultCounters::default() }
    }
}

impl FaultPlane for ReorderInjector {
    fn deliver(&mut self, now: SimTime, _kind: MsgKind, _from: usize, _to: usize) -> Delivery {
        let (p, max_extra) = step_value(&self.steps, now.as_millis());
        if self.rng.chance(p) && max_extra > 0 {
            self.counters.reorders += 1;
            let extra = self.rng.range(1..=max_extra);
            Delivery { delivered: true, duplicate: false, extra_delay_ms: extra }
        } else {
            Delivery::CLEAN
        }
    }

    fn is_up(&mut self, _now: SimTime, _peer: usize) -> bool {
        true
    }

    fn link_extra_ms(&mut self, _now: SimTime, _a: usize, _b: usize) -> u64 {
        0
    }

    fn counters(&mut self, _now: SimTime) -> FaultCounters {
        self.counters
    }
}

enum SpikeShape {
    /// Flat plateau: `extra_ms` for the whole window.
    Flat(u64),
    /// Triangular ramp: 0 → peak at the midpoint → 0.
    Triangular(u64),
}

struct SpikeWindow {
    start: u64,
    end: u64,
    shape: SpikeShape,
}

impl SpikeWindow {
    fn extra_at(&self, t: u64) -> u64 {
        if t < self.start || t >= self.end || self.end <= self.start {
            return 0;
        }
        match self.shape {
            SpikeShape::Flat(extra) => extra,
            SpikeShape::Triangular(peak) => {
                // Integer triangular profile, exact at the endpoints.
                let span = self.end - self.start;
                let pos = t - self.start;
                let from_edge = pos.min(span - pos);
                (peak.saturating_mul(2).saturating_mul(from_edge)) / span
            }
        }
    }
}

/// Deterministic link-latency degradation windows (spikes and drifts).
/// Affects message transit time only — the oracle's ground-truth `d()`,
/// and therefore `Var` and the theorems, never see it.
pub struct SpikeInjector {
    windows: Vec<SpikeWindow>,
}

impl SpikeInjector {
    fn new(windows: Vec<SpikeWindow>) -> Self {
        SpikeInjector { windows }
    }
}

impl FaultPlane for SpikeInjector {
    fn deliver(&mut self, _now: SimTime, _kind: MsgKind, _from: usize, _to: usize) -> Delivery {
        Delivery::CLEAN
    }

    fn is_up(&mut self, _now: SimTime, _peer: usize) -> bool {
        true
    }

    fn link_extra_ms(&mut self, now: SimTime, _a: usize, _b: usize) -> u64 {
        let t = now.as_millis();
        self.windows.iter().map(|w| w.extra_at(t)).sum()
    }

    fn counters(&mut self, _now: SimTime) -> FaultCounters {
        FaultCounters::default()
    }
}

/// Transit-core partitions: while a window is active, every message whose
/// endpoints sit on opposite [`Side`]s of the bisection is dropped.
pub struct PartitionInjector {
    /// Merged, disjoint, sorted `[start, end)` windows.
    windows: Vec<(u64, u64)>,
    sides: Vec<Side>,
    counters: FaultCounters,
}

impl PartitionInjector {
    /// `windows` may overlap; they are merged so active time is not double
    /// counted. `sides` is indexed by member index
    /// (see [`crate::partition::transit_bisection`]).
    pub fn new(mut windows: Vec<(u64, u64)>, sides: Vec<Side>) -> Self {
        windows.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(windows.len());
        for (s, e) in windows {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        PartitionInjector { windows: merged, sides, counters: FaultCounters::default() }
    }

    fn active(&self, t: u64) -> bool {
        self.windows.iter().any(|&(s, e)| s <= t && t < e)
    }

    fn side(&self, peer: usize) -> Side {
        self.sides.get(peer).copied().unwrap_or(Side::A)
    }
}

impl FaultPlane for PartitionInjector {
    fn deliver(&mut self, now: SimTime, _kind: MsgKind, from: usize, to: usize) -> Delivery {
        if self.active(now.as_millis()) && self.side(from) != self.side(to) {
            self.counters.drops += 1;
            Delivery::DROPPED
        } else {
            Delivery::CLEAN
        }
    }

    fn is_up(&mut self, _now: SimTime, _peer: usize) -> bool {
        true // a partitioned peer is alive, just unreachable across the cut
    }

    fn link_extra_ms(&mut self, _now: SimTime, _a: usize, _b: usize) -> u64 {
        0
    }

    fn counters(&mut self, now: SimTime) -> FaultCounters {
        let mut c = self.counters;
        c.partition_ms =
            self.windows.iter().map(|&(s, e)| window_overlap_ms(SimTime(s), SimTime(e), now)).sum();
        c
    }
}

/// Crash/restart cycles: a crashed peer launches nothing and receives
/// nothing; a commit handshake that reaches it aborts the trial.
pub struct CrashInjector {
    /// `(peer, start, end)` down-windows.
    windows: Vec<(usize, u64, u64)>,
    counters: FaultCounters,
}

impl CrashInjector {
    pub fn new(windows: Vec<(usize, u64, u64)>) -> Self {
        CrashInjector { windows, counters: FaultCounters::default() }
    }

    fn down(&self, t: u64, peer: usize) -> bool {
        self.windows.iter().any(|&(p, s, e)| p == peer && s <= t && t < e)
    }
}

impl FaultPlane for CrashInjector {
    fn deliver(&mut self, now: SimTime, kind: MsgKind, from: usize, to: usize) -> Delivery {
        let t = now.as_millis();
        if self.down(t, to) {
            if kind == MsgKind::Commit {
                self.counters.crashed_aborts += 1;
            } else {
                self.counters.drops += 1;
            }
            Delivery::DROPPED
        } else if self.down(t, from) {
            self.counters.drops += 1;
            Delivery::DROPPED
        } else {
            Delivery::CLEAN
        }
    }

    fn is_up(&mut self, now: SimTime, peer: usize) -> bool {
        !self.down(now.as_millis(), peer)
    }

    fn link_extra_ms(&mut self, _now: SimTime, _a: usize, _b: usize) -> u64 {
        0
    }

    fn counters(&mut self, _now: SimTime) -> FaultCounters {
        self.counters
    }
}

/// A stack of injectors consulted in fixed order for every query.
///
/// All children are always consulted — even after an early drop verdict —
/// so each child's RNG stream advances identically regardless of what the
/// others decided. Verdicts merge per [`Delivery::merge`]; counters sum.
#[derive(Default)]
pub struct ComposedPlane {
    children: Vec<Box<dyn FaultPlane>>,
}

impl ComposedPlane {
    pub fn new() -> Self {
        ComposedPlane::default()
    }

    pub fn push(&mut self, child: Box<dyn FaultPlane>) {
        self.children.push(child);
    }

    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

impl FaultPlane for ComposedPlane {
    fn deliver(&mut self, now: SimTime, kind: MsgKind, from: usize, to: usize) -> Delivery {
        let mut verdict = Delivery::CLEAN;
        for c in &mut self.children {
            verdict = verdict.merge(c.deliver(now, kind, from, to));
        }
        verdict
    }

    fn is_up(&mut self, now: SimTime, peer: usize) -> bool {
        let mut up = true;
        for c in &mut self.children {
            up &= c.is_up(now, peer);
        }
        up
    }

    fn link_extra_ms(&mut self, now: SimTime, a: usize, b: usize) -> u64 {
        self.children.iter_mut().map(|c| c.link_extra_ms(now, a, b)).sum()
    }

    fn counters(&mut self, now: SimTime) -> FaultCounters {
        self.children
            .iter_mut()
            .map(|c| c.counters(now))
            .fold(FaultCounters::default(), FaultCounters::merge)
    }
}

/// Compile a [`FaultScript`] into a ready-to-attach [`ComposedPlane`].
///
/// `sides` is the per-member bisection (needed only if the script contains
/// [`FaultEvent::Partition`] events; pass the output of
/// [`crate::partition::transit_bisection`], or `&[]` for partition-free
/// scripts). `seed` drives every probabilistic injector through distinct
/// forked streams — the same `(script, sides, seed)` always compiles to a
/// plane that makes the same decisions.
///
/// # Panics
///
/// If the script contains partition windows but `sides` does not place
/// members on both sides of the cut — such a "partition" would drop
/// nothing while still accruing `partition_ms`, and reports would claim a
/// split that was never enforced. (`sides` shorter than the membership is
/// not detectable here; missing peers default to [`Side::A`].)
pub fn compile(script: &FaultScript, sides: &[Side], seed: u64) -> ComposedPlane {
    let root = SimRng::seed_from(seed);
    let mut loss_steps = Vec::new();
    let mut dup_steps = Vec::new();
    let mut reorder_steps = Vec::new();
    let mut spike_windows = Vec::new();
    let mut partition_windows = Vec::new();
    let mut crash_windows = Vec::new();
    for ev in script.sorted() {
        match ev {
            FaultEvent::Loss { at_ms, prob } => loss_steps.push((at_ms, prob)),
            FaultEvent::Duplicate { at_ms, prob } => dup_steps.push((at_ms, prob)),
            FaultEvent::Reorder { at_ms, prob, max_extra_ms } => {
                reorder_steps.push((at_ms, (prob, max_extra_ms)))
            }
            FaultEvent::LatencySpike { at_ms, duration_ms, extra_ms } => {
                spike_windows.push(SpikeWindow {
                    start: at_ms,
                    end: at_ms.saturating_add(duration_ms),
                    shape: SpikeShape::Flat(extra_ms),
                })
            }
            FaultEvent::LatencyDrift { at_ms, duration_ms, peak_extra_ms } => {
                spike_windows.push(SpikeWindow {
                    start: at_ms,
                    end: at_ms.saturating_add(duration_ms),
                    shape: SpikeShape::Triangular(peak_extra_ms),
                })
            }
            FaultEvent::Partition { at_ms, heal_after_ms } => {
                partition_windows.push((at_ms, at_ms.saturating_add(heal_after_ms)))
            }
            FaultEvent::Crash { at_ms, peer, restart_after_ms } => {
                crash_windows.push((peer, at_ms, at_ms.saturating_add(restart_after_ms)))
            }
        }
    }
    let mut plane = ComposedPlane::new();
    if !loss_steps.is_empty() {
        plane.push(Box::new(LossInjector::new(loss_steps, root.fork("faults-loss"))));
    }
    if !dup_steps.is_empty() {
        plane.push(Box::new(DupInjector::new(dup_steps, root.fork("faults-dup"))));
    }
    if !reorder_steps.is_empty() {
        plane.push(Box::new(ReorderInjector::new(reorder_steps, root.fork("faults-reorder"))));
    }
    if !spike_windows.is_empty() {
        plane.push(Box::new(SpikeInjector::new(spike_windows)));
    }
    if !partition_windows.is_empty() {
        assert!(
            sides.contains(&Side::A) && sides.contains(&Side::B),
            "script has partition windows but `sides` does not bisect the membership \
             (pass the output of transit_bisection)"
        );
        plane.push(Box::new(PartitionInjector::new(partition_windows, sides.to_vec())));
    }
    if !crash_windows.is_empty() {
        plane.push(Box::new(CrashInjector::new(crash_windows)));
    }
    plane
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime(ms)
    }

    #[test]
    fn loss_extremes() {
        let mut sure = LossInjector::new(vec![(0, 1.0)], SimRng::seed_from(1));
        let mut never = LossInjector::new(vec![(0, 0.0)], SimRng::seed_from(1));
        for i in 0..50 {
            assert!(!sure.deliver(t(i), MsgKind::Walk, 0, 1).delivered);
            assert!(never.deliver(t(i), MsgKind::Walk, 0, 1).delivered);
        }
        assert_eq!(sure.counters(t(50)).drops, 50);
        assert_eq!(never.counters(t(50)).drops, 0);
    }

    #[test]
    fn loss_step_schedule_switches() {
        // 100% loss only in [100, 200).
        let mut inj = LossInjector::new(vec![(100, 1.0), (200, 0.0)], SimRng::seed_from(2));
        assert!(inj.deliver(t(50), MsgKind::Probe, 0, 1).delivered);
        assert!(!inj.deliver(t(150), MsgKind::Probe, 0, 1).delivered);
        assert!(inj.deliver(t(250), MsgKind::Probe, 0, 1).delivered);
    }

    #[test]
    fn reorder_delays_within_bound() {
        let mut inj = ReorderInjector::new(vec![(0, (1.0, 25))], SimRng::seed_from(3));
        for i in 0..50 {
            let v = inj.deliver(t(i), MsgKind::Exchange, 0, 1);
            assert!(v.delivered);
            assert!((1..=25).contains(&v.extra_delay_ms));
        }
        assert_eq!(inj.counters(t(50)).reorders, 50);
    }

    #[test]
    fn spike_profiles() {
        let mut inj = SpikeInjector::new(vec![
            SpikeWindow { start: 100, end: 200, shape: SpikeShape::Flat(40) },
            SpikeWindow { start: 1000, end: 2000, shape: SpikeShape::Triangular(100) },
        ]);
        assert_eq!(inj.link_extra_ms(t(50), 0, 1), 0);
        assert_eq!(inj.link_extra_ms(t(150), 0, 1), 40);
        assert_eq!(inj.link_extra_ms(t(200), 0, 1), 0, "half-open window");
        assert_eq!(inj.link_extra_ms(t(1000), 0, 1), 0, "drift starts at zero");
        assert_eq!(inj.link_extra_ms(t(1500), 0, 1), 100, "drift peaks at midpoint");
        assert!(inj.link_extra_ms(t(1250), 0, 1) > 0);
        assert!(inj.link_extra_ms(t(1250), 0, 1) < 100);
    }

    #[test]
    fn partition_cuts_cross_side_only() {
        let sides = vec![Side::A, Side::A, Side::B];
        let mut inj = PartitionInjector::new(vec![(100, 200)], sides);
        // Outside the window: everything flows.
        assert!(inj.deliver(t(50), MsgKind::Walk, 0, 2).delivered);
        // Inside: cross-side drops, same-side flows.
        assert!(!inj.deliver(t(150), MsgKind::Walk, 0, 2).delivered);
        assert!(inj.deliver(t(150), MsgKind::Walk, 0, 1).delivered);
        let c = inj.counters(t(300));
        assert_eq!(c.drops, 1);
        assert_eq!(c.partition_ms, 100);
    }

    #[test]
    fn partition_windows_merge() {
        let inj = PartitionInjector::new(vec![(100, 300), (200, 400), (500, 600)], vec![]);
        assert_eq!(inj.windows, vec![(100, 400), (500, 600)]);
        let mut inj = inj;
        assert_eq!(inj.counters(t(1000)).partition_ms, 400);
        // Mid-window snapshot counts only elapsed partition time.
        assert_eq!(inj.counters(t(250)).partition_ms, 150);
    }

    #[test]
    fn crash_downtime_and_commit_aborts() {
        let mut inj = CrashInjector::new(vec![(7, 100, 200)]);
        assert!(inj.is_up(t(50), 7));
        assert!(!inj.is_up(t(150), 7));
        assert!(inj.is_up(t(200), 7), "restart at window end");
        assert!(inj.is_up(t(150), 8), "other peers unaffected");
        assert!(!inj.deliver(t(150), MsgKind::Commit, 0, 7).delivered);
        assert!(!inj.deliver(t(150), MsgKind::Walk, 7, 0).delivered);
        let c = inj.counters(t(300));
        assert_eq!(c.crashed_aborts, 1);
        assert_eq!(c.drops, 1);
    }

    #[test]
    fn composed_consults_every_child_and_merges() {
        let script = FaultScript::new().loss(0, 1.0).duplicate(0, 1.0).reorder(0, 1.0, 10);
        let mut plane = compile(&script, &[], 9);
        let v = plane.deliver(t(5), MsgKind::Walk, 0, 1);
        // Loss drops it, but duplication and reordering still ruled (and
        // their RNG streams advanced): the merged verdict carries all three.
        assert!(!v.delivered);
        assert!(v.duplicate);
        assert!(v.extra_delay_ms >= 1);
        let c = plane.counters(t(10));
        assert_eq!((c.drops, c.dup_deliveries, c.reorders), (1, 1, 1));
    }

    #[test]
    fn compiled_plane_is_deterministic() {
        let script = FaultScript::new()
            .loss(0, 0.3)
            .duplicate(0, 0.2)
            .reorder(0, 0.5, 50)
            .partition(1_000, 500)
            .crash(2_000, 3, 300);
        let sides = vec![Side::A, Side::B, Side::A, Side::B];
        let mut a = compile(&script, &sides, 1234);
        let mut b = compile(&script, &sides, 1234);
        for i in 0..500u64 {
            let now = t(i * 7);
            let kind = match i % 4 {
                0 => MsgKind::Walk,
                1 => MsgKind::Exchange,
                2 => MsgKind::Probe,
                _ => MsgKind::Commit,
            };
            let (from, to) = ((i % 4) as usize, ((i + 1) % 4) as usize);
            assert_eq!(a.deliver(now, kind, from, to), b.deliver(now, kind, from, to));
            assert_eq!(a.is_up(now, from), b.is_up(now, from));
            assert_eq!(a.link_extra_ms(now, from, to), b.link_extra_ms(now, from, to));
        }
        assert_eq!(a.counters(t(10_000)), b.counters(t(10_000)));
    }

    #[test]
    fn empty_script_compiles_to_empty_plane() {
        let plane = compile(&FaultScript::new(), &[], 1);
        assert!(plane.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not bisect")]
    fn partition_script_rejects_degenerate_sides() {
        compile(&FaultScript::new().partition(100, 50), &[], 1);
    }

    #[test]
    #[should_panic(expected = "does not bisect")]
    fn partition_script_rejects_one_sided_split() {
        compile(&FaultScript::new().partition(100, 50), &[Side::A, Side::A], 1);
    }
}
