//! # prop-faults — deterministic fault injection for the PROP drivers
//!
//! The paper's §5 dynamic-environment experiments model peers that fail
//! *cleanly*; real overlays also lose messages, duplicate them, deliver
//! them late, suffer congested links, partition along the transit
//! backbone, and crash mid-handshake. This crate is the plane between the
//! protocol drivers and the simulated network that injects exactly those
//! conditions — reproducibly, from a seed and a declarative script.
//!
//! * [`script`] — [`FaultScript`]: timed fault events (serde
//!   round-trippable), the shared scenario language of experiments, tests,
//!   and CI.
//! * [`plane`] — the injectors ([`LossInjector`], [`DupInjector`],
//!   [`ReorderInjector`], [`SpikeInjector`], [`PartitionInjector`],
//!   [`CrashInjector`]), their composition ([`ComposedPlane`]), and the
//!   script compiler ([`compile`]).
//! * [`partition`] — [`transit_bisection`]: which peers land on which side
//!   when the transit core splits.
//! * [`harness`] — [`FaultHarness`]: replay any script against **both**
//!   drivers and assert Theorem 1 (connectivity — per side during a split,
//!   globally always) and Theorem 2 (PROP-G isomorphism / PROP-O degree
//!   preservation) at every checkpoint.
//! * [`scenario`] — [`Scenario`]: a serde bundle composing topology,
//!   population, a [`prop_workloads::TrafficScript`], and a [`FaultScript`]
//!   under one seed — the unit the experiment binaries and the sweep
//!   orchestrator replay.
//!
//! The [`FaultPlane`] trait itself lives in `prop-core` (re-exported here)
//! so the drivers can consult a plane without depending on the injector
//! implementations.
//!
//! Determinism is load-bearing: every injector owns a labelled fork of the
//! seed's RNG, the drivers consult the plane in event order, and composed
//! planes consult *every* child for *every* query — so the same
//! `(seed, script)` replays to bit-identical fault counters and final
//! overlay, which is what the golden-trace tests pin.

pub mod harness;
pub mod partition;
pub mod plane;
pub mod scenario;
pub mod script;

pub use harness::{FaultHarness, HarnessReport, ReplayResult};
pub use partition::{transit_bisection, Side};
pub use plane::{
    compile, ComposedPlane, CrashInjector, DupInjector, LossInjector, PartitionInjector,
    ReorderInjector, SpikeInjector,
};
pub use scenario::Scenario;
pub use script::{FaultEvent, FaultScript};

// The contract the drivers speak, defined next to them in `prop-core`.
pub use prop_core::fault::{Delivery, FaultCounters, FaultPlane, MsgKind};
