//! Declarative fault scenarios.
//!
//! A [`FaultScript`] is an ordered list of timed [`FaultEvent`]s — "at
//! t = 60 s, 10 % message loss begins", "at t = 120 s the transit core
//! partitions for 30 s", "peer 17 crashes at t = 90 s and restarts 20 s
//! later". Scripts are plain data (serde round-trippable), so experiments,
//! tests, and the CI fault matrix share scenario definitions instead of
//! each hand-wiring injectors.
//!
//! Rate-style events (loss / duplication / reordering) are *step changes*:
//! the probability set at `at_ms` stays in force until the next event of
//! the same kind (so `loss(0, 0.1)` + `loss(60_000, 0.0)` is "10 % loss
//! for the first minute"). Window-style events (spike, drift, partition,
//! crash) are self-contained `[at, at + duration)` intervals.

use serde::{Deserialize, Serialize};

/// One timed fault directive. Times are simulated milliseconds since
/// simulation start; peers are oracle member indices (physical identity).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// From `at_ms` on, drop each walk/exchange/probe/commit message with
    /// probability `prob` (until the next `Loss` event).
    Loss { at_ms: u64, prob: f64 },
    /// From `at_ms` on, deliver a second copy of each message with
    /// probability `prob` (until the next `Duplicate` event).
    Duplicate { at_ms: u64, prob: f64 },
    /// From `at_ms` on, delay each message by up to `max_extra_ms` extra
    /// milliseconds with probability `prob` — a message overtaken by later
    /// traffic (until the next `Reorder` event).
    Reorder { at_ms: u64, prob: f64, max_extra_ms: u64 },
    /// For `[at_ms, at_ms + duration_ms)`: every link carries `extra_ms`
    /// additional one-way latency (flat congestion plateau).
    LatencySpike { at_ms: u64, duration_ms: u64, extra_ms: u64 },
    /// For `[at_ms, at_ms + duration_ms)`: link latency drifts linearly up
    /// to `peak_extra_ms` at the window midpoint and back down (triangular
    /// profile) — a slow congestion build-up and drain.
    LatencyDrift { at_ms: u64, duration_ms: u64, peak_extra_ms: u64 },
    /// For `[at_ms, at_ms + heal_after_ms)`: the transit core is bisected;
    /// every message between peers on opposite sides is dropped. Which
    /// peer is on which side comes from
    /// [`crate::partition::transit_bisection`].
    Partition { at_ms: u64, heal_after_ms: u64 },
    /// Peer `peer` crashes at `at_ms` and restarts `restart_after_ms`
    /// later (`u64::MAX` ⇒ never). While down it launches no probes,
    /// receives nothing, and in-flight commits addressed to it abort.
    Crash { at_ms: u64, peer: usize, restart_after_ms: u64 },
}

impl FaultEvent {
    /// When the directive takes effect.
    pub fn at_ms(&self) -> u64 {
        match *self {
            FaultEvent::Loss { at_ms, .. }
            | FaultEvent::Duplicate { at_ms, .. }
            | FaultEvent::Reorder { at_ms, .. }
            | FaultEvent::LatencySpike { at_ms, .. }
            | FaultEvent::LatencyDrift { at_ms, .. }
            | FaultEvent::Partition { at_ms, .. }
            | FaultEvent::Crash { at_ms, .. } => at_ms,
        }
    }
}

/// An ordered fault scenario (see module docs for the semantics).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultScript {
    pub events: Vec<FaultEvent>,
}

impl FaultScript {
    /// The empty scenario: a perfect network.
    pub fn new() -> FaultScript {
        FaultScript::default()
    }

    /// Append any event.
    pub fn push(mut self, ev: FaultEvent) -> FaultScript {
        self.events.push(ev);
        self
    }

    /// Set the message-loss probability from `at_ms` on.
    pub fn loss(self, at_ms: u64, prob: f64) -> FaultScript {
        self.push(FaultEvent::Loss { at_ms, prob })
    }

    /// Set the duplication probability from `at_ms` on.
    pub fn duplicate(self, at_ms: u64, prob: f64) -> FaultScript {
        self.push(FaultEvent::Duplicate { at_ms, prob })
    }

    /// Set the reordering probability/magnitude from `at_ms` on.
    pub fn reorder(self, at_ms: u64, prob: f64, max_extra_ms: u64) -> FaultScript {
        self.push(FaultEvent::Reorder { at_ms, prob, max_extra_ms })
    }

    /// Add a flat congestion window.
    pub fn spike(self, at_ms: u64, duration_ms: u64, extra_ms: u64) -> FaultScript {
        self.push(FaultEvent::LatencySpike { at_ms, duration_ms, extra_ms })
    }

    /// Add a triangular congestion window.
    pub fn drift(self, at_ms: u64, duration_ms: u64, peak_extra_ms: u64) -> FaultScript {
        self.push(FaultEvent::LatencyDrift { at_ms, duration_ms, peak_extra_ms })
    }

    /// Add a transit-core partition window.
    pub fn partition(self, at_ms: u64, heal_after_ms: u64) -> FaultScript {
        self.push(FaultEvent::Partition { at_ms, heal_after_ms })
    }

    /// Add a crash/restart cycle for one peer.
    pub fn crash(self, at_ms: u64, peer: usize, restart_after_ms: u64) -> FaultScript {
        self.push(FaultEvent::Crash { at_ms, peer, restart_after_ms })
    }

    /// Events sorted by effect time (stable, so same-time events keep their
    /// authoring order). Injector compilation works on the sorted view;
    /// scripts themselves may be authored in any order.
    pub fn sorted(&self) -> Vec<FaultEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at_ms());
        evs
    }

    /// The partition windows `[start, end)` the script declares, sorted.
    pub fn partition_windows(&self) -> Vec<(u64, u64)> {
        let mut ws: Vec<(u64, u64)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Partition { at_ms, heal_after_ms } => {
                    Some((at_ms, at_ms.saturating_add(heal_after_ms)))
                }
                _ => None,
            })
            .collect();
        ws.sort_unstable();
        ws
    }

    /// Is some partition window active at `t_ms`?
    pub fn partition_active(&self, t_ms: u64) -> bool {
        self.partition_windows().iter().any(|&(s, e)| s <= t_ms && t_ms < e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> FaultScript {
        FaultScript::new()
            .loss(0, 0.1)
            .partition(60_000, 30_000)
            .crash(90_000, 17, 20_000)
            .spike(10_000, 5_000, 40)
            .loss(120_000, 0.0)
    }

    #[test]
    fn serde_round_trip() {
        let s = demo();
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultScript = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn sorted_orders_by_time() {
        let times: Vec<u64> = demo().sorted().iter().map(|e| e.at_ms()).collect();
        assert_eq!(times, vec![0, 10_000, 60_000, 90_000, 120_000]);
    }

    #[test]
    fn partition_windows_and_activity() {
        let s = demo();
        assert_eq!(s.partition_windows(), vec![(60_000, 90_000)]);
        assert!(!s.partition_active(59_999));
        assert!(s.partition_active(60_000));
        assert!(s.partition_active(89_999));
        assert!(!s.partition_active(90_000), "window is half-open");
    }
}
