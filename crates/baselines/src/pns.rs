//! PNS: Proximity Neighbor Selection for Chord and Pastry.
//!
//! When several nodes legally satisfy a routing-table entry, pick the
//! physically closest (Castro et al., "Exploiting network proximity in
//! peer-to-peer overlay networks"). For Chord, finger `i` of node `n` may
//! point at any node in `[n + 2^{i-1}, n + 2^i)`; the canonical choice is
//! the first one, PNS picks the nearest of the first few. For Pastry —
//! PNS's original home — *any* node with the right prefix+digit satisfies
//! a routing cell, so PNS picks the nearest over all of them.
//!
//! This is the *protocol-dependent* technique the paper contrasts PROP-G
//! against — it needs the DHT to offer entry flexibility — and the partner
//! in the "combine PROP-G with recent methods" ablation (A3): PNS shortens
//! fingers at build time, PROP-G keeps optimizing placements afterwards.

use prop_engine::SimRng;
use prop_netsim::LatencyOracle;
use prop_overlay::chord::{Chord, ChordParams};
use prop_overlay::pastry::{Pastry, PastryParams};
use prop_overlay::OverlayNet;
use std::sync::Arc;

/// Build a Chord overlay whose fingers are proximity-selected: among each
/// finger's legal candidates, take the one with the lowest physical latency
/// to the owning node (under the initial identity placement, where slot `i`
/// is peer `i` — i.e. selection happens at join time, as real PNS does).
pub fn build_pns_chord(
    params: ChordParams,
    oracle: Arc<LatencyOracle>,
    rng: &mut SimRng,
) -> (Chord, OverlayNet) {
    let o = Arc::clone(&oracle);
    Chord::build_with_selector(params, oracle, rng, move |slot, candidates, _i| {
        *candidates
            .iter()
            .min_by_key(|&&c| o.d(slot.index(), c.index()))
            .expect("candidates nonempty")
    })
}

/// Build a Pastry overlay with proximity-selected routing tables: every
/// cell takes the physically nearest node among all that legally fill it.
pub fn build_pns_pastry(
    params: PastryParams,
    oracle: Arc<LatencyOracle>,
    rng: &mut SimRng,
) -> (Pastry, OverlayNet) {
    let o = Arc::clone(&oracle);
    Pastry::build_with_selector(params, oracle, rng, move |slot, candidates| {
        *candidates
            .iter()
            .min_by_key(|&&c| o.d(slot.index(), c.index()))
            .expect("candidates nonempty")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::stats::Accumulator;
    use prop_netsim::{generate, TransitStubParams};
    use prop_overlay::{Lookup, Slot};

    fn oracle(n: usize, seed: u64) -> Arc<LatencyOracle> {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::ts_small(), &mut rng);
        Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng))
    }

    #[test]
    fn pns_lowers_mean_link_latency_vs_vanilla() {
        let o = oracle(120, 1);
        let mut rng = SimRng::seed_from(1);
        let (_, vanilla) = Chord::build(ChordParams::default(), Arc::clone(&o), &mut rng);
        let mut rng = SimRng::seed_from(1);
        let (_, pns) = build_pns_chord(ChordParams::default(), o, &mut rng);
        assert!(
            pns.mean_link_latency() < vanilla.mean_link_latency(),
            "PNS {:.1} should beat vanilla {:.1}",
            pns.mean_link_latency(),
            vanilla.mean_link_latency()
        );
    }

    #[test]
    fn pns_lookups_remain_correct_and_fast() {
        let o = oracle(80, 2);
        let mut rng = SimRng::seed_from(2);
        let (chord, net) = build_pns_chord(ChordParams::default(), o, &mut rng);
        let mut hops = Accumulator::new();
        for a in 0..80u32 {
            for b in 0..80u32 {
                if a != b {
                    let out = chord.lookup(&net, Slot(a), Slot(b)).unwrap();
                    hops.add(out.hops as f64);
                }
            }
        }
        assert!(hops.mean() < 8.0, "mean hops {}", hops.mean());
    }

    #[test]
    fn pns_overlay_connected() {
        let o = oracle(60, 3);
        let mut rng = SimRng::seed_from(3);
        let (_, net) = build_pns_chord(ChordParams::default(), o, &mut rng);
        assert!(net.graph().is_connected());
    }

    #[test]
    fn pns_pastry_lowers_mean_link_latency_vs_vanilla() {
        let o = oracle(120, 4);
        let mut rng = SimRng::seed_from(4);
        let (_, vanilla) = Pastry::build(PastryParams::default(), Arc::clone(&o), &mut rng);
        let mut rng = SimRng::seed_from(4);
        let (_, pns) = build_pns_pastry(PastryParams::default(), o, &mut rng);
        assert!(
            pns.mean_link_latency() < vanilla.mean_link_latency(),
            "PNS-Pastry {:.1} should beat vanilla {:.1}",
            pns.mean_link_latency(),
            vanilla.mean_link_latency()
        );
    }

    #[test]
    fn pns_pastry_routes_correctly() {
        let o = oracle(80, 5);
        let mut rng = SimRng::seed_from(5);
        let (pastry, net) = build_pns_pastry(PastryParams::default(), o, &mut rng);
        let mut hops = Accumulator::new();
        for a in (0..80u32).step_by(3) {
            for b in 0..80u32 {
                if a != b {
                    hops.add(pastry.lookup(&net, Slot(a), Slot(b)).unwrap().hops as f64);
                }
            }
        }
        assert!(hops.mean() < 5.0, "mean hops {}", hops.mean());
    }
}
