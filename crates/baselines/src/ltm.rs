//! LTM: Location-aware Topology Matching (Liu et al., TPDS '05).
//!
//! Each peer periodically floods a *detector* with a small TTL (2). Every
//! receiver learns its distance to the source, giving the source a latency
//! map of its ≤2-hop region. The peer then:
//!
//! 1. **cuts slow redundant links**: a direct link `u–w` is redundant when
//!    some common neighbor `x` offers a no-slower relay path
//!    (`d(u,x) + d(x,w) ≤ d(u,w)`). The alternative path stays inside the
//!    detected region, so cutting cannot disconnect the overlay;
//! 2. **adds closer nodes**: the nearest 2-hop neighbor that beats the
//!    peer's current worst link becomes a direct neighbor.
//!
//! Unlike PROP-O, cut and add are not paired per node, so degrees drift —
//! exactly the behavior the PROP paper criticizes ("free modification of
//! connections … impairs the natural feature of self-organizing overlay").
//!
//! The driver runs on the same event kernel as [`prop_core::ProtocolSim`]
//! with one optimization event per peer per `interval`, so LTM and PROP
//! curves share a time axis.

use prop_engine::{Duration, EventQueue, SimRng, SimTime};
use prop_overlay::{OverlayNet, Slot};
use serde::{Deserialize, Serialize};

/// LTM parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LtmConfig {
    /// Detector TTL (the paper's "small region"; LTM uses 2).
    pub detector_ttl: u32,
    /// Per-step cap on link cuts (LTM cuts "the most" redundant links; one
    /// conservative cut per step keeps the overlay from thrashing).
    pub max_cuts_per_step: usize,
    /// Never cut below this degree (keeps lookup fan-out usable).
    pub min_degree: usize,
    /// Never add beyond this degree — real Gnutella clients cap their
    /// connection count, and without a cap LTM densifies without bound
    /// (every step finds *some* 2-hop node beating the worst link).
    pub max_degree: usize,
    /// Optimization cadence per peer.
    pub interval: Duration,
}

impl Default for LtmConfig {
    fn default() -> Self {
        LtmConfig {
            detector_ttl: 2,
            max_cuts_per_step: 1,
            min_degree: 2,
            max_degree: 16,
            interval: Duration::from_minutes(1),
        }
    }
}

/// Cumulative LTM message accounting (detector floods dominate).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LtmOverhead {
    pub steps: u64,
    pub detector_msgs: u64,
    pub cuts: u64,
    pub adds: u64,
}

enum Ev {
    Optimize(Slot),
}

/// An overlay running LTM.
pub struct LtmSim {
    net: OverlayNet,
    cfg: LtmConfig,
    events: EventQueue<Ev>,
    overhead: LtmOverhead,
}

impl LtmSim {
    /// Start LTM on `net`, one desynchronized optimize loop per live slot.
    pub fn new(net: OverlayNet, cfg: LtmConfig, rng: &mut SimRng) -> Self {
        let mut rng = rng.fork("ltm-sim");
        let mut events = EventQueue::new();
        for slot in net.graph().live_slots() {
            let offset = Duration::from_millis(rng.range(0..cfg.interval.as_millis().max(1)));
            events.schedule_at(SimTime::ZERO + offset, Ev::Optimize(slot));
        }
        LtmSim { net, cfg, events, overhead: LtmOverhead::default() }
    }

    pub fn net(&self) -> &OverlayNet {
        &self.net
    }

    /// Consume the simulation, keeping the optimized overlay.
    pub fn into_net(self) -> OverlayNet {
        self.net
    }

    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    pub fn overhead(&self) -> LtmOverhead {
        self.overhead
    }

    /// Run all events up to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((_, ev)) = self.events.pop_until(deadline) {
            match ev {
                Ev::Optimize(slot) => {
                    if self.net.graph().is_alive(slot) {
                        self.optimize(slot);
                        self.events.schedule_in(self.cfg.interval, Ev::Optimize(slot));
                    }
                }
            }
        }
    }

    /// Advance by `window`.
    pub fn run_for(&mut self, window: Duration) {
        let deadline = self.now() + window;
        self.run_until(deadline);
    }

    /// One LTM optimization step at `u`: flood detector, cut redundant
    /// links, add the best 2-hop neighbor.
    fn optimize(&mut self, u: Slot) {
        self.overhead.steps += 1;
        let g = self.net.graph();
        let direct: Vec<Slot> = g.neighbors(u).to_vec();
        // Detector flood cost: every node within the TTL region forwards
        // once; with TTL 2 that is |N(u)| + Σ_{x∈N(u)} |N(x)| messages.
        let flood_cost: u64 =
            direct.len() as u64 + direct.iter().map(|&x| g.degree(x) as u64).sum::<u64>();
        self.overhead.detector_msgs += flood_cost;

        // ---- 1. cut slow redundant links ----
        // Candidates: direct links with a no-slower 2-hop relay via another
        // direct neighbor; cut the slowest first.
        let mut cuttable: Vec<(u32, Slot)> = Vec::new();
        for &w in &direct {
            let duw = self.net.d(u, w);
            let relay_exists = direct.iter().any(|&x| {
                x != w
                    && self.net.graph().has_edge(x, w)
                    && self.net.d(u, x) + self.net.d(x, w) <= duw
            });
            if relay_exists {
                cuttable.push((duw, w));
            }
        }
        cuttable.sort_by_key(|&(duw, _)| std::cmp::Reverse(duw));
        let mut cuts = 0;
        for (_, w) in cuttable {
            if cuts >= self.cfg.max_cuts_per_step {
                break;
            }
            if self.net.graph().degree(u) <= self.cfg.min_degree
                || self.net.graph().degree(w) <= self.cfg.min_degree
            {
                continue;
            }
            self.net.graph_mut().remove_edge(u, w);
            self.overhead.cuts += 1;
            cuts += 1;
        }

        // ---- 2. add the closest 2-hop neighbor that beats the worst link ----
        if self.net.graph().degree(u) >= self.cfg.max_degree {
            return;
        }
        let direct_now: Vec<Slot> = self.net.graph().neighbors(u).to_vec();
        let worst = direct_now.iter().map(|&x| self.net.d(u, x)).max().unwrap_or(0);
        let mut best: Option<(u32, Slot)> = None;
        for &x in &direct_now {
            for &w in self.net.graph().neighbors(x) {
                if w == u || self.net.graph().has_edge(u, w) {
                    continue;
                }
                let duw = self.net.d(u, w);
                if duw < worst && best.is_none_or(|(b, _)| duw < b) {
                    best = Some((duw, w));
                }
            }
        }
        if let Some((_, w)) = best {
            self.net.graph_mut().add_edge(u, w);
            self.overhead.adds += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netsim::{generate, LatencyOracle, TransitStubParams};
    use prop_overlay::gnutella::{Gnutella, GnutellaParams};
    use std::sync::Arc;

    fn ltm_sim(n: usize, seed: u64) -> LtmSim {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
        let (_, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
        LtmSim::new(net, LtmConfig::default(), &mut rng)
    }

    #[test]
    fn ltm_reduces_mean_link_latency() {
        let mut sim = ltm_sim(30, 1);
        let before = sim.net().mean_link_latency();
        sim.run_for(Duration::from_minutes(30));
        let after = sim.net().mean_link_latency();
        assert!(after < before, "LTM should reduce mean link latency: {before:.1} → {after:.1}");
        assert!(sim.overhead().cuts + sim.overhead().adds > 0);
    }

    #[test]
    fn ltm_preserves_connectivity() {
        let mut sim = ltm_sim(30, 2);
        for _ in 0..20 {
            sim.run_for(Duration::from_minutes(2));
            assert!(sim.net().graph().is_connected());
        }
    }

    #[test]
    fn ltm_respects_min_degree() {
        let mut sim = ltm_sim(30, 3);
        sim.run_for(Duration::from_minutes(40));
        let min = sim.net().graph().min_degree().unwrap();
        assert!(min >= sim.cfg.min_degree, "min degree {min}");
    }

    #[test]
    fn ltm_changes_degree_sequence() {
        // The PROP paper's critique: LTM does not preserve degrees.
        let mut sim = ltm_sim(40, 4);
        let before = sim.net().graph().degree_sequence();
        sim.run_for(Duration::from_minutes(40));
        let after = sim.net().graph().degree_sequence();
        assert_ne!(before, after, "expected LTM to reshape the degree distribution");
    }

    #[test]
    fn detector_messages_accumulate() {
        let mut sim = ltm_sim(20, 5);
        sim.run_for(Duration::from_minutes(5));
        let o = sim.overhead();
        assert!(o.steps > 0);
        assert!(o.detector_msgs > o.steps, "TTL-2 floods cost several msgs each");
    }
}
