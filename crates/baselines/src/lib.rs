//! # prop-baselines — the comparison schemes from the paper's §2/§5
//!
//! PROP is evaluated against the location-aware techniques that preceded it:
//!
//! * [`ltm`] — **Location-aware Topology Matching** (Liu et al., TPDS '05),
//!   the unstructured-overlay baseline of Fig. 7: peers flood a small-TTL
//!   detector, cut slow redundant links, and connect to closer two-hop
//!   neighbors. Free cut/add means node degrees drift — the property the
//!   paper criticizes and PROP-O fixes.
//! * [`pns`] — **Proximity Neighbor Selection** for Chord and Pastry:
//!   routing entries are chosen among the legal candidates by physical
//!   closeness (protocol-dependent; used in the "combine with PROP-G"
//!   ablation).
//! * [`prs`] — **Proximity Route Selection** for Chord: next hops are
//!   chosen by proximity at lookup time (completing the paper's §2
//!   PNS/PRS/PIS taxonomy).
//! * [`pis`] — **Proximity Identifier Selection** (topologically-aware
//!   CAN, Ratnasamy et al.): landmark-derived join points place physically
//!   close peers in adjacent zones.
//! * [`selfish`] — the §3.1 strawman: every node greedily replaces its farthest
//!   neighbor with the nearest candidate it can find, without cooperating —
//!   good for the node, not for the system.

pub mod ltm;
pub mod pis;
pub mod pns;
pub mod prs;
pub mod selfish;

pub use ltm::{LtmConfig, LtmSim};
pub use prs::PrsChord;
