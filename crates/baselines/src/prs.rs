//! PRS: Proximity Route Selection for Chord.
//!
//! The third of the paper's §2 taxonomy (PNS / **PRS** / PIS). Where PNS
//! picks *table entries* by proximity at build time, PRS picks the *next
//! hop* by proximity at lookup time: among the routing entries that make
//! progress toward the key, prefer a physically close one — as long as it
//! still makes substantial progress, so the hop count stays O(log n).
//!
//! Concretely (near-greedy with proximity tie-breaking, cf. Gummadi et
//! al.'s routing-flexibility study): among entries whose identifier lies in
//! `(cur, key]`, candidates whose remaining gap is within 2× of the best
//! one are considered ties — taking one costs at most a single extra
//! identifier halving — and the physically nearest tie is forwarded to.
//! Hop counts stay essentially greedy while each hop gets cheaper.
//! Requires no construction changes — it wraps any already-built [`Chord`],
//! which is exactly the "protocol-dependent" flexibility constraint the
//! paper discusses (PRS needs more than one candidate per hop to exist).

use prop_overlay::chord::Chord;
use prop_overlay::{Lookup, OverlayNet, RouteOutcome, Slot};

/// A Chord whose lookups use proximity route selection.
pub struct PrsChord {
    pub chord: Chord,
}

impl PrsChord {
    pub fn new(chord: Chord) -> Self {
        PrsChord { chord }
    }

    /// PRS route from `src` to the owner of `key`: the slot path.
    pub fn route_path(&self, net: &OverlayNet, src: Slot, key: u64) -> Vec<Slot> {
        let dst = self.chord.owner_of(key);
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let cur_gap = key.wrapping_sub(self.chord.id(cur));
            // Entries in (cur, key], i.e. strictly reducing the gap.
            let progressing: Vec<(u64, Slot)> = self
                .chord
                .entries(cur)
                .iter()
                .map(|&e| (key.wrapping_sub(self.chord.id(e)), e))
                .filter(|&(gap, _)| gap < cur_gap)
                .collect();
            let next = if progressing.is_empty() {
                self.chord.successor(cur)
            } else {
                // Near-greedy with proximity tie-breaking: candidates whose
                // remaining gap is within 2× of the best are "ties" (they
                // cost at most one extra halving); forward to the
                // physically nearest tie.
                let best_gap = progressing.iter().map(|&(g, _)| g).min().unwrap();
                progressing
                    .iter()
                    .copied()
                    .filter(|&(g, _)| g <= best_gap.saturating_mul(2))
                    .min_by_key(|&(_, e)| net.d(cur, e))
                    .unwrap()
                    .1
            };
            debug_assert_ne!(next, cur, "PRS made no progress");
            path.push(next);
            cur = next;
        }
        path
    }
}

impl Lookup for PrsChord {
    fn lookup(&self, net: &OverlayNet, src: Slot, dst: Slot) -> Option<RouteOutcome> {
        let path = self.route_path(net, src, self.chord.id(dst));
        debug_assert_eq!(*path.last().unwrap(), dst);
        let mut latency = 0u64;
        for w in path.windows(2) {
            latency += net.d(w[0], w[1]) as u64 + net.proc_delay(w[1]) as u64;
        }
        Some(RouteOutcome { latency_ms: latency, hops: (path.len() - 1) as u32 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::stats::Accumulator;
    use prop_engine::SimRng;
    use prop_netsim::{generate, LatencyOracle, TransitStubParams};
    use prop_overlay::chord::ChordParams;
    use std::sync::Arc;

    fn setup(n: usize, seed: u64) -> (PrsChord, OverlayNet) {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::ts_small(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
        let (chord, net) = Chord::build(ChordParams::default(), oracle, &mut rng);
        (PrsChord::new(chord), net)
    }

    #[test]
    fn prs_lookups_terminate_at_owner() {
        let (prs, net) = setup(60, 1);
        for a in 0..60u32 {
            for b in 0..60u32 {
                let out = prs.lookup(&net, Slot(a), Slot(b)).unwrap();
                if a == b {
                    assert_eq!(out.hops, 0);
                }
            }
        }
    }

    #[test]
    fn prs_hops_stay_logarithmic() {
        let (prs, net) = setup(80, 2);
        let mut hops = Accumulator::new();
        for a in 0..80u32 {
            for b in 0..80u32 {
                if a != b {
                    hops.add(prs.lookup(&net, Slot(a), Slot(b)).unwrap().hops as f64);
                }
            }
        }
        // The halving rule guarantees O(log n); log₂(80) ≈ 6.3.
        assert!(hops.mean() < 8.0, "mean hops {}", hops.mean());
        assert!(hops.max() < 64.0);
    }

    #[test]
    fn prs_latency_beats_greedy_chord() {
        let (prs, net) = setup(150, 3);
        let mut greedy = Accumulator::new();
        let mut prs_lat = Accumulator::new();
        let mut rng = SimRng::seed_from(4);
        for _ in 0..3000 {
            let a = Slot(rng.range(0..150u32));
            let b = Slot(rng.range(0..150u32));
            if a == b {
                continue;
            }
            greedy.add(prs.chord.lookup(&net, a, b).unwrap().latency_ms as f64);
            prs_lat.add(prs.lookup(&net, a, b).unwrap().latency_ms as f64);
        }
        assert!(
            prs_lat.mean() < greedy.mean(),
            "PRS {:.1} should beat greedy {:.1}",
            prs_lat.mean(),
            greedy.mean()
        );
    }

    #[test]
    fn prs_gap_monotonically_decreases() {
        let (prs, net) = setup(50, 5);
        let src = Slot(0);
        let dst = Slot(31);
        let key = prs.chord.id(dst);
        let path = prs.route_path(&net, src, key);
        let mut prev = key.wrapping_sub(prs.chord.id(src));
        for &s in &path[1..] {
            let gap = key.wrapping_sub(prs.chord.id(s));
            assert!(gap < prev);
            prev = gap;
        }
    }
}
