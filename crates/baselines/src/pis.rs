//! PIS: Proximity Identifier Selection — topologically-aware CAN.
//!
//! Ratnasamy et al.'s landmark binning: a joining node measures its latency
//! to a small fixed set of landmark hosts and derives its overlay
//! coordinates from those measurements, so that nodes that are close in the
//! physical network receive nearby zones. With two landmarks on the unit
//! square, peer `p` joins at
//! `( d(p, L₀)/D, d(p, L₁)/D )` (`D` = the largest observed landmark
//! distance), plus a deterministic per-peer jitter to break ties between
//! hosts in the same stub domain.

use prop_engine::SimRng;
use prop_netsim::oracle::MemberIdx;
use prop_netsim::LatencyOracle;
use prop_overlay::can::Can;
use prop_overlay::OverlayNet;
use std::sync::Arc;

/// Landmark-derived CAN join points for every member of `oracle`.
///
/// `landmarks` are member indices acting as L₀ and L₁ (the real system uses
/// well-known hosts; any two far-apart members work). Jitter is a few
/// percent of the space, deterministic per seed.
pub fn pis_join_points(
    oracle: &LatencyOracle,
    landmarks: [MemberIdx; 2],
    rng: &mut SimRng,
) -> Vec<[f64; 2]> {
    let mut rng = rng.fork("pis-points");
    let n = oracle.len();
    let d_max = (0..n)
        .flat_map(|p| landmarks.iter().map(move |&l| oracle.d(p, l)))
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    (0..n)
        .map(|p| {
            let x = oracle.d(p, landmarks[0]) as f64 / d_max;
            let y = oracle.d(p, landmarks[1]) as f64 / d_max;
            // Jitter keeps co-located peers from identical points (which
            // would degenerate zone splits), while preserving locality.
            let jx = (rng.unit() - 0.5) * 0.04;
            let jy = (rng.unit() - 0.5) * 0.04;
            [(x + jx).clamp(0.0, 1.0 - 1e-9), (y + jy).clamp(0.0, 1.0 - 1e-9)]
        })
        .collect()
}

/// Pick two far-apart landmark members: the first is arbitrary, the second
/// maximizes distance from the first, then re-pick the first to maximize
/// distance from the second (one refinement round).
pub fn pick_landmarks(oracle: &LatencyOracle) -> [MemberIdx; 2] {
    let n = oracle.len();
    assert!(n >= 2);
    let l1 = (0..n).max_by_key(|&p| oracle.d(0, p)).unwrap();
    let l0 = (0..n).max_by_key(|&p| oracle.d(l1, p)).unwrap();
    [l0, l1]
}

/// Build a topologically-aware (PIS) CAN.
pub fn build_pis_can(oracle: Arc<LatencyOracle>, rng: &mut SimRng) -> (Can, OverlayNet) {
    let landmarks = pick_landmarks(&oracle);
    let pts = pis_join_points(&oracle, landmarks, rng);
    Can::build_at(pts, oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netsim::{generate, TransitStubParams};
    use prop_overlay::can::Can;

    fn oracle(n: usize, seed: u64) -> Arc<LatencyOracle> {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::ts_small(), &mut rng);
        Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng))
    }

    #[test]
    fn landmarks_are_far_apart() {
        let o = oracle(60, 1);
        let [l0, l1] = pick_landmarks(&o);
        let d = o.d(l0, l1);
        let mean = o.mean_pairwise_latency();
        assert!(d as f64 >= mean, "landmarks {d}ms apart vs mean {mean:.0}ms");
    }

    #[test]
    fn join_points_in_unit_square() {
        let o = oracle(50, 2);
        let pts = pis_join_points(&o, pick_landmarks(&o), &mut SimRng::seed_from(2));
        for p in &pts {
            assert!((0.0..1.0).contains(&p[0]) && (0.0..1.0).contains(&p[1]));
        }
    }

    #[test]
    fn physically_close_peers_get_close_points() {
        let o = oracle(60, 3);
        let pts = pis_join_points(&o, pick_landmarks(&o), &mut SimRng::seed_from(3));
        // Average point distance between the 5% physically closest pairs vs
        // the 5% farthest pairs.
        let mut pairs: Vec<(u32, f64)> = Vec::new();
        for a in 0..60 {
            for b in (a + 1)..60 {
                let dp = ((pts[a][0] - pts[b][0]).powi(2) + (pts[a][1] - pts[b][1]).powi(2)).sqrt();
                pairs.push((o.d(a, b), dp));
            }
        }
        pairs.sort_by_key(|&(d, _)| d);
        let k = pairs.len() / 20;
        let close: f64 = pairs[..k].iter().map(|&(_, dp)| dp).sum::<f64>() / k as f64;
        let far: f64 = pairs[pairs.len() - k..].iter().map(|&(_, dp)| dp).sum::<f64>() / k as f64;
        assert!(close < far, "close pairs {close:.3} should beat far pairs {far:.3}");
    }

    #[test]
    fn pis_can_beats_random_can_on_link_latency() {
        let o = oracle(100, 4);
        let mut rng = SimRng::seed_from(4);
        let (_, random_net) = Can::build(Arc::clone(&o), &mut rng);
        let (_, pis_net) = build_pis_can(o, &mut rng);
        assert!(
            pis_net.mean_link_latency() < random_net.mean_link_latency(),
            "PIS {:.1} vs random {:.1}",
            pis_net.mean_link_latency(),
            random_net.mean_link_latency()
        );
    }

    #[test]
    fn pis_can_is_valid() {
        let o = oracle(40, 5);
        let (_, net) = build_pis_can(o, &mut SimRng::seed_from(5));
        assert!(net.graph().is_connected());
    }
}
