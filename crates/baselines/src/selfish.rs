//! The §3.1 strawman: *selfish* nearest-neighbor rewiring.
//!
//! "A traditional way … is to let each source node select one nearest node
//! in the candidate list and establish the connection with it. This selfish
//! method … is beneficial to the source node itself but is not always
//! beneficial to (or in some case may actually detract from) system-wide
//! optimization."
//!
//! Every step, a node finds its nearest 2-hop candidate, connects to it,
//! and drops its own farthest link — no cooperation, no degree preservation
//! for anyone else (the candidate's degree grows, the dropped neighbor's
//! shrinks). A drop is only performed when the dropped neighbor retains a
//! 2-hop alternative path, which keeps the overlay connected without
//! requiring global coordination. The A4 ablation compares the resulting
//! system-wide average latency against cooperative PROP.

use prop_engine::{Duration, EventQueue, SimRng, SimTime};
use prop_overlay::{OverlayNet, Slot};
use serde::{Deserialize, Serialize};

/// Selfish rewiring parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SelfishConfig {
    /// Per-peer step cadence (matched to PROP's `INIT_TIMER` for fair
    /// time-axis comparisons).
    pub interval: Duration,
    /// Don't drop a link if either endpoint would fall below this degree.
    pub min_degree: usize,
}

impl Default for SelfishConfig {
    fn default() -> Self {
        SelfishConfig { interval: Duration::from_minutes(1), min_degree: 2 }
    }
}

enum Ev {
    Step(Slot),
}

/// An overlay running selfish rewiring.
pub struct SelfishSim {
    net: OverlayNet,
    cfg: SelfishConfig,
    events: EventQueue<Ev>,
    pub rewires: u64,
}

impl SelfishSim {
    pub fn new(net: OverlayNet, cfg: SelfishConfig, rng: &mut SimRng) -> Self {
        let mut rng = rng.fork("selfish-sim");
        let mut events = EventQueue::new();
        for slot in net.graph().live_slots() {
            let offset = Duration::from_millis(rng.range(0..cfg.interval.as_millis().max(1)));
            events.schedule_at(SimTime::ZERO + offset, Ev::Step(slot));
        }
        SelfishSim { net, cfg, events, rewires: 0 }
    }

    pub fn net(&self) -> &OverlayNet {
        &self.net
    }

    pub fn net_mut(&mut self) -> &mut OverlayNet {
        &mut self.net
    }

    /// Consume the simulation, keeping the rewired overlay.
    pub fn into_net(self) -> OverlayNet {
        self.net
    }

    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// A freshly joined slot starts stepping one interval from now. Its
    /// tick is scheduled deterministically (no random offset): joins under
    /// a scripted traffic plane must not disturb the event order of
    /// already-scheduled peers.
    pub fn handle_join(&mut self, slot: Slot) {
        self.events.schedule_in(self.cfg.interval, Ev::Step(slot));
    }

    /// Departures need no queue surgery: a dead slot's pending tick is
    /// retired by the `is_alive` check when it fires.
    pub fn handle_leave(&mut self, _slot: Slot, _affected: &[Slot]) {}

    pub fn run_for(&mut self, window: Duration) {
        let deadline = self.now() + window;
        self.run_until(deadline);
    }

    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((_, ev)) = self.events.pop_until(deadline) {
            match ev {
                Ev::Step(slot) => {
                    if self.net.graph().is_alive(slot) {
                        self.step(slot);
                        self.events.schedule_in(self.cfg.interval, Ev::Step(slot));
                    }
                }
            }
        }
    }

    fn step(&mut self, u: Slot) {
        let g = self.net.graph();
        let direct: Vec<Slot> = g.neighbors(u).to_vec();
        if direct.len() <= self.cfg.min_degree {
            return;
        }
        // Nearest 2-hop candidate.
        let mut best: Option<(u32, Slot)> = None;
        for &x in &direct {
            for &w in g.neighbors(x) {
                if w != u && !g.has_edge(u, w) {
                    let d = self.net.d(u, w);
                    if best.is_none_or(|(b, _)| d < b) {
                        best = Some((d, w));
                    }
                }
            }
        }
        let Some((d_new, w)) = best else { return };
        // Farthest current neighbor, droppable only if it keeps a 2-hop
        // alternative to u and stays above the degree floor.
        let mut drop: Option<(u32, Slot)> = None;
        for &x in &direct {
            let dux = self.net.d(u, x);
            if dux <= d_new {
                continue; // not an improvement
            }
            if g.degree(x) <= self.cfg.min_degree {
                continue;
            }
            let has_alt = g.neighbors(x).iter().any(|&y| y != u && g.has_edge(y, u));
            if has_alt && drop.is_none_or(|(b, _)| dux > b) {
                drop = Some((dux, x));
            }
        }
        let Some((_, victim)) = drop else { return };
        self.net.graph_mut().remove_edge(u, victim);
        self.net.graph_mut().add_edge(u, w);
        self.rewires += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netsim::{generate, LatencyOracle, TransitStubParams};
    use prop_overlay::gnutella::{Gnutella, GnutellaParams};
    use std::sync::Arc;

    fn sim(n: usize, seed: u64) -> SelfishSim {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
        let (_, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
        SelfishSim::new(net, SelfishConfig::default(), &mut rng)
    }

    #[test]
    fn selfish_rewiring_happens_and_stays_connected() {
        let mut s = sim(30, 1);
        for _ in 0..15 {
            s.run_for(Duration::from_minutes(2));
            assert!(s.net().graph().is_connected());
        }
        assert!(s.rewires > 0);
    }

    #[test]
    fn selfish_does_not_preserve_degree_sequence() {
        let mut s = sim(40, 2);
        let before = s.net().graph().degree_sequence();
        s.run_for(Duration::from_minutes(40));
        assert!(s.rewires > 0);
        assert_ne!(before, s.net().graph().degree_sequence());
    }

    #[test]
    fn respects_degree_floor() {
        let mut s = sim(30, 3);
        s.run_for(Duration::from_minutes(40));
        assert!(s.net().graph().min_degree().unwrap() >= s.cfg.min_degree);
    }
}
