//! Flooding message cost.
//!
//! Latency is only half of a flooding overlay's economics: every query is
//! *broadcast* through the TTL region, so each query costs as many
//! messages as there are edges it crosses. Topology optimizers move this
//! number — densifying schemes (LTM with a generous cap) make every query
//! more expensive even as they make it faster, while degree-preserving
//! PROP leaves it untouched. This module counts it exactly.

use prop_overlay::{Adjacency, OverlayNet, Slot};
use rayon::prelude::*;

/// Number of messages a TTL-limited flood from `src` generates: each node
/// reached with remaining TTL > 0 forwards to all neighbors except the one
/// it received from (classic Gnutella forwarding, duplicates included —
/// that is what makes flooding expensive).
///
/// Generic over [`Adjacency`]: the count depends only on degrees and the
/// reached set, and both representations present identical rows, so the
/// result is the same u64 either way.
pub fn flood_messages(g: &impl Adjacency, src: Slot, ttl: u32) -> u64 {
    // BFS levels: level[v] = hop distance from src (≤ ttl reachable set).
    let n = g.num_slots();
    let mut level = vec![u32::MAX; n];
    level[src.index()] = 0;
    let mut frontier = vec![src];
    let mut msgs: u64 = 0;
    for depth in 0..ttl {
        let mut next = Vec::new();
        for &u in &frontier {
            // u forwards to every neighbor except the link the query came
            // from (degree − 1 for non-source; the source sends to all).
            let fanout =
                if u == src { g.degree(u) as u64 } else { (g.degree(u) as u64).saturating_sub(1) };
            msgs += fanout;
            for &v in g.neighbors(u) {
                if level[v.index()] == u32::MAX {
                    level[v.index()] = depth + 1;
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    msgs
}

/// Mean flood cost over a sample of sources. Runs over the net's CSR view
/// when it is current, the legacy rows otherwise — same u64 totals.
pub fn mean_flood_messages(net: &OverlayNet, sources: &[Slot], ttl: u32) -> f64 {
    if sources.is_empty() {
        return f64::NAN;
    }
    let total: u64 = match net.csr() {
        Some(view) => sources.iter().map(|&s| flood_messages(view, s, ttl)).sum(),
        None => sources.iter().map(|&s| flood_messages(net.graph(), s, ttl)).sum(),
    };
    total as f64 / sources.len() as f64
}

/// [`mean_flood_messages`] fanned out over rayon workers. Message counts
/// are integers, so the u64 total — and therefore the mean — is
/// bit-identical to the serial function under any reduction order.
pub fn par_mean_flood_messages(net: &OverlayNet, sources: &[Slot], ttl: u32) -> f64 {
    if sources.is_empty() {
        return f64::NAN;
    }
    let total: u64 = match net.csr() {
        Some(view) => sources.par_iter().map(|&s| flood_messages(view, s, ttl)).sum(),
        None => sources.par_iter().map(|&s| flood_messages(net.graph(), s, ttl)).sum(),
    };
    total as f64 / sources.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_overlay::LogicalGraph;

    fn ring(n: u32) -> LogicalGraph {
        let mut g = LogicalGraph::new(n as usize);
        for i in 0..n {
            g.add_edge(Slot(i), Slot((i + 1) % n));
        }
        g
    }

    #[test]
    fn ring_flood_counts() {
        // Ring of 8, TTL 2 from node 0: node 0 sends 2; nodes 1 and 7 each
        // forward 1 ⇒ 4 messages.
        let g = ring(8);
        assert_eq!(flood_messages(&g, Slot(0), 2), 4);
        // TTL 1: just the source's two sends.
        assert_eq!(flood_messages(&g, Slot(0), 1), 2);
        assert_eq!(flood_messages(&g, Slot(0), 0), 0);
    }

    #[test]
    fn star_flood_counts() {
        // Star center 0 with 5 leaves, TTL 2 from the center: center sends
        // 5; each leaf has degree 1 so forwards 0 ⇒ 5.
        let mut g = LogicalGraph::new(6);
        for i in 1..6u32 {
            g.add_edge(Slot(0), Slot(i));
        }
        assert_eq!(flood_messages(&g, Slot(0), 2), 5);
        // From a leaf with TTL 2: leaf sends 1, center forwards 4 ⇒ 5.
        assert_eq!(flood_messages(&g, Slot(1), 2), 5);
    }

    #[test]
    fn flood_cost_grows_with_density() {
        let sparse = ring(12);
        let mut dense = ring(12);
        for i in 0..12u32 {
            dense.add_edge(Slot(i), Slot((i + 2) % 12));
        }
        assert!(
            flood_messages(&dense, Slot(0), 3) > flood_messages(&sparse, Slot(0), 3),
            "denser graphs must cost more per flood"
        );
    }

    #[test]
    fn parallel_mean_matches_serial_bitwise() {
        use prop_engine::SimRng;
        use prop_netsim::{generate, LatencyOracle, TransitStubParams};
        use prop_overlay::{OverlayNet, Placement};
        use std::sync::Arc;

        let mut rng = SimRng::seed_from(20);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, 12, &mut rng));
        let mut g = ring(12);
        for i in 0..12u32 {
            g.add_edge(Slot(i), Slot((i + 3) % 12));
        }
        let net = OverlayNet::new(g, Placement::identity(12), oracle);
        let sources: Vec<Slot> = (0..12u32).map(Slot).collect();
        let serial = mean_flood_messages(&net, &sources, 4);
        let parallel = par_mean_flood_messages(&net, &sources, 4);
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn ttl_exhausts_on_small_graphs() {
        // Once everything is reached, deeper TTLs stop adding reach but the
        // frontier empties, so the count converges.
        let g = ring(6);
        let full = flood_messages(&g, Slot(0), 10);
        let deeper = flood_messages(&g, Slot(0), 20);
        assert_eq!(full, deeper);
    }
}
