//! The measurement plane's determinism machinery.
//!
//! Every figure panel measures the overlay by running thousands of lookups
//! over a pair workload. The plane parallelizes that over rayon workers
//! under one contract: **the parallel result is bit-identical to the serial
//! result, for every worker count.** Two mechanisms deliver it:
//!
//! * **Exact integer accumulation** wherever the measured quantities are
//!   integers (lookup latency in ms, hops, flood message counts): integer
//!   addition is associative and commutative, so any reduction order — any
//!   chunking, any number of workers, rayon's join tree included — produces
//!   the same totals, and the floating-point mean is computed exactly once
//!   from them.
//! * **Fixed-size chunking** where the per-pair quantity is itself a float
//!   (path stretch is a latency ratio): the pair list is split into
//!   [`MEASURE_CHUNK`]-sized chunks — a constant, *never* a function of the
//!   worker count — each chunk is summed sequentially, and the per-chunk
//!   partials are folded in chunk-index order. The serial path runs the
//!   identical chunked computation, so parallel == serial bit-for-bit even
//!   though f64 addition is not associative.
//!
//! Each worker owns a [`prop_overlay::FloodScratch`], so flooding overlays
//! allocate nothing per lookup, and entry points prefetch the oracle rows
//! of every slot named by the workload (one batched, rayon-parallel warm —
//! see [`warm_pair_rows`]) so row-cache misses become parallel Dijkstras up
//! front instead of contended stalls inside the measurement loop.

use prop_overlay::{OverlayNet, Slot};

/// Chunk size for the measurement plane's pair-list decomposition.
///
/// This is the determinism anchor for float-valued metrics: both the serial
/// and parallel paths sum per-chunk partials over exactly these chunks and
/// fold them in chunk-index order. It must stay a constant — deriving it
/// from the worker count would make results depend on the machine. 256
/// pairs amortize the per-chunk scratch setup while still splitting a
/// 2,000-pair sample round across every core of any machine this runs on.
pub const MEASURE_CHUNK: usize = 256;

/// Prefetch the oracle rows behind a pair workload: dedups every slot named
/// in `pairs` — a Zipf workload names hot sources hundreds of times — and
/// batch-warms their rows exactly once each (no-op on the dense tier,
/// rayon-parallel Dijkstras on the row-cache tier, exact-escalation-cache
/// warm-up on the coordinate-embedded tier). Measurement entry points call
/// this before fanning out so workers start from a warm cache.
pub fn warm_pair_rows(net: &OverlayNet, pairs: &[(Slot, Slot)]) {
    let mut slots: Vec<Slot> = Vec::with_capacity(pairs.len() * 2);
    for &(a, b) in pairs {
        slots.push(a);
        slots.push(b);
    }
    slots.sort_unstable();
    slots.dedup();
    net.warm_latency_rows(&slots);
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::SimRng;
    use prop_netsim::{generate, LatencyOracle, OracleConfig, TransitStubParams};
    use prop_overlay::{LogicalGraph, Placement};
    use std::sync::Arc;

    fn cached_net(n: usize) -> OverlayNet {
        let mut rng = SimRng::seed_from(3);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build_with(
            &phys,
            n,
            &mut rng,
            &OracleConfig::cached(1 << 20),
        ));
        let mut g = LogicalGraph::new(n);
        for i in 0..n as u32 {
            g.add_edge(Slot(i), Slot((i + 1) % n as u32));
        }
        OverlayNet::new(g, Placement::identity(n), oracle)
    }

    #[test]
    fn repeated_sources_warm_each_row_once() {
        let net = cached_net(12);
        let baseline = net.oracle_cache_stats().unwrap();
        // A hot-source workload: slots 0, 1, 2 named over and over.
        let pairs: Vec<(Slot, Slot)> = (0..200).map(|i| (Slot(i % 3), Slot((i % 2) + 1))).collect();
        warm_pair_rows(&net, &pairs);
        let s = net.oracle_cache_stats().unwrap().since(&baseline);
        // Unique slots {0, 1, 2}; row 0 was seeded at construction, so
        // exactly two Dijkstras run no matter how many pairs repeat them.
        assert_eq!(s.misses, 2, "each unique source warms once: {s:?}");
        let total = net.oracle_cache_stats().unwrap();
        assert_eq!(total.resident_rows, 3);
    }
}
