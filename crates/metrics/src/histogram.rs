//! Latency distributions: CDFs and class breakdowns.
//!
//! Means hide tails; the heterogeneity analysis (Fig. 7) in particular
//! turns on *which* lookups get slower. These helpers summarize a sample
//! set as quantiles and split a workload's outcomes by destination class.

use prop_engine::stats::percentile;
use prop_overlay::{Lookup, OverlayNet, Slot};
use serde::{Deserialize, Serialize};

/// Quantile summary of a latency sample set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyCdf {
    pub count: usize,
    pub p10: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub max: f64,
}

impl LatencyCdf {
    /// Summarize raw latency samples. `None` on an empty set.
    pub fn from_samples(samples: &[f64]) -> Option<LatencyCdf> {
        if samples.is_empty() {
            return None;
        }
        Some(LatencyCdf {
            count: samples.len(),
            p10: percentile(samples, 0.10)?,
            p50: percentile(samples, 0.50)?,
            p90: percentile(samples, 0.90)?,
            p99: percentile(samples, 0.99)?,
            max: percentile(samples, 1.0)?,
        })
    }
}

/// Lookup-latency outcomes for one workload, split by a destination
/// predicate (e.g. fast vs slow peers).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassBreakdown {
    /// Destinations matching the predicate.
    pub matching: Option<LatencyCdf>,
    /// The rest.
    pub rest: Option<LatencyCdf>,
}

/// Run `pairs` through the overlay and split delivered latencies by
/// `class(dst)`. Failed lookups are dropped (count via
/// [`crate::avg_lookup_latency`] if needed).
pub fn class_breakdown(
    net: &OverlayNet,
    overlay: &impl Lookup,
    pairs: &[(Slot, Slot)],
    class: impl Fn(Slot) -> bool,
) -> ClassBreakdown {
    let mut matching = Vec::new();
    let mut rest = Vec::new();
    for &(src, dst) in pairs {
        if let Some(out) = overlay.lookup(net, src, dst) {
            if class(dst) {
                matching.push(out.latency_ms as f64);
            } else {
                rest.push(out.latency_ms as f64);
            }
        }
    }
    ClassBreakdown {
        matching: LatencyCdf::from_samples(&matching),
        rest: LatencyCdf::from_samples(&rest),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::SimRng;
    use prop_netsim::{generate, LatencyOracle, TransitStubParams};
    use prop_overlay::gnutella::{Gnutella, GnutellaParams};
    use prop_workloads::LookupGen;
    use std::sync::Arc;

    #[test]
    fn cdf_quantiles_ordered() {
        let samples: Vec<f64> = (1..=1000).map(|x| x as f64).collect();
        let cdf = LatencyCdf::from_samples(&samples).unwrap();
        assert_eq!(cdf.count, 1000);
        assert!(cdf.p10 <= cdf.p50 && cdf.p50 <= cdf.p90);
        assert!(cdf.p90 <= cdf.p99 && cdf.p99 <= cdf.max);
        assert_eq!(cdf.p50, 500.0);
        assert_eq!(cdf.max, 1000.0);
    }

    #[test]
    fn empty_samples_yield_none() {
        assert!(LatencyCdf::from_samples(&[]).is_none());
    }

    #[test]
    fn breakdown_separates_slow_destinations() {
        let mut rng = SimRng::seed_from(1);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, 30, &mut rng));
        let (gn, mut net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
        // Peers 0..10 fast (0 ms), rest slow (200 ms).
        let delays: Vec<u32> = (0..30).map(|p| if p < 10 { 0 } else { 200 }).collect();
        net.set_processing_delays(delays);
        let live: Vec<Slot> = net.graph().live_slots().collect();
        let pairs = LookupGen::new(&rng).uniform_pairs(&live, 500);
        let b = class_breakdown(&net, &gn, &pairs, |dst| net.peer(dst) < 10);
        let fast = b.matching.unwrap();
        let slow = b.rest.unwrap();
        assert!(
            fast.p50 < slow.p50,
            "fast-destination median {:.0} should beat slow {:.0}",
            fast.p50,
            slow.p50
        );
        assert_eq!(fast.count + slow.count, 500);
    }
}
