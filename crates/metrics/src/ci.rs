//! Cross-seed summary statistics: mean, sample stddev, 95% confidence
//! intervals.
//!
//! The sweep orchestrator (prop-experiments `sweep`) runs N independent
//! seeds of an experiment and reduces every headline metric to a
//! [`MetricSummary`]. The CI uses the Student t distribution — seed counts
//! are small (8–32), so the normal 1.96 would understate the interval —
//! and degenerates honestly: one seed has no dispersion estimate, so
//! `ci95` is `None` (serialized as JSON `null`), never `NaN`.

use serde::{Deserialize, Serialize};

/// Two-sided 95% critical value of the Student t distribution with `df`
/// degrees of freedom. Exact to three decimals for df ≤ 30, then the
/// standard table breakpoints (40/60/120) down to the normal 1.960.
pub fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// One metric across N seeds: mean, sample standard deviation, and the 95%
/// confidence half-width (`mean ± ci95` covers the true mean at 95%).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Number of seeds the samples came from.
    pub n: usize,
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator); 0.0 when n < 2.
    pub stddev: f64,
    /// 95% CI half-width, `t(0.975, n−1) · s / √n`; `None` (JSON `null`)
    /// when n < 2 — a single seed carries no dispersion information.
    pub ci95: Option<f64>,
}

impl MetricSummary {
    /// Summarize samples (one per seed, in seed order — the fixed order
    /// keeps the floating-point reduction bit-deterministic across runs).
    /// `None` on an empty slice.
    pub fn from_samples(xs: &[f64]) -> Option<MetricSummary> {
        let n = xs.len();
        if n == 0 {
            return None;
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Some(MetricSummary { n, mean, stddev: 0.0, ci95: None });
        }
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        let stddev = var.sqrt();
        let ci95 = t_critical_95(n - 1) * stddev / (n as f64).sqrt();
        Some(MetricSummary { n, mean, stddev, ci95: Some(ci95) })
    }

    /// Lower edge of the 95% interval (`mean` itself when no CI exists).
    pub fn lo(&self) -> f64 {
        self.mean - self.ci95.unwrap_or(0.0)
    }

    /// Upper edge of the 95% interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.ci95.unwrap_or(0.0)
    }
}

impl std::fmt::Display for MetricSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.ci95 {
            Some(w) => write!(f, "{:.4} ± {:.4} (n={})", self.mean, w, self.n),
            None => write!(f, "{:.4} (n={}, no CI)", self.mean, self.n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distribution_fixture() {
        // {1,2,3,4,5}: mean 3, sample variance 2.5, t(0.975, 4) = 2.776.
        let s = MetricSummary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.stddev - 2.5f64.sqrt()).abs() < 1e-12);
        let expect = 2.776 * 2.5f64.sqrt() / 5f64.sqrt();
        assert!((s.ci95.unwrap() - expect).abs() < 1e-9, "{:?}", s.ci95);
        assert!((s.lo() - (3.0 - expect)).abs() < 1e-9);
        assert!((s.hi() - (3.0 + expect)).abs() < 1e-9);
    }

    #[test]
    fn single_seed_emits_null_ci_not_nan() {
        let s = MetricSummary::from_samples(&[7.25]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.25);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, None);
        assert!(!s.mean.is_nan() && !s.stddev.is_nan());
        // The JSON form must carry an explicit null, not NaN (which
        // serde_json cannot even emit for f64 fields).
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"ci95\":null"), "{json}");
        let back: MetricSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_samples_are_none() {
        assert_eq!(MetricSummary::from_samples(&[]), None);
    }

    #[test]
    fn identical_samples_have_zero_width() {
        let s = MetricSummary::from_samples(&[4.0; 8]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, Some(0.0));
    }

    #[test]
    fn t_table_shape() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(7) - 2.365).abs() < 1e-9);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        assert_eq!(t_critical_95(35), 2.021);
        assert_eq!(t_critical_95(50), 2.000);
        assert_eq!(t_critical_95(100), 1.980);
        assert_eq!(t_critical_95(1000), 1.960);
        assert_eq!(t_critical_95(0), f64::INFINITY);
        // Monotone non-increasing toward the normal limit.
        for df in 1..200 {
            assert!(t_critical_95(df) >= t_critical_95(df + 1));
            assert!(t_critical_95(df) >= 1.960);
        }
    }

    #[test]
    fn two_seeds_use_df_one() {
        let s = MetricSummary::from_samples(&[1.0, 3.0]).unwrap();
        // s = √2, ci = 12.706 · √2 / √2 = 12.706.
        assert!((s.ci95.unwrap() - 12.706).abs() < 1e-9);
    }
}
