//! Latency-oracle cache counters as a reportable metric.
//!
//! The row-cache oracle tier (`prop_netsim::CachedOracle`) answers `d(u,v)`
//! from a byte-bounded LRU of Dijkstra rows; whether an experiment is
//! compute-bound (misses) or memory-bound (evictions) is part of its
//! result. [`OracleCacheReport`] packages the counters with derived rates
//! for the experiment binaries' tables and JSON dumps.

use prop_netsim::{CacheStats, LatencyOracle};
use serde::Serialize;

/// One oracle's cache behavior over a measured window.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct OracleCacheReport {
    /// Which tier answered: `"dense"` (no cache — all other fields zero)
    /// or `"row-cache"`.
    pub tier: &'static str,
    pub hits: u64,
    pub misses: u64,
    /// `hits / (hits + misses)`, 0 when nothing was asked.
    pub hit_rate: f64,
    pub evictions: u64,
    pub resident_rows: usize,
    pub resident_bytes: usize,
    pub peak_resident_bytes: usize,
    pub capacity_bytes: usize,
}

impl OracleCacheReport {
    /// Snapshot an oracle's counters. The dense tier yields an all-zero
    /// report tagged `"dense"` so tables stay rectangular across tiers.
    pub fn from_oracle(oracle: &LatencyOracle) -> Self {
        match oracle.cache_stats() {
            Some(s) => Self::from_stats(oracle.tier(), s),
            None => Self::from_stats(oracle.tier(), CacheStats::default()),
        }
    }

    /// Report over the window since `earlier` (counters diffed, gauges
    /// current).
    pub fn from_oracle_since(oracle: &LatencyOracle, earlier: &CacheStats) -> Self {
        match oracle.cache_stats() {
            Some(s) => Self::from_stats(oracle.tier(), s.since(earlier)),
            None => Self::from_stats(oracle.tier(), CacheStats::default()),
        }
    }

    pub fn from_stats(tier: &'static str, s: CacheStats) -> Self {
        OracleCacheReport {
            tier,
            hits: s.hits,
            misses: s.misses,
            hit_rate: s.hit_rate(),
            evictions: s.evictions,
            resident_rows: s.resident_rows,
            resident_bytes: s.resident_bytes,
            peak_resident_bytes: s.peak_resident_bytes,
            capacity_bytes: s.capacity_bytes,
        }
    }
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

impl std::fmt::Display for OracleCacheReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.tier == "dense" {
            return write!(f, "oracle tier dense (full matrix resident, no cache)");
        }
        write!(
            f,
            "oracle tier {}: {} hits / {} misses ({:.1}% hit rate), {} evictions, \
             {} rows resident ({:.1} MiB, peak {:.1} MiB, cap {:.0} MiB)",
            self.tier,
            self.hits,
            self.misses,
            self.hit_rate * 100.0,
            self.evictions,
            self.resident_rows,
            mib(self.resident_bytes),
            mib(self.peak_resident_bytes),
            mib(self.capacity_bytes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::SimRng;
    use prop_netsim::{generate, OracleConfig, TransitStubParams};

    fn oracles() -> (LatencyOracle, LatencyOracle) {
        let mut rng = SimRng::seed_from(1);
        let g = generate(&TransitStubParams::tiny(), &mut rng);
        let dense = LatencyOracle::select_and_build(&g, 10, &mut rng);
        let mut rng2 = SimRng::seed_from(1);
        let g2 = generate(&TransitStubParams::tiny(), &mut rng2);
        let cached = LatencyOracle::select_and_build_with(
            &g2,
            10,
            &mut rng2,
            &OracleConfig::cached(1 << 20),
        );
        (dense, cached)
    }

    #[test]
    fn dense_report_is_tagged_and_quiet() {
        let (dense, _) = oracles();
        let r = OracleCacheReport::from_oracle(&dense);
        assert_eq!(r.tier, "dense");
        assert_eq!((r.hits, r.misses, r.capacity_bytes), (0, 0, 0));
        assert!(r.to_string().contains("dense"));
    }

    #[test]
    fn cached_report_carries_counters() {
        let (_, cached) = oracles();
        let _ = cached.d(1, 2);
        let _ = cached.d(1, 3);
        let r = OracleCacheReport::from_oracle(&cached);
        assert_eq!(r.tier, "row-cache");
        assert!(r.misses >= 1);
        assert!(r.hits >= 1);
        assert!(r.hit_rate > 0.0 && r.hit_rate < 1.0);
        let text = r.to_string();
        assert!(text.contains("hit rate"), "{text}");
        assert!(text.contains("row-cache"), "{text}");
    }

    #[test]
    fn windowed_report_diffs_counters() {
        let (_, cached) = oracles();
        let _ = cached.d(1, 2);
        let mark = cached.cache_stats().unwrap();
        let _ = cached.d(1, 3); // hit on row 1
        let r = OracleCacheReport::from_oracle_since(&cached, &mark);
        assert_eq!(r.misses, 0);
        assert!(r.hits >= 1);
    }

    #[test]
    fn serializes_for_results_json() {
        let (_, cached) = oracles();
        let r = OracleCacheReport::from_oracle(&cached);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"tier\":\"row-cache\""), "{json}");
        assert!(json.contains("hit_rate"), "{json}");
    }
}
