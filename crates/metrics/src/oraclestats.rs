//! Latency-oracle cache counters as a reportable metric.
//!
//! The row-cache oracle tier (`prop_netsim::CachedOracle`) answers `d(u,v)`
//! from a byte-bounded LRU of Dijkstra rows; whether an experiment is
//! compute-bound (misses) or memory-bound (evictions) is part of its
//! result. [`OracleCacheReport`] packages the counters with derived rates
//! for the experiment binaries' tables and JSON dumps.
//!
//! The coordinate-embedded tier adds a second axis: how many `d(u,v)`
//! queries stayed on the O(1) coordinate path versus escalating into the
//! exact row cache, and what error distribution the fit committed to.
//! [`OracleEmbedReport`] packages those ([`prop_netsim::EmbedStats`] +
//! [`prop_netsim::EmbedCalibration`]) the same way.

use prop_netsim::{CacheStats, EmbedStats, LatencyOracle};
use serde::Serialize;

/// One oracle's cache behavior over a measured window.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct OracleCacheReport {
    /// Which tier answered: `"dense"` (no cache — all other fields zero)
    /// or `"row-cache"`.
    pub tier: &'static str,
    pub hits: u64,
    pub misses: u64,
    /// `hits / (hits + misses)`, 0 when nothing was asked.
    pub hit_rate: f64,
    pub evictions: u64,
    pub resident_rows: usize,
    pub resident_bytes: usize,
    pub peak_resident_bytes: usize,
    pub capacity_bytes: usize,
}

impl OracleCacheReport {
    /// Snapshot an oracle's counters. The dense tier yields an all-zero
    /// report tagged `"dense"` so tables stay rectangular across tiers.
    pub fn from_oracle(oracle: &LatencyOracle) -> Self {
        match oracle.cache_stats() {
            Some(s) => Self::from_stats(oracle.tier(), s),
            None => Self::from_stats(oracle.tier(), CacheStats::default()),
        }
    }

    /// Report over the window since `earlier` (counters diffed, gauges
    /// current).
    pub fn from_oracle_since(oracle: &LatencyOracle, earlier: &CacheStats) -> Self {
        match oracle.cache_stats() {
            Some(s) => Self::from_stats(oracle.tier(), s.since(earlier)),
            None => Self::from_stats(oracle.tier(), CacheStats::default()),
        }
    }

    pub fn from_stats(tier: &'static str, s: CacheStats) -> Self {
        OracleCacheReport {
            tier,
            hits: s.hits,
            misses: s.misses,
            hit_rate: s.hit_rate(),
            evictions: s.evictions,
            resident_rows: s.resident_rows,
            resident_bytes: s.resident_bytes,
            peak_resident_bytes: s.peak_resident_bytes,
            capacity_bytes: s.capacity_bytes,
        }
    }
}

/// The embedded tier's query-path split and error calibration over a
/// measured window. `None`-producing constructors keep the exact tiers out
/// of embed tables entirely (unlike the cache report, there is no sensible
/// all-zero placeholder: a 0% escalation rate *means something*).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct OracleEmbedReport {
    /// Always `"coord-embed"`.
    pub tier: &'static str,
    /// Queries answered in O(1) from coordinates.
    pub embed_queries: u64,
    /// Queries answered through the exact escalation cache.
    pub exact_queries: u64,
    /// Var decisions that fell inside the fallback band.
    pub escalations: u64,
    /// `escalations / embed_queries`, 0 when nothing was asked.
    pub escalation_rate: f64,
    /// Per-term margin (ms) the fallback band uses.
    pub margin_per_term_ms: f64,
    /// The fit's committed error distribution.
    pub calibration: prop_netsim::EmbedCalibration,
}

impl OracleEmbedReport {
    /// Snapshot an oracle's embedded-tier counters; `None` on the exact
    /// tiers.
    pub fn from_oracle(oracle: &LatencyOracle) -> Option<Self> {
        let stats = oracle.embed_stats()?;
        Some(Self::from_parts(oracle, stats))
    }

    /// Report over the window since `earlier`; `None` on the exact tiers.
    pub fn from_oracle_since(oracle: &LatencyOracle, earlier: &EmbedStats) -> Option<Self> {
        let stats = oracle.embed_stats()?.since(earlier);
        Some(Self::from_parts(oracle, stats))
    }

    fn from_parts(oracle: &LatencyOracle, stats: EmbedStats) -> Self {
        OracleEmbedReport {
            tier: "coord-embed",
            embed_queries: stats.embed_queries,
            exact_queries: stats.exact_queries,
            escalations: stats.escalations,
            escalation_rate: stats.escalation_rate(),
            margin_per_term_ms: oracle.var_margin_per_term(),
            calibration: oracle.embed_calibration().unwrap_or_default(),
        }
    }
}

impl std::fmt::Display for OracleEmbedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "oracle tier {}: {} embed / {} exact queries, {} Var escalations \
             ({:.2}% of embed), margin {:.1} ms/term, abs err p50/p95/p99 = \
             {:.1}/{:.1}/{:.1} ms over {} samples",
            self.tier,
            self.embed_queries,
            self.exact_queries,
            self.escalations,
            self.escalation_rate * 100.0,
            self.margin_per_term_ms,
            self.calibration.abs_p50_ms,
            self.calibration.abs_p95_ms,
            self.calibration.abs_p99_ms,
            self.calibration.samples,
        )
    }
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

impl std::fmt::Display for OracleCacheReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.tier == "dense" {
            return write!(f, "oracle tier dense (full matrix resident, no cache)");
        }
        write!(
            f,
            "oracle tier {}: {} hits / {} misses ({:.1}% hit rate), {} evictions, \
             {} rows resident ({:.1} MiB, peak {:.1} MiB, cap {:.0} MiB)",
            self.tier,
            self.hits,
            self.misses,
            self.hit_rate * 100.0,
            self.evictions,
            self.resident_rows,
            mib(self.resident_bytes),
            mib(self.peak_resident_bytes),
            mib(self.capacity_bytes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::SimRng;
    use prop_netsim::{generate, OracleConfig, TransitStubParams};

    fn oracles() -> (LatencyOracle, LatencyOracle) {
        let mut rng = SimRng::seed_from(1);
        let g = generate(&TransitStubParams::tiny(), &mut rng);
        let dense = LatencyOracle::select_and_build(&g, 10, &mut rng);
        let mut rng2 = SimRng::seed_from(1);
        let g2 = generate(&TransitStubParams::tiny(), &mut rng2);
        let cached = LatencyOracle::select_and_build_with(
            &g2,
            10,
            &mut rng2,
            &OracleConfig::cached(1 << 20),
        );
        (dense, cached)
    }

    #[test]
    fn dense_report_is_tagged_and_quiet() {
        let (dense, _) = oracles();
        let r = OracleCacheReport::from_oracle(&dense);
        assert_eq!(r.tier, "dense");
        assert_eq!((r.hits, r.misses, r.capacity_bytes), (0, 0, 0));
        assert!(r.to_string().contains("dense"));
    }

    #[test]
    fn cached_report_carries_counters() {
        let (_, cached) = oracles();
        let _ = cached.d(1, 2);
        let _ = cached.d(1, 3);
        let r = OracleCacheReport::from_oracle(&cached);
        assert_eq!(r.tier, "row-cache");
        assert!(r.misses >= 1);
        assert!(r.hits >= 1);
        assert!(r.hit_rate > 0.0 && r.hit_rate < 1.0);
        let text = r.to_string();
        assert!(text.contains("hit rate"), "{text}");
        assert!(text.contains("row-cache"), "{text}");
    }

    #[test]
    fn windowed_report_diffs_counters() {
        let (_, cached) = oracles();
        let _ = cached.d(1, 2);
        let mark = cached.cache_stats().unwrap();
        let _ = cached.d(1, 3); // hit on row 1
        let r = OracleCacheReport::from_oracle_since(&cached, &mark);
        assert_eq!(r.misses, 0);
        assert!(r.hits >= 1);
    }

    #[test]
    fn serializes_for_results_json() {
        let (_, cached) = oracles();
        let r = OracleCacheReport::from_oracle(&cached);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"tier\":\"row-cache\""), "{json}");
        assert!(json.contains("hit_rate"), "{json}");
    }

    fn embedded_oracle() -> LatencyOracle {
        let mut rng = SimRng::seed_from(2);
        let g = generate(&TransitStubParams::tiny(), &mut rng);
        LatencyOracle::select_and_build_with(&g, 12, &mut rng, &OracleConfig::embedded())
    }

    #[test]
    fn embed_report_absent_on_exact_tiers() {
        let (dense, cached) = oracles();
        assert!(OracleEmbedReport::from_oracle(&dense).is_none());
        assert!(OracleEmbedReport::from_oracle(&cached).is_none());
    }

    #[test]
    fn embed_report_counts_query_paths() {
        let o = embedded_oracle();
        let mark = o.embed_stats().unwrap();
        let _ = o.d(1, 2);
        let _ = o.d(2, 3);
        let _ = o.d_exact(1, 2);
        o.note_escalation();
        let r = OracleEmbedReport::from_oracle_since(&o, &mark).unwrap();
        assert_eq!(r.tier, "coord-embed");
        assert_eq!(r.embed_queries, 2);
        assert_eq!(r.exact_queries, 1);
        assert_eq!(r.escalations, 1);
        assert!(r.escalation_rate > 0.0);
        assert!(r.margin_per_term_ms >= 1.0);
        assert!(r.calibration.samples > 0);
        let text = r.to_string();
        assert!(text.contains("coord-embed"), "{text}");
        assert!(text.contains("escalations"), "{text}");
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"tier\":\"coord-embed\""), "{json}");
        assert!(json.contains("abs_p95_ms"), "{json}");
    }

    #[test]
    fn embed_tier_also_reports_its_exact_cache() {
        // The cache report stays available on the embedded tier — it
        // describes the escalation path's row cache.
        let o = embedded_oracle();
        let r = OracleCacheReport::from_oracle(&o);
        assert_eq!(r.tier, "coord-embed");
        assert!(r.resident_rows > 0, "fit rows pre-seed the exact cache");
    }
}
