//! Degree-distribution summaries.
//!
//! PROP-O's selling point over LTM is degree preservation: "powerful nodes
//! own more connections" and keep them. These helpers quantify how far a
//! scheme drifted from the initial degree structure.

use prop_overlay::LogicalGraph;

/// Summary of a degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeSummary {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    /// Coefficient of variation (std dev / mean): a rough skewness proxy —
    /// power-law-ish graphs have a much higher CV than regular ones.
    pub cv: f64,
}

/// Summarize the live degree distribution.
pub fn degree_summary(g: &LogicalGraph) -> DegreeSummary {
    let seq = g.degree_sequence();
    assert!(!seq.is_empty(), "no live slots");
    let n = seq.len() as f64;
    let mean = seq.iter().sum::<usize>() as f64 / n;
    let var = seq.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n;
    DegreeSummary { min: seq[0], max: *seq.last().unwrap(), mean, cv: var.sqrt() / mean }
}

/// L1 distance between two degree sequences of equal length — zero iff the
/// multisets coincide (the PROP-O invariant).
pub fn degree_sequence_distance(a: &[usize], b: &[usize]) -> usize {
    assert_eq!(a.len(), b.len(), "populations differ");
    a.iter().zip(b).map(|(&x, &y)| x.abs_diff(y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_overlay::Slot;

    fn star(n: u32) -> LogicalGraph {
        let mut g = LogicalGraph::new(n as usize);
        for i in 1..n {
            g.add_edge(Slot(0), Slot(i));
        }
        g
    }

    #[test]
    fn star_summary() {
        let s = degree_summary(&star(5));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert!(s.cv > 0.5, "stars are skewed");
    }

    #[test]
    fn regular_graph_has_zero_cv() {
        let mut g = LogicalGraph::new(4);
        for i in 0..4u32 {
            g.add_edge(Slot(i), Slot((i + 1) % 4));
        }
        let s = degree_summary(&g);
        assert_eq!(s.cv, 0.0);
        assert_eq!((s.min, s.max), (2, 2));
    }

    #[test]
    fn sequence_distance() {
        assert_eq!(degree_sequence_distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(degree_sequence_distance(&[1, 2, 3], &[2, 2, 5]), 3);
    }

    #[test]
    #[should_panic(expected = "populations differ")]
    fn distance_requires_equal_lengths() {
        let _ = degree_sequence_distance(&[1], &[1, 2]);
    }
}
