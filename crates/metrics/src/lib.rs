//! # prop-metrics — the paper's evaluation metrics
//!
//! * [`latency`] — average lookup latency over a pair workload (the
//!   Gnutella metric of Fig. 5 and the normalized delay of Fig. 7).
//! * [`stretch`] — the §4.2 stretch definitions: *link stretch* (mean
//!   logical link latency over mean physical link latency — the quantity
//!   PROP provably reduces) and *path stretch* (per-lookup route latency
//!   over direct physical latency — the Chord metric of Fig. 6).
//! * [`timeseries`] — labelled (minutes, value) series; what every figure
//!   plots.
//! * [`degree`] — degree-distribution summaries for the PROP-O
//!   power-law-preservation argument.
//! * [`oraclestats`] — latency-oracle row-cache hit/miss/eviction counters
//!   and coordinate-embedding query/escalation/calibration reports for
//!   large-scale (beyond-paper) runs.
//! * [`faultstats`] — fault-plane counters (drops, dups, reorders,
//!   partition time, crashed-commit aborts) with derived rates, for the
//!   robustness sweeps.
//! * [`trafficstats`] — per-diurnal-phase stretch/delivery/overhead rows
//!   and per-transit-domain event totals for scripted traffic runs.
//! * [`ci`] — cross-seed mean / sample-stddev / 95%-CI summaries (Student
//!   t for small seed counts) backing the Monte-Carlo sweep orchestrator.
//! * [`plane`] — the parallel measurement plane's determinism machinery:
//!   the fixed chunk size and the oracle-row prefetch that make the
//!   `par_*` measurement variants bit-identical to their serial twins.

pub mod ci;
pub mod convergence;
pub mod degree;
pub mod faultstats;
pub mod floodcost;
pub mod histogram;
pub mod latency;
pub mod oraclestats;
pub mod plane;
pub mod stretch;
pub mod timeseries;
pub mod trafficstats;

pub use ci::{t_critical_95, MetricSummary};
pub use convergence::{convergence, Convergence};
pub use faultstats::FaultReport;
pub use floodcost::{flood_messages, mean_flood_messages, par_mean_flood_messages};
pub use histogram::{class_breakdown, ClassBreakdown, LatencyCdf};
pub use latency::{avg_lookup_latency, par_avg_lookup_latency, LatencySummary};
pub use oraclestats::{OracleCacheReport, OracleEmbedReport};
pub use plane::{warm_pair_rows, MEASURE_CHUNK};
pub use stretch::{link_stretch, par_path_stretch, path_stretch, StretchSummary};
pub use timeseries::TimeSeries;
pub use trafficstats::{TrafficDomainRow, TrafficPhaseRow, TrafficReport};
