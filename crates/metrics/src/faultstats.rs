//! Fault-plane counters as a reportable metric.
//!
//! The fault plane (`prop-faults`) counts what it did to the traffic —
//! drops, duplicate deliveries, reorders, partition time, crashed-commit
//! aborts ([`FaultCounters`]). [`FaultReport`] packages those raw counters
//! with the derived rates the experiment tables and JSON dumps need, the
//! same shape [`crate::OracleCacheReport`] gives the oracle cache.

use prop_core::fault::FaultCounters;
use serde::Serialize;

/// One run's fault-plane activity, with derived rates.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct FaultReport {
    pub drops: u64,
    pub dup_deliveries: u64,
    pub reorders: u64,
    /// Seconds (not ms) of active partition — the unit the sweep tables use.
    pub partition_secs: f64,
    pub crashed_aborts: u64,
    /// All fault events of any kind (partition time excluded).
    pub total_events: u64,
    /// `drops / messages_ruled`, 0 when nothing was ruled. This is the
    /// *observed* loss rate, which under partitions and crashes exceeds the
    /// scripted random-loss probability.
    pub drop_rate: f64,
}

impl FaultReport {
    /// Package plane counters. `messages_ruled` is how many delivery
    /// verdicts the drivers requested (4 per attempted trial); it is the
    /// denominator of [`FaultReport::drop_rate`].
    pub fn from_counters(c: FaultCounters, messages_ruled: u64) -> Self {
        FaultReport {
            drops: c.drops,
            dup_deliveries: c.dup_deliveries,
            reorders: c.reorders,
            partition_secs: c.partition_ms as f64 / 1000.0,
            crashed_aborts: c.crashed_aborts,
            total_events: c.total_events(),
            drop_rate: if messages_ruled == 0 {
                0.0
            } else {
                c.drops as f64 / messages_ruled as f64
            },
        }
    }

    /// Report over the window since `earlier` (saturating diff).
    pub fn since(now: FaultCounters, earlier: &FaultCounters, messages_ruled: u64) -> Self {
        Self::from_counters(now.since(earlier), messages_ruled)
    }
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "faults: {} drops ({:.2}% of ruled msgs), {} dups, {} reorders, \
             {:.0}s partitioned, {} crashed-commit aborts",
            self.drops,
            self.drop_rate * 100.0,
            self.dup_deliveries,
            self.reorders,
            self.partition_secs,
            self.crashed_aborts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultCounters {
        FaultCounters {
            drops: 25,
            dup_deliveries: 3,
            reorders: 7,
            partition_ms: 30_000,
            crashed_aborts: 2,
        }
    }

    #[test]
    fn rates_derive_from_counters() {
        let r = FaultReport::from_counters(sample(), 1000);
        assert_eq!(r.drops, 25);
        assert!((r.drop_rate - 0.025).abs() < 1e-12);
        assert!((r.partition_secs - 30.0).abs() < 1e-12);
        assert_eq!(r.total_events, 25 + 3 + 7 + 2);
    }

    #[test]
    fn zero_denominator_is_safe() {
        let r = FaultReport::from_counters(sample(), 0);
        assert_eq!(r.drop_rate, 0.0);
    }

    #[test]
    fn windowed_report_saturates() {
        let later = FaultCounters { drops: 5, ..Default::default() };
        let earlier = sample(); // counters "reset" below the snapshot
        let r = FaultReport::since(later, &earlier, 100);
        assert_eq!(r.drops, 0, "saturating diff must not underflow");
        assert_eq!(r.crashed_aborts, 0);
    }

    #[test]
    fn serializes_for_json_dumps() {
        let r = FaultReport::from_counters(sample(), 400);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"crashed_aborts\":2"));
        assert!(json.contains("\"partition_secs\":30.0"));
    }

    #[test]
    fn display_is_one_line() {
        let r = FaultReport::from_counters(sample(), 400);
        let s = format!("{r}");
        assert!(s.contains("25 drops"));
        assert!(!s.contains('\n'));
    }
}
