//! Labelled time series — the stuff of every figure.

use prop_engine::SimTime;
use serde::{Deserialize, Serialize};

/// A named series of (simulated minutes, value) points.
///
/// ```
/// use prop_metrics::TimeSeries;
/// use prop_engine::{SimTime, Duration};
///
/// let mut ts = TimeSeries::new("stretch");
/// ts.push(SimTime::ZERO, 8.0);
/// ts.push(SimTime::ZERO + Duration::from_minutes(30), 4.0);
/// assert_eq!(ts.improvement(), Some(0.5)); // halved
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    pub label: String,
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    pub fn new(label: impl Into<String>) -> Self {
        TimeSeries { label: label.into(), points: Vec::new() }
    }

    /// Append a sample taken at `t`.
    pub fn push(&mut self, t: SimTime, value: f64) {
        self.points.push((t.as_minutes_f64(), value));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn first_value(&self) -> Option<f64> {
        self.points.first().map(|&(_, v)| v)
    }

    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    pub fn min_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).min_by(|a, b| a.total_cmp(b))
    }

    /// Relative improvement from the first to the last sample:
    /// `(first − last) / first`. The summary number quoted per curve in
    /// EXPERIMENTS.md.
    pub fn improvement(&self) -> Option<f64> {
        let first = self.first_value()?;
        let last = self.last_value()?;
        (first != 0.0).then(|| (first - last) / first)
    }

    /// Render as aligned text rows (`minutes value`), for experiment logs.
    pub fn to_rows(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for &(t, v) in &self.points {
            let _ = writeln!(out, "{t:>8.1}  {v:>12.3}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::Duration;

    fn series() -> TimeSeries {
        let mut ts = TimeSeries::new("test");
        let mut t = SimTime::ZERO;
        for v in [10.0, 8.0, 6.0, 5.0] {
            ts.push(t, v);
            t += Duration::from_minutes(5);
        }
        ts
    }

    #[test]
    fn push_converts_to_minutes() {
        let ts = series();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.points[1].0, 5.0);
        assert_eq!(ts.points[3].0, 15.0);
    }

    #[test]
    fn improvement_is_relative_drop() {
        let ts = series();
        assert!((ts.improvement().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_and_endpoints() {
        let ts = series();
        assert_eq!(ts.first_value(), Some(10.0));
        assert_eq!(ts.last_value(), Some(5.0));
        assert_eq!(ts.min_value(), Some(5.0));
    }

    #[test]
    fn empty_series_is_none() {
        let ts = TimeSeries::new("empty");
        assert!(ts.is_empty());
        assert_eq!(ts.improvement(), None);
        assert_eq!(ts.min_value(), None);
    }

    #[test]
    fn rows_render_one_line_per_point() {
        let ts = series();
        assert_eq!(ts.to_rows().lines().count(), 4);
    }

    #[test]
    fn serde_roundtrip() {
        let ts = series();
        let json = serde_json::to_string(&ts).unwrap();
        let back: TimeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back.points, ts.points);
        assert_eq!(back.label, "test");
    }
}
