//! Per-phase traffic-plane accounting.
//!
//! A scripted traffic run (see `prop-workloads::traffic`) plays diurnal
//! waves, flash crowds, and regional churn against a driver. The figures
//! that matter split by *diurnal phase* — is stretch worse in the evening
//! peak than at night? — and by *transit domain* — did the regionally
//! correlated churn land where the script said? [`TrafficReport`]
//! accumulates both axes: per-phase stretch/delivery/overhead rows fed one
//! sample window at a time, and per-domain event totals fed one traffic
//! event at a time.

use crate::stretch::StretchSummary;
use serde::{Deserialize, Serialize};

/// One diurnal phase's share of a traffic run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficPhaseRow {
    /// Phase label (`"night"`, `"morning"`, `"afternoon"`, `"evening"`).
    pub phase: String,
    /// Sample windows attributed to this phase.
    pub windows: u64,
    /// Delivered-weighted mean path stretch across the phase's windows
    /// (0 when nothing was delivered).
    pub stretch: f64,
    pub delivered: u64,
    pub failed: u64,
    pub skipped: u64,
    /// Protocol optimization trials attempted during the phase.
    pub trials: u64,
    /// Protocol messages sent during the phase.
    pub msgs: u64,
    /// Scripted events applied during the phase.
    pub joins: u64,
    pub leaves: u64,
    pub lookups: u64,
    /// Scripted events that could not be applied (no candidate in the
    /// target domain, population floor reached, dead destination).
    pub suppressed: u64,
}

impl TrafficPhaseRow {
    /// Delivered fraction of measurable lookups (delivered + failed).
    pub fn delivery_rate(&self) -> f64 {
        let measurable = self.delivered + self.failed;
        if measurable == 0 {
            1.0
        } else {
            self.delivered as f64 / measurable as f64
        }
    }

    /// Protocol messages per optimization trial, 0 when idle.
    pub fn msgs_per_trial(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.msgs as f64 / self.trials as f64
        }
    }

    fn fold_stretch(&mut self, s: &StretchSummary) {
        // Delivered-weighted running mean; NaN window means (nothing
        // delivered) contribute zero weight and are skipped.
        if s.delivered > 0 && s.mean.is_finite() {
            let prev_w = self.delivered as f64;
            let w = s.delivered as f64;
            self.stretch = (self.stretch * prev_w + s.mean * w) / (prev_w + w);
        }
        self.delivered += s.delivered;
        self.failed += s.failed;
        self.skipped += s.skipped;
    }
}

/// One transit domain's scripted-event totals — the regional-correlation
/// evidence (offset diurnal peaks show up as staggered per-domain churn).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficDomainRow {
    pub domain: u16,
    pub joins: u64,
    pub leaves: u64,
    pub lookups: u64,
}

/// A traffic run's full accounting: per-diurnal-phase quality/overhead
/// rows plus per-transit-domain event totals.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    pub phases: Vec<TrafficPhaseRow>,
    pub domains: Vec<TrafficDomainRow>,
}

impl TrafficReport {
    /// Empty report with one row per phase label and per domain.
    pub fn new(phase_labels: &[&str], num_domains: u16) -> Self {
        TrafficReport {
            phases: phase_labels
                .iter()
                .map(|&l| TrafficPhaseRow { phase: l.to_string(), ..Default::default() })
                .collect(),
            domains: (0..num_domains)
                .map(|domain| TrafficDomainRow { domain, ..Default::default() })
                .collect(),
        }
    }

    /// Attribute one sample window's measurements to `phase`:
    /// the window's path-stretch summary plus the driver's overhead deltas
    /// over the window.
    pub fn record_window(
        &mut self,
        phase: usize,
        stretch: &StretchSummary,
        trials: u64,
        msgs: u64,
    ) {
        let row = &mut self.phases[phase];
        row.windows += 1;
        row.trials += trials;
        row.msgs += msgs;
        row.fold_stretch(stretch);
    }

    /// Count one applied scripted join.
    pub fn record_join(&mut self, phase: usize, domain: u16) {
        self.phases[phase].joins += 1;
        self.domain_row(domain).joins += 1;
    }

    /// Count one applied scripted leave.
    pub fn record_leave(&mut self, phase: usize, domain: u16) {
        self.phases[phase].leaves += 1;
        self.domain_row(domain).leaves += 1;
    }

    /// Count one resolved scripted lookup.
    pub fn record_lookup(&mut self, phase: usize, domain: u16) {
        self.phases[phase].lookups += 1;
        self.domain_row(domain).lookups += 1;
    }

    /// Count one scripted event that could not be applied.
    pub fn record_suppressed(&mut self, phase: usize) {
        self.phases[phase].suppressed += 1;
    }

    fn domain_row(&mut self, domain: u16) -> &mut TrafficDomainRow {
        let i = self.domains.iter().position(|r| r.domain == domain).unwrap_or_else(|| {
            self.domains.push(TrafficDomainRow { domain, ..Default::default() });
            self.domains.len() - 1
        });
        &mut self.domains[i]
    }

    /// Delivered-weighted mean stretch across all phases.
    pub fn overall_stretch(&self) -> f64 {
        let (num, den) = self.phases.iter().fold((0.0, 0u64), |(num, den), r| {
            (num + r.stretch * r.delivered as f64, den + r.delivered)
        });
        if den == 0 {
            0.0
        } else {
            num / den as f64
        }
    }

    /// Delivered fraction across all phases.
    pub fn delivery_rate(&self) -> f64 {
        let delivered: u64 = self.phases.iter().map(|r| r.delivered).sum();
        let failed: u64 = self.phases.iter().map(|r| r.failed).sum();
        if delivered + failed == 0 {
            1.0
        } else {
            delivered as f64 / (delivered + failed) as f64
        }
    }

    /// Protocol messages per trial across all phases.
    pub fn msgs_per_trial(&self) -> f64 {
        let trials: u64 = self.phases.iter().map(|r| r.trials).sum();
        let msgs: u64 = self.phases.iter().map(|r| r.msgs).sum();
        if trials == 0 {
            0.0
        } else {
            msgs as f64 / trials as f64
        }
    }

    /// Total scripted events applied (joins + leaves + lookups).
    pub fn total_applied(&self) -> u64 {
        self.phases.iter().map(|r| r.joins + r.leaves + r.lookups).sum()
    }

    /// Total scripted events that could not be applied.
    pub fn total_suppressed(&self) -> u64 {
        self.phases.iter().map(|r| r.suppressed).sum()
    }
}

impl std::fmt::Display for TrafficReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "traffic: stretch {:.3}, delivery {:.1}%, {:.1} msgs/trial, \
             {} events applied ({} suppressed)",
            self.overall_stretch(),
            self.delivery_rate() * 100.0,
            self.msgs_per_trial(),
            self.total_applied(),
            self.total_suppressed()
        )?;
        for r in &self.phases {
            writeln!(
                f,
                "  {:<10} stretch {:.3}  delivery {:.1}%  {:>6} lookups  \
                 {:>4} joins  {:>4} leaves  {:.1} msgs/trial",
                r.phase,
                r.stretch,
                r.delivery_rate() * 100.0,
                r.lookups,
                r.joins,
                r.leaves,
                r.msgs_per_trial()
            )?;
        }
        for r in &self.domains {
            writeln!(
                f,
                "  domain {:>2}  {:>4} joins  {:>4} leaves  {:>6} lookups",
                r.domain, r.joins, r.leaves, r.lookups
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(mean: f64, delivered: u64, failed: u64) -> StretchSummary {
        StretchSummary { mean, delivered, failed, skipped: 0 }
    }

    #[test]
    fn stretch_is_delivered_weighted() {
        let mut r = TrafficReport::new(&["night", "day"], 1);
        r.record_window(0, &summary(2.0, 10, 0), 5, 50);
        r.record_window(0, &summary(4.0, 30, 0), 5, 50);
        assert!((r.phases[0].stretch - 3.5).abs() < 1e-12, "10·2 + 30·4 over 40");
        assert_eq!(r.phases[0].windows, 2);
        assert_eq!(r.phases[0].trials, 10);
    }

    #[test]
    fn nan_windows_carry_no_weight() {
        let mut r = TrafficReport::new(&["night"], 1);
        r.record_window(0, &summary(f64::NAN, 0, 4), 1, 2);
        r.record_window(0, &summary(2.0, 8, 0), 1, 2);
        assert!((r.phases[0].stretch - 2.0).abs() < 1e-12);
        assert_eq!(r.phases[0].failed, 4);
        assert!((r.phases[0].delivery_rate() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn events_split_by_phase_and_domain() {
        let mut r = TrafficReport::new(&["night", "day"], 2);
        r.record_join(0, 0);
        r.record_leave(1, 1);
        r.record_lookup(1, 1);
        r.record_lookup(1, 7); // domain outside the declared range grows a row
        r.record_suppressed(0);
        assert_eq!(r.phases[0].joins, 1);
        assert_eq!(r.phases[1].lookups, 2);
        assert_eq!(r.domains[1].leaves, 1);
        assert_eq!(r.domains.last().unwrap().domain, 7);
        assert_eq!(r.total_applied(), 4);
        assert_eq!(r.total_suppressed(), 1);
    }

    #[test]
    fn overall_rollups() {
        let mut r = TrafficReport::new(&["a", "b"], 1);
        r.record_window(0, &summary(1.5, 10, 0), 2, 10);
        r.record_window(1, &summary(3.0, 10, 10), 2, 30);
        assert!((r.overall_stretch() - 2.25).abs() < 1e-12);
        assert!((r.delivery_rate() - 20.0 / 30.0).abs() < 1e-12);
        assert!((r.msgs_per_trial() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = TrafficReport::new(&[], 0);
        assert_eq!(r.overall_stretch(), 0.0);
        assert_eq!(r.delivery_rate(), 1.0);
        assert_eq!(r.msgs_per_trial(), 0.0);
    }

    #[test]
    fn round_trips_through_serde() {
        let mut r = TrafficReport::new(&["night"], 2);
        r.record_window(0, &summary(2.0, 5, 1), 3, 12);
        r.record_join(0, 1);
        let json = serde_json::to_string(&r).unwrap();
        let back: TrafficReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn display_tabulates_phases_and_domains() {
        let mut r = TrafficReport::new(&["night"], 1);
        r.record_window(0, &summary(2.0, 5, 0), 1, 4);
        r.record_lookup(0, 0);
        let s = format!("{r}");
        assert!(s.contains("night"));
        assert!(s.contains("domain  0"));
    }
}
