//! Stretch (§4.2): how well the logical topology matches the physical one.

use prop_engine::stats::Accumulator;
use prop_overlay::{Lookup, OverlayNet, Slot};

/// *Link stretch*: mean logical link latency / mean physical link latency.
/// This is the paper's headline definition — the numerator is exactly the
/// quantity every accepted peer-exchange reduces (by `Var`).
pub fn link_stretch(net: &OverlayNet) -> f64 {
    net.stretch()
}

/// *Path stretch*: mean over lookups of (overlay route latency) /
/// (direct physical latency). The natural reading for DHTs, where a lookup
/// has a well-defined route; used for the Chord experiments (Fig. 6).
/// Pairs with zero physical distance (co-located hosts) are skipped.
pub fn path_stretch(net: &OverlayNet, overlay: &impl Lookup, pairs: &[(Slot, Slot)]) -> f64 {
    let mut acc = Accumulator::new();
    for &(src, dst) in pairs {
        let direct = net.d(src, dst);
        if direct == 0 {
            continue;
        }
        if let Some(out) = overlay.lookup(net, src, dst) {
            acc.add(out.latency_ms as f64 / direct as f64);
        }
    }
    acc.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::SimRng;
    use prop_netsim::{generate, LatencyOracle, TransitStubParams};
    use prop_overlay::chord::{Chord, ChordParams};
    use prop_workloads::LookupGen;
    use std::sync::Arc;

    fn chord(n: usize, seed: u64) -> (Chord, prop_overlay::OverlayNet, SimRng) {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
        let (ch, net) = Chord::build(ChordParams::default(), oracle, &mut rng);
        (ch, net, rng)
    }

    #[test]
    fn path_stretch_at_least_one() {
        // An overlay route can never beat the direct shortest path.
        let (ch, net, rng) = chord(30, 1);
        let live: Vec<Slot> = net.graph().live_slots().collect();
        let pairs = LookupGen::new(&rng).uniform_pairs(&live, 400);
        let s = path_stretch(&net, &ch, &pairs);
        assert!(s >= 1.0, "stretch {s}");
        assert!(s.is_finite());
    }

    #[test]
    fn link_stretch_positive() {
        let (_, net, _) = chord(30, 2);
        let s = link_stretch(&net);
        assert!(s > 0.0 && s.is_finite());
    }

    #[test]
    fn better_placement_lowers_link_stretch() {
        // Greedily improving swaps must lower link stretch.
        let (_, mut net, _) = chord(30, 3);
        let before = link_stretch(&net);
        // Find any beneficial swap and apply it.
        let mut applied = false;
        'outer: for a in 0..30u32 {
            for b in 0..30u32 {
                if a == b {
                    continue;
                }
                let plan = prop_core::exchange::plan_propg(&net, Slot(a), Slot(b));
                if plan.var > 0 {
                    prop_core::exchange::apply(&mut net, &plan);
                    applied = true;
                    break 'outer;
                }
            }
        }
        assert!(applied, "no beneficial swap found in a random placement");
        assert!(link_stretch(&net) < before);
    }
}
