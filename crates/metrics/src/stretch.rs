//! Stretch (§4.2): how well the logical topology matches the physical one.

use crate::plane::{warm_pair_rows, MEASURE_CHUNK};
use prop_overlay::{FloodScratch, Lookup, OverlayNet, Slot};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// *Link stretch*: mean logical link latency / mean physical link latency.
/// This is the paper's headline definition — the numerator is exactly the
/// quantity every accepted peer-exchange reduces (by `Var`).
pub fn link_stretch(net: &OverlayNet) -> f64 {
    net.stretch()
}

/// Result of measuring path stretch over a pair workload. Mirrors
/// [`crate::LatencySummary`]: the mean alone hides how much of the workload
/// actually contributed, so the disposition of every pair is reported.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StretchSummary {
    /// Mean over delivered, non-co-located pairs of (route latency /
    /// direct physical latency). `NaN` when nothing was delivered.
    pub mean: f64,
    /// Pairs the overlay delivered and that entered the mean.
    pub delivered: u64,
    /// Pairs the overlay failed to deliver (e.g. flood TTL expired).
    pub failed: u64,
    /// Pairs with zero physical distance (co-located hosts), for which the
    /// ratio is undefined; excluded from the mean.
    pub skipped: u64,
}

/// Partial sums over one fixed-size chunk of the workload. The ratio sum is
/// an f64 — *not* associative — so bit-determinism comes from the chunking
/// itself: chunks are [`MEASURE_CHUNK`]-sized regardless of worker count,
/// each chunk is summed sequentially, and partials are folded in
/// chunk-index order (see [`crate::plane`]).
#[derive(Clone, Copy, Debug, Default)]
struct StretchPartial {
    ratio_sum: f64,
    delivered: u64,
    failed: u64,
    skipped: u64,
}

impl StretchPartial {
    fn measure(
        net: &OverlayNet,
        overlay: &impl Lookup,
        chunk: &[(Slot, Slot)],
        scratch: &mut FloodScratch,
    ) -> Self {
        let mut p = StretchPartial::default();
        for &(src, dst) in chunk {
            let direct = net.d(src, dst);
            if direct == 0 {
                p.skipped += 1;
                continue;
            }
            match overlay.lookup_with(net, src, dst, scratch) {
                Some(out) => {
                    p.ratio_sum += out.latency_ms as f64 / direct as f64;
                    p.delivered += 1;
                }
                None => p.failed += 1,
            }
        }
        p
    }
}

fn fold_partials(partials: Vec<StretchPartial>) -> StretchSummary {
    let mut sum = 0.0;
    let mut delivered = 0u64;
    let mut failed = 0u64;
    let mut skipped = 0u64;
    for p in partials {
        sum += p.ratio_sum;
        delivered += p.delivered;
        failed += p.failed;
        skipped += p.skipped;
    }
    StretchSummary { mean: sum / delivered as f64, delivered, failed, skipped }
}

/// *Path stretch*: mean over lookups of (overlay route latency) /
/// (direct physical latency). The natural reading for DHTs, where a lookup
/// has a well-defined route; used for the Chord experiments (Fig. 6).
/// Pairs with zero physical distance and undelivered lookups are excluded
/// from the mean but reported in the summary.
pub fn path_stretch(
    net: &OverlayNet,
    overlay: &impl Lookup,
    pairs: &[(Slot, Slot)],
) -> StretchSummary {
    let mut scratch = FloodScratch::new();
    let partials = pairs
        .chunks(MEASURE_CHUNK)
        .map(|chunk| StretchPartial::measure(net, overlay, chunk, &mut scratch))
        .collect();
    fold_partials(partials)
}

/// [`path_stretch`] fanned out over rayon workers. Bit-identical to the
/// serial function for every worker count: both run the same fixed-chunk
/// computation, only the chunk scheduling differs. Oracle rows for the
/// workload's slots are prefetched before the fan-out.
pub fn par_path_stretch(
    net: &OverlayNet,
    overlay: &impl Lookup,
    pairs: &[(Slot, Slot)],
) -> StretchSummary {
    warm_pair_rows(net, pairs);
    let partials = pairs
        .par_chunks(MEASURE_CHUNK)
        .map(|chunk| {
            let mut scratch = FloodScratch::new();
            StretchPartial::measure(net, overlay, chunk, &mut scratch)
        })
        .collect();
    fold_partials(partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::SimRng;
    use prop_netsim::{generate, LatencyOracle, TransitStubParams};
    use prop_overlay::chord::{Chord, ChordParams};
    use prop_workloads::LookupGen;
    use std::sync::Arc;

    fn chord(n: usize, seed: u64) -> (Chord, prop_overlay::OverlayNet, SimRng) {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
        let (ch, net) = Chord::build(ChordParams::default(), oracle, &mut rng);
        (ch, net, rng)
    }

    #[test]
    fn path_stretch_at_least_one() {
        // An overlay route can never beat the direct shortest path.
        let (ch, net, rng) = chord(30, 1);
        let live: Vec<Slot> = net.graph().live_slots().collect();
        let pairs = LookupGen::new(&rng).uniform_pairs(&live, 400);
        let s = path_stretch(&net, &ch, &pairs);
        assert!(s.mean >= 1.0, "stretch {}", s.mean);
        assert!(s.mean.is_finite());
        assert_eq!(s.delivered + s.failed + s.skipped, 400);
    }

    #[test]
    fn link_stretch_positive() {
        let (_, net, _) = chord(30, 2);
        let s = link_stretch(&net);
        assert!(s > 0.0 && s.is_finite());
    }

    #[test]
    fn better_placement_lowers_link_stretch() {
        // Greedily improving swaps must lower link stretch.
        let (_, mut net, _) = chord(30, 3);
        let before = link_stretch(&net);
        // Find any beneficial swap and apply it.
        let mut applied = false;
        'outer: for a in 0..30u32 {
            for b in 0..30u32 {
                if a == b {
                    continue;
                }
                let plan = prop_core::exchange::plan_propg(&net, Slot(a), Slot(b));
                if plan.var > 0 {
                    prop_core::exchange::apply(&mut net, &plan);
                    applied = true;
                    break 'outer;
                }
            }
        }
        assert!(applied, "no beneficial swap found in a random placement");
        assert!(link_stretch(&net) < before);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let (ch, net, rng) = chord(30, 4);
        let live: Vec<Slot> = net.graph().live_slots().collect();
        // Not a multiple of MEASURE_CHUNK: exercises the ragged tail.
        let pairs = LookupGen::new(&rng).uniform_pairs(&live, 650);
        let serial = path_stretch(&net, &ch, &pairs);
        let parallel = par_path_stretch(&net, &ch, &pairs);
        assert_eq!(serial.mean.to_bits(), parallel.mean.to_bits());
        assert_eq!(serial.delivered, parallel.delivered);
        assert_eq!(serial.failed, parallel.failed);
        assert_eq!(serial.skipped, parallel.skipped);
    }
}
