//! Convergence-time summaries.
//!
//! The paper's figures all show the same qualitative arc: a steep drop
//! through warm-up, then a long flat tail. These helpers turn a sampled
//! [`TimeSeries`] into the two numbers worth quoting: *how much* it
//! converged to, and *how fast* it got (most of the way) there.

use crate::timeseries::TimeSeries;
use serde::{Deserialize, Serialize};

/// Convergence summary of a falling time series.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Convergence {
    /// First sample value.
    pub initial: f64,
    /// Final sample value.
    pub final_: f64,
    /// Total relative improvement `(initial − final) / initial`.
    pub improvement: f64,
    /// Minutes until the series first achieved 90% of its total
    /// improvement (`None` if it never improved).
    pub t90_minutes: Option<f64>,
    /// Largest upward excursion between consecutive samples, relative to
    /// the initial value — quantifies the paper's "stretch is not reduced
    /// all the time".
    pub max_regression: f64,
}

/// Analyze a series (assumed sampled at increasing times).
pub fn convergence(ts: &TimeSeries) -> Option<Convergence> {
    let first = ts.first_value()?;
    let last = ts.last_value()?;
    if first == 0.0 {
        return None;
    }
    let improvement = (first - last) / first;
    let target = first - 0.9 * (first - last);
    let t90_minutes = (last < first)
        .then(|| ts.points.iter().find(|&&(_, v)| v <= target).map(|&(t, _)| t))
        .flatten();
    let mut max_regression = 0.0f64;
    for w in ts.points.windows(2) {
        let up = (w[1].1 - w[0].1) / first;
        max_regression = max_regression.max(up);
    }
    Some(Convergence { initial: first, final_: last, improvement, t90_minutes, max_regression })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::{Duration, SimTime};

    fn series(vals: &[f64]) -> TimeSeries {
        let mut ts = TimeSeries::new("t");
        let mut t = SimTime::ZERO;
        for &v in vals {
            ts.push(t, v);
            t += Duration::from_minutes(10);
        }
        ts
    }

    #[test]
    fn clean_descent() {
        let c = convergence(&series(&[100.0, 60.0, 52.0, 50.0])).unwrap();
        assert_eq!(c.initial, 100.0);
        assert_eq!(c.final_, 50.0);
        assert!((c.improvement - 0.5).abs() < 1e-12);
        // 90% of the 50-point drop = reach 55; first sample ≤ 55 is 52.0
        // at minute 20.
        assert_eq!(c.t90_minutes, Some(20.0));
        assert_eq!(c.max_regression, 0.0);
    }

    #[test]
    fn regression_is_captured() {
        let c = convergence(&series(&[100.0, 70.0, 85.0, 60.0])).unwrap();
        assert!((c.max_regression - 0.15).abs() < 1e-12);
        assert!(c.t90_minutes.is_some());
    }

    #[test]
    fn non_improving_series() {
        let c = convergence(&series(&[50.0, 55.0, 60.0])).unwrap();
        assert!(c.improvement < 0.0);
        assert_eq!(c.t90_minutes, None);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convergence(&TimeSeries::new("empty")).is_none());
        assert!(convergence(&series(&[0.0, 1.0])).is_none());
    }

    #[test]
    fn single_point_series() {
        let c = convergence(&series(&[42.0])).unwrap();
        assert_eq!(c.improvement, 0.0);
        assert_eq!(c.t90_minutes, None);
        assert_eq!(c.max_regression, 0.0);
    }
}
