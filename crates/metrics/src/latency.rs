//! Average lookup latency.
//!
//! Accumulation is exact: latencies and hop counts are integers, so the
//! totals are integer sums and the means are computed once at the end.
//! That is what makes [`par_avg_lookup_latency`] bit-identical to
//! [`avg_lookup_latency`] under any chunking and worker count (see
//! [`crate::plane`]).

use crate::plane::{warm_pair_rows, MEASURE_CHUNK};
use prop_overlay::{FloodScratch, Lookup, OverlayNet, Slot};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Result of measuring a lookup workload.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Mean latency over delivered lookups, ms.
    pub mean_ms: f64,
    /// Mean overlay hops over delivered lookups.
    pub mean_hops: f64,
    pub delivered: u64,
    /// Lookups the overlay failed to deliver (e.g. flood TTL expired).
    pub failed: u64,
}

/// Exact integer totals of a (partial) latency workload. Merging is integer
/// addition — associative and commutative — so any reduction tree over any
/// partition of the pairs yields the same totals.
#[derive(Clone, Copy, Debug, Default)]
struct LatencyTotals {
    latency_ms: u128,
    hops: u64,
    delivered: u64,
    failed: u64,
}

impl LatencyTotals {
    fn measure(
        net: &OverlayNet,
        overlay: &impl Lookup,
        pairs: &[(Slot, Slot)],
        scratch: &mut FloodScratch,
    ) -> Self {
        let mut t = LatencyTotals::default();
        for &(src, dst) in pairs {
            match overlay.lookup_with(net, src, dst, scratch) {
                Some(out) => {
                    t.latency_ms += out.latency_ms as u128;
                    t.hops += out.hops as u64;
                    t.delivered += 1;
                }
                None => t.failed += 1,
            }
        }
        t
    }

    fn merge(self, other: Self) -> Self {
        LatencyTotals {
            latency_ms: self.latency_ms + other.latency_ms,
            hops: self.hops + other.hops,
            delivered: self.delivered + other.delivered,
            failed: self.failed + other.failed,
        }
    }

    fn summary(self) -> LatencySummary {
        LatencySummary {
            mean_ms: self.latency_ms as f64 / self.delivered as f64,
            mean_hops: self.hops as f64 / self.delivered as f64,
            delivered: self.delivered,
            failed: self.failed,
        }
    }
}

/// Run every pair through the overlay's lookup discipline and summarize.
pub fn avg_lookup_latency(
    net: &OverlayNet,
    overlay: &impl Lookup,
    pairs: &[(Slot, Slot)],
) -> LatencySummary {
    let mut scratch = FloodScratch::new();
    LatencyTotals::measure(net, overlay, pairs, &mut scratch).summary()
}

/// [`avg_lookup_latency`] fanned out over rayon workers: the pair list is
/// chunked, each worker measures its chunks with a private
/// [`FloodScratch`], and the exact integer totals are merged. Bit-identical
/// to the serial function for every worker count; oracle rows for the
/// workload's slots are prefetched before the fan-out.
pub fn par_avg_lookup_latency(
    net: &OverlayNet,
    overlay: &impl Lookup,
    pairs: &[(Slot, Slot)],
) -> LatencySummary {
    warm_pair_rows(net, pairs);
    pairs
        .par_chunks(MEASURE_CHUNK)
        .map(|chunk| {
            let mut scratch = FloodScratch::new();
            LatencyTotals::measure(net, overlay, chunk, &mut scratch)
        })
        .reduce(LatencyTotals::default, LatencyTotals::merge)
        .summary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::SimRng;
    use prop_netsim::{generate, LatencyOracle, TransitStubParams};
    use prop_overlay::gnutella::{Gnutella, GnutellaParams};
    use prop_workloads::LookupGen;
    use std::sync::Arc;

    fn setup(n: usize, seed: u64) -> (Gnutella, prop_overlay::OverlayNet, SimRng) {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
        let (gn, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
        (gn, net, rng)
    }

    #[test]
    fn summary_counts_add_up() {
        let (gn, net, rng) = setup(25, 1);
        let live: Vec<Slot> = net.graph().live_slots().collect();
        let pairs = LookupGen::new(&rng).uniform_pairs(&live, 300);
        let s = avg_lookup_latency(&net, &gn, &pairs);
        assert_eq!(s.delivered + s.failed, 300);
        assert!(s.mean_ms > 0.0);
        assert!(s.mean_hops >= 1.0);
    }

    #[test]
    fn ttl_one_fails_on_non_neighbors() {
        let (mut gn, net, rng) = setup(25, 2);
        gn.params.flood_ttl = 1;
        let live: Vec<Slot> = net.graph().live_slots().collect();
        let pairs = LookupGen::new(&rng).uniform_pairs(&live, 300);
        let s = avg_lookup_latency(&net, &gn, &pairs);
        assert!(s.failed > 0, "TTL=1 should fail on most non-adjacent pairs");
        assert!(s.mean_hops <= 1.0 || s.delivered == 0);
    }

    #[test]
    fn empty_workload_is_nan_mean() {
        let (gn, net, _) = setup(10, 3);
        let s = avg_lookup_latency(&net, &gn, &[]);
        assert_eq!(s.delivered, 0);
        assert!(s.mean_ms.is_nan());
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let (gn, net, rng) = setup(30, 4);
        let live: Vec<Slot> = net.graph().live_slots().collect();
        // Deliberately not a multiple of MEASURE_CHUNK: exercises the
        // ragged tail chunk.
        let pairs = LookupGen::new(&rng).uniform_pairs(&live, 700);
        let serial = avg_lookup_latency(&net, &gn, &pairs);
        let parallel = par_avg_lookup_latency(&net, &gn, &pairs);
        assert_eq!(serial.mean_ms.to_bits(), parallel.mean_ms.to_bits());
        assert_eq!(serial.mean_hops.to_bits(), parallel.mean_hops.to_bits());
        assert_eq!(serial.delivered, parallel.delivered);
        assert_eq!(serial.failed, parallel.failed);
    }
}
