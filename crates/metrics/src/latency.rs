//! Average lookup latency.

use prop_engine::stats::Accumulator;
use prop_overlay::{Lookup, OverlayNet, Slot};
use serde::{Deserialize, Serialize};

/// Result of measuring a lookup workload.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Mean latency over delivered lookups, ms.
    pub mean_ms: f64,
    /// Mean overlay hops over delivered lookups.
    pub mean_hops: f64,
    pub delivered: u64,
    /// Lookups the overlay failed to deliver (e.g. flood TTL expired).
    pub failed: u64,
}

/// Run every pair through the overlay's lookup discipline and summarize.
pub fn avg_lookup_latency(
    net: &OverlayNet,
    overlay: &impl Lookup,
    pairs: &[(Slot, Slot)],
) -> LatencySummary {
    let mut lat = Accumulator::new();
    let mut hops = Accumulator::new();
    let mut failed = 0u64;
    for &(src, dst) in pairs {
        match overlay.lookup(net, src, dst) {
            Some(out) => {
                lat.add(out.latency_ms as f64);
                hops.add(out.hops as f64);
            }
            None => failed += 1,
        }
    }
    LatencySummary { mean_ms: lat.mean(), mean_hops: hops.mean(), delivered: lat.count(), failed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::SimRng;
    use prop_netsim::{generate, LatencyOracle, TransitStubParams};
    use prop_overlay::gnutella::{Gnutella, GnutellaParams};
    use prop_workloads::LookupGen;
    use std::sync::Arc;

    fn setup(n: usize, seed: u64) -> (Gnutella, prop_overlay::OverlayNet, SimRng) {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
        let (gn, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
        (gn, net, rng)
    }

    #[test]
    fn summary_counts_add_up() {
        let (gn, net, rng) = setup(25, 1);
        let live: Vec<Slot> = net.graph().live_slots().collect();
        let pairs = LookupGen::new(&rng).uniform_pairs(&live, 300);
        let s = avg_lookup_latency(&net, &gn, &pairs);
        assert_eq!(s.delivered + s.failed, 300);
        assert!(s.mean_ms > 0.0);
        assert!(s.mean_hops >= 1.0);
    }

    #[test]
    fn ttl_one_fails_on_non_neighbors() {
        let (mut gn, net, rng) = setup(25, 2);
        gn.params.flood_ttl = 1;
        let live: Vec<Slot> = net.graph().live_slots().collect();
        let pairs = LookupGen::new(&rng).uniform_pairs(&live, 300);
        let s = avg_lookup_latency(&net, &gn, &pairs);
        assert!(s.failed > 0, "TTL=1 should fail on most non-adjacent pairs");
        assert!(s.mean_hops <= 1.0 || s.delivered == 0);
    }

    #[test]
    fn empty_workload_is_nan_mean() {
        let (gn, net, _) = setup(10, 3);
        let s = avg_lookup_latency(&net, &gn, &[]);
        assert_eq!(s.delivered, 0);
        assert!(s.mean_ms.is_nan());
    }
}
