//! Property: every `par_*` measurement is **bit-for-bit identical** to its
//! serial twin — across random overlays (Gnutella flooding and Chord
//! routing), rayon worker counts, and latency-oracle tiers including a row
//! cache squeezed to its minimum capacity (one resident row per shard, so
//! the measurement thrashes the cache constantly).
//!
//! This is the determinism contract of `prop_metrics::plane` stated as a
//! property rather than as a handful of fixed seeds: integer metrics are
//! exact sums (reduction order is irrelevant), and the float-valued stretch
//! uses fixed `MEASURE_CHUNK` chunking with in-order folding, so no choice
//! of scheduler, worker count, or cache state may leak into the bits.

use prop_engine::SimRng;
use prop_metrics::{
    avg_lookup_latency, mean_flood_messages, par_avg_lookup_latency, par_mean_flood_messages,
    par_path_stretch, path_stretch,
};
use prop_netsim::{generate, LatencyOracle, OracleConfig, TransitStubParams};
use prop_overlay::chord::{Chord, ChordParams};
use prop_overlay::gnutella::{Gnutella, GnutellaParams};
use prop_overlay::Slot;
use prop_workloads::LookupGen;
use proptest::prelude::*;
use std::sync::Arc;

fn pool(workers: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new().num_threads(workers).build().expect("local rayon pool")
}

proptest! {
    // Each case builds a physical topology, two overlays, and a workload —
    // a small case count keeps the tier-1 suite fast while still sweeping
    // the axes that could break determinism.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn parallel_measurements_are_bit_identical_to_serial(
        seed in 0u64..u64::MAX / 2,
        n in 24usize..=40,
        workers in prop::sample::select(vec![1usize, 2, 4]),
        // `cached(1)` clamps to the cache's floor — one row per shard —
        // forcing evictions on nearly every lookup.
        squeeze_cache in any::<bool>(),
    ) {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let cfg = if squeeze_cache { OracleConfig::cached(1) } else { OracleConfig::dense() };
        let oracle = Arc::new(LatencyOracle::select_and_build_with(&phys, n, &mut rng, &cfg));

        let (gn, gnet) = Gnutella::build(GnutellaParams::default(), Arc::clone(&oracle), &mut rng);
        let (ch, cnet) = Chord::build(ChordParams::default(), oracle, &mut rng);
        let live: Vec<Slot> = gnet.graph().live_slots().collect();
        // 300 pairs: not a multiple of MEASURE_CHUNK, so the ragged tail
        // chunk is always exercised.
        let pairs = LookupGen::new(&rng).uniform_pairs(&live, 300);

        let serial_latency = avg_lookup_latency(&gnet, &gn, &pairs);
        let serial_stretch = path_stretch(&cnet, &ch, &pairs);
        let serial_flood = mean_flood_messages(&gnet, &live, 4);

        let (par_latency, par_stretch, par_flood) = pool(workers).install(|| {
            (
                par_avg_lookup_latency(&gnet, &gn, &pairs),
                par_path_stretch(&cnet, &ch, &pairs),
                par_mean_flood_messages(&gnet, &live, 4),
            )
        });

        prop_assert_eq!(serial_latency.mean_ms.to_bits(), par_latency.mean_ms.to_bits());
        prop_assert_eq!(serial_latency.mean_hops.to_bits(), par_latency.mean_hops.to_bits());
        prop_assert_eq!(serial_latency.delivered, par_latency.delivered);
        prop_assert_eq!(serial_latency.failed, par_latency.failed);

        prop_assert_eq!(serial_stretch.mean.to_bits(), par_stretch.mean.to_bits());
        prop_assert_eq!(serial_stretch.delivered, par_stretch.delivered);
        prop_assert_eq!(serial_stretch.failed, par_stretch.failed);
        prop_assert_eq!(serial_stretch.skipped, par_stretch.skipped);

        prop_assert_eq!(serial_flood.to_bits(), par_flood.to_bits());
    }
}
