//! Two-tier (ultrapeer/leaf) Gnutella.
//!
//! Deployed Gnutella evolved past the flat random graph the paper
//! simulates: well-provisioned **ultrapeers** form the flooding mesh and
//! ordinary **leaves** hang off a couple of ultrapeers each, never
//! relaying queries. The paper's related work cites exactly this kind of
//! hierarchy (Liu et al.'s bipartite overlay), and it is the natural
//! stress test for PROP's claim of working on *any* self-organized
//! topology: the degree structure here is bimodal by design, so a scheme
//! that deforms degrees breaks the architecture outright.
//!
//! * Construction: the first `n_up` peers (the "capable" ones) build a
//!   preferential-attachment mesh among themselves; every later peer is a
//!   leaf attaching to `leaf_links` ultrapeers.
//! * Lookup: the source hands the query to its ultrapeer(s); it floods
//!   across the mesh with a TTL; the destination's ultrapeer delivers the
//!   last hop. **Leaves never relay**, which the latency model enforces.
//! * PROP runs unchanged on the whole overlay: PROP-G swaps positions
//!   across tiers (a capable peer can take over a leaf position and vice
//!   versa — position, not role, is what moves), PROP-O swaps subsets and
//!   preserves the bimodal degree profile exactly.

use crate::logical::{LogicalGraph, Slot};
use crate::net::OverlayNet;
use crate::placement::Placement;
use crate::{Lookup, RouteOutcome};
use prop_engine::SimRng;
use prop_netsim::LatencyOracle;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Two-tier construction parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UltrapeerParams {
    /// Fraction of slots that are ultrapeers (Gnutella ~10–20%).
    pub ultrapeer_fraction: f64,
    /// Mesh links each ultrapeer opens when joining the top tier.
    pub mesh_links: usize,
    /// Ultrapeers each leaf attaches to (Gnutella clients use 2–3).
    pub leaf_links: usize,
    /// Flood TTL within the ultrapeer mesh.
    pub flood_ttl: u32,
}

impl Default for UltrapeerParams {
    fn default() -> Self {
        UltrapeerParams { ultrapeer_fraction: 0.2, mesh_links: 4, leaf_links: 2, flood_ttl: 5 }
    }
}

/// The two-tier overlay.
#[derive(Clone, Debug)]
pub struct Ultrapeer {
    pub params: UltrapeerParams,
    /// Which *slots* are ultrapeer positions (fixed: positions have roles;
    /// PROP-G moves peers between positions).
    is_ultrapeer: Vec<bool>,
}

impl Ultrapeer {
    /// Build over the oracle's members: slots `0..n_up` are the ultrapeer
    /// mesh, the rest are leaves.
    pub fn build(
        params: UltrapeerParams,
        oracle: Arc<LatencyOracle>,
        rng: &mut SimRng,
    ) -> (Ultrapeer, OverlayNet) {
        let n = oracle.len();
        let n_up = ((n as f64 * params.ultrapeer_fraction).round() as usize)
            .max(params.mesh_links + 1)
            .min(n);
        assert!(n_up < n, "need at least one leaf");
        assert!(params.leaf_links >= 1);
        let mut rng = rng.fork("ultrapeer-build");
        let mut g = LogicalGraph::new(n);

        // Ultrapeer mesh: seed clique + preferential attachment, exactly
        // like the flat Gnutella builder but restricted to the top tier.
        let k = params.mesh_links;
        let mut endpoints: Vec<Slot> = Vec::new();
        for a in 0..=(k as u32) {
            for b in (a + 1)..=(k as u32) {
                g.add_edge(Slot(a), Slot(b));
                endpoints.push(Slot(a));
                endpoints.push(Slot(b));
            }
        }
        for s in (k + 1)..n_up {
            let joiner = Slot(s as u32);
            let mut chosen: Vec<Slot> = Vec::with_capacity(k);
            while chosen.len() < k {
                let target = *rng.pick(&endpoints).expect("seeded");
                if target != joiner && !chosen.contains(&target) {
                    chosen.push(target);
                }
            }
            for t in chosen {
                g.add_edge(joiner, t);
                endpoints.push(joiner);
                endpoints.push(t);
            }
        }

        // Leaves: attach to `leaf_links` distinct random ultrapeers.
        let ups: Vec<Slot> = (0..n_up as u32).map(Slot).collect();
        for s in n_up..n {
            let leaf = Slot(s as u32);
            for up in rng.sample_distinct(&ups, params.leaf_links.min(n_up)) {
                g.add_edge(leaf, up);
            }
        }

        let is_ultrapeer = (0..n).map(|i| i < n_up).collect();
        let net = OverlayNet::new(g, Placement::identity(n), oracle);
        (Ultrapeer { params, is_ultrapeer }, net)
    }

    /// Is `s` an ultrapeer *position*?
    #[inline]
    pub fn is_ultrapeer(&self, s: Slot) -> bool {
        self.is_ultrapeer[s.index()]
    }

    /// Number of ultrapeer positions.
    pub fn num_ultrapeers(&self) -> usize {
        self.is_ultrapeer.iter().filter(|&&u| u).count()
    }

    /// Leaf-aware flood: cheapest delivery from `src` to `dst` where only
    /// ultrapeer positions relay. Hop budget: 1 (into the mesh) +
    /// `flood_ttl` (mesh) + 1 (out to a leaf).
    pub fn flood_latency(&self, net: &OverlayNet, src: Slot, dst: Slot) -> Option<(u64, u32)> {
        let mut scratch = crate::FloodScratch::new();
        self.flood_latency_with(net, src, dst, &mut scratch)
    }

    /// [`Ultrapeer::flood_latency`] with caller-owned scratch (see
    /// [`crate::FloodScratch`]); identical answers, no per-call allocation.
    pub fn flood_latency_with(
        &self,
        net: &OverlayNet,
        src: Slot,
        dst: Slot,
        scratch: &mut crate::FloodScratch,
    ) -> Option<(u64, u32)> {
        if src == dst {
            return Some((0, 0));
        }
        let max_hops = self.params.flood_ttl + 2;
        let relays = |u: Slot| u == src || self.is_ultrapeer(u);
        net.run_flood(scratch, src, dst, max_hops, relays, |u, v| {
            net.d(u, v) as u64 + net.proc_delay(v) as u64
        })
    }
}

impl Lookup for Ultrapeer {
    fn lookup(&self, net: &OverlayNet, src: Slot, dst: Slot) -> Option<RouteOutcome> {
        self.flood_latency(net, src, dst)
            .map(|(latency_ms, hops)| RouteOutcome { latency_ms, hops })
    }

    fn lookup_with(
        &self,
        net: &OverlayNet,
        src: Slot,
        dst: Slot,
        scratch: &mut crate::FloodScratch,
    ) -> Option<RouteOutcome> {
        self.flood_latency_with(net, src, dst, scratch)
            .map(|(latency_ms, hops)| RouteOutcome { latency_ms, hops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netsim::{generate, TransitStubParams};

    fn oracle(n: usize, seed: u64) -> Arc<LatencyOracle> {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng))
    }

    fn build(n: usize, seed: u64) -> (Ultrapeer, OverlayNet) {
        let mut rng = SimRng::seed_from(seed);
        Ultrapeer::build(UltrapeerParams::default(), oracle(n, seed), &mut rng)
    }

    #[test]
    fn tiers_have_expected_shape() {
        let (up, net) = build(40, 1);
        assert_eq!(up.num_ultrapeers(), 8);
        assert!(net.graph().is_connected());
        // Every leaf has exactly `leaf_links` edges, all into the top tier.
        for s in 8..40u32 {
            let leaf = Slot(s);
            assert!(!up.is_ultrapeer(leaf));
            assert_eq!(net.graph().degree(leaf), 2);
            for &nb in net.graph().neighbors(leaf) {
                assert!(up.is_ultrapeer(nb), "leaf {s} wired to another leaf");
            }
        }
    }

    #[test]
    fn lookups_deliver_between_all_pairs() {
        let (up, net) = build(40, 2);
        for a in 0..40u32 {
            for b in 0..40u32 {
                let out = up.lookup(&net, Slot(a), Slot(b));
                assert!(out.is_some(), "undelivered {a}→{b}");
            }
        }
    }

    #[test]
    fn leaves_never_relay() {
        // A query between two leaves sharing no ultrapeer must take ≥ 3
        // hops (leaf → up → … → up → leaf), never 2 via another leaf.
        let (up, net) = build(40, 3);
        for a in 8..40u32 {
            for b in 8..40u32 {
                if a == b {
                    continue;
                }
                let (_, hops) = up.flood_latency(&net, Slot(a), Slot(b)).unwrap();
                let share_up = net
                    .graph()
                    .neighbors(Slot(a))
                    .iter()
                    .any(|&x| net.graph().has_edge(x, Slot(b)));
                if share_up {
                    assert!(hops >= 2);
                } else {
                    assert!(hops >= 3, "{a}→{b} took {hops} hops without a shared ultrapeer");
                }
            }
        }
    }

    // PROP integration is covered by workspace-level tests
    // (tests/two_tier.rs); here we only verify the raw topology shape.
    #[test]
    fn placement_swap_keeps_tiers_fixed() {
        let (up, mut net) = build(30, 4);
        // Swap an ultrapeer position's occupant with a leaf position's.
        net.swap_peers(Slot(0), Slot(20));
        // Positions keep their roles…
        assert!(up.is_ultrapeer(Slot(0)));
        assert!(!up.is_ultrapeer(Slot(20)));
        // …and lookups still deliver.
        for b in 0..30u32 {
            assert!(up.lookup(&net, Slot(5), Slot(b)).is_some());
        }
    }

    #[test]
    fn deterministic_build() {
        let (_, n1) = build(30, 5);
        let (_, n2) = build(30, 5);
        for s in n1.graph().live_slots() {
            assert_eq!(n1.graph().neighbors(s), n2.graph().neighbors(s));
        }
    }
}
