//! Chord DHT.
//!
//! A full identifier-ring Chord over a 64-bit key space: every *slot* owns a
//! random identifier; routing state is the immediate successor, a short
//! successor list (fault tolerance, and the paper's "extended routing table"
//! that records predecessors as bidirectional links), and the classic finger
//! table (`finger[i]` = first node ≥ `id + 2^i`).
//!
//! Identifiers belong to **slots**, not peers: a PROP-G exchange swaps which
//! physical peer sits at which identifier ("instead of regenerating its
//! identifier, each node is only allowed to get old identifiers of other
//! nodes"), so the ring structure — and therefore every DHT guarantee — is
//! untouched. That is exactly the paper's Theorem 2 specialized to Chord.
//!
//! Lookups use iterative greedy routing via the closest preceding finger,
//! the textbook O(log n)-hop discipline.

use crate::logical::Slot;
use crate::net::OverlayNet;
use crate::placement::Placement;
use crate::{Lookup, RouteOutcome};
use prop_engine::SimRng;
use prop_netsim::LatencyOracle;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Number of bits in the identifier space.
pub const ID_BITS: u32 = 64;

/// Chord construction parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChordParams {
    /// Successor-list length (≥ 1).
    pub successors: usize,
}

impl Default for ChordParams {
    fn default() -> Self {
        ChordParams { successors: 3 }
    }
}

/// The identifier-ring structure. Immutable once built; placement mobility
/// (PROP-G) happens in the [`OverlayNet`]'s [`Placement`].
#[derive(Clone, Debug)]
pub struct Chord {
    /// Identifier of each slot.
    ids: Vec<u64>,
    /// Slots sorted by identifier (the ring).
    ring: Vec<Slot>,
    /// Per slot: deduplicated outgoing routing entries
    /// (successor list ∪ fingers), sorted by slot index.
    table: Vec<Vec<Slot>>,
    /// Immediate successor per slot.
    successor: Vec<Slot>,
}

/// Is `x` in the half-open circular interval `(a, b]`?
#[inline]
fn in_interval_oc(a: u64, x: u64, b: u64) -> bool {
    if a < b {
        a < x && x <= b
    } else if a > b {
        x > a || x <= b
    } else {
        // a == b: the interval is the whole ring.
        true
    }
}

impl Chord {
    /// Build a Chord ring of `oracle.len()` slots with random distinct
    /// identifiers. Finger entries follow the standard rule (first node at
    /// or after `id + 2^i`).
    pub fn build(
        params: ChordParams,
        oracle: Arc<LatencyOracle>,
        rng: &mut SimRng,
    ) -> (Chord, OverlayNet) {
        Self::build_with_selector(params, oracle, rng, |_slot, candidates, _| candidates[0])
    }

    /// Build with a custom finger-candidate selector, the hook the PNS
    /// baseline uses: for each finger, `select(slot, candidates, i)` picks
    /// among the first few nodes that legally satisfy finger `i` (candidates
    /// are in ring order starting at the canonical entry).
    pub fn build_with_selector(
        params: ChordParams,
        oracle: Arc<LatencyOracle>,
        rng: &mut SimRng,
        mut select: impl FnMut(Slot, &[Slot], u32) -> Slot,
    ) -> (Chord, OverlayNet) {
        let n = oracle.len();
        assert!(n >= 2, "Chord needs at least two nodes");
        assert!(params.successors >= 1);
        let mut rng = rng.fork("chord-build");

        // Random distinct ids.
        let mut ids = vec![0u64; n];
        let mut used = std::collections::HashSet::with_capacity(n);
        for id in ids.iter_mut() {
            loop {
                let cand: u64 = rng.range(0..u64::MAX);
                if used.insert(cand) {
                    *id = cand;
                    break;
                }
            }
        }

        let mut ring: Vec<Slot> = (0..n as u32).map(Slot).collect();
        ring.sort_by_key(|s| ids[s.index()]);

        // rank[slot] = position on the ring.
        let mut rank = vec![0usize; n];
        for (r, &s) in ring.iter().enumerate() {
            rank[s.index()] = r;
        }

        let mut successor = vec![Slot(0); n];
        let mut table: Vec<Vec<Slot>> = vec![Vec::new(); n];
        // How many legal candidates the selector sees per finger: enough for
        // PNS to matter, small enough to stay O(n log n).
        const CANDIDATES: usize = 4;

        for &s in &ring {
            let r = rank[s.index()];
            successor[s.index()] = ring[(r + 1) % n];
            let mut entries: Vec<Slot> = Vec::new();
            // Successor list.
            for k in 1..=params.successors.min(n - 1) {
                entries.push(ring[(r + k) % n]);
            }
            // Fingers.
            let my_id = ids[s.index()];
            for i in 0..ID_BITS {
                let target = my_id.wrapping_add(1u64 << i);
                // First ring position with id ≥ target (circular).
                let pos = ring.partition_point(|t| ids[t.index()] < target) % n;
                // The canonical finger and the next few ring nodes are all
                // legal "≥ target" choices; present them to the selector.
                let mut cands = Vec::with_capacity(CANDIDATES);
                for k in 0..CANDIDATES.min(n) {
                    let c = ring[(pos + k) % n];
                    if c != s {
                        cands.push(c);
                    }
                }
                if cands.is_empty() {
                    continue;
                }
                let chosen = select(s, &cands, i);
                debug_assert!(cands.contains(&chosen), "selector must pick a candidate");
                entries.push(chosen);
            }
            entries.sort_unstable();
            entries.dedup();
            entries.retain(|&e| e != s);
            table[s.index()] = entries;
        }

        // Undirected logical graph = union of directed routing entries.
        let g = crate::table::graph_from_table(n, &table);

        let chord = Chord { ids, ring, table, successor };
        let net = OverlayNet::new(g, Placement::identity(n), oracle);
        (chord, net)
    }

    /// Identifier of `s`.
    #[inline]
    pub fn id(&self, s: Slot) -> u64 {
        self.ids[s.index()]
    }

    /// The slot responsible for `key`: its successor on the ring.
    pub fn owner_of(&self, key: u64) -> Slot {
        let pos = self.ring.partition_point(|t| self.ids[t.index()] < key) % self.ring.len();
        self.ring[pos]
    }

    /// Immediate ring successor of `s`.
    #[inline]
    pub fn successor(&self, s: Slot) -> Slot {
        self.successor[s.index()]
    }

    /// Outgoing routing entries of `s` (successor list ∪ fingers).
    #[inline]
    pub fn entries(&self, s: Slot) -> &[Slot] {
        &self.table[s.index()]
    }

    /// Route from `src` to the slot owning `key`, returning the slot path.
    /// Classic greedy: jump to the routing entry whose id is the closest
    /// predecessor of `key` (or `key` itself); the successor link guarantees
    /// progress, so the walk always terminates.
    pub fn route_path(&self, src: Slot, key: u64) -> Vec<Slot> {
        let dst = self.owner_of(key);
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let cur_id = self.ids[cur.index()];
            // Best entry: id in (cur_id, key], maximizing circular progress
            // (closest to key from below, i.e. latest in ring order).
            let mut best: Option<(u64, Slot)> = None; // (circular distance to key, slot)
            for &e in &self.table[cur.index()] {
                let eid = self.ids[e.index()];
                if in_interval_oc(cur_id, eid, key) {
                    let gap = key.wrapping_sub(eid); // 0 when eid == key
                    if best.is_none_or(|(g, _)| gap < g) {
                        best = Some((gap, e));
                    }
                }
            }
            let next = best.map(|(_, s)| s).unwrap_or_else(|| self.successor(cur));
            debug_assert_ne!(next, cur, "routing made no progress");
            path.push(next);
            cur = next;
        }
        path
    }
}

impl Lookup for Chord {
    /// Latency of looking up a key owned by `dst`, starting at `src`.
    fn lookup(&self, net: &OverlayNet, src: Slot, dst: Slot) -> Option<RouteOutcome> {
        let path = self.route_path(src, self.ids[dst.index()]);
        debug_assert_eq!(*path.last().unwrap(), dst);
        let mut latency: u64 = 0;
        for w in path.windows(2) {
            latency += net.d(w[0], w[1]) as u64 + net.proc_delay(w[1]) as u64;
        }
        Some(RouteOutcome { latency_ms: latency, hops: (path.len() - 1) as u32 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netsim::{generate, TransitStubParams};

    fn oracle(n: usize, seed: u64) -> Arc<LatencyOracle> {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng))
    }

    fn build(n: usize, seed: u64) -> (Chord, OverlayNet) {
        let mut rng = SimRng::seed_from(seed);
        Chord::build(ChordParams::default(), oracle(n, seed), &mut rng)
    }

    #[test]
    fn ring_is_a_permutation_sorted_by_id() {
        let (ch, _) = build(20, 1);
        for w in ch.ring.windows(2) {
            assert!(ch.id(w[0]) < ch.id(w[1]));
        }
        let mut slots: Vec<_> = ch.ring.clone();
        slots.sort_unstable();
        assert_eq!(slots, (0..20).map(Slot).collect::<Vec<_>>());
    }

    #[test]
    fn owner_is_successor_of_key() {
        let (ch, _) = build(20, 2);
        for s in 0..20u32 {
            // A node owns its own id.
            assert_eq!(ch.owner_of(ch.id(Slot(s))), Slot(s));
            // A key just above an id is owned by the next node.
            let key = ch.id(Slot(s)).wrapping_add(1);
            let owner = ch.owner_of(key);
            assert_ne!(owner, Slot(s));
        }
    }

    #[test]
    fn every_lookup_terminates_at_owner() {
        let (ch, net) = build(25, 3);
        for a in 0..25u32 {
            for b in 0..25u32 {
                let out = ch.lookup(&net, Slot(a), Slot(b)).unwrap();
                if a == b {
                    assert_eq!(out.hops, 0);
                }
            }
        }
    }

    #[test]
    fn hop_counts_are_logarithmic() {
        let (ch, net) = build(40, 4);
        let mut total_hops = 0u64;
        let mut count = 0u64;
        for a in 0..40u32 {
            for b in 0..40u32 {
                if a != b {
                    total_hops += ch.lookup(&net, Slot(a), Slot(b)).unwrap().hops as u64;
                    count += 1;
                }
            }
        }
        let avg = total_hops as f64 / count as f64;
        // O(log n) ≈ ½·log₂(40) ≈ 2.7; generous bound.
        assert!(avg < 6.0, "average hops {avg}");
        assert!(avg >= 1.0);
    }

    #[test]
    fn routing_ids_monotonically_approach_key() {
        let (ch, _) = build(30, 5);
        let src = Slot(0);
        let dst = Slot(17);
        let key = ch.id(dst);
        let path = ch.route_path(src, key);
        assert_eq!(*path.last().unwrap(), dst);
        // Circular gap to the key must strictly shrink every hop.
        let mut prev_gap = key.wrapping_sub(ch.id(src));
        for &s in &path[1..] {
            let gap = key.wrapping_sub(ch.id(s));
            assert!(gap < prev_gap, "no progress at {s:?}");
            prev_gap = gap;
        }
    }

    #[test]
    fn entries_contain_successor() {
        let (ch, _) = build(15, 6);
        for s in 0..15u32 {
            assert!(ch.entries(Slot(s)).contains(&ch.successor(Slot(s))));
        }
    }

    #[test]
    fn logical_graph_is_connected() {
        let (_, net) = build(20, 7);
        assert!(net.graph().is_connected());
    }

    #[test]
    fn prop_g_swap_keeps_routing_correct() {
        // Swap several placements (what PROP-G does) and verify lookups
        // still terminate at the right owner with the same hop counts —
        // the ring is slot-level, so placement is irrelevant to routing.
        let (ch, mut net) = build(20, 8);
        let before: Vec<u32> =
            (1..20).map(|b| ch.lookup(&net, Slot(0), Slot(b)).unwrap().hops).collect();
        net.swap_peers(Slot(3), Slot(12));
        net.swap_peers(Slot(5), Slot(19));
        let after: Vec<u32> =
            (1..20).map(|b| ch.lookup(&net, Slot(0), Slot(b)).unwrap().hops).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn interval_oc_semantics() {
        assert!(in_interval_oc(3, 5, 9));
        assert!(in_interval_oc(3, 9, 9));
        assert!(!in_interval_oc(3, 3, 9));
        assert!(!in_interval_oc(3, 10, 9));
        // Wrapping interval.
        assert!(in_interval_oc(u64::MAX - 1, 2, 5));
        assert!(!in_interval_oc(u64::MAX - 1, u64::MAX - 3, 5));
        // Degenerate: whole ring.
        assert!(in_interval_oc(7, 1, 7));
    }

    #[test]
    fn custom_selector_is_honored() {
        // A selector that always picks the last candidate still yields a
        // working (terminating, owner-correct) Chord.
        let mut rng = SimRng::seed_from(9);
        let (ch, net) = Chord::build_with_selector(
            ChordParams::default(),
            oracle(20, 9),
            &mut rng,
            |_, cands, _| *cands.last().unwrap(),
        );
        for b in 0..20u32 {
            let out = ch.lookup(&net, Slot(2), Slot(b)).unwrap();
            assert!(out.hops <= 20);
        }
    }

    #[test]
    fn deterministic_build() {
        let (c1, _) = build(20, 10);
        let (c2, _) = build(20, 10);
        assert_eq!(c1.ids, c2.ids);
        assert_eq!(c1.table, c2.table);
    }
}
