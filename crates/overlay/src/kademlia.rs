//! Kademlia DHT.
//!
//! A fourth structured geometry, rounding out PROP-G's "any overlay"
//! claim: Kademlia's XOR metric and k-bucket tables are the design behind
//! the largest deployed DHTs (BitTorrent's Mainline, eMule's Kad).
//!
//! * Identifiers are 128-bit; `distance(a, b) = a XOR b` (a true metric:
//!   symmetric and satisfying the triangle inequality under XOR).
//! * Node `u` keeps a **k-bucket** per prefix length `i`: up to `k` nodes
//!   whose XOR distance from `u` has its highest set bit at position `i`
//!   (i.e. shares exactly `127 − i` leading bits).
//! * Routing greedily forwards to the known node closest (by XOR) to the
//!   target; each hop fixes at least one more leading bit, giving
//!   O(log n) hops.
//!
//! Identifiers belong to slots (as in [`crate::chord`] and
//! [`crate::pastry`]), so a PROP-G exchange is a placement transposition
//! and Kademlia's structure is untouched.

use crate::logical::{LogicalGraph, Slot};
use crate::net::OverlayNet;
use crate::placement::Placement;
use crate::{Lookup, RouteOutcome};
use prop_engine::SimRng;
use prop_netsim::LatencyOracle;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifier width in bits.
pub const ID_BITS: u32 = 128;

/// Kademlia construction parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KademliaParams {
    /// Bucket capacity `k` (Kademlia's replication parameter; 20 in the
    /// paper, smaller here to keep simulated state proportionate).
    pub k: usize,
}

impl Default for KademliaParams {
    fn default() -> Self {
        KademliaParams { k: 8 }
    }
}

/// The Kademlia overlay structure.
#[derive(Clone, Debug)]
pub struct Kademlia {
    ids: Vec<u128>,
    /// Per slot: flattened buckets — for each bit position, up to `k`
    /// slots at that XOR-prefix distance. Stored as one sorted, deduped
    /// contact list per slot (bucket boundaries only matter at build time).
    contacts: Vec<Vec<Slot>>,
}

impl Kademlia {
    /// Build over `oracle.len()` slots with random distinct identifiers.
    /// Each bucket is filled with the `k` *first-seen* eligible nodes in a
    /// random join order (as a real Kademlia's buckets would be, favoring
    /// long-lived contacts) — the selector hook mirrors Chord/Pastry and
    /// is what a PNS variant would override.
    pub fn build(
        params: KademliaParams,
        oracle: Arc<LatencyOracle>,
        rng: &mut SimRng,
    ) -> (Kademlia, OverlayNet) {
        let n = oracle.len();
        assert!(n >= 2, "Kademlia needs at least two nodes");
        assert!(params.k >= 1);
        let mut rng = rng.fork("kademlia-build");

        // Random distinct 128-bit ids.
        let mut ids: Vec<u128> = Vec::with_capacity(n);
        let mut used = std::collections::HashSet::with_capacity(n);
        while ids.len() < n {
            let hi: u64 = rng.range(0..u64::MAX);
            let lo: u64 = rng.range(0..u64::MAX);
            let id = ((hi as u128) << 64) | lo as u128;
            if used.insert(id) {
                ids.push(id);
            }
        }

        // Random join order for bucket-filling precedence.
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);

        let mut contacts: Vec<Vec<Slot>> = vec![Vec::new(); n];
        // bucket_fill[u][bit] = how many contacts u already has there.
        let mut bucket_fill: Vec<std::collections::HashMap<u32, usize>> =
            vec![std::collections::HashMap::new(); n];
        for (pos, &joiner) in order.iter().enumerate() {
            // The joiner meets everyone who joined before it; both sides
            // try to insert the other into the matching bucket.
            for &earlier in &order[..pos] {
                let d = ids[joiner] ^ ids[earlier];
                let bit = 127 - d.leading_zeros();
                for (a, b) in [(joiner, earlier), (earlier, joiner)] {
                    let fill = bucket_fill[a].entry(bit).or_insert(0);
                    if *fill < params.k {
                        *fill += 1;
                        contacts[a].push(Slot(b as u32));
                    }
                }
            }
        }
        for list in contacts.iter_mut() {
            list.sort_unstable();
            list.dedup();
        }

        // Undirected logical graph over the contact lists.
        let mut g = LogicalGraph::new(n);
        for s in 0..n as u32 {
            for &e in &contacts[s as usize] {
                if !g.has_edge(Slot(s), e) {
                    g.add_edge(Slot(s), e);
                }
            }
        }

        let kad = Kademlia { ids, contacts };
        let net = OverlayNet::new(g, Placement::identity(n), oracle);
        (kad, net)
    }

    #[inline]
    pub fn id(&self, s: Slot) -> u128 {
        self.ids[s.index()]
    }

    /// The slot whose id is XOR-closest to `key`.
    pub fn owner_of(&self, key: u128) -> Slot {
        let mut best = Slot(0);
        let mut best_d = self.ids[0] ^ key;
        for i in 1..self.ids.len() {
            let d = self.ids[i] ^ key;
            if d < best_d {
                best_d = d;
                best = Slot(i as u32);
            }
        }
        best
    }

    /// Contacts of `s` (all buckets merged).
    pub fn contacts(&self, s: Slot) -> &[Slot] {
        &self.contacts[s.index()]
    }

    /// Greedy XOR route from `src` to the owner of `key`.
    ///
    /// Termination: each hop strictly reduces XOR distance to the key, and
    /// a node always knows a strictly closer contact unless it is the
    /// closest node overall — Kademlia's bucket structure guarantees a
    /// contact sharing a longer prefix with the key exists whenever one
    /// exists globally... with bounded buckets that can fail rarely, so a
    /// final fallback scans the node's whole contact list; if nothing is
    /// closer, the walk stops at a local minimum and the lookup is counted
    /// failed (`None`). In practice (tests below) delivery is ≥99%.
    pub fn route_path(&self, src: Slot, key: u128) -> Option<Vec<Slot>> {
        let dst = self.owner_of(key);
        let mut path = vec![src];
        let mut cur = src;
        let mut cur_d = self.ids[cur.index()] ^ key;
        while cur != dst {
            let mut best: Option<(u128, Slot)> = None;
            for &c in &self.contacts[cur.index()] {
                let d = self.ids[c.index()] ^ key;
                if d < cur_d && best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, c));
                }
            }
            match best {
                Some((d, next)) => {
                    path.push(next);
                    cur = next;
                    cur_d = d;
                }
                None => return None, // local minimum (rare with k ≥ 8)
            }
        }
        Some(path)
    }
}

impl Lookup for Kademlia {
    fn lookup(&self, net: &OverlayNet, src: Slot, dst: Slot) -> Option<RouteOutcome> {
        let path = self.route_path(src, self.ids[dst.index()])?;
        debug_assert_eq!(*path.last().unwrap(), dst);
        let mut latency = 0u64;
        for w in path.windows(2) {
            latency += net.d(w[0], w[1]) as u64 + net.proc_delay(w[1]) as u64;
        }
        Some(RouteOutcome { latency_ms: latency, hops: (path.len() - 1) as u32 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netsim::{generate, TransitStubParams};

    fn oracle(n: usize, seed: u64) -> Arc<LatencyOracle> {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng))
    }

    fn build(n: usize, seed: u64) -> (Kademlia, OverlayNet) {
        let mut rng = SimRng::seed_from(seed);
        Kademlia::build(KademliaParams::default(), oracle(n, seed), &mut rng)
    }

    #[test]
    fn owner_minimizes_xor_distance() {
        let (kad, _) = build(25, 1);
        for s in 0..25u32 {
            assert_eq!(kad.owner_of(kad.id(Slot(s))), Slot(s));
        }
        let mut rng = SimRng::seed_from(2);
        for _ in 0..50 {
            let key = ((rng.range(0..u64::MAX) as u128) << 64) | rng.range(0..u64::MAX) as u128;
            let owner = kad.owner_of(key);
            let od = kad.id(owner) ^ key;
            for s in 0..25u32 {
                assert!(kad.id(Slot(s)) ^ key >= od);
            }
        }
    }

    #[test]
    fn nearly_all_lookups_deliver() {
        let (kad, net) = build(40, 3);
        let mut ok = 0;
        let mut total = 0;
        for a in 0..40u32 {
            for b in 0..40u32 {
                if a != b {
                    total += 1;
                    if let Some(out) = kad.lookup(&net, Slot(a), Slot(b)) {
                        ok += 1;
                        assert!(out.hops >= 1);
                    }
                }
            }
        }
        assert!(ok as f64 / total as f64 > 0.99, "delivery {ok}/{total}");
    }

    #[test]
    fn hops_are_logarithmic() {
        let (kad, net) = build(40, 4);
        let mut total = 0u64;
        let mut cnt = 0u64;
        for a in 0..40u32 {
            for b in 0..40u32 {
                if a != b {
                    if let Some(out) = kad.lookup(&net, Slot(a), Slot(b)) {
                        total += out.hops as u64;
                        cnt += 1;
                    }
                }
            }
        }
        let avg = total as f64 / cnt as f64;
        assert!(avg < 4.0, "avg hops {avg}");
    }

    #[test]
    fn xor_distance_decreases_monotonically() {
        let (kad, _) = build(30, 5);
        let key = kad.id(Slot(17));
        if let Some(path) = kad.route_path(Slot(2), key) {
            let mut prev = kad.id(Slot(2)) ^ key;
            for &s in &path[1..] {
                let d = kad.id(s) ^ key;
                assert!(d < prev);
                prev = d;
            }
        }
    }

    #[test]
    fn buckets_respect_capacity() {
        let mut rng = SimRng::seed_from(6);
        let (kad, _) = Kademlia::build(KademliaParams { k: 2 }, oracle(30, 6), &mut rng);
        // With k = 2, every (node, bit) bucket holds ≤ 2 contacts.
        for s in 0..30u32 {
            let mut per_bit: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for &c in kad.contacts(Slot(s)) {
                let d = kad.id(Slot(s)) ^ kad.id(c);
                let bit = 127 - d.leading_zeros();
                *per_bit.entry(bit).or_insert(0) += 1;
            }
            // `contacts` holds only entries this node inserted itself (the
            // undirected union lives in the logical graph), so every bucket
            // obeys the capacity exactly.
            for (&bit, &count) in per_bit.iter() {
                assert!(count <= 2, "slot {s} bit {bit} holds {count} > k");
            }
        }
    }

    #[test]
    fn logical_graph_connected() {
        let (_, net) = build(30, 7);
        assert!(net.graph().is_connected());
    }

    #[test]
    fn prop_g_swaps_keep_routes_identical() {
        let (kad, mut net) = build(30, 8);
        let before: Vec<Option<u32>> =
            (0..30).map(|b| kad.lookup(&net, Slot(0), Slot(b)).map(|o| o.hops)).collect();
        net.swap_peers(Slot(3), Slot(22));
        net.swap_peers(Slot(9), Slot(14));
        let after: Vec<Option<u32>> =
            (0..30).map(|b| kad.lookup(&net, Slot(0), Slot(b)).map(|o| o.hops)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn deterministic_build() {
        let (a, _) = build(20, 9);
        let (b, _) = build(20, 9);
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.contacts, b.contacts);
    }
}
