//! # prop-overlay — P2P overlay substrates
//!
//! Every overlay in this workspace is factored into three pieces, which is
//! what lets one protocol implementation (PROP) drive overlays as different
//! as Gnutella and Chord:
//!
//! * [`LogicalGraph`] — the overlay's *logical* wiring: an undirected
//!   adjacency over abstract **slots** ([`Slot`]). For Gnutella the logical
//!   graph is the random peer graph itself; for Chord it is the union of
//!   successor/finger links implied by the identifier ring; for CAN it is
//!   zone adjacency.
//! * [`Placement`] — the bijection between slots and *peers* (physical
//!   hosts, indexed as in [`prop_netsim::LatencyOracle`]). A **PROP-G
//!   exchange is exactly a transposition of this bijection**: the logical
//!   graph is untouched (Theorem 2: the overlay stays isomorphic), only
//!   which host sits at which logical position changes. In a DHT this
//!   corresponds to the two nodes swapping identifiers.
//! * [`OverlayNet`] — glue: logical graph + placement + latency oracle +
//!   per-peer processing delays. Link latency of a logical edge `(a, b)` is
//!   `d(peer(a), peer(b))`; this is the quantity PROP minimizes.
//!
//! On top of the generic pieces sit the concrete systems the paper names:
//! [`gnutella`], [`chord`], [`can`], and [`pastry`], unified for
//! measurement purposes by the [`Lookup`] trait.

pub mod can;
pub mod chord;
pub mod chord_dynamic;
pub mod csr;
pub mod gnutella;
pub mod iso;
pub mod kademlia;
pub mod logical;
pub mod net;
pub mod pastry;
pub mod placement;
pub mod table;
pub mod ultrapeer;
pub mod walk;

pub use csr::{Adjacency, CsrView};
pub use logical::{GraphPatch, LogicalGraph, Slot};
pub use net::{FloodScratch, OverlayNet};
pub use placement::Placement;
pub use walk::{WalkPath, WalkScratch};

/// A routed lookup's outcome: total latency in ms (links + per-hop
/// processing) and the number of overlay hops taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteOutcome {
    pub latency_ms: u64,
    pub hops: u32,
}

/// Uniform measurement interface over the three overlays: deliver a message
/// from the peer at `src` to the peer at `dst` using the overlay's own
/// routing discipline, and report what it cost.
///
/// `None` means the overlay failed to deliver (e.g. a Gnutella flood whose
/// TTL expired before reaching `dst`).
///
/// `Sync` is a supertrait so the measurement plane can share one overlay
/// across rayon workers; every overlay here is plain data, so the bound
/// costs nothing.
pub trait Lookup: Sync {
    /// Route from slot `src` to slot `dst` over `net`.
    fn lookup(&self, net: &OverlayNet, src: Slot, dst: Slot) -> Option<RouteOutcome>;

    /// [`Lookup::lookup`] with caller-owned flood scratch. Flooding overlays
    /// override this to reuse the scratch's buffers across calls (the
    /// measurement-plane hot path: one scratch per worker, thousands of
    /// lookups each); routed overlays keep the default, which ignores the
    /// scratch. Must return exactly what `lookup` returns.
    fn lookup_with(
        &self,
        net: &OverlayNet,
        src: Slot,
        dst: Slot,
        _scratch: &mut FloodScratch,
    ) -> Option<RouteOutcome> {
        self.lookup(net, src, dst)
    }
}
