//! Chord with membership dynamics.
//!
//! [`crate::chord::Chord`] is a static snapshot — ideal for the
//! figure-level experiments, where membership is fixed. The paper's
//! dynamic-environment claims, though, cover structured systems too
//! ("notifications can still be implemented by using the underlying
//! mechanisms just as what happens when peers arrive or depart"), so this
//! module provides a Chord whose ring *changes*:
//!
//! * [`DynamicChord::leave`] removes a node; keys it owned fall to its
//!   successor; every finger that pointed at it is re-resolved.
//! * [`DynamicChord::join`] inserts a peer with a fresh identifier,
//!   splitting its successor's key range and acquiring its own tables.
//!
//! Maintenance is modeled as an immediate, correct stabilization pass (the
//! eventual consistency a real Chord converges to): after each event the
//! routing state equals what a full rebuild over the live population would
//! produce, and the *logical-graph delta* is applied edge by edge so the
//! PROP driver can resync exactly the affected nodes.

use crate::chord::ChordParams;
use crate::logical::{LogicalGraph, Slot};
use crate::net::OverlayNet;
use crate::placement::Placement;
use crate::{Lookup, RouteOutcome};
use prop_engine::SimRng;
use prop_netsim::oracle::MemberIdx;
use prop_netsim::LatencyOracle;
use std::collections::HashSet;
use std::sync::Arc;

/// A Chord ring that supports joins and leaves.
pub struct DynamicChord {
    params: ChordParams,
    /// Identifier per slot; `None` = departed.
    ids: Vec<Option<u64>>,
    /// Live slots sorted by identifier.
    ring: Vec<Slot>,
    /// Routing entries per slot (empty for dead slots).
    table: Vec<Vec<Slot>>,
    successor: Vec<Option<Slot>>,
    rng: SimRng,
}

impl DynamicChord {
    /// Fresh ring over the oracle's whole membership (same shape as
    /// [`crate::chord::Chord::build`]).
    pub fn build(
        params: ChordParams,
        oracle: Arc<LatencyOracle>,
        rng: &mut SimRng,
    ) -> (DynamicChord, OverlayNet) {
        let n = oracle.len();
        assert!(n >= 2);
        let mut rng = rng.fork("dynamic-chord");
        let mut used = HashSet::with_capacity(n);
        let ids: Vec<Option<u64>> = (0..n)
            .map(|_| loop {
                let cand: u64 = rng.range(0..u64::MAX);
                if used.insert(cand) {
                    return Some(cand);
                }
            })
            .collect();
        let mut dc = DynamicChord {
            params,
            ids,
            ring: Vec::new(),
            table: vec![Vec::new(); n],
            successor: vec![None; n],
            rng,
        };
        let mut g = LogicalGraph::new(n);
        dc.rebuild(&mut g);
        let net = OverlayNet::new(g, Placement::identity(n), oracle);
        (dc, net)
    }

    /// Identifier of a live slot.
    pub fn id(&self, s: Slot) -> u64 {
        self.ids[s.index()].expect("live slot")
    }

    /// Number of live ring members.
    pub fn ring_len(&self) -> usize {
        self.ring.len()
    }

    /// The live slot owning `key` (its successor on the ring).
    pub fn owner_of(&self, key: u64) -> Slot {
        let pos =
            self.ring.partition_point(|t| self.ids[t.index()].unwrap() < key) % self.ring.len();
        self.ring[pos]
    }

    /// Recompute ring/successors/tables over live slots and mutate `g` to
    /// the new edge set. Returns the slots whose neighbor lists changed.
    fn rebuild(&mut self, g: &mut LogicalGraph) -> Vec<Slot> {
        let live: Vec<Slot> = (0..self.ids.len() as u32)
            .map(Slot)
            .filter(|s| self.ids[s.index()].is_some())
            .collect();
        assert!(live.len() >= 2, "ring too small");
        let mut ring = live.clone();
        ring.sort_by_key(|s| self.ids[s.index()].unwrap());
        let n = ring.len();
        let mut rank = vec![usize::MAX; self.ids.len()];
        for (r, &s) in ring.iter().enumerate() {
            rank[s.index()] = r;
        }

        let mut new_table: Vec<Vec<Slot>> = vec![Vec::new(); self.ids.len()];
        let mut new_successor: Vec<Option<Slot>> = vec![None; self.ids.len()];
        for &s in &ring {
            let r = rank[s.index()];
            new_successor[s.index()] = Some(ring[(r + 1) % n]);
            let mut entries = Vec::new();
            for k in 1..=self.params.successors.min(n - 1) {
                entries.push(ring[(r + k) % n]);
            }
            let my_id = self.ids[s.index()].unwrap();
            for i in 0..64 {
                let target = my_id.wrapping_add(1u64 << i);
                let pos = ring.partition_point(|t| self.ids[t.index()].unwrap() < target) % n;
                let e = ring[pos];
                if e != s {
                    entries.push(e);
                }
            }
            entries.sort_unstable();
            entries.dedup();
            entries.retain(|&e| e != s);
            new_table[s.index()] = entries;
        }

        // Edge diff: undirected union of entries, old vs new (shared with
        // the static builder; see `crate::table`). The returned slots come
        // back sorted, so downstream resync order is deterministic.
        let affected = crate::table::apply_table_delta(g, &self.table, &new_table);

        self.ring = ring;
        self.table = new_table;
        self.successor = new_successor;
        affected
    }

    /// The peer at `slot` departs. Returns the affected slots (for the
    /// PROP driver's resync).
    pub fn leave(&mut self, net: &mut OverlayNet, slot: Slot) -> Vec<Slot> {
        assert!(self.ids[slot.index()].is_some(), "leaving twice");
        self.ids[slot.index()] = None;
        // Drop the slot from the logical graph first (removes its edges),
        // then rebuild the survivors' tables.
        net.graph_mut().remove_slot(slot);
        net.placement_mut().vacate(slot);
        self.table[slot.index()].clear();
        self.successor[slot.index()] = None;
        self.rebuild(net.graph_mut())
    }

    /// `peer` (absent) joins with a fresh random identifier. Returns its
    /// new slot and the affected slots.
    pub fn join(&mut self, net: &mut OverlayNet, peer: MemberIdx) -> (Slot, Vec<Slot>) {
        let slot = net.graph_mut().add_slot();
        net.placement_mut().occupy(slot, peer);
        if slot.index() >= self.ids.len() {
            self.ids.resize(slot.index() + 1, None);
            self.table.resize(slot.index() + 1, Vec::new());
            self.successor.resize(slot.index() + 1, None);
        }
        let id = loop {
            let cand: u64 = self.rng.range(0..u64::MAX);
            if !self.ids.contains(&Some(cand)) {
                break cand;
            }
        };
        self.ids[slot.index()] = Some(id);
        let affected = self.rebuild(net.graph_mut());
        (slot, affected)
    }

    /// Greedy route to the owner of `key` (same discipline as the static
    /// Chord).
    pub fn route_path(&self, src: Slot, key: u64) -> Vec<Slot> {
        let dst = self.owner_of(key);
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let cur_id = self.ids[cur.index()].unwrap();
            let mut best: Option<(u64, Slot)> = None;
            for &e in &self.table[cur.index()] {
                let eid = self.ids[e.index()].unwrap();
                let in_interval = if cur_id < key {
                    cur_id < eid && eid <= key
                } else if cur_id > key {
                    eid > cur_id || eid <= key
                } else {
                    true
                };
                if in_interval {
                    let gap = key.wrapping_sub(eid);
                    if best.is_none_or(|(bg, _)| gap < bg) {
                        best = Some((gap, e));
                    }
                }
            }
            let next = best
                .map(|(_, s)| s)
                .or(self.successor[cur.index()])
                .expect("live node has a successor");
            debug_assert_ne!(next, cur);
            path.push(next);
            cur = next;
        }
        path
    }
}

impl Lookup for DynamicChord {
    fn lookup(&self, net: &OverlayNet, src: Slot, dst: Slot) -> Option<RouteOutcome> {
        let path = self.route_path(src, self.id(dst));
        debug_assert_eq!(*path.last().unwrap(), dst);
        let mut latency = 0u64;
        for w in path.windows(2) {
            latency += net.d(w[0], w[1]) as u64 + net.proc_delay(w[1]) as u64;
        }
        Some(RouteOutcome { latency_ms: latency, hops: (path.len() - 1) as u32 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netsim::{generate, TransitStubParams};

    fn setup(n: usize, seed: u64) -> (DynamicChord, OverlayNet, SimRng) {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
        let (dc, net) = DynamicChord::build(ChordParams::default(), oracle, &mut rng);
        (dc, net, rng)
    }

    fn assert_all_lookups_correct(dc: &DynamicChord, net: &OverlayNet) {
        let live: Vec<Slot> = net.graph().live_slots().collect();
        for &a in &live {
            for &b in &live {
                let out = dc.lookup(net, a, b).unwrap();
                if a == b {
                    assert_eq!(out.hops, 0);
                }
                assert!(out.hops as usize <= live.len());
            }
        }
    }

    #[test]
    fn fresh_ring_routes_correctly() {
        let (dc, net, _) = setup(25, 1);
        assert!(net.graph().is_connected());
        assert_all_lookups_correct(&dc, &net);
    }

    #[test]
    fn leaves_keep_the_ring_correct() {
        let (mut dc, mut net, mut rng) = setup(25, 2);
        for _ in 0..10 {
            let live: Vec<Slot> = net.graph().live_slots().collect();
            let victim = *rng.pick(&live).unwrap();
            let affected = dc.leave(&mut net, victim);
            assert!(!affected.contains(&victim));
            assert!(net.graph().is_connected());
            assert_all_lookups_correct(&dc, &net);
        }
        assert_eq!(dc.ring_len(), 15);
    }

    #[test]
    fn joins_keep_the_ring_correct() {
        let (mut dc, mut net, mut rng) = setup(20, 3);
        // Remove five peers, then re-admit them at new slots.
        let mut absent = Vec::new();
        for _ in 0..5 {
            let live: Vec<Slot> = net.graph().live_slots().collect();
            let victim = *rng.pick(&live).unwrap();
            let peer = net.peer(victim);
            dc.leave(&mut net, victim);
            absent.push(peer);
        }
        for peer in absent {
            let (slot, affected) = dc.join(&mut net, peer);
            assert!(net.graph().is_alive(slot));
            assert!(!affected.is_empty());
            assert!(net.graph().is_connected());
            assert_all_lookups_correct(&dc, &net);
        }
        assert_eq!(dc.ring_len(), 20);
        assert!(net.placement().is_consistent());
    }

    #[test]
    fn owner_moves_to_successor_after_leave() {
        let (mut dc, mut net, _) = setup(20, 4);
        let victim = Slot(7);
        let key = dc.id(victim);
        assert_eq!(dc.owner_of(key), victim);
        dc.leave(&mut net, victim);
        let new_owner = dc.owner_of(key);
        assert_ne!(new_owner, victim);
        // The new owner's id is the smallest ≥ key among the living (or
        // wraps): verify minimal clockwise distance.
        let live: Vec<Slot> = net.graph().live_slots().collect();
        let clockwise = |s: Slot| dc.id(s).wrapping_sub(key);
        for &s in &live {
            assert!(clockwise(new_owner) <= clockwise(s));
        }
    }

    #[test]
    fn propg_swaps_compose_with_churn() {
        let (mut dc, mut net, mut rng) = setup(25, 5);
        for round in 0..8 {
            // Swap two random live peers (what PROP-G does)…
            let live: Vec<Slot> = net.graph().live_slots().collect();
            let a = *rng.pick(&live).unwrap();
            let b = *rng.pick(&live).unwrap();
            if a != b {
                net.swap_peers(a, b);
            }
            // …then churn.
            let live: Vec<Slot> = net.graph().live_slots().collect();
            if round % 2 == 0 && live.len() > 10 {
                let victim = *rng.pick(&live).unwrap();
                let peer = net.peer(victim);
                dc.leave(&mut net, victim);
                let (_, _) = dc.join(&mut net, peer);
            }
            assert!(net.graph().is_connected());
            assert!(net.placement().is_consistent());
            assert_all_lookups_correct(&dc, &net);
        }
    }

    #[test]
    #[should_panic(expected = "leaving twice")]
    fn double_leave_rejected() {
        let (mut dc, mut net, _) = setup(10, 6);
        dc.leave(&mut net, Slot(3));
        dc.leave(&mut net, Slot(3));
    }
}
