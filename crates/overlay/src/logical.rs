//! The overlay's logical wiring.
//!
//! An undirected multigraph-free adjacency over [`Slot`]s, supporting the
//! operations the protocols need:
//!
//! * PROP-O and LTM **rewire** edges (degree-preserving exchange / cut-add);
//! * churn **removes** and **adds** slots;
//! * connectivity checks back the Theorem 1 property tests.
//!
//! Neighbor lists are kept sorted so `has_edge` is a binary search and
//! iteration order is deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A logical position in the overlay. Slots are dense indices; a slot is
/// *alive* while some peer occupies it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Slot(pub u32);

impl Slot {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One recorded mutation of a [`LogicalGraph`], as replayed by
/// [`crate::csr::CsrView::sync`] to catch a stale view up without a full
/// rebuild. `remove_slot` records one `RemoveEdge` per dropped edge followed
/// by a `KillSlot`, so a consumer never has to infer implicit edge drops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphPatch {
    AddEdge(Slot, Slot),
    RemoveEdge(Slot, Slot),
    /// A fresh (empty, live) slot was appended.
    AddSlot,
    /// The slot was marked dead; its edges were already removed by the
    /// preceding `RemoveEdge` patches.
    KillSlot(Slot),
}

/// Patch-log capacity. When a view falls further behind than this, replay is
/// impossible and [`LogicalGraph::patches_since`] returns `None` (the caller
/// rebuilds from scratch). Sized so any realistic between-probe mutation
/// burst — one exchange is ≤ 4·m patches, one churn event ≤ degree + 1 —
/// replays incrementally.
pub const MAX_PATCH_LOG: usize = 4096;

/// Fenwick (binary indexed) tree over the alive bits, giving O(log n)
/// rank (`prefix`) and select-by-rank over the live-slot set. This is what
/// lets the drivers' `ProbeMode::Random` draw a uniform live counterpart
/// without materializing `live_slots().collect()` on every trial.
#[derive(Clone, Debug, Default)]
struct LiveIndex {
    /// 1-indexed Fenwick array; `tree[i-1]` covers `(i - lowbit(i), i]`.
    tree: Vec<usize>,
}

impl LiveIndex {
    /// Index over `n` slots, all alive. O(n): for an all-ones array every
    /// Fenwick node's partial sum is exactly the width of its range.
    fn with_ones(n: usize) -> Self {
        let mut tree = vec![0usize; n];
        for (j, v) in tree.iter_mut().enumerate() {
            let i = j + 1;
            *v = i & i.wrapping_neg();
        }
        LiveIndex { tree }
    }

    /// Append one more slot with the given alive bit.
    fn append(&mut self, alive: bool) {
        let i = self.tree.len() + 1;
        let low = i & i.wrapping_neg();
        // The new node covers (i-low, i]; seed it with the ones already in
        // (i-low, i-1] plus the appended bit.
        let below = self.prefix(i - 1) - self.prefix(i - low);
        self.tree.push(below + alive as usize);
    }

    /// Flip the bit at 0-based `idx` by `delta` (+1 revive, -1 kill).
    fn add(&mut self, idx: usize, delta: isize) {
        let mut i = idx + 1;
        while i <= self.tree.len() {
            let v = &mut self.tree[i - 1];
            *v = (*v as isize + delta) as usize;
            i += i & i.wrapping_neg();
        }
    }

    /// Ones among the first `count` slots (0-based exclusive prefix).
    fn prefix(&self, count: usize) -> usize {
        let mut i = count;
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i - 1];
            i &= i - 1;
        }
        sum
    }

    /// 0-based index of the `(k+1)`-th one, `None` if there are ≤ k ones.
    /// Binary-lifting descent: find the largest `pos` with
    /// `prefix(pos) < k+1`; the answer is then `pos` itself (0-based).
    fn select(&self, k: usize) -> Option<usize> {
        let n = self.tree.len();
        if n == 0 {
            return None;
        }
        let mut rem = k + 1;
        let mut pos = 0usize;
        let mut step = 1usize << (usize::BITS - 1 - n.leading_zeros());
        while step > 0 {
            let next = pos + step;
            if next <= n && self.tree[next - 1] < rem {
                rem -= self.tree[next - 1];
                pos = next;
            }
            step >>= 1;
        }
        (pos < n).then_some(pos)
    }
}

/// Undirected adjacency over slots.
#[derive(Clone, Debug, Default)]
pub struct LogicalGraph {
    adj: Vec<Vec<Slot>>,
    alive: Vec<bool>,
    num_edges: usize,
    /// Live-slot counter, maintained by `add_slot`/`remove_slot` so
    /// `num_live` is O(1) (churn recomputes δ(G) on every event).
    num_live: usize,
    /// Total mutations ever applied; each patch bumps this by one, so a
    /// generation is also an index into the mutation history.
    generation: u64,
    /// The tail of the mutation history: patches `log_base..generation`.
    log: Vec<GraphPatch>,
    /// Generation just before `log[0]` was applied.
    log_base: u64,
    /// Degree histogram over **live** slots: `deg_count[d]` = live slots of
    /// degree `d` (trailing zeros allowed). Maintained by every mutator so
    /// δ(G) is O(1) instead of a full rescan per churn event.
    deg_count: Vec<usize>,
    /// Smallest `d` with `deg_count[d] > 0`; meaningful only while
    /// `num_live > 0`. Decreases are set directly; increases advance by a
    /// forward scan, amortized O(1) per mutation.
    min_deg: usize,
    /// Rank/select structure over the alive bits.
    live_index: LiveIndex,
}

impl LogicalGraph {
    /// Graph with `n` live, isolated slots.
    pub fn new(n: usize) -> Self {
        LogicalGraph {
            adj: vec![Vec::new(); n],
            alive: vec![true; n],
            num_edges: 0,
            num_live: n,
            generation: 0,
            log: Vec::new(),
            log_base: 0,
            deg_count: if n > 0 { vec![n] } else { Vec::new() },
            min_deg: 0,
            live_index: LiveIndex::with_ones(n),
        }
    }

    /// Move one live slot from degree `from` to degree `to` in the
    /// histogram, keeping the cached minimum exact.
    fn shift_degree(&mut self, from: usize, to: usize) {
        self.deg_count[from] -= 1;
        if self.deg_count.len() <= to {
            self.deg_count.resize(to + 1, 0);
        }
        self.deg_count[to] += 1;
        if to < self.min_deg {
            self.min_deg = to;
        }
        self.fix_min_degree();
    }

    /// Advance the cached minimum past emptied histogram cells.
    fn fix_min_degree(&mut self) {
        if self.num_live == 0 {
            self.min_deg = 0;
            return;
        }
        while self.deg_count[self.min_deg] == 0 {
            self.min_deg += 1;
        }
    }

    /// Total slots ever allocated (live or not).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.adj.len()
    }

    /// Currently live slots. O(1): the counter is maintained by the
    /// mutators, not recomputed by scanning `alive`.
    #[inline]
    pub fn num_live(&self) -> usize {
        self.num_live
    }

    /// Mutation stamp: bumped once per recorded patch. A snapshot taken at
    /// generation `g` is current iff `g == generation()`.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The patches applied since generation `epoch`, oldest first — exactly
    /// what replays a snapshot taken at `epoch` up to the present. `None`
    /// when the log no longer reaches back that far (capped at
    /// [`MAX_PATCH_LOG`]); the caller must rebuild instead.
    pub fn patches_since(&self, epoch: u64) -> Option<&[GraphPatch]> {
        if epoch < self.log_base || epoch > self.generation {
            return None;
        }
        Some(&self.log[(epoch - self.log_base) as usize..])
    }

    fn record(&mut self, patch: GraphPatch) {
        if self.log.len() == MAX_PATCH_LOG {
            self.log.clear();
            self.log_base = self.generation;
        }
        self.log.push(patch);
        self.generation += 1;
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    pub fn is_alive(&self, s: Slot) -> bool {
        self.alive[s.index()]
    }

    /// Allocate a fresh live slot.
    pub fn add_slot(&mut self) -> Slot {
        let s = Slot(self.adj.len() as u32);
        self.adj.push(Vec::new());
        self.alive.push(true);
        self.num_live += 1;
        self.live_index.append(true);
        if self.deg_count.is_empty() {
            self.deg_count.push(0);
        }
        self.deg_count[0] += 1;
        self.min_deg = 0;
        self.record(GraphPatch::AddSlot);
        s
    }

    /// Neighbors of `s`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, s: Slot) -> &[Slot] {
        &self.adj[s.index()]
    }

    #[inline]
    pub fn degree(&self, s: Slot) -> usize {
        self.adj[s.index()].len()
    }

    /// Minimum degree over live slots — the paper's δ(G), the default PROP-O
    /// exchange size `m`. `None` when there are no live slots. O(1): reads
    /// the histogram-backed cache instead of rescanning every live slot,
    /// which `refresh_m_default` does once per churn event in both drivers.
    pub fn min_degree(&self) -> Option<usize> {
        (self.num_live > 0).then_some(self.min_deg)
    }

    /// `s`'s rank in `live_slots()` iteration order: the number of live
    /// slots with a smaller index. O(log n).
    #[inline]
    pub fn live_rank(&self, s: Slot) -> usize {
        self.live_index.prefix(s.index())
    }

    /// The live slot at rank `k` of `live_slots()` order (ascending index),
    /// `None` when `k >= num_live()`. O(log n) select-by-rank — together
    /// with [`LogicalGraph::live_rank`] this replaces the per-trial
    /// `live_slots().collect()` in the drivers' `ProbeMode::Random`.
    #[inline]
    pub fn live_slot_at_rank(&self, k: usize) -> Option<Slot> {
        self.live_index.select(k).map(|i| Slot(i as u32))
    }

    /// Mean degree over live slots — the paper's `c` in the overhead model.
    pub fn mean_degree(&self) -> f64 {
        let live = self.num_live();
        if live == 0 {
            return f64::NAN;
        }
        2.0 * self.num_edges as f64 / live as f64
    }

    #[inline]
    pub fn has_edge(&self, a: Slot, b: Slot) -> bool {
        self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// Add edge `a–b`. Panics on self-loops, dead endpoints, or duplicates —
    /// all indicate protocol bugs, and the property tests rely on this.
    pub fn add_edge(&mut self, a: Slot, b: Slot) {
        assert_ne!(a, b, "self-loop at {a:?}");
        assert!(self.is_alive(a) && self.is_alive(b), "edge touching dead slot");
        assert!(!self.has_edge(a, b), "duplicate edge {a:?}–{b:?}");
        let pos_a = self.adj[a.index()].binary_search(&b).unwrap_err();
        self.adj[a.index()].insert(pos_a, b);
        let pos_b = self.adj[b.index()].binary_search(&a).unwrap_err();
        self.adj[b.index()].insert(pos_b, a);
        self.num_edges += 1;
        let (da, db) = (self.adj[a.index()].len(), self.adj[b.index()].len());
        self.shift_degree(da - 1, da);
        self.shift_degree(db - 1, db);
        self.record(GraphPatch::AddEdge(a, b));
    }

    /// Remove edge `a–b`. Panics if absent.
    pub fn remove_edge(&mut self, a: Slot, b: Slot) {
        let pos_a = self.adj[a.index()]
            .binary_search(&b)
            .unwrap_or_else(|_| panic!("removing missing edge {a:?}–{b:?}"));
        self.adj[a.index()].remove(pos_a);
        let pos_b = self.adj[b.index()].binary_search(&a).expect("asymmetric adjacency");
        self.adj[b.index()].remove(pos_b);
        self.num_edges -= 1;
        let (da, db) = (self.adj[a.index()].len(), self.adj[b.index()].len());
        self.shift_degree(da + 1, da);
        self.shift_degree(db + 1, db);
        self.record(GraphPatch::RemoveEdge(a, b));
    }

    /// Kill slot `s`: drop all its edges and mark it dead. Returns its former
    /// neighbors (the churn handler re-wires them).
    pub fn remove_slot(&mut self, s: Slot) -> Vec<Slot> {
        assert!(self.is_alive(s));
        let neighbors = std::mem::take(&mut self.adj[s.index()]);
        for &n in &neighbors {
            let pos = self.adj[n.index()].binary_search(&s).expect("asymmetric adjacency");
            self.adj[n.index()].remove(pos);
            let dn = self.adj[n.index()].len();
            self.shift_degree(dn + 1, dn);
            self.record(GraphPatch::RemoveEdge(s, n));
        }
        self.num_edges -= neighbors.len();
        self.alive[s.index()] = false;
        self.num_live -= 1;
        self.live_index.add(s.index(), -1);
        // `s` exits the live population at its pre-removal degree: its cell
        // was left untouched by the neighbor shifts above.
        self.deg_count[neighbors.len()] -= 1;
        self.fix_min_degree();
        self.record(GraphPatch::KillSlot(s));
        neighbors
    }

    /// Iterator over live slots.
    pub fn live_slots(&self) -> impl Iterator<Item = Slot> + '_ {
        self.alive.iter().enumerate().filter_map(|(i, &a)| a.then_some(Slot(i as u32)))
    }

    /// All undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (Slot, Slot)> + '_ {
        self.live_slots().flat_map(move |a| {
            self.neighbors(a).iter().copied().filter(move |&b| a < b).map(move |b| (a, b))
        })
    }

    /// Is the live subgraph connected? (Vacuously true when < 2 live slots.)
    pub fn is_connected(&self) -> bool {
        let mut live = self.live_slots();
        let Some(start) = live.next() else { return true };
        let total = self.num_live();
        let mut seen = vec![false; self.num_slots()];
        seen[start.index()] = true;
        let mut stack = vec![start];
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == total
    }

    /// Sorted degree sequence of live slots — the invariant PROP-O preserves.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.live_slots().map(|s| self.degree(s)).collect();
        d.sort_unstable();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: u32) -> LogicalGraph {
        let mut g = LogicalGraph::new(n as usize);
        for i in 1..n {
            g.add_edge(Slot(i - 1), Slot(i));
        }
        g
    }

    #[test]
    fn edges_are_symmetric_and_sorted() {
        let mut g = LogicalGraph::new(4);
        g.add_edge(Slot(2), Slot(0));
        g.add_edge(Slot(2), Slot(3));
        g.add_edge(Slot(2), Slot(1));
        assert_eq!(g.neighbors(Slot(2)), &[Slot(0), Slot(1), Slot(3)]);
        assert!(g.has_edge(Slot(0), Slot(2)));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn remove_edge_updates_both_sides() {
        let mut g = path(3);
        g.remove_edge(Slot(1), Slot(0));
        assert!(!g.has_edge(Slot(0), Slot(1)));
        assert_eq!(g.degree(Slot(0)), 0);
        assert_eq!(g.degree(Slot(1)), 1);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn connectivity() {
        let g = path(5);
        assert!(g.is_connected());
        let mut g2 = g.clone();
        g2.remove_edge(Slot(2), Slot(3));
        assert!(!g2.is_connected());
    }

    #[test]
    fn remove_slot_detaches_and_reports_neighbors() {
        let mut g = path(4);
        let ns = g.remove_slot(Slot(1));
        assert_eq!(ns, vec![Slot(0), Slot(2)]);
        assert!(!g.is_alive(Slot(1)));
        assert_eq!(g.num_live(), 3);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(Slot(0)), 0);
    }

    #[test]
    fn connectivity_ignores_dead_slots() {
        let mut g = path(4);
        g.remove_slot(Slot(3)); // path 0-1-2 remains, dead isolated 3
        assert!(g.is_connected());
    }

    #[test]
    fn min_and_mean_degree() {
        let g = path(4);
        assert_eq!(g.min_degree(), Some(1));
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn degree_sequence_sorted() {
        let mut g = path(4);
        g.add_edge(Slot(0), Slot(2));
        assert_eq!(g.degree_sequence(), vec![1, 2, 2, 3]);
    }

    #[test]
    fn add_slot_grows_graph() {
        let mut g = path(2);
        let s = g.add_slot();
        assert_eq!(s, Slot(2));
        assert!(!g.is_connected());
        g.add_edge(s, Slot(0));
        assert!(g.is_connected());
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let mut g = path(3);
        g.add_edge(Slot(0), Slot(2));
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), g.num_edges());
        assert_eq!(es, vec![(Slot(0), Slot(1)), (Slot(0), Slot(2)), (Slot(1), Slot(2))]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        let mut g = LogicalGraph::new(2);
        g.add_edge(Slot(0), Slot(1));
        g.add_edge(Slot(1), Slot(0));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = LogicalGraph::new(1);
        g.add_edge(Slot(0), Slot(0));
    }

    #[test]
    #[should_panic(expected = "missing edge")]
    fn removing_missing_edge_panics() {
        let mut g = LogicalGraph::new(2);
        g.remove_edge(Slot(0), Slot(1));
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = LogicalGraph::new(0);
        assert!(g.is_connected());
        assert_eq!(g.min_degree(), None);
        assert!(g.mean_degree().is_nan());
    }

    #[test]
    fn live_counter_tracks_churn() {
        let mut g = path(5);
        assert_eq!(g.num_live(), 5);
        g.remove_slot(Slot(2));
        assert_eq!(g.num_live(), 4);
        g.add_slot();
        assert_eq!(g.num_live(), 5);
        // The counter must agree with the scan it replaced.
        assert_eq!(g.num_live(), g.live_slots().count());
    }

    /// The O(1) cached δ(G) must agree with the scan it replaced after
    /// every kind of mutation, including the ones that empty or extend the
    /// histogram.
    #[test]
    fn min_degree_cache_matches_scan_through_mutations() {
        let scan_min = |g: &LogicalGraph| g.live_slots().map(|s| g.degree(s)).min();
        let mut g = LogicalGraph::new(6);
        assert_eq!(g.min_degree(), scan_min(&g));
        for i in 1..6 {
            g.add_edge(Slot(i - 1), Slot(i));
            assert_eq!(g.min_degree(), scan_min(&g), "after edge {i}");
        }
        g.add_edge(Slot(0), Slot(5)); // close the ring: min rises to 2
        assert_eq!(g.min_degree(), Some(2));
        assert_eq!(g.min_degree(), scan_min(&g));
        g.remove_edge(Slot(2), Slot(3)); // min drops back to 1
        assert_eq!(g.min_degree(), Some(1));
        g.remove_slot(Slot(2)); // unique min-holder leaves
        assert_eq!(g.min_degree(), scan_min(&g));
        let s = g.add_slot(); // fresh isolated slot: min is 0
        assert_eq!(g.min_degree(), Some(0));
        g.add_edge(s, Slot(0));
        assert_eq!(g.min_degree(), scan_min(&g));
        loop {
            let Some(v) = g.live_slots().next() else { break };
            g.remove_slot(v);
            assert_eq!(g.min_degree(), scan_min(&g), "during teardown");
        }
        assert_eq!(g.min_degree(), None);
    }

    /// Rank/select over the alive set matches `live_slots()` order exactly,
    /// across kills and appended slots.
    #[test]
    fn live_rank_select_matches_iteration_order() {
        let mut g = LogicalGraph::new(9);
        g.remove_slot(Slot(3));
        g.remove_slot(Slot(0));
        g.remove_slot(Slot(7));
        let s = g.add_slot();
        assert_eq!(s, Slot(9));
        let live: Vec<Slot> = g.live_slots().collect();
        assert_eq!(live.len(), g.num_live());
        for (k, &slot) in live.iter().enumerate() {
            assert_eq!(g.live_rank(slot), k, "rank of {slot:?}");
            assert_eq!(g.live_slot_at_rank(k), Some(slot), "select {k}");
        }
        assert_eq!(g.live_slot_at_rank(live.len()), None);
        // Rank of a dead slot counts live predecessors, same as the scan.
        assert_eq!(g.live_rank(Slot(3)), 2);
    }

    #[test]
    fn generation_counts_every_mutation() {
        let mut g = LogicalGraph::new(3);
        assert_eq!(g.generation(), 0);
        g.add_edge(Slot(0), Slot(1)); // +1
        g.add_edge(Slot(1), Slot(2)); // +1
        g.remove_edge(Slot(0), Slot(1)); // +1
        let s = g.add_slot(); // +1
        g.add_edge(s, Slot(0)); // +1
        assert_eq!(g.generation(), 5);
        // remove_slot: one RemoveEdge per incident edge + KillSlot.
        let deg = g.degree(Slot(1)) as u64;
        g.remove_slot(Slot(1));
        assert_eq!(g.generation(), 6 + deg);
    }

    #[test]
    fn patch_log_replays_the_gap() {
        let mut g = path(4);
        let epoch = g.generation();
        g.add_edge(Slot(0), Slot(2));
        g.remove_edge(Slot(2), Slot(3));
        let patches = g.patches_since(epoch).expect("log covers the gap");
        assert_eq!(
            patches,
            &[GraphPatch::AddEdge(Slot(0), Slot(2)), GraphPatch::RemoveEdge(Slot(2), Slot(3))]
        );
        // Current epoch ⇒ empty tail; future epoch ⇒ None.
        assert_eq!(g.patches_since(g.generation()), Some(&[][..]));
        assert_eq!(g.patches_since(g.generation() + 1), None);
    }

    #[test]
    fn patch_log_overflow_forces_rebuild() {
        let mut g = LogicalGraph::new(2);
        let epoch = g.generation();
        for _ in 0..(MAX_PATCH_LOG + 1) {
            g.add_edge(Slot(0), Slot(1));
            g.remove_edge(Slot(0), Slot(1));
        }
        assert_eq!(g.patches_since(epoch), None, "ancient epochs are not replayable");
        // A recent epoch inside the surviving tail still is.
        let recent = g.generation();
        g.add_edge(Slot(0), Slot(1));
        assert_eq!(g.patches_since(recent), Some(&[GraphPatch::AddEdge(Slot(0), Slot(1))][..]));
    }
}
