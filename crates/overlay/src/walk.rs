//! The probe random walk (§3.2).
//!
//! A PROP node locates its exchange counterpart by sending a small message
//! with TTL `nhops`: the first hop is chosen by the protocol (from its
//! `neighborq` priority queue), every subsequent hop is a uniformly random
//! neighbor that is not already on the path (the message carries visited
//! addresses "to avoid repetitive forwarding"). The node where TTL reaches
//! zero is the counterpart; the recorded path matters because exchanged
//! neighbors must never lie on it (that is what keeps the graph connected —
//! Theorem 1).

use crate::csr::Adjacency;
use crate::logical::Slot;
use prop_engine::SimRng;

/// Result of a probe walk: `path[0]` is the origin, `path.last()` the
/// counterpart. `path.len() == nhops + 1` when the walk completed; shorter
/// if it got stuck (every neighbor already visited).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalkPath {
    pub path: Vec<Slot>,
}

impl WalkPath {
    /// The counterpart node `v`, if the walk covered the full TTL and ended
    /// somewhere other than the origin.
    pub fn counterpart(&self, nhops: u32) -> Option<Slot> {
        (self.path.len() as u32 == nhops + 1).then(|| *self.path.last().unwrap())
    }

    /// Does `s` lie on the walk path (origin and counterpart included)?
    #[inline]
    pub fn contains(&self, s: Slot) -> bool {
        self.path.contains(&s)
    }
}

/// Reusable buffers for probe walks: the walk path itself plus the per-hop
/// candidate list. A driver owns one scratch for its whole lifetime, so the
/// steady-state trial loop performs **zero heap allocations** once both
/// buffers have reached their high-water capacity (pinned by prop-core's
/// `alloc_regression` test). Mirrors the `FloodScratch` idiom in
/// [`crate::net`].
#[derive(Debug, Default)]
pub struct WalkScratch {
    walk: WalkPath,
    candidates: Vec<Slot>,
}

impl WalkScratch {
    pub fn new() -> Self {
        WalkScratch { walk: WalkPath { path: Vec::new() }, candidates: Vec::new() }
    }

    /// The walk produced by the last [`random_walk_into`] call.
    #[inline]
    pub fn walk(&self) -> &WalkPath {
        &self.walk
    }

    /// Overwrite the scratch with the two-node path `[origin, counterpart]`
    /// — the shape `ProbeMode::Random` trials use, kept allocation-free
    /// through the same buffer.
    pub fn set_pair(&mut self, origin: Slot, counterpart: Slot) {
        self.walk.path.clear();
        self.walk.path.push(origin);
        self.walk.path.push(counterpart);
    }
}

/// Walk `nhops` hops from `origin`, entering via `first_hop` (which must be
/// a neighbor of `origin`). Later hops are uniform over unvisited neighbors.
///
/// Generic over [`Adjacency`]: both representations present identical
/// sorted neighbor slices, so the candidate order — and therefore the RNG
/// consumption and the resulting trace — is bit-identical between them.
///
/// Allocation-free façade users: this builds a fresh scratch per call. Hot
/// paths hold a [`WalkScratch`] and call [`random_walk_into`] instead; the
/// two consume the RNG identically ([`SimRng::pick`] draws by candidate
/// *length*, which both forms present the same way), so swapping one for
/// the other never perturbs a seeded run.
pub fn random_walk(
    g: &impl Adjacency,
    origin: Slot,
    first_hop: Slot,
    nhops: u32,
    rng: &mut SimRng,
) -> WalkPath {
    let mut scratch = WalkScratch::new();
    random_walk_into(g, origin, first_hop, nhops, rng, &mut scratch);
    scratch.walk
}

/// [`random_walk`] into caller-owned buffers: the result lands in
/// `scratch.walk()`, and no allocation happens beyond the buffers' own
/// capacity growth (which stops at the overlay's max degree).
pub fn random_walk_into(
    g: &impl Adjacency,
    origin: Slot,
    first_hop: Slot,
    nhops: u32,
    rng: &mut SimRng,
    scratch: &mut WalkScratch,
) {
    debug_assert!(g.has_edge(origin, first_hop), "first hop must be a neighbor");
    let path = &mut scratch.walk.path;
    path.clear();
    path.push(origin);
    if nhops == 0 {
        return;
    }
    path.push(first_hop);
    let mut cur = first_hop;
    for _ in 1..nhops {
        scratch.candidates.clear();
        scratch.candidates.extend(g.neighbors(cur).iter().copied().filter(|n| !path.contains(n)));
        match rng.pick(&scratch.candidates) {
            Some(&next) => {
                path.push(next);
                cur = next;
            }
            None => break, // stuck: every neighbor already visited
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalGraph;

    fn ring(n: u32) -> LogicalGraph {
        let mut g = LogicalGraph::new(n as usize);
        for i in 0..n {
            g.add_edge(Slot(i), Slot((i + 1) % n));
        }
        g
    }

    #[test]
    fn walk_has_no_repeats() {
        let g = ring(10);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..50 {
            let w = random_walk(&g, Slot(0), Slot(1), 4, &mut rng);
            let mut p = w.path.clone();
            p.sort_unstable();
            p.dedup();
            assert_eq!(p.len(), w.path.len(), "repeat in {:?}", w.path);
        }
    }

    #[test]
    fn walk_follows_edges() {
        let g = ring(8);
        let mut rng = SimRng::seed_from(2);
        let w = random_walk(&g, Slot(3), Slot(4), 3, &mut rng);
        for pair in w.path.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn counterpart_requires_full_ttl() {
        // On a ring, from slot 0 via 1 the only non-repeating continuation
        // is 2, 3, … so a 3-hop walk always ends at 3.
        let g = ring(8);
        let mut rng = SimRng::seed_from(3);
        let w = random_walk(&g, Slot(0), Slot(1), 3, &mut rng);
        assert_eq!(w.counterpart(3), Some(Slot(3)));
        assert!(w.counterpart(4).is_none());
    }

    #[test]
    fn stuck_walk_returns_partial_path() {
        // Path graph 0-1-2: from 0 via 1 a 5-hop walk gets stuck at 2.
        let mut g = LogicalGraph::new(3);
        g.add_edge(Slot(0), Slot(1));
        g.add_edge(Slot(1), Slot(2));
        let mut rng = SimRng::seed_from(4);
        let w = random_walk(&g, Slot(0), Slot(1), 5, &mut rng);
        assert_eq!(w.path, vec![Slot(0), Slot(1), Slot(2)]);
        assert_eq!(w.counterpart(5), None);
    }

    #[test]
    fn zero_hop_walk_is_just_origin() {
        let g = ring(4);
        let mut rng = SimRng::seed_from(5);
        let w = random_walk(&g, Slot(2), Slot(3), 0, &mut rng);
        assert_eq!(w.path, vec![Slot(2)]);
    }

    #[test]
    fn one_hop_walk_ends_at_first_hop() {
        let g = ring(4);
        let mut rng = SimRng::seed_from(6);
        let w = random_walk(&g, Slot(2), Slot(3), 1, &mut rng);
        assert_eq!(w.path, vec![Slot(2), Slot(3)]);
        assert_eq!(w.counterpart(1), Some(Slot(3)));
    }

    #[test]
    fn csr_walk_is_bit_identical_to_graph_walk() {
        let mut g = ring(10);
        g.add_edge(Slot(0), Slot(5));
        g.add_edge(Slot(2), Slot(7));
        let view = crate::CsrView::build(&g);
        for seed in 0..20u64 {
            let mut r1 = SimRng::seed_from(seed);
            let mut r2 = SimRng::seed_from(seed);
            let w1 = random_walk(&g, Slot(0), Slot(1), 6, &mut r1);
            let w2 = random_walk(&view, Slot(0), Slot(1), 6, &mut r2);
            assert_eq!(w1, w2, "seed {seed}");
        }
    }

    #[test]
    fn scratch_walk_is_bit_identical_to_facade() {
        // Reusing one scratch across many walks — including after longer
        // paths that left stale buffer contents — must consume the RNG and
        // produce paths exactly as the allocating façade does.
        let mut g = ring(12);
        g.add_edge(Slot(0), Slot(6));
        g.add_edge(Slot(3), Slot(9));
        let mut scratch = WalkScratch::new();
        let mut r1 = SimRng::seed_from(99);
        let mut r2 = SimRng::seed_from(99);
        for round in 0..40u32 {
            let nhops = 1 + round % 6;
            let w1 = random_walk(&g, Slot(0), Slot(1), nhops, &mut r1);
            random_walk_into(&g, Slot(0), Slot(1), nhops, &mut r2, &mut scratch);
            assert_eq!(&w1, scratch.walk(), "round {round}");
        }
        assert_eq!(r1.range(0u64..u64::MAX), r2.range(0u64..u64::MAX), "streams diverged");
    }

    #[test]
    fn set_pair_builds_random_mode_path() {
        let mut scratch = WalkScratch::new();
        scratch.set_pair(Slot(4), Slot(7));
        assert_eq!(scratch.walk().path, vec![Slot(4), Slot(7)]);
        assert_eq!(scratch.walk().counterpart(1), Some(Slot(7)));
        scratch.set_pair(Slot(1), Slot(2));
        assert_eq!(scratch.walk().path, vec![Slot(1), Slot(2)]);
    }

    #[test]
    fn contains_checks_whole_path() {
        let g = ring(8);
        let mut rng = SimRng::seed_from(7);
        let w = random_walk(&g, Slot(0), Slot(1), 2, &mut rng);
        assert!(w.contains(Slot(0)));
        assert!(w.contains(*w.path.last().unwrap()));
        assert!(!w.contains(Slot(6)));
    }
}
