//! Pastry DHT.
//!
//! The second structured system named in the paper's introduction. Pastry
//! routes by identifier *prefix*: 128-bit identifiers are strings of
//! base-2^b digits (b = 4 here, so 32 hexadecimal digits); each node keeps
//!
//! * a **leaf set** — the `l/2` numerically closest nodes on either side,
//!   which guarantees the last hop(s) and termination, and
//! * a **routing table** — row `r`, column `d` holds a node sharing exactly
//!   `r` leading digits with the owner and having digit `d` next. Any node
//!   satisfying the constraint is legal, which is exactly the freedom
//!   Proximity Neighbor Selection exploits (see
//!   `prop_baselines::pns::build_pns_pastry`).
//!
//! A lookup for key `k` terminates at the live node whose identifier is
//! numerically closest to `k` (ties toward the lower id). Expected route
//! length is `O(log_2^b n)`.
//!
//! As with Chord, identifiers belong to **slots**: PROP-G swaps which peer
//! answers to which identifier and the prefix structure never changes.

use crate::logical::{LogicalGraph, Slot};
use crate::net::OverlayNet;
use crate::placement::Placement;
use crate::{Lookup, RouteOutcome};
use prop_engine::SimRng;
use prop_netsim::LatencyOracle;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Bits per digit (`b`); 4 ⇒ hexadecimal digits, the Pastry default.
pub const DIGIT_BITS: u32 = 4;
/// Digits per 128-bit identifier.
pub const NUM_DIGITS: usize = (128 / DIGIT_BITS) as usize;
/// Radix (2^b).
pub const RADIX: usize = 1 << DIGIT_BITS;

/// Pastry construction parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PastryParams {
    /// Total leaf-set size (half on each side). Pastry's default is 16; we
    /// default to 8, plenty for the overlay sizes simulated here.
    pub leaf_set: usize,
}

impl Default for PastryParams {
    fn default() -> Self {
        PastryParams { leaf_set: 8 }
    }
}

/// A 128-bit Pastry identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PastryId(pub u128);

impl PastryId {
    /// Digit `i` (0 = most significant).
    #[inline]
    pub fn digit(self, i: usize) -> usize {
        debug_assert!(i < NUM_DIGITS);
        let shift = 128 - DIGIT_BITS as usize * (i + 1);
        ((self.0 >> shift) & (RADIX as u128 - 1)) as usize
    }

    /// Length of the common digit prefix with `other`.
    pub fn shared_prefix(self, other: PastryId) -> usize {
        if self.0 == other.0 {
            return NUM_DIGITS;
        }
        let diff = self.0 ^ other.0;
        (diff.leading_zeros() / DIGIT_BITS) as usize
    }

    /// Absolute numeric distance (no wraparound: Pastry's closeness for key
    /// ownership is numeric, the ring only matters for the leaf set).
    #[inline]
    pub fn distance(self, other: PastryId) -> u128 {
        self.0.abs_diff(other.0)
    }
}

/// The Pastry overlay structure (immutable after build; PROP-G mobility
/// lives in the placement).
#[derive(Clone, Debug)]
pub struct Pastry {
    ids: Vec<PastryId>,
    /// Slots sorted by id (for leaf sets and owner lookups).
    ring: Vec<Slot>,
    /// Per slot: leaf set (numeric neighbors on both sides).
    leaves: Vec<Vec<Slot>>,
    /// Per slot: flattened routing table, `row * RADIX + digit`.
    table: Vec<Vec<Option<Slot>>>,
}

impl Pastry {
    /// Build with the canonical (first-candidate) table fill.
    pub fn build(
        params: PastryParams,
        oracle: Arc<LatencyOracle>,
        rng: &mut SimRng,
    ) -> (Pastry, OverlayNet) {
        Self::build_with_selector(params, oracle, rng, |_slot, candidates| candidates[0])
    }

    /// Build with a custom per-cell candidate selector — the PNS hook.
    /// `select(slot, candidates)` picks the routing-table entry among every
    /// node legal for that cell.
    pub fn build_with_selector(
        params: PastryParams,
        oracle: Arc<LatencyOracle>,
        rng: &mut SimRng,
        mut select: impl FnMut(Slot, &[Slot]) -> Slot,
    ) -> (Pastry, OverlayNet) {
        let n = oracle.len();
        assert!(n >= 2, "Pastry needs at least two nodes");
        assert!(params.leaf_set >= 2 && params.leaf_set.is_multiple_of(2));
        let mut rng = rng.fork("pastry-build");

        // Random distinct 128-bit ids.
        let mut ids: Vec<PastryId> = Vec::with_capacity(n);
        let mut used = std::collections::HashSet::with_capacity(n);
        while ids.len() < n {
            let hi: u64 = rng.range(0..u64::MAX);
            let lo: u64 = rng.range(0..u64::MAX);
            let id = ((hi as u128) << 64) | lo as u128;
            if used.insert(id) {
                ids.push(PastryId(id));
            }
        }

        let mut ring: Vec<Slot> = (0..n as u32).map(Slot).collect();
        ring.sort_by_key(|s| ids[s.index()]);
        let mut rank = vec![0usize; n];
        for (r, &s) in ring.iter().enumerate() {
            rank[s.index()] = r;
        }

        // Leaf sets: l/2 ring neighbors each side (wrapping).
        let half = params.leaf_set / 2;
        let mut leaves: Vec<Vec<Slot>> = vec![Vec::new(); n];
        for &s in &ring {
            let r = rank[s.index()];
            let mut set = Vec::with_capacity(params.leaf_set);
            for k in 1..=half.min(n - 1) {
                set.push(ring[(r + k) % n]);
                set.push(ring[(r + n - k) % n]);
            }
            set.sort_unstable();
            set.dedup();
            set.retain(|&x| x != s);
            leaves[s.index()] = set;
        }

        // Routing tables. Bucket every pair once: for (s, t), t is a
        // candidate for s's cell (shared_prefix(s,t), digit of t at that
        // row) and vice versa.
        let mut candidates: Vec<std::collections::HashMap<(usize, usize), Vec<Slot>>> =
            vec![std::collections::HashMap::new(); n];
        for a in 0..n {
            for b in (a + 1)..n {
                let ia = ids[a];
                let ib = ids[b];
                let l = ia.shared_prefix(ib);
                if l < NUM_DIGITS {
                    candidates[a].entry((l, ib.digit(l))).or_default().push(Slot(b as u32));
                    candidates[b].entry((l, ia.digit(l))).or_default().push(Slot(a as u32));
                }
            }
        }

        let mut table: Vec<Vec<Option<Slot>>> = Vec::with_capacity(n);
        for (s, cells) in candidates.iter().enumerate() {
            // Only the first ~log_16(n) rows are ever populated; store rows
            // up to the deepest non-empty one.
            let max_row = cells.keys().map(|&(r, _)| r).max().unwrap_or(0);
            let mut t = vec![None; (max_row + 1) * RADIX];
            for (&(row, digit), cands) in cells {
                t[row * RADIX + digit] = Some(select(Slot(s as u32), cands));
            }
            table.push(t);
        }

        // Logical graph: union of leaf sets and routing entries.
        let mut g = LogicalGraph::new(n);
        for s in 0..n as u32 {
            let slot = Slot(s);
            for &l in &leaves[s as usize] {
                if !g.has_edge(slot, l) {
                    g.add_edge(slot, l);
                }
            }
            for e in table[s as usize].iter().flatten() {
                if *e != slot && !g.has_edge(slot, *e) {
                    g.add_edge(slot, *e);
                }
            }
        }

        let pastry = Pastry { ids, ring, leaves, table };
        let net = OverlayNet::new(g, Placement::identity(n), oracle);
        (pastry, net)
    }

    #[inline]
    pub fn id(&self, s: Slot) -> PastryId {
        self.ids[s.index()]
    }

    /// The slot numerically closest to `key` (ties toward the lower id).
    pub fn owner_of(&self, key: PastryId) -> Slot {
        let pos = self.ring.partition_point(|t| self.ids[t.index()] < key);
        let mut best: Option<Slot> = None;
        for cand in [pos.checked_sub(1), Some(pos)].into_iter().flatten() {
            if let Some(&s) = self.ring.get(cand) {
                best = match best {
                    None => Some(s),
                    Some(b) => {
                        let db = self.ids[b.index()].distance(key);
                        let ds = self.ids[s.index()].distance(key);
                        if ds < db || (ds == db && self.ids[s.index()] < self.ids[b.index()]) {
                            Some(s)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
        }
        best.expect("nonempty ring")
    }

    /// Leaf set of `s`.
    pub fn leaf_set(&self, s: Slot) -> &[Slot] {
        &self.leaves[s.index()]
    }

    /// Routing-table entry at (row, digit), if filled.
    pub fn table_entry(&self, s: Slot, row: usize, digit: usize) -> Option<Slot> {
        self.table[s.index()].get(row * RADIX + digit).copied().flatten()
    }

    /// Pastry's route: prefix hops, then the leaf set finishes the job.
    /// Returns the slot path ending at `owner_of(key)`.
    pub fn route_path(&self, src: Slot, key: PastryId) -> Vec<Slot> {
        let dst = self.owner_of(key);
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let cur_id = self.ids[cur.index()];
            let l = cur_id.shared_prefix(key);
            // 1. Exact prefix-table hop.
            let next = if l < NUM_DIGITS { self.table_entry(cur, l, key.digit(l)) } else { None };
            // 2. Fallback: anyone known (leaves ∪ table) strictly closer
            //    numerically with at least as long a prefix — the rare case
            //    of the Pastry paper. The leaf set always contains a
            //    numerically closer node unless cur is the owner, so this
            //    terminates.
            let next = next.filter(|&nx| nx != cur).or_else(|| {
                let my_dist = cur_id.distance(key);
                self.leaves[cur.index()]
                    .iter()
                    .chain(self.table[cur.index()].iter().flatten())
                    .copied()
                    .filter(|&c| {
                        self.ids[c.index()].distance(key) < my_dist
                            && self.ids[c.index()].shared_prefix(key) >= l
                    })
                    .min_by_key(|&c| self.ids[c.index()].distance(key))
            });
            let Some(next) = next else {
                debug_assert_eq!(cur, dst, "stuck away from the owner");
                break;
            };
            debug_assert!(
                self.ids[next.index()].shared_prefix(key) > l
                    || self.ids[next.index()].distance(key) < cur_id.distance(key),
                "route made no progress"
            );
            path.push(next);
            cur = next;
        }
        path
    }
}

impl Lookup for Pastry {
    fn lookup(&self, net: &OverlayNet, src: Slot, dst: Slot) -> Option<RouteOutcome> {
        let path = self.route_path(src, self.ids[dst.index()]);
        debug_assert_eq!(*path.last().unwrap(), dst);
        let mut latency = 0u64;
        for w in path.windows(2) {
            latency += net.d(w[0], w[1]) as u64 + net.proc_delay(w[1]) as u64;
        }
        Some(RouteOutcome { latency_ms: latency, hops: (path.len() - 1) as u32 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netsim::{generate, TransitStubParams};

    fn oracle(n: usize, seed: u64) -> Arc<LatencyOracle> {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng))
    }

    fn build(n: usize, seed: u64) -> (Pastry, OverlayNet) {
        let mut rng = SimRng::seed_from(seed);
        Pastry::build(PastryParams::default(), oracle(n, seed), &mut rng)
    }

    #[test]
    fn digit_extraction() {
        let id = PastryId(0xABCD << 112);
        assert_eq!(id.digit(0), 0xA);
        assert_eq!(id.digit(1), 0xB);
        assert_eq!(id.digit(2), 0xC);
        assert_eq!(id.digit(3), 0xD);
        assert_eq!(id.digit(4), 0);
    }

    #[test]
    fn shared_prefix_lengths() {
        let a = PastryId(0xAB00 << 112);
        let b = PastryId(0xAB70 << 112);
        assert_eq!(a.shared_prefix(b), 2);
        assert_eq!(a.shared_prefix(a), NUM_DIGITS);
        let c = PastryId(0x1B00 << 112);
        assert_eq!(a.shared_prefix(c), 0);
    }

    #[test]
    fn owner_is_numerically_closest() {
        let (p, _) = build(25, 1);
        for s in 0..25u32 {
            let key = p.id(Slot(s));
            assert_eq!(p.owner_of(key), Slot(s), "a node owns its own id");
        }
        // Arbitrary keys: owner must minimize numeric distance.
        let mut rng = SimRng::seed_from(2);
        for _ in 0..100 {
            let key =
                PastryId(((rng.range(0..u64::MAX) as u128) << 64) | rng.range(0..u64::MAX) as u128);
            let owner = p.owner_of(key);
            let od = p.id(owner).distance(key);
            for s in 0..25u32 {
                assert!(p.id(Slot(s)).distance(key) >= od);
            }
        }
    }

    #[test]
    fn all_lookups_reach_owner() {
        let (p, net) = build(30, 3);
        for a in 0..30u32 {
            for b in 0..30u32 {
                let out = p.lookup(&net, Slot(a), Slot(b)).unwrap();
                if a == b {
                    assert_eq!(out.hops, 0);
                }
            }
        }
    }

    #[test]
    fn hops_are_logarithmic() {
        let (p, net) = build(40, 4);
        let mut total = 0u64;
        let mut cnt = 0u64;
        for a in 0..40u32 {
            for b in 0..40u32 {
                if a != b {
                    total += p.lookup(&net, Slot(a), Slot(b)).unwrap().hops as u64;
                    cnt += 1;
                }
            }
        }
        let avg = total as f64 / cnt as f64;
        // log_16(40) ≈ 1.3; with leaf-set shortcuts expect ~1–3.
        assert!(avg < 4.0, "avg hops {avg}");
    }

    #[test]
    fn leaf_sets_are_ring_neighbors() {
        let (p, _) = build(20, 5);
        // Every node's closest numeric neighbor must be in its leaf set.
        for s in 0..20u32 {
            let me = p.id(Slot(s));
            let closest =
                (0..20u32).filter(|&t| t != s).min_by_key(|&t| p.id(Slot(t)).distance(me)).unwrap();
            assert!(
                p.leaf_set(Slot(s)).contains(&Slot(closest)),
                "slot {s}: closest {closest} missing from leaf set"
            );
        }
    }

    #[test]
    fn table_entries_satisfy_prefix_constraint() {
        let (p, _) = build(30, 6);
        for s in 0..30u32 {
            let me = p.id(Slot(s));
            for row in 0..NUM_DIGITS {
                for digit in 0..RADIX {
                    if let Some(e) = p.table_entry(Slot(s), row, digit) {
                        let eid = p.id(e);
                        assert_eq!(me.shared_prefix(eid), row, "row constraint violated");
                        assert_eq!(eid.digit(row), digit, "digit constraint violated");
                    }
                }
            }
        }
    }

    #[test]
    fn logical_graph_connected() {
        let (_, net) = build(30, 7);
        assert!(net.graph().is_connected());
    }

    #[test]
    fn prop_g_swap_keeps_routes_identical() {
        let (p, mut net) = build(25, 8);
        let before: Vec<u32> =
            (1..25).map(|b| p.lookup(&net, Slot(0), Slot(b)).unwrap().hops).collect();
        net.swap_peers(Slot(4), Slot(19));
        net.swap_peers(Slot(7), Slot(11));
        let after: Vec<u32> =
            (1..25).map(|b| p.lookup(&net, Slot(0), Slot(b)).unwrap().hops).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn custom_selector_still_routes_correctly() {
        let mut rng = SimRng::seed_from(9);
        let o = oracle(25, 9);
        let (p, net) =
            Pastry::build_with_selector(PastryParams::default(), o, &mut rng, |_, cands| {
                *cands.last().unwrap()
            });
        for b in 0..25u32 {
            let out = p.lookup(&net, Slot(3), Slot(b)).unwrap();
            assert!(out.hops <= 25);
        }
    }

    #[test]
    fn deterministic_build() {
        let (a, _) = build(20, 10);
        let (b, _) = build(20, 10);
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.table, b.table);
        assert_eq!(a.leaves, b.leaves);
    }
}
