//! CAN: the Content-Addressable Network (d = 2 torus).
//!
//! Each slot owns a rectangular zone of the unit torus `[0,1)²`; a joining
//! node picks a point, the zone containing it splits in half, and the two
//! halves are reassigned so each owner's point stays inside its own zone.
//! Logical neighbors are zones that share a border (abut in one dimension,
//! overlap in the other, with wraparound); greedy routing forwards to the
//! neighbor whose zone is closest to the target point.
//!
//! The *join point* is the hook for the PIS baseline (topologically-aware
//! CAN): uniform random points give the vanilla protocol-assigned overlay,
//! while landmark-derived points place physically close peers in adjacent
//! zones.

use crate::logical::{LogicalGraph, Slot};
use crate::net::OverlayNet;
use crate::placement::Placement;
use crate::{Lookup, RouteOutcome};
use prop_engine::SimRng;
use prop_netsim::LatencyOracle;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

const DIMS: usize = 2;
const EPS: f64 = 1e-9;

/// An axis-aligned rectangle of the unit torus: `lo[k] ≤ x[k] < hi[k]`.
/// Zones never wrap internally (splits only shrink), so `lo < hi` always.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Zone {
    pub lo: [f64; DIMS],
    pub hi: [f64; DIMS],
}

impl Zone {
    /// The whole torus.
    pub fn unit() -> Zone {
        Zone { lo: [0.0; DIMS], hi: [1.0; DIMS] }
    }

    #[inline]
    pub fn contains(&self, p: [f64; DIMS]) -> bool {
        (0..DIMS).all(|k| self.lo[k] <= p[k] && p[k] < self.hi[k])
    }

    #[inline]
    pub fn center(&self) -> [f64; DIMS] {
        [(self.lo[0] + self.hi[0]) / 2.0, (self.lo[1] + self.hi[1]) / 2.0]
    }

    #[inline]
    pub fn extent(&self, k: usize) -> f64 {
        self.hi[k] - self.lo[k]
    }

    /// Split along dimension `k` at the midpoint: `(lower half, upper half)`.
    pub fn split(&self, k: usize) -> (Zone, Zone) {
        let mid = (self.lo[k] + self.hi[k]) / 2.0;
        let mut a = *self;
        let mut b = *self;
        a.hi[k] = mid;
        b.lo[k] = mid;
        (a, b)
    }

    /// Do two zones abut on the torus: touching faces in dimension `k`
    /// and (at least partially) overlapping in the other dimension?
    pub fn adjacent(&self, other: &Zone) -> bool {
        for k in 0..DIMS {
            let o = 1 - k;
            let touch = (self.hi[k] - other.lo[k]).abs() < EPS
                || (other.hi[k] - self.lo[k]).abs() < EPS
                // torus wrap: 1.0 face meets 0.0 face
                || ((self.hi[k] - 1.0).abs() < EPS && other.lo[k].abs() < EPS)
                || ((other.hi[k] - 1.0).abs() < EPS && self.lo[k].abs() < EPS);
            let overlap = self.lo[o] < other.hi[o] - EPS && other.lo[o] < self.hi[o] - EPS;
            if touch && overlap {
                return true;
            }
        }
        false
    }

    /// Squared torus distance from the closest point of the zone to `p`.
    #[allow(clippy::needless_range_loop)]
    pub fn dist2_to(&self, p: [f64; DIMS]) -> f64 {
        let mut acc = 0.0;
        for k in 0..DIMS {
            // Nearest offset in this dimension, accounting for wraparound.
            let d = if p[k] >= self.lo[k] && p[k] < self.hi[k] {
                0.0
            } else {
                let to_lo = torus_gap(p[k], self.lo[k]);
                let to_hi = torus_gap(p[k], self.hi[k]);
                to_lo.min(to_hi)
            };
            acc += d * d;
        }
        acc
    }
}

/// Shortest wraparound distance between two scalars on the unit circle.
#[inline]
fn torus_gap(a: f64, b: f64) -> f64 {
    let d = (a - b).abs();
    d.min(1.0 - d)
}

/// The CAN overlay structure.
#[derive(Clone, Debug)]
pub struct Can {
    zones: Vec<Zone>,
    points: Vec<[f64; DIMS]>,
}

impl Can {
    /// Build a CAN whose `i`-th slot joined at `join_points[i]`
    /// (`join_points.len() == oracle.len()`). Slot 0 starts owning the whole
    /// torus; each later slot splits the zone containing its point.
    pub fn build_at(
        join_points: Vec<[f64; DIMS]>,
        oracle: Arc<LatencyOracle>,
    ) -> (Can, OverlayNet) {
        let n = join_points.len();
        assert_eq!(n, oracle.len());
        assert!(n >= 2, "CAN needs at least two nodes");
        let mut zones: Vec<Zone> = Vec::with_capacity(n);
        zones.push(Zone::unit());
        for &p in join_points.iter().skip(1) {
            // Find the zone containing p (ties broken by first match).
            let host = zones.iter().position(|z| z.contains(p)).expect("unit torus fully tiled");
            let z = zones[host];
            // Split along the longer dimension (keeps zones square-ish).
            let k = if z.extent(0) >= z.extent(1) { 0 } else { 1 };
            let (a, b) = z.split(k);
            // The newcomer takes the half containing its join point; the
            // incumbent keeps the other half (real CAN: nodes own zones,
            // not positions).
            let (host_zone, new_zone) = if a.contains(p) { (b, a) } else { (a, b) };
            zones[host] = host_zone;
            zones.push(new_zone);
        }

        // Zone adjacency → logical graph.
        let mut g = LogicalGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if zones[i].adjacent(&zones[j]) {
                    g.add_edge(Slot(i as u32), Slot(j as u32));
                }
            }
        }

        let can = Can { zones, points: join_points };
        let net = OverlayNet::new(g, Placement::identity(n), oracle);
        (can, net)
    }

    /// Build with uniform random join points — vanilla CAN.
    pub fn build(oracle: Arc<LatencyOracle>, rng: &mut SimRng) -> (Can, OverlayNet) {
        let mut rng = rng.fork("can-build");
        let pts = (0..oracle.len()).map(|_| [rng.unit(), rng.unit()]).collect();
        Self::build_at(pts, oracle)
    }

    #[inline]
    pub fn zone(&self, s: Slot) -> &Zone {
        &self.zones[s.index()]
    }

    #[inline]
    pub fn join_point(&self, s: Slot) -> [f64; DIMS] {
        self.points[s.index()]
    }

    /// The slot whose zone contains `p`.
    pub fn owner_of(&self, p: [f64; DIMS]) -> Slot {
        Slot(self.zones.iter().position(|z| z.contains(p)).expect("tiled") as u32)
    }

    /// Greedy route from `src` to the zone containing `target`, returning
    /// the slot path. Forwards to the neighbor whose zone is closest to the
    /// target point; zones tile the space, so distance strictly decreases
    /// and the walk terminates.
    pub fn route_path(&self, g: &LogicalGraph, src: Slot, target: [f64; DIMS]) -> Vec<Slot> {
        let dst = self.owner_of(target);
        let mut path = vec![src];
        let mut cur = src;
        let mut cur_d = self.zones[cur.index()].dist2_to(target);
        while cur != dst {
            let mut best: Option<(f64, Slot)> = None;
            for &nb in g.neighbors(cur) {
                let d = self.zones[nb.index()].dist2_to(target);
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, nb));
                }
            }
            let (d, next) = best.expect("zone with no neighbors");
            assert!(d < cur_d || d == 0.0, "greedy CAN routing stalled");
            path.push(next);
            cur = next;
            cur_d = d;
        }
        path
    }
}

impl Lookup for Can {
    /// Latency of routing to a point inside `dst`'s zone (its center).
    fn lookup(&self, net: &OverlayNet, src: Slot, dst: Slot) -> Option<RouteOutcome> {
        let target = self.zones[dst.index()].center();
        let path = self.route_path(net.graph(), src, target);
        debug_assert_eq!(*path.last().unwrap(), dst);
        let mut latency = 0u64;
        for w in path.windows(2) {
            latency += net.d(w[0], w[1]) as u64 + net.proc_delay(w[1]) as u64;
        }
        Some(RouteOutcome { latency_ms: latency, hops: (path.len() - 1) as u32 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netsim::{generate, TransitStubParams};

    fn oracle(n: usize, seed: u64) -> Arc<LatencyOracle> {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng))
    }

    fn build(n: usize, seed: u64) -> (Can, OverlayNet) {
        let mut rng = SimRng::seed_from(seed);
        Can::build(oracle(n, seed), &mut rng)
    }

    #[test]
    fn zones_tile_the_torus() {
        let (can, _) = build(25, 1);
        // Total area is 1 and zones are disjoint (area check + point probes).
        let area: f64 = can.zones.iter().map(|z| z.extent(0) * z.extent(1)).sum();
        assert!((area - 1.0).abs() < 1e-9, "area {area}");
        let mut rng = SimRng::seed_from(99);
        for _ in 0..200 {
            let p = [rng.unit(), rng.unit()];
            let owners = can.zones.iter().filter(|z| z.contains(p)).count();
            assert_eq!(owners, 1, "point {p:?} owned by {owners} zones");
        }
    }

    #[test]
    fn newcomer_gets_half_containing_its_point() {
        // Four joiners in the four quadrants: no later split ever evicts an
        // earlier owner's point, so every zone contains its join point.
        let o = oracle(4, 2);
        let pts = vec![[0.1, 0.1], [0.6, 0.6], [0.6, 0.1], [0.1, 0.6]];
        let (can, _) = Can::build_at(pts, o);
        for i in 0..4u32 {
            let s = Slot(i);
            assert!(
                can.zone(s).contains(can.join_point(s)),
                "{s:?}: zone {:?} missing point {:?}",
                can.zone(s),
                can.join_point(s)
            );
        }
    }

    #[test]
    fn adjacency_graph_is_connected() {
        let (_, net) = build(30, 3);
        assert!(net.graph().is_connected());
    }

    #[test]
    fn all_lookups_terminate_at_owner() {
        let (can, net) = build(20, 4);
        for a in 0..20u32 {
            for b in 0..20u32 {
                let out = can.lookup(&net, Slot(a), Slot(b)).unwrap();
                if a == b {
                    assert_eq!(out.hops, 0);
                } else {
                    assert!(out.hops >= 1);
                }
            }
        }
    }

    #[test]
    fn hops_scale_like_sqrt_n() {
        let (can, net) = build(36, 5);
        let mut total = 0u64;
        let mut cnt = 0u64;
        for a in 0..36u32 {
            for b in 0..36u32 {
                if a != b {
                    total += can.lookup(&net, Slot(a), Slot(b)).unwrap().hops as u64;
                    cnt += 1;
                }
            }
        }
        let avg = total as f64 / cnt as f64;
        // For d=2, O(√n) ≈ 3; generous bound.
        assert!(avg < 8.0, "avg hops {avg}");
    }

    #[test]
    fn adjacency_is_symmetric_relation() {
        let (can, _) = build(15, 6);
        for i in 0..15 {
            for j in 0..15 {
                assert_eq!(
                    can.zones[i].adjacent(&can.zones[j]),
                    can.zones[j].adjacent(&can.zones[i])
                );
            }
        }
    }

    #[test]
    fn zone_is_not_adjacent_to_itself_after_splits() {
        let (can, _) = build(10, 7);
        for z in &can.zones {
            assert!(!z.adjacent(z) || can.zones.len() <= 2);
        }
    }

    #[test]
    fn split_halves_area() {
        let z = Zone::unit();
        let (a, b) = z.split(0);
        assert!((a.extent(0) - 0.5).abs() < EPS);
        assert!((b.extent(0) - 0.5).abs() < EPS);
        assert_eq!(a.extent(1), 1.0);
        assert!(a.adjacent(&b));
    }

    #[test]
    fn dist2_zero_inside() {
        let z = Zone { lo: [0.25, 0.25], hi: [0.5, 0.5] };
        assert_eq!(z.dist2_to([0.3, 0.4]), 0.0);
        assert!(z.dist2_to([0.9, 0.9]) > 0.0);
    }

    #[test]
    fn torus_wraparound_distance() {
        let z = Zone { lo: [0.9, 0.0], hi: [1.0, 1.0] };
        // Point at x=0.05 is 0.05 past the wrap from hi=1.0.
        let d2 = z.dist2_to([0.05, 0.5]);
        assert!((d2 - 0.05 * 0.05).abs() < 1e-9, "{d2}");
    }

    #[test]
    fn landmark_style_points_cluster_physically_close_peers() {
        // Peers given identical join points (max clustering) still build a
        // valid, connected CAN — the degenerate corner PIS can produce.
        let o = oracle(8, 8);
        let pts = vec![[0.5, 0.5]; 8];
        let (can, net) = Can::build_at(pts, o);
        assert!(net.graph().is_connected());
        let area: f64 = can.zones.iter().map(|z| z.extent(0) * z.extent(1)).sum();
        assert!((area - 1.0).abs() < 1e-9);
    }
}
