//! The slot ↔ peer bijection.
//!
//! A *peer* is a physical host (a [`prop_netsim::oracle::MemberIdx`] into
//! the latency oracle); a *slot* is a logical overlay position. PROP-G's
//! "exchange all neighbors / exchange node identifiers" is a transposition
//! of this bijection ([`Placement::swap_slots`]): O(1), and by construction
//! the logical overlay is untouched — which is the content of the paper's
//! Theorem 2 (isomorphism) and the reason PROP-G applies to *any* overlay.

use crate::logical::Slot;
use prop_netsim::oracle::MemberIdx;

/// Sentinel for "no peer occupies this slot" (dead slot under churn).
const VACANT: u32 = u32::MAX;

/// Bijection between live slots and present peers.
#[derive(Clone, Debug)]
pub struct Placement {
    slot_to_peer: Vec<u32>,
    peer_to_slot: Vec<u32>,
}

impl Placement {
    /// Identity placement: slot `i` ↔ peer `i`, for `n` peers.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<u32> = (0..n as u32).collect();
        Placement { slot_to_peer: ids.clone(), peer_to_slot: ids }
    }

    /// Number of slot entries (live or vacant).
    pub fn num_slots(&self) -> usize {
        self.slot_to_peer.len()
    }

    /// The peer occupying `slot`, or `None` if vacant.
    #[inline]
    pub fn peer_at(&self, slot: Slot) -> Option<MemberIdx> {
        match self.slot_to_peer[slot.index()] {
            VACANT => None,
            p => Some(p as MemberIdx),
        }
    }

    /// The peer occupying `slot`; panics if vacant. The hot path — protocols
    /// only ever query live slots.
    #[inline]
    pub fn peer(&self, slot: Slot) -> MemberIdx {
        let p = self.slot_to_peer[slot.index()];
        debug_assert_ne!(p, VACANT, "querying vacant {slot:?}");
        p as MemberIdx
    }

    /// The slot occupied by `peer`, or `None` if the peer has departed.
    #[inline]
    pub fn slot_of(&self, peer: MemberIdx) -> Option<Slot> {
        match self.peer_to_slot[peer] {
            VACANT => None,
            s => Some(Slot(s)),
        }
    }

    /// PROP-G primitive: the peers at `a` and `b` trade places.
    pub fn swap_slots(&mut self, a: Slot, b: Slot) {
        let pa = self.slot_to_peer[a.index()];
        let pb = self.slot_to_peer[b.index()];
        assert!(pa != VACANT && pb != VACANT, "swapping a vacant slot");
        self.slot_to_peer.swap(a.index(), b.index());
        self.peer_to_slot[pa as usize] = b.0;
        self.peer_to_slot[pb as usize] = a.0;
    }

    /// Churn: the peer at `slot` departs.
    pub fn vacate(&mut self, slot: Slot) -> MemberIdx {
        let p = self.slot_to_peer[slot.index()];
        assert_ne!(p, VACANT, "vacating an already-vacant slot");
        self.slot_to_peer[slot.index()] = VACANT;
        self.peer_to_slot[p as usize] = VACANT;
        p as MemberIdx
    }

    /// Churn: `peer` (currently absent) occupies the fresh `slot`.
    ///
    /// `slot` may extend the slot table by exactly one (new slot from
    /// [`crate::LogicalGraph::add_slot`]).
    pub fn occupy(&mut self, slot: Slot, peer: MemberIdx) {
        if slot.index() == self.slot_to_peer.len() {
            self.slot_to_peer.push(VACANT);
        }
        assert_eq!(self.slot_to_peer[slot.index()], VACANT, "slot already occupied");
        assert_eq!(self.peer_to_slot[peer], VACANT, "peer already placed");
        self.slot_to_peer[slot.index()] = peer as u32;
        self.peer_to_slot[peer] = slot.0;
    }

    /// Check bijectivity over live entries — used by tests and debug
    /// assertions after protocol rounds.
    pub fn is_consistent(&self) -> bool {
        for (s, &p) in self.slot_to_peer.iter().enumerate() {
            if p != VACANT && self.peer_to_slot[p as usize] != s as u32 {
                return false;
            }
        }
        for (p, &s) in self.peer_to_slot.iter().enumerate() {
            if s != VACANT && self.slot_to_peer[s as usize] != p as u32 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_both_ways() {
        let p = Placement::identity(5);
        assert!(p.is_consistent());
        for i in 0..5 {
            assert_eq!(p.peer(Slot(i as u32)), i);
            assert_eq!(p.slot_of(i), Some(Slot(i as u32)));
        }
    }

    #[test]
    fn swap_is_a_transposition() {
        let mut p = Placement::identity(4);
        p.swap_slots(Slot(1), Slot(3));
        assert_eq!(p.peer(Slot(1)), 3);
        assert_eq!(p.peer(Slot(3)), 1);
        assert_eq!(p.slot_of(1), Some(Slot(3)));
        assert_eq!(p.slot_of(3), Some(Slot(1)));
        assert_eq!(p.peer(Slot(0)), 0);
        assert!(p.is_consistent());
    }

    #[test]
    fn double_swap_is_identity() {
        let mut p = Placement::identity(4);
        p.swap_slots(Slot(0), Slot(2));
        p.swap_slots(Slot(0), Slot(2));
        for i in 0..4 {
            assert_eq!(p.peer(Slot(i as u32)), i);
        }
    }

    #[test]
    fn vacate_and_occupy_roundtrip() {
        let mut p = Placement::identity(3);
        let peer = p.vacate(Slot(1));
        assert_eq!(peer, 1);
        assert_eq!(p.peer_at(Slot(1)), None);
        assert_eq!(p.slot_of(1), None);
        assert!(p.is_consistent());
        p.occupy(Slot(1), 1);
        assert_eq!(p.peer(Slot(1)), 1);
        assert!(p.is_consistent());
    }

    #[test]
    fn occupy_can_extend_by_one() {
        let mut p = Placement::identity(2);
        p.vacate(Slot(0));
        p.occupy(Slot(2), 0); // peer 0 rejoins at a brand-new slot
        assert_eq!(p.peer(Slot(2)), 0);
        assert_eq!(p.slot_of(0), Some(Slot(2)));
        assert!(p.is_consistent());
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn swapping_vacant_slot_panics() {
        let mut p = Placement::identity(3);
        p.vacate(Slot(0));
        p.swap_slots(Slot(0), Slot(1));
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_occupy_panics() {
        let mut p = Placement::identity(3);
        p.vacate(Slot(0));
        p.occupy(Slot(0), 0);
        // peer 1 is still at slot 1; placing it again must fail…
        // (first vacate peer-side to reach the slot check)
        p.vacate(Slot(1));
        p.occupy(Slot(0), 1);
    }
}
