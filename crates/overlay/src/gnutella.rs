//! Gnutella-like unstructured overlay.
//!
//! Peers join by opening connections to a handful of already-present peers;
//! with preferential attachment this reproduces the power-law-ish degree
//! distribution measured on the real Gnutella network (Ripeanu et al.),
//! where "powerful, reliable nodes … inherently have more connections" —
//! the feature PROP-O is designed to preserve.
//!
//! Queries are flooded with a TTL. We model the latency of a flooded lookup
//! as the cost of the fastest ≤TTL-hop overlay path from requester to the
//! object holder — the path along which the first query copy arrives.

use crate::logical::{LogicalGraph, Slot};
use crate::net::OverlayNet;
use crate::placement::Placement;
use crate::{Lookup, RouteOutcome};
use prop_engine::SimRng;
use prop_netsim::LatencyOracle;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Construction and flooding parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GnutellaParams {
    /// Connections each joining peer opens. This is also the minimum degree
    /// δ(G) of the resulting overlay (the paper's default PROP-O `m`).
    pub links_per_join: usize,
    /// Preferential attachment (`true`, power-law-ish, the Gnutella shape)
    /// vs uniform attachment.
    pub preferential: bool,
    /// Flood TTL for lookups (classic Gnutella default: 7).
    pub flood_ttl: u32,
}

impl Default for GnutellaParams {
    fn default() -> Self {
        GnutellaParams { links_per_join: 4, preferential: true, flood_ttl: 7 }
    }
}

/// The Gnutella overlay: flooding-based lookups over an [`OverlayNet`].
#[derive(Clone, Debug)]
pub struct Gnutella {
    pub params: GnutellaParams,
}

impl Gnutella {
    /// Build an `n`-peer overlay over the oracle's member population
    /// (`oracle.len() == n`), with peers joining in random order.
    pub fn build(
        params: GnutellaParams,
        oracle: Arc<LatencyOracle>,
        rng: &mut SimRng,
    ) -> (Gnutella, OverlayNet) {
        let n = oracle.len();
        let k = params.links_per_join;
        assert!(n > k, "need more than links_per_join peers");
        let mut rng = rng.fork("gnutella-build");
        let mut g = LogicalGraph::new(n);

        // `endpoints` holds each edge's two ends; sampling a uniform entry
        // samples a slot with probability ∝ its degree (preferential
        // attachment à la Barabási–Albert).
        let mut endpoints: Vec<Slot> = Vec::with_capacity(2 * n * k);

        // Seed clique of k+1 slots so every later joiner can find k targets
        // and the minimum degree is exactly k.
        for a in 0..=(k as u32) {
            for b in (a + 1)..=(k as u32) {
                g.add_edge(Slot(a), Slot(b));
                endpoints.push(Slot(a));
                endpoints.push(Slot(b));
            }
        }

        for s in (k + 1)..n {
            let joiner = Slot(s as u32);
            let mut chosen: Vec<Slot> = Vec::with_capacity(k);
            while chosen.len() < k {
                let target = if params.preferential {
                    *rng.pick(&endpoints).expect("seed clique populated endpoints")
                } else {
                    Slot(rng.range(0..s as u32))
                };
                if target != joiner && !chosen.contains(&target) {
                    chosen.push(target);
                }
            }
            for t in chosen {
                g.add_edge(joiner, t);
                endpoints.push(joiner);
                endpoints.push(t);
            }
        }

        let net = OverlayNet::new(g, Placement::identity(n), oracle);
        (Gnutella { params }, net)
    }

    /// Churn: a previously-absent `peer` joins, wiring `links_per_join`
    /// connections to random live slots. Returns its new slot.
    pub fn join(
        &self,
        net: &mut OverlayNet,
        peer: prop_netsim::oracle::MemberIdx,
        rng: &mut SimRng,
    ) -> Slot {
        let live: Vec<Slot> = net.graph().live_slots().collect();
        assert!(live.len() >= self.params.links_per_join);
        let slot = net.graph_mut().add_slot();
        net.placement_mut().occupy(slot, peer);
        let targets = rng.sample_distinct(&live, self.params.links_per_join);
        for t in targets {
            net.graph_mut().add_edge(slot, t);
        }
        slot
    }

    /// Churn: the peer at `slot` departs. Its former neighbors patch the
    /// hole by linking up in a random cycle (any route that used the
    /// departed node reroutes along the cycle), which keeps the overlay
    /// connected.
    pub fn leave(&self, net: &mut OverlayNet, slot: Slot, rng: &mut SimRng) {
        let mut orphans = net.graph_mut().remove_slot(slot);
        net.placement_mut().vacate(slot);
        rng.shuffle(&mut orphans);
        for w in orphans.windows(2) {
            if !net.graph().has_edge(w[0], w[1]) {
                net.graph_mut().add_edge(w[0], w[1]);
            }
        }
    }

    /// Sudden failure: the peer at `slot` vanishes *without* the graceful
    /// patch-up of [`Gnutella::leave`] — its neighbors simply lose a link,
    /// and the overlay may even partition until survivors re-join around
    /// the hole. Returns the orphaned former neighbors.
    pub fn crash(&self, net: &mut OverlayNet, slot: Slot) -> Vec<Slot> {
        let orphans = net.graph_mut().remove_slot(slot);
        net.placement_mut().vacate(slot);
        orphans
    }
}

impl Lookup for Gnutella {
    fn lookup(&self, net: &OverlayNet, src: Slot, dst: Slot) -> Option<RouteOutcome> {
        net.min_latency_within_hops(src, dst, self.params.flood_ttl)
            .map(|(latency_ms, hops)| RouteOutcome { latency_ms, hops })
    }

    fn lookup_with(
        &self,
        net: &OverlayNet,
        src: Slot,
        dst: Slot,
        scratch: &mut crate::FloodScratch,
    ) -> Option<RouteOutcome> {
        net.min_latency_within_hops_with(src, dst, self.params.flood_ttl, scratch)
            .map(|(latency_ms, hops)| RouteOutcome { latency_ms, hops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_netsim::{generate, TransitStubParams};

    fn oracle(n: usize, seed: u64) -> Arc<LatencyOracle> {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng))
    }

    fn build(n: usize, seed: u64) -> (Gnutella, OverlayNet) {
        let mut rng = SimRng::seed_from(seed);
        Gnutella::build(GnutellaParams::default(), oracle(n, seed), &mut rng)
    }

    #[test]
    fn overlay_is_connected_with_min_degree_k() {
        let (_, net) = build(30, 1);
        assert!(net.graph().is_connected());
        assert_eq!(net.graph().min_degree(), Some(4));
        assert_eq!(net.graph().num_live(), 30);
    }

    #[test]
    fn preferential_attachment_skews_degrees() {
        let mut rng = SimRng::seed_from(2);
        let o = oracle(40, 2);
        let (_, pref) = Gnutella::build(
            GnutellaParams { preferential: true, ..Default::default() },
            Arc::clone(&o),
            &mut rng,
        );
        let seq = pref.graph().degree_sequence();
        // Max degree should noticeably exceed the per-join link count.
        assert!(*seq.last().unwrap() > 6, "degree sequence {seq:?}");
    }

    #[test]
    fn uniform_attachment_also_connected() {
        let mut rng = SimRng::seed_from(3);
        let (_, net) = Gnutella::build(
            GnutellaParams { preferential: false, ..Default::default() },
            oracle(25, 3),
            &mut rng,
        );
        assert!(net.graph().is_connected());
        assert_eq!(net.graph().min_degree(), Some(4));
    }

    #[test]
    fn lookup_reaches_most_pairs_within_ttl() {
        let (gn, net) = build(30, 4);
        let mut delivered = 0;
        for a in 0..30u32 {
            for b in 0..30u32 {
                if a != b && gn.lookup(&net, Slot(a), Slot(b)).is_some() {
                    delivered += 1;
                }
            }
        }
        // TTL 7 over a 30-node, min-degree-4 overlay: everything reachable.
        assert_eq!(delivered, 30 * 29);
    }

    #[test]
    fn lookup_latency_at_least_direct_distance_lower_bound() {
        // Overlay routes can't beat the physical shortest path.
        let (gn, net) = build(20, 5);
        for a in 0..20u32 {
            for b in 0..20u32 {
                if let Some(out) = gn.lookup(&net, Slot(a), Slot(b)) {
                    assert!(out.latency_ms >= net.d(Slot(a), Slot(b)) as u64);
                }
            }
        }
    }

    #[test]
    fn join_then_leave_preserves_connectivity() {
        let mut rng = SimRng::seed_from(6);
        let o = oracle(30, 6);
        // Build over only the first 25 peers; leave 5 for later joins.
        let sub: Vec<_> = (0..25).collect();
        let _ = sub;
        let (gn, mut net) = Gnutella::build(GnutellaParams::default(), o, &mut rng);
        // Peers 0..30 all placed; remove a few then rejoin them.
        for victim in [3u32, 7, 11] {
            let peer = net.peer(Slot(victim));
            gn.leave(&mut net, Slot(victim), &mut rng);
            assert!(net.graph().is_connected(), "disconnected after leave");
            let s = gn.join(&mut net, peer, &mut rng);
            assert!(net.graph().is_alive(s));
            assert!(net.graph().is_connected(), "disconnected after join");
        }
        assert!(net.placement().is_consistent());
    }

    #[test]
    fn leave_of_high_degree_hub_keeps_graph_connected() {
        let mut rng = SimRng::seed_from(7);
        let (gn, mut net) = Gnutella::build(GnutellaParams::default(), oracle(40, 7), &mut rng);
        // Remove the highest-degree slot.
        let hub = net.graph().live_slots().max_by_key(|&s| net.graph().degree(s)).unwrap();
        gn.leave(&mut net, hub, &mut rng);
        assert!(net.graph().is_connected());
    }

    #[test]
    fn deterministic_build() {
        let (_, n1) = build(20, 8);
        let (_, n2) = build(20, 8);
        for s in n1.graph().live_slots() {
            assert_eq!(n1.graph().neighbors(s), n2.graph().neighbors(s));
        }
    }
}
