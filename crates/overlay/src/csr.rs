//! Compact (CSR) adjacency view of a [`LogicalGraph`].
//!
//! The overlay's mutable source of truth stays the sorted-`Vec<Vec<Slot>>`
//! adjacency in [`LogicalGraph`] — per-mutation costs there are tiny and the
//! invariant checks (no duplicates, no self-loops) live close to the data.
//! The *traversal* hot paths — the flood engine, random walks, flood-cost
//! BFS — iterate neighbor rows millions of times per experiment, and a
//! per-node heap allocation per row means every hop is a dependent pointer
//! chase. [`CsrView`] packs all rows into one flat `targets` arena indexed
//! by `offsets`, so a whole measurement sweep touches two contiguous arrays.
//!
//! Three properties make the view safe to substitute anywhere:
//!
//! * **Bit-identity** — rows are kept sorted ascending, exactly like
//!   `LogicalGraph::neighbors`, so any traversal (and any RNG consumption
//!   driven by it) observes the identical slot sequence.
//! * **Generation stamping** — the view records the graph
//!   [`LogicalGraph::generation`] it reflects; [`CsrView::is_current`] is a
//!   single integer compare, so consumers holding `&OverlayNet` can fall
//!   back to the legacy rows when the view is stale instead of reading
//!   stale topology.
//! * **Patch-log catch-up** — [`CsrView::sync`] replays the graph's
//!   [`GraphPatch`] log into the arena (rows carry [`ROW_SLACK`] spare
//!   capacity, so a sorted insert is a short `memmove`), falling back to a
//!   full O(n + m) rebuild only when the log was truncated or a row
//!   overflowed. PROP-O's frequent small rewires therefore cost O(patch),
//!   not O(graph).

use crate::logical::{GraphPatch, LogicalGraph, Slot};

/// Read-only neighbor access, implemented by both adjacency representations
/// so traversals ([`crate::FloodScratch::run`], [`crate::walk::random_walk`],
/// the metrics' BFS) are written once and run over either.
pub trait Adjacency {
    /// Total slots ever allocated (live or not) — the row-index bound.
    fn num_slots(&self) -> usize;

    /// Neighbors of `s`, sorted ascending.
    fn neighbors(&self, s: Slot) -> &[Slot];

    #[inline]
    fn degree(&self, s: Slot) -> usize {
        self.neighbors(s).len()
    }

    #[inline]
    fn has_edge(&self, a: Slot, b: Slot) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }
}

impl Adjacency for LogicalGraph {
    #[inline]
    fn num_slots(&self) -> usize {
        LogicalGraph::num_slots(self)
    }

    #[inline]
    fn neighbors(&self, s: Slot) -> &[Slot] {
        LogicalGraph::neighbors(self, s)
    }
}

/// Spare capacity appended to every row at (re)build time, so a few edge
/// inserts per node — a PROP-O exchange moves `m` edges, a churn join wires
/// a handful — patch in place instead of forcing a rebuild.
pub const ROW_SLACK: u32 = 4;

/// Flat compressed-sparse-row snapshot of a [`LogicalGraph`]'s adjacency.
///
/// `offsets` has `n + 1` entries; row `i` occupies
/// `targets[offsets[i] .. offsets[i] + len[i]]` with capacity
/// `offsets[i+1] - offsets[i]` (live entries + slack). Kill a slot and its
/// row just goes empty — dead slots are unreachable (no edges point at
/// them), matching `LogicalGraph` semantics exactly.
#[derive(Clone, Debug, Default)]
pub struct CsrView {
    offsets: Vec<u32>,
    len: Vec<u32>,
    targets: Vec<Slot>,
    epoch: u64,
}

impl Adjacency for CsrView {
    #[inline]
    fn num_slots(&self) -> usize {
        self.len.len()
    }

    #[inline]
    fn neighbors(&self, s: Slot) -> &[Slot] {
        CsrView::neighbors(self, s)
    }
}

impl CsrView {
    /// Full O(n + m) build from the current graph state.
    pub fn build(g: &LogicalGraph) -> CsrView {
        let n = g.num_slots();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut len = Vec::with_capacity(n);
        let mut total: u32 = 0;
        offsets.push(0);
        for i in 0..n {
            let d = g.neighbors(Slot(i as u32)).len() as u32;
            len.push(d);
            total = total.checked_add(d + ROW_SLACK).expect("CSR arena exceeds u32 index space");
            offsets.push(total);
        }
        let mut targets = vec![Slot(0); total as usize];
        for i in 0..n {
            let row = g.neighbors(Slot(i as u32));
            let start = offsets[i] as usize;
            targets[start..start + row.len()].copy_from_slice(row);
        }
        CsrView { offsets, len, targets, epoch: g.generation() }
    }

    /// The graph generation this view reflects.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Does this view reflect `g`'s current state?
    #[inline]
    pub fn is_current(&self, g: &LogicalGraph) -> bool {
        self.epoch == g.generation()
    }

    /// Neighbors of `s`, sorted ascending — byte-identical to
    /// [`LogicalGraph::neighbors`] whenever the view is current.
    #[inline]
    pub fn neighbors(&self, s: Slot) -> &[Slot] {
        let i = s.index();
        let start = self.offsets[i] as usize;
        &self.targets[start..start + self.len[i] as usize]
    }

    /// Bring the view up to `g`'s current generation: a no-op when current,
    /// an incremental patch replay when the graph's log still covers the
    /// gap and every touched row has capacity, a full rebuild otherwise.
    pub fn sync(&mut self, g: &LogicalGraph) {
        if self.is_current(g) {
            return;
        }
        match g.patches_since(self.epoch) {
            Some(patches) if self.apply_patches(patches) => self.epoch = g.generation(),
            _ => *self = CsrView::build(g),
        }
    }

    /// Replay `patches` into the arena. Returns `false` (partial state,
    /// caller must rebuild) on row-capacity overflow.
    fn apply_patches(&mut self, patches: &[GraphPatch]) -> bool {
        for &p in patches {
            match p {
                GraphPatch::AddEdge(a, b) => {
                    if !self.insert(a, b) || !self.insert(b, a) {
                        return false;
                    }
                }
                GraphPatch::RemoveEdge(a, b) => {
                    self.remove(a, b);
                    self.remove(b, a);
                }
                GraphPatch::AddSlot => {
                    let end = *self.offsets.last().expect("offsets has a sentinel");
                    let Some(new_end) = end.checked_add(ROW_SLACK) else { return false };
                    self.offsets.push(new_end);
                    self.len.push(0);
                    self.targets.resize(new_end as usize, Slot(0));
                }
                GraphPatch::KillSlot(s) => {
                    debug_assert_eq!(
                        self.len[s.index()],
                        0,
                        "kill must follow the removal of every incident edge"
                    );
                    self.len[s.index()] = 0;
                }
            }
        }
        true
    }

    fn row_bounds(&self, s: Slot) -> (usize, usize, usize) {
        let i = s.index();
        let start = self.offsets[i] as usize;
        let used = self.len[i] as usize;
        let cap = (self.offsets[i + 1] - self.offsets[i]) as usize;
        (start, used, cap)
    }

    /// Sorted insert of `t` into `s`'s row. `false` when the row is full.
    fn insert(&mut self, s: Slot, t: Slot) -> bool {
        let (start, used, cap) = self.row_bounds(s);
        if used == cap {
            return false;
        }
        let pos = match self.targets[start..start + used].binary_search(&t) {
            Err(p) => p,
            Ok(_) => {
                debug_assert!(false, "duplicate CSR edge {s:?}–{t:?}");
                return true;
            }
        };
        self.targets.copy_within(start + pos..start + used, start + pos + 1);
        self.targets[start + pos] = t;
        self.len[s.index()] += 1;
        true
    }

    /// Sorted removal of `t` from `s`'s row.
    fn remove(&mut self, s: Slot, t: Slot) {
        let (start, used, _) = self.row_bounds(s);
        let pos = self.targets[start..start + used]
            .binary_search(&t)
            .expect("removing edge absent from CSR row");
        self.targets.copy_within(start + pos + 1..start + used, start + pos);
        self.len[s.index()] -= 1;
    }

    /// Assert row-by-row equality with the graph (test/debug helper).
    pub fn assert_matches(&self, g: &LogicalGraph) {
        assert_eq!(self.num_slots(), g.num_slots(), "slot count diverged");
        for i in 0..g.num_slots() {
            let s = Slot(i as u32);
            assert_eq!(self.neighbors(s), g.neighbors(s), "row {s:?} diverged");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::SimRng;

    fn ring(n: u32) -> LogicalGraph {
        let mut g = LogicalGraph::new(n as usize);
        for i in 0..n {
            g.add_edge(Slot(i), Slot((i + 1) % n));
        }
        g
    }

    #[test]
    fn build_matches_graph_rows() {
        let mut g = ring(10);
        g.add_edge(Slot(0), Slot(5));
        g.add_edge(Slot(2), Slot(7));
        let view = CsrView::build(&g);
        assert!(view.is_current(&g));
        view.assert_matches(&g);
    }

    #[test]
    fn incremental_sync_tracks_rewires() {
        let mut g = ring(8);
        let mut view = CsrView::build(&g);
        g.add_edge(Slot(0), Slot(4));
        g.remove_edge(Slot(1), Slot(2));
        g.add_edge(Slot(1), Slot(5));
        assert!(!view.is_current(&g));
        view.sync(&g);
        assert!(view.is_current(&g));
        view.assert_matches(&g);
    }

    #[test]
    fn sync_handles_churn() {
        let mut g = ring(6);
        let mut view = CsrView::build(&g);
        g.remove_slot(Slot(3));
        let s = g.add_slot();
        g.add_edge(s, Slot(0));
        g.add_edge(s, Slot(1));
        view.sync(&g);
        view.assert_matches(&g);
        assert_eq!(view.neighbors(Slot(3)), &[] as &[Slot]);
    }

    #[test]
    fn row_overflow_falls_back_to_rebuild() {
        // Slot 0 starts isolated (zero used + ROW_SLACK capacity); wiring
        // more than ROW_SLACK edges to it must overflow the row and still
        // produce a correct view via the rebuild path.
        let mut g = LogicalGraph::new(10);
        let mut view = CsrView::build(&g);
        for i in 1..(ROW_SLACK + 3) {
            g.add_edge(Slot(0), Slot(i));
        }
        view.sync(&g);
        view.assert_matches(&g);
    }

    #[test]
    fn stale_epoch_beyond_log_rebuilds() {
        let mut g = ring(4);
        let mut view = CsrView::build(&g);
        // Overflow the patch log so the view's epoch becomes unreachable.
        for _ in 0..(crate::logical::MAX_PATCH_LOG / 2 + 1) {
            g.add_edge(Slot(0), Slot(2));
            g.remove_edge(Slot(0), Slot(2));
        }
        assert!(g.patches_since(view.epoch()).is_none());
        view.sync(&g);
        view.assert_matches(&g);
    }

    #[test]
    fn random_mutation_storm_stays_equivalent() {
        let mut rng = SimRng::seed_from(42);
        let mut g = ring(16);
        let mut view = CsrView::build(&g);
        for step in 0..600 {
            let a = Slot(rng.range(0..16u32));
            let b = Slot(rng.range(0..16u32));
            if a != b && g.is_alive(a) && g.is_alive(b) {
                if g.has_edge(a, b) {
                    if g.degree(a) > 1 && g.degree(b) > 1 {
                        g.remove_edge(a, b);
                    }
                } else {
                    g.add_edge(a, b);
                }
            }
            // Sync at irregular intervals so the view is sometimes many
            // patches behind.
            if step % 7 == 0 {
                view.sync(&g);
                view.assert_matches(&g);
            }
        }
        view.sync(&g);
        view.assert_matches(&g);
    }

    #[test]
    fn adjacency_trait_agrees_across_representations() {
        let mut g = ring(12);
        g.add_edge(Slot(2), Slot(9));
        let view = CsrView::build(&g);
        for i in 0..12u32 {
            let s = Slot(i);
            assert_eq!(Adjacency::neighbors(&g, s), Adjacency::neighbors(&view, s));
            assert_eq!(Adjacency::degree(&g, s), Adjacency::degree(&view, s));
        }
        assert!(Adjacency::has_edge(&view, Slot(2), Slot(9)));
        assert!(!Adjacency::has_edge(&view, Slot(2), Slot(8)));
    }
}
