//! Graph isomorphism utilities for Theorem 2.
//!
//! Our production PROP-G is a placement transposition, which makes
//! Theorem 2 (the exchanged overlay is isomorphic to the original) hold *by
//! construction*. To show that this is the same operation the paper
//! describes — two nodes literally exchanging neighbor lists in a
//! peer-indexed adjacency — this module provides
//!
//! * [`peer_adjacency`] — the overlay as seen in *peer* space (who is
//!   actually connected to whom), independent of slot bookkeeping;
//! * [`reference_propg_exchange`] — the paper's Figure-1 operation applied
//!   directly to a peer-space adjacency (swap the two peers' neighbor
//!   sets, rewriting self-references);
//! * [`is_isomorphic_via`] — verify a candidate bijection between two
//!   graphs edge-by-edge (the constructive proof object of Theorem 2).
//!
//! The cross-validation test (`tests/reference_equivalence.rs` at the
//! workspace root) checks that the production placement swap and the
//! reference neighbor-list exchange produce the *same* peer-space overlay.

use crate::logical::Slot;
use crate::net::OverlayNet;
use prop_netsim::oracle::MemberIdx;
use std::collections::BTreeSet;

/// The overlay's edge set in peer space: `{ (peer_a, peer_b) | a < b }`.
pub fn peer_adjacency(net: &OverlayNet) -> BTreeSet<(MemberIdx, MemberIdx)> {
    net.graph()
        .edges()
        .map(|(a, b)| {
            let (pa, pb) = (net.peer(a), net.peer(b));
            (pa.min(pb), pa.max(pb))
        })
        .collect()
}

/// The paper's Figure 1 operation, applied literally: peers `u` and `v`
/// exchange their entire neighbor sets in a peer-space edge set. A neighbor
/// reference to the counterpart maps to the other peer (so a `u–v` edge, if
/// present, survives as itself).
pub fn reference_propg_exchange(
    edges: &BTreeSet<(MemberIdx, MemberIdx)>,
    u: MemberIdx,
    v: MemberIdx,
) -> BTreeSet<(MemberIdx, MemberIdx)> {
    assert_ne!(u, v);
    let swap = |p: MemberIdx| {
        if p == u {
            v
        } else if p == v {
            u
        } else {
            p
        }
    };
    edges
        .iter()
        .map(|&(a, b)| {
            let (x, y) = (swap(a), swap(b));
            (x.min(y), x.max(y))
        })
        .collect()
}

/// Does `phi` (a permutation of `0..n`, slot-indexed) map graph `a` onto
/// graph `b` edge-for-edge? Both graphs are given as sorted edge sets over
/// `Slot`-compatible indices.
pub fn is_isomorphic_via(a: &BTreeSet<(u32, u32)>, b: &BTreeSet<(u32, u32)>, phi: &[u32]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    // phi must be a permutation.
    let mut seen = vec![false; phi.len()];
    for &p in phi {
        let Some(slot) = seen.get_mut(p as usize) else { return false };
        if *slot {
            return false;
        }
        *slot = true;
    }
    a.iter().all(|&(x, y)| {
        let (px, py) = (phi[x as usize], phi[y as usize]);
        b.contains(&(px.min(py), px.max(py)))
    })
}

/// The Theorem-2 witness for a PROP-G exchange at slots `(su, sv)`: the
/// transposition bijection on slots.
pub fn transposition(n: usize, su: Slot, sv: Slot) -> Vec<u32> {
    let mut phi: Vec<u32> = (0..n as u32).collect();
    phi.swap(su.index(), sv.index());
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalGraph;
    use crate::placement::Placement;
    use prop_engine::SimRng;
    use prop_netsim::{generate, LatencyOracle, TransitStubParams};
    use std::sync::Arc;

    fn ring_net(n: usize, seed: u64) -> OverlayNet {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
        let mut g = LogicalGraph::new(n);
        for i in 0..n as u32 {
            g.add_edge(Slot(i), Slot((i + 1) % n as u32));
        }
        OverlayNet::new(g, Placement::identity(n), oracle)
    }

    #[test]
    fn peer_adjacency_tracks_placement() {
        let mut net = ring_net(6, 1);
        let before = peer_adjacency(&net);
        assert!(before.contains(&(0, 1)));
        net.swap_peers(Slot(0), Slot(3));
        let after = peer_adjacency(&net);
        // Peer 3 now sits at slot 0, so it is connected to peers at slots 1
        // and 5 (peers 1 and 5).
        assert!(after.contains(&(1, 3)));
        assert!(!after.contains(&(0, 1)));
    }

    #[test]
    fn reference_exchange_swaps_neighborhoods() {
        // Square 0-1-2-3-0. Exchange peers 0 and 2 (non-adjacent).
        let edges: BTreeSet<_> = [(0, 1), (1, 2), (2, 3), (0, 3)].into_iter().collect();
        let after = reference_propg_exchange(&edges, 0, 2);
        // 0 takes 2's neighbors {1,3}; 2 takes 0's neighbors {1,3} — a
        // square is symmetric, so the edge set is unchanged.
        assert_eq!(after, edges);

        // Path 0-1-2-3: exchange 0 and 3.
        let path: BTreeSet<_> = [(0, 1), (1, 2), (2, 3)].into_iter().collect();
        let after = reference_propg_exchange(&path, 0, 3);
        let expect: BTreeSet<_> = [(1, 3), (1, 2), (0, 2)].into_iter().collect();
        assert_eq!(after, expect);
    }

    #[test]
    fn reference_exchange_preserves_uv_edge() {
        let edges: BTreeSet<_> = [(0, 1), (1, 2), (0, 2)].into_iter().collect();
        let after = reference_propg_exchange(&edges, 0, 1);
        assert!(after.contains(&(0, 1)), "the u–v edge must survive");
        assert_eq!(after.len(), edges.len());
    }

    #[test]
    fn reference_exchange_is_involution() {
        let edges: BTreeSet<_> =
            [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)].into_iter().collect();
        let once = reference_propg_exchange(&edges, 1, 4);
        let twice = reference_propg_exchange(&once, 1, 4);
        assert_eq!(twice, edges);
    }

    #[test]
    fn isomorphism_checker_accepts_valid_witness() {
        let a: BTreeSet<_> = [(0, 1), (1, 2), (2, 3)].into_iter().collect();
        // Relabel via the transposition (0 3).
        let phi = transposition(4, Slot(0), Slot(3));
        let b: BTreeSet<_> = [(3, 1), (1, 2), (2, 0)]
            .into_iter()
            .map(|(x, y): (u32, u32)| (x.min(y), x.max(y)))
            .collect();
        assert!(is_isomorphic_via(&a, &b, &phi));
    }

    #[test]
    fn isomorphism_checker_rejects_bad_witness() {
        let a: BTreeSet<_> = [(0, 1), (1, 2)].into_iter().collect();
        let b: BTreeSet<_> = [(0, 1), (0, 2)].into_iter().collect();
        let identity: Vec<u32> = (0..3).collect();
        assert!(!is_isomorphic_via(&a, &b, &identity));
        // Non-permutation rejected.
        assert!(!is_isomorphic_via(&a, &a, &[0, 0, 1]));
        // Size mismatch rejected.
        let c: BTreeSet<_> = [(0, 1)].into_iter().collect();
        assert!(!is_isomorphic_via(&a, &c, &identity));
    }

    #[test]
    fn production_swap_matches_reference_on_a_ring() {
        let mut net = ring_net(8, 2);
        let before = peer_adjacency(&net);
        let (su, sv) = (Slot(2), Slot(6));
        let (pu, pv) = (net.peer(su), net.peer(sv));
        net.swap_peers(su, sv);
        let production = peer_adjacency(&net);
        let reference = reference_propg_exchange(&before, pu, pv);
        assert_eq!(production, reference);
    }
}
