//! Shared `Vec<Vec<Slot>>` routing-table → logical-graph helpers.
//!
//! Both Chord builders keep a per-slot routing table (successor list +
//! fingers) and derive the undirected [`LogicalGraph`] as the union of the
//! directed entries. The static builder wires the union once; the dynamic
//! one diffs old vs new tables and applies the edge delta so churn only
//! touches affected nodes. Those two loops used to be copy-pasted; they
//! live here now so any future table-based overlay (Pastry leaf sets, say)
//! reuses them.

use crate::logical::{LogicalGraph, Slot};
use std::collections::HashSet;

/// The undirected edge set implied by a routing table: `{a, b}` for every
/// directed entry `a → b`, normalized to `(min, max)`.
pub fn edge_set(table: &[Vec<Slot>]) -> HashSet<(Slot, Slot)> {
    let mut set = HashSet::new();
    for (i, entries) in table.iter().enumerate() {
        let s = Slot(i as u32);
        for &e in entries {
            set.insert((s.min(e), s.max(e)));
        }
    }
    set
}

/// Fresh graph over `n` slots wired with `table`'s undirected edge union.
pub fn graph_from_table(n: usize, table: &[Vec<Slot>]) -> LogicalGraph {
    let mut g = LogicalGraph::new(n);
    for (i, entries) in table.iter().enumerate() {
        let s = Slot(i as u32);
        for &e in entries {
            if !g.has_edge(s, e) {
                g.add_edge(s, e);
            }
        }
    }
    g
}

/// Mutate `g` from `old`'s edge union to `new`'s, edge by edge. Returns the
/// live slots whose neighbor lists changed, **sorted ascending** — callers
/// resync protocol state per affected slot, and a deterministic order keeps
/// whole-simulation runs reproducible.
pub fn apply_table_delta(g: &mut LogicalGraph, old: &[Vec<Slot>], new: &[Vec<Slot>]) -> Vec<Slot> {
    let old_edges = edge_set(old);
    let new_edges = edge_set(new);
    let mut affected: HashSet<Slot> = HashSet::new();
    for &(a, b) in old_edges.difference(&new_edges) {
        if g.has_edge(a, b) {
            g.remove_edge(a, b);
        }
        affected.insert(a);
        affected.insert(b);
    }
    for &(a, b) in new_edges.difference(&old_edges) {
        if !g.has_edge(a, b) {
            g.add_edge(a, b);
        }
        affected.insert(a);
        affected.insert(b);
    }
    let mut affected: Vec<Slot> = affected.into_iter().filter(|&s| g.is_alive(s)).collect();
    affected.sort_unstable();
    affected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_set_normalizes_direction() {
        let table = vec![vec![Slot(1)], vec![Slot(0)], vec![]];
        let set = edge_set(&table);
        assert_eq!(set.len(), 1);
        assert!(set.contains(&(Slot(0), Slot(1))));
    }

    #[test]
    fn graph_from_table_unions_entries() {
        let table = vec![vec![Slot(1), Slot(2)], vec![Slot(0)], vec![]];
        let g = graph_from_table(3, &table);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(Slot(0), Slot(1)));
        assert!(g.has_edge(Slot(0), Slot(2)));
        assert!(!g.has_edge(Slot(1), Slot(2)));
    }

    #[test]
    fn delta_reaches_new_table_state() {
        let old = vec![vec![Slot(1)], vec![Slot(2)], vec![], vec![]];
        let new = vec![vec![Slot(3)], vec![Slot(2)], vec![], vec![]];
        let mut g = graph_from_table(4, &old);
        let affected = apply_table_delta(&mut g, &old, &new);
        let expect = graph_from_table(4, &new);
        for i in 0..4u32 {
            assert_eq!(g.neighbors(Slot(i)), expect.neighbors(Slot(i)));
        }
        // 0 lost {0,1} and gained {0,3}; 1 lost {0,1}; 3 gained {0,3}.
        assert_eq!(affected, vec![Slot(0), Slot(1), Slot(3)]);
    }

    #[test]
    fn affected_is_sorted_and_live_only() {
        let old: Vec<Vec<Slot>> = vec![vec![], vec![], vec![], vec![]];
        let new = vec![vec![Slot(3), Slot(2)], vec![], vec![], vec![]];
        let mut g = LogicalGraph::new(4);
        g.add_edge(Slot(1), Slot(2)); // keep 2 connected, then kill 1
        let affected = apply_table_delta(&mut g, &old, &new);
        assert_eq!(affected, vec![Slot(0), Slot(2), Slot(3)]);
    }
}
