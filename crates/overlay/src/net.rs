//! [`OverlayNet`]: the complete picture of a running overlay.
//!
//! Ties together the logical wiring, the slot ↔ peer placement, the physical
//! latency oracle, and per-peer processing delays (the paper's §5.3 node
//! heterogeneity). All latency-bearing quantities the protocols and metrics
//! need live here:
//!
//! * `d(a, b)` between *slots* — physical latency between the peers that
//!   occupy them;
//! * per-slot neighbor latency sums — the Σ d(u, i) terms of the paper's
//!   `Var` equation (Eq. 2);
//! * the total/mean logical link latency — the numerator of *stretch*.

use crate::logical::{LogicalGraph, Slot};
use crate::placement::Placement;
use prop_netsim::oracle::MemberIdx;
use prop_netsim::LatencyOracle;
use std::sync::Arc;

/// A live overlay: logical graph + placement + physical latencies
/// (+ optional per-peer processing delays).
pub struct OverlayNet {
    graph: LogicalGraph,
    placement: Placement,
    oracle: Arc<LatencyOracle>,
    /// Per-*peer* processing delay in ms (empty ⇒ all zero).
    proc_delay: Vec<u32>,
}

impl OverlayNet {
    /// Assemble an overlay. `graph` slots and `placement` slots must agree
    /// in count; every live slot must be occupied.
    pub fn new(graph: LogicalGraph, placement: Placement, oracle: Arc<LatencyOracle>) -> Self {
        assert_eq!(graph.num_slots(), placement.num_slots());
        for s in graph.live_slots() {
            assert!(placement.peer_at(s).is_some(), "live {s:?} is vacant");
        }
        OverlayNet { graph, placement, oracle, proc_delay: Vec::new() }
    }

    /// Attach per-peer processing delays (indexed by peer, ms). Used by the
    /// heterogeneous-environment experiments (Fig. 7).
    pub fn set_processing_delays(&mut self, delays: Vec<u32>) {
        assert_eq!(delays.len(), self.oracle.len());
        self.proc_delay = delays;
    }

    #[inline]
    pub fn graph(&self) -> &LogicalGraph {
        &self.graph
    }

    /// Mutable access to the logical wiring — used by PROP-O, LTM, and churn.
    #[inline]
    pub fn graph_mut(&mut self) -> &mut LogicalGraph {
        &mut self.graph
    }

    #[inline]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    #[inline]
    pub fn placement_mut(&mut self) -> &mut Placement {
        &mut self.placement
    }

    #[inline]
    pub fn oracle(&self) -> &LatencyOracle {
        &self.oracle
    }

    /// Batch-warm the oracle rows for the peers occupying `slots` (no-op on
    /// the dense tier, Rayon-parallel Dijkstras on the row-cache tier).
    /// Call before a burst of latency queries over a known slot set — e.g.
    /// a measurement sweep at 100k members — to turn the misses into
    /// parallel work instead of serial on-demand stalls.
    pub fn warm_latency_rows(&self, slots: &[Slot]) {
        let peers: Vec<MemberIdx> = slots.iter().map(|&s| self.placement.peer(s)).collect();
        self.oracle.warm_rows(&peers);
    }

    /// Hit/miss/eviction counters of the oracle's row cache; `None` while
    /// the dense tier is live.
    pub fn oracle_cache_stats(&self) -> Option<prop_netsim::CacheStats> {
        self.oracle.cache_stats()
    }

    /// The peer at a live slot.
    #[inline]
    pub fn peer(&self, s: Slot) -> MemberIdx {
        self.placement.peer(s)
    }

    /// Physical latency (ms) between the peers occupying two slots.
    #[inline]
    pub fn d(&self, a: Slot, b: Slot) -> u32 {
        self.oracle.d(self.placement.peer(a), self.placement.peer(b))
    }

    /// Processing delay (ms) of the peer at `s`; zero when heterogeneity is
    /// disabled.
    #[inline]
    pub fn proc_delay(&self, s: Slot) -> u32 {
        if self.proc_delay.is_empty() {
            0
        } else {
            self.proc_delay[self.placement.peer(s)]
        }
    }

    /// Σ_{i ∈ N(s)} d(s, i) — the per-node term of the paper's Var (Eq. 2).
    pub fn neighbor_latency_sum(&self, s: Slot) -> u64 {
        self.graph.neighbors(s).iter().map(|&n| self.d(s, n) as u64).sum()
    }

    /// Hypothetical Σ d(s, i) if `s` had exactly the neighbor set `ns` —
    /// the "t₁" terms of Var, evaluated without mutating anything.
    pub fn latency_sum_over(&self, s: Slot, ns: &[Slot]) -> u64 {
        ns.iter().map(|&n| self.d(s, n) as u64).sum()
    }

    /// Total latency over all logical links (each edge once), in ms.
    pub fn total_link_latency(&self) -> u64 {
        self.graph.edges().map(|(a, b)| self.d(a, b) as u64).sum()
    }

    /// Mean logical link latency — numerator of the paper's *stretch*.
    pub fn mean_link_latency(&self) -> f64 {
        let e = self.graph.num_edges();
        if e == 0 {
            return f64::NAN;
        }
        self.total_link_latency() as f64 / e as f64
    }

    /// The paper's stretch: mean logical link latency over mean physical
    /// link latency.
    pub fn stretch(&self) -> f64 {
        self.mean_link_latency() / self.oracle.mean_phys_link_latency()
    }

    /// PROP-G primitive: peers at `a` and `b` trade logical positions.
    /// O(1); the logical graph is untouched.
    pub fn swap_peers(&mut self, a: Slot, b: Slot) {
        debug_assert!(self.graph.is_alive(a) && self.graph.is_alive(b));
        self.placement.swap_slots(a, b);
    }

    /// Minimum end-to-end latency from `src` to `dst` using at most
    /// `max_hops` overlay hops — the delivery latency of a Gnutella-style
    /// flood with TTL `max_hops` (the first query copy to arrive travelled
    /// the fastest ≤TTL-hop path). Per-hop processing delay is charged at
    /// each *receiving* node, destination included.
    ///
    /// Returns `(latency, hops)` or `None` if `dst` is not reachable within
    /// the hop budget.
    pub fn min_latency_within_hops(
        &self,
        src: Slot,
        dst: Slot,
        max_hops: u32,
    ) -> Option<(u64, u32)> {
        if src == dst {
            return Some((0, 0));
        }
        const INF: u64 = u64::MAX;
        let n = self.graph.num_slots();
        // dist[v] = best cost to reach v using ≤ h hops (rolling over h);
        // hop-bounded Bellman–Ford restricted to last round's improvements.
        let mut dist = vec![INF; n];
        dist[src.index()] = 0;
        let mut frontier: Vec<Slot> = vec![src];
        let mut answer: Option<(u64, u32)> = None;
        for h in 1..=max_hops {
            let mut next_frontier: Vec<Slot> = Vec::new();
            let mut improved = false;
            // Relax all edges out of slots whose dist improved last round.
            let snapshot: Vec<(Slot, u64)> =
                frontier.iter().map(|&u| (u, dist[u.index()])).collect();
            for (u, du) in snapshot {
                if du == INF {
                    continue;
                }
                for &v in self.graph.neighbors(u) {
                    let cost = du + self.d(u, v) as u64 + self.proc_delay(v) as u64;
                    if cost < dist[v.index()] {
                        dist[v.index()] = cost;
                        next_frontier.push(v);
                        improved = true;
                        if v == dst {
                            let better = match answer {
                                None => true,
                                Some((best, _)) => cost < best,
                            };
                            if better {
                                answer = Some((cost, h));
                            }
                        }
                    }
                }
            }
            if !improved {
                break;
            }
            frontier = next_frontier;
        }
        answer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::SimRng;
    use prop_netsim::{generate, TransitStubParams};

    fn small_net(n: usize, seed: u64) -> (OverlayNet, Arc<LatencyOracle>) {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
        let mut g = LogicalGraph::new(n);
        // ring + one chord for interesting routing
        for i in 0..n as u32 {
            g.add_edge(Slot(i), Slot((i + 1) % n as u32));
        }
        let net = OverlayNet::new(g, Placement::identity(n), Arc::clone(&oracle));
        (net, oracle)
    }

    #[test]
    fn d_reflects_placement() {
        let (mut net, oracle) = small_net(6, 1);
        let before = net.d(Slot(0), Slot(1));
        assert_eq!(before, oracle.d(0, 1));
        net.swap_peers(Slot(1), Slot(4));
        assert_eq!(net.d(Slot(0), Slot(1)), oracle.d(0, 4));
    }

    #[test]
    fn neighbor_latency_sum_matches_manual() {
        let (net, _) = small_net(6, 2);
        let s = Slot(2);
        let manual: u64 = net.graph().neighbors(s).iter().map(|&x| net.d(s, x) as u64).sum();
        assert_eq!(net.neighbor_latency_sum(s), manual);
    }

    #[test]
    fn total_link_latency_counts_each_edge_once() {
        let (net, _) = small_net(5, 3);
        let by_edges: u64 = net.graph().edges().map(|(a, b)| net.d(a, b) as u64).sum();
        assert_eq!(net.total_link_latency(), by_edges);
        // Sum over per-node sums double counts:
        let per_node: u64 = net.graph().live_slots().map(|s| net.neighbor_latency_sum(s)).sum();
        assert_eq!(per_node, 2 * by_edges);
    }

    #[test]
    fn stretch_is_ratio_of_means() {
        let (net, oracle) = small_net(6, 4);
        let expect = net.mean_link_latency() / oracle.mean_phys_link_latency();
        assert!((net.stretch() - expect).abs() < 1e-12);
        assert!(net.stretch() > 0.0);
    }

    #[test]
    fn swap_preserves_total_when_symmetric() {
        // Swapping two peers changes only the latencies of their incident
        // links; the logical structure is unchanged.
        let (mut net, _) = small_net(6, 5);
        let edges_before: Vec<_> = net.graph().edges().collect();
        net.swap_peers(Slot(0), Slot(3));
        let edges_after: Vec<_> = net.graph().edges().collect();
        assert_eq!(edges_before, edges_after);
    }

    #[test]
    fn flood_reaches_neighbors_in_one_hop() {
        let (net, _) = small_net(6, 6);
        let (lat, hops) = net.min_latency_within_hops(Slot(0), Slot(1), 7).unwrap();
        assert_eq!(hops, 1);
        assert_eq!(lat, net.d(Slot(0), Slot(1)) as u64);
    }

    #[test]
    fn flood_respects_ttl() {
        // On a 6-ring the antipode is 3 hops away.
        let (net, _) = small_net(6, 7);
        assert!(net.min_latency_within_hops(Slot(0), Slot(3), 2).is_none());
        assert!(net.min_latency_within_hops(Slot(0), Slot(3), 3).is_some());
    }

    #[test]
    fn flood_finds_cheapest_not_shortest() {
        // Build a custom net where the 2-hop route is cheaper than 1-hop.
        let mut rng = SimRng::seed_from(8);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, 10, &mut rng));
        // Find a triple where d(a,c) > d(a,b) + d(b,c).
        let mut found = None;
        'outer: for a in 0..10 {
            for b in 0..10 {
                for c in 0..10 {
                    if a != b
                        && b != c
                        && a != c
                        && oracle.d(a, c) > oracle.d(a, b) + oracle.d(b, c)
                    {
                        found = Some((a, b, c));
                        break 'outer;
                    }
                }
            }
        }
        // Shortest-path metrics satisfy the triangle inequality, so strict
        // violation can't exist; equality can. Use ≥ and assert the flood
        // never does worse than the direct link.
        let (a, b, c) = found.unwrap_or((0, 1, 2));
        let mut g = LogicalGraph::new(10);
        g.add_edge(Slot(a as u32), Slot(b as u32));
        g.add_edge(Slot(b as u32), Slot(c as u32));
        g.add_edge(Slot(a as u32), Slot(c as u32));
        let net = OverlayNet::new(g, Placement::identity(10), oracle);
        let (lat, _) = net.min_latency_within_hops(Slot(a as u32), Slot(c as u32), 7).unwrap();
        assert!(lat <= net.d(Slot(a as u32), Slot(c as u32)) as u64);
    }

    #[test]
    fn processing_delay_charged_per_receiving_hop() {
        let (mut net, oracle) = small_net(4, 9);
        net.set_processing_delays(vec![50; oracle.len()]);
        let (lat, hops) = net.min_latency_within_hops(Slot(0), Slot(2), 7).unwrap();
        // Whatever path it takes, it pays 50ms per hop.
        let link_only: u64 = lat - 50 * hops as u64;
        assert!(link_only > 0);
        assert!(hops >= 1);
    }

    #[test]
    fn lookup_to_self_is_free() {
        let (net, _) = small_net(4, 10);
        assert_eq!(net.min_latency_within_hops(Slot(1), Slot(1), 7), Some((0, 0)));
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn live_slot_must_be_occupied() {
        let (net, oracle) = small_net(4, 11);
        let mut placement = net.placement().clone();
        let graph = net.graph().clone();
        placement.vacate(Slot(2));
        let _ = OverlayNet::new(graph, placement, oracle);
    }
}
