//! [`OverlayNet`]: the complete picture of a running overlay.
//!
//! Ties together the logical wiring, the slot ↔ peer placement, the physical
//! latency oracle, and per-peer processing delays (the paper's §5.3 node
//! heterogeneity). All latency-bearing quantities the protocols and metrics
//! need live here:
//!
//! * `d(a, b)` between *slots* — physical latency between the peers that
//!   occupy them;
//! * per-slot neighbor latency sums — the Σ d(u, i) terms of the paper's
//!   `Var` equation (Eq. 2);
//! * the total/mean logical link latency — the numerator of *stretch*.

use crate::csr::{Adjacency, CsrView};
use crate::logical::{LogicalGraph, Slot};
use crate::placement::Placement;
use crate::walk::{random_walk, random_walk_into, WalkPath, WalkScratch};
use prop_engine::SimRng;
use prop_netsim::oracle::MemberIdx;
use prop_netsim::LatencyOracle;
use std::sync::Arc;

/// Reusable per-worker scratch state for repeated flood evaluations.
///
/// The hop-bounded Bellman–Ford behind [`OverlayNet::min_latency_within_hops`]
/// needs a dist array, a frontier, and a next-frontier per call; a measurement
/// sweep runs thousands of floods back to back, so allocating those fresh each
/// time dominates the profile. `FloodScratch` keeps them alive across calls:
///
/// * **epoch-tagged dist** — `dist[v]` is valid only when `dist_tick[v]`
///   equals the current flood's epoch, so "clearing" the array between floods
///   is a single counter increment, not an O(n) fill;
/// * **deduped next-frontier** — `next_tick[v]` stamps the round in which `v`
///   entered the next frontier, so a slot improved by several frontier nodes
///   in the same round is relayed once, not once per improvement;
/// * **swap buffers** — the frontier and next-frontier vectors are reused
///   (and swapped) rather than reallocated each round.
///
/// The scratch also keeps cumulative work counters (edge scans, dist
/// improvements, frontier pushes) so benchmarks and regression tests can
/// assert the flood does the amount of work the algorithm promises.
///
/// One scratch serves floods over nets of any size (`ensure` grows it), but
/// it must not be shared between threads — give each worker its own.
#[derive(Clone, Debug, Default)]
pub struct FloodScratch {
    /// Monotone counter doubling as flood epoch and round stamp; unique
    /// values across all calls make stale tags unambiguous.
    tick: u64,
    dist: Vec<u64>,
    dist_tick: Vec<u64>,
    next_tick: Vec<u64>,
    frontier: Vec<(Slot, u64)>,
    next: Vec<Slot>,
    edges_scanned: u64,
    improvements: u64,
    frontier_pushes: u64,
}

impl FloodScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the tag arrays to cover `n` slots (never shrinks).
    fn ensure(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, 0);
            self.dist_tick.resize(n, 0);
            self.next_tick.resize(n, 0);
        }
    }

    /// Cumulative neighbor examinations across all floods since the last
    /// [`FloodScratch::reset_counters`].
    pub fn edges_scanned(&self) -> u64 {
        self.edges_scanned
    }

    /// Cumulative successful dist relaxations (strict improvements).
    pub fn improvements(&self) -> u64 {
        self.improvements
    }

    /// Cumulative slots admitted to a next frontier (post-dedup).
    pub fn frontier_pushes(&self) -> u64 {
        self.frontier_pushes
    }

    pub fn reset_counters(&mut self) {
        self.edges_scanned = 0;
        self.improvements = 0;
        self.frontier_pushes = 0;
    }

    /// The shared flood engine: hop-bounded Bellman–Ford from `src` toward
    /// `dst` over `graph`, restricted each round to last round's improved
    /// slots, where only slots satisfying `relays` forward and traversing
    /// `u → v` costs `cost(u, v)`. Returns the cheapest `(cost, hops)`
    /// delivery within `max_hops`, or `None` if `dst` is out of reach.
    ///
    /// Frontier entries carry their round-start dist (the per-round snapshot
    /// of the allocating original), so in-round improvements to a frontier
    /// member don't leak into its own relaxations this round. Two
    /// observationally-safe optimizations ride on top of buffer reuse: the
    /// next frontier is deduped (duplicate entries would carry the same
    /// snapshot dist and re-relax idempotently under the strict `<`), and a
    /// frontier node with `du ≥ best answer` is pruned (costs are
    /// non-negative, so nothing downstream can strictly improve the answer).
    ///
    /// Generic over [`Adjacency`], so it runs identically over the mutable
    /// [`LogicalGraph`] rows or the compact [`CsrView`] — both keep rows
    /// sorted ascending, so scan order, counters, and results match bit
    /// for bit.
    pub fn run(
        &mut self,
        graph: &impl Adjacency,
        src: Slot,
        dst: Slot,
        max_hops: u32,
        relays: impl Fn(Slot) -> bool,
        cost: impl Fn(Slot, Slot) -> u64,
    ) -> Option<(u64, u32)> {
        if src == dst {
            return Some((0, 0));
        }
        self.ensure(graph.num_slots());
        self.tick += 1;
        let epoch = self.tick;
        self.dist[src.index()] = 0;
        self.dist_tick[src.index()] = epoch;
        let mut frontier = std::mem::take(&mut self.frontier);
        let mut next = std::mem::take(&mut self.next);
        frontier.clear();
        frontier.push((src, 0));
        let mut answer: Option<(u64, u32)> = None;
        for h in 1..=max_hops {
            self.tick += 1;
            let round = self.tick;
            next.clear();
            for &(u, du) in &frontier {
                if let Some((best, _)) = answer {
                    if du >= best {
                        continue;
                    }
                }
                if !relays(u) {
                    continue;
                }
                for &v in graph.neighbors(u) {
                    self.edges_scanned += 1;
                    let c = du + cost(u, v);
                    let vi = v.index();
                    let dv = if self.dist_tick[vi] == epoch { self.dist[vi] } else { u64::MAX };
                    if c < dv {
                        self.dist[vi] = c;
                        self.dist_tick[vi] = epoch;
                        self.improvements += 1;
                        if self.next_tick[vi] != round {
                            self.next_tick[vi] = round;
                            next.push(v);
                            self.frontier_pushes += 1;
                        }
                        if v == dst && answer.map_or(true, |(best, _)| c < best) {
                            answer = Some((c, h));
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier.clear();
            frontier.extend(next.iter().map(|&v| (v, self.dist[v.index()])));
        }
        self.frontier = frontier;
        self.next = next;
        answer
    }
}

/// A live overlay: logical graph + placement + physical latencies
/// (+ optional per-peer processing delays).
pub struct OverlayNet {
    graph: LogicalGraph,
    placement: Placement,
    oracle: Arc<LatencyOracle>,
    /// Per-*peer* processing delay in ms (empty ⇒ all zero).
    proc_delay: Vec<u32>,
    /// Compact traversal view of `graph` (see [`CsrView`]); consulted by the
    /// flood/walk hot paths when enabled *and* current, silently bypassed
    /// otherwise — the legacy rows are always authoritative.
    csr: CsrView,
    csr_enabled: bool,
}

impl OverlayNet {
    /// Assemble an overlay. `graph` slots and `placement` slots must agree
    /// in count; every live slot must be occupied.
    pub fn new(graph: LogicalGraph, placement: Placement, oracle: Arc<LatencyOracle>) -> Self {
        assert_eq!(graph.num_slots(), placement.num_slots());
        for s in graph.live_slots() {
            assert!(placement.peer_at(s).is_some(), "live {s:?} is vacant");
        }
        let csr = CsrView::build(&graph);
        OverlayNet { graph, placement, oracle, proc_delay: Vec::new(), csr, csr_enabled: true }
    }

    /// Attach per-peer processing delays (indexed by peer, ms). Used by the
    /// heterogeneous-environment experiments (Fig. 7).
    pub fn set_processing_delays(&mut self, delays: Vec<u32>) {
        assert_eq!(delays.len(), self.oracle.len());
        self.proc_delay = delays;
    }

    #[inline]
    pub fn graph(&self) -> &LogicalGraph {
        &self.graph
    }

    /// Mutable access to the logical wiring — used by PROP-O, LTM, and churn.
    #[inline]
    pub fn graph_mut(&mut self) -> &mut LogicalGraph {
        &mut self.graph
    }

    /// The CSR view, when it is enabled and reflects the graph's current
    /// generation. `None` means traversals must fall back to the legacy
    /// `Vec<Vec<Slot>>` rows (same results, just slower).
    #[inline]
    pub fn csr(&self) -> Option<&CsrView> {
        (self.csr_enabled && self.csr.is_current(&self.graph)).then_some(&self.csr)
    }

    /// Bring the CSR view up to date with the graph (patch replay or
    /// rebuild; see [`CsrView::sync`]). Drivers call this once per quiescent
    /// point — after a tick's mutations, before a measurement sweep — rather
    /// than per mutation.
    pub fn refresh_csr(&mut self) {
        if self.csr_enabled {
            self.csr.sync(&self.graph);
        }
    }

    /// Toggle the CSR fast path (the perf harness's `--repr vecvec` runs
    /// with it off to measure the legacy representation). Enabling syncs the
    /// view immediately.
    pub fn set_csr_enabled(&mut self, on: bool) {
        self.csr_enabled = on;
        if on {
            self.csr.sync(&self.graph);
        }
    }

    /// Run the flood engine over the best available representation: the CSR
    /// view when current, the legacy rows otherwise. Bit-identical results
    /// and ledger counters either way.
    pub fn run_flood(
        &self,
        scratch: &mut FloodScratch,
        src: Slot,
        dst: Slot,
        max_hops: u32,
        relays: impl Fn(Slot) -> bool,
        cost: impl Fn(Slot, Slot) -> u64,
    ) -> Option<(u64, u32)> {
        match self.csr() {
            Some(view) => scratch.run(view, src, dst, max_hops, relays, cost),
            None => scratch.run(&self.graph, src, dst, max_hops, relays, cost),
        }
    }

    /// Run a probe walk (see [`random_walk`]) over the best available
    /// representation. Both representations present identical sorted
    /// neighbor slices, so the walk consumes the RNG identically and the
    /// trace is bit-identical.
    pub fn probe_walk(
        &self,
        origin: Slot,
        first_hop: Slot,
        nhops: u32,
        rng: &mut SimRng,
    ) -> WalkPath {
        match self.csr() {
            Some(view) => random_walk(view, origin, first_hop, nhops, rng),
            None => random_walk(&self.graph, origin, first_hop, nhops, rng),
        }
    }

    /// [`OverlayNet::probe_walk`] into a caller-owned [`WalkScratch`] — the
    /// drivers' zero-alloc steady-state form. The result is read back via
    /// `scratch.walk()`; RNG consumption is bit-identical to `probe_walk`.
    pub fn probe_walk_into(
        &self,
        origin: Slot,
        first_hop: Slot,
        nhops: u32,
        rng: &mut SimRng,
        scratch: &mut WalkScratch,
    ) {
        match self.csr() {
            Some(view) => random_walk_into(view, origin, first_hop, nhops, rng, scratch),
            None => random_walk_into(&self.graph, origin, first_hop, nhops, rng, scratch),
        }
    }

    #[inline]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    #[inline]
    pub fn placement_mut(&mut self) -> &mut Placement {
        &mut self.placement
    }

    #[inline]
    pub fn oracle(&self) -> &LatencyOracle {
        &self.oracle
    }

    /// Batch-warm the oracle rows for the peers occupying `slots` (no-op on
    /// the dense tier, Rayon-parallel Dijkstras on the row-cache tier, and
    /// exact-escalation-cache warm-up on the coordinate-embedded tier).
    /// Call before a burst of latency queries over a known slot set — e.g.
    /// a measurement sweep at 100k members — to turn the misses into
    /// parallel work instead of serial on-demand stalls. Duplicate slots
    /// (several pairs sharing a source) are warmed once.
    pub fn warm_latency_rows(&self, slots: &[Slot]) {
        let mut peers: Vec<MemberIdx> = slots.iter().map(|&s| self.placement.peer(s)).collect();
        peers.sort_unstable();
        peers.dedup();
        self.oracle.warm_rows(&peers);
    }

    /// Hit/miss/eviction counters of the oracle's row cache; `None` while
    /// the dense tier is live.
    pub fn oracle_cache_stats(&self) -> Option<prop_netsim::CacheStats> {
        self.oracle.cache_stats()
    }

    /// The peer at a live slot.
    #[inline]
    pub fn peer(&self, s: Slot) -> MemberIdx {
        self.placement.peer(s)
    }

    /// Physical latency (ms) between the peers occupying two slots.
    #[inline]
    pub fn d(&self, a: Slot, b: Slot) -> u32 {
        self.oracle.d(self.placement.peer(a), self.placement.peer(b))
    }

    /// *Exact* physical latency between the peers at two slots — identical
    /// to [`Self::d`] on the exact oracle tiers; on the coordinate-embedded
    /// tier it escalates through the internal row cache. The Var fallback
    /// band (`prop-core`'s `exchange::decide`) re-evaluates borderline
    /// plans with this.
    #[inline]
    pub fn d_exact(&self, a: Slot, b: Slot) -> u32 {
        self.oracle.d_exact(self.placement.peer(a), self.placement.peer(b))
    }

    /// Processing delay (ms) of the peer at `s`; zero when heterogeneity is
    /// disabled.
    #[inline]
    pub fn proc_delay(&self, s: Slot) -> u32 {
        if self.proc_delay.is_empty() {
            0
        } else {
            self.proc_delay[self.placement.peer(s)]
        }
    }

    /// Σ_{i ∈ N(s)} d(s, i) — the per-node term of the paper's Var (Eq. 2).
    pub fn neighbor_latency_sum(&self, s: Slot) -> u64 {
        self.graph.neighbors(s).iter().map(|&n| self.d(s, n) as u64).sum()
    }

    /// Hypothetical Σ d(s, i) if `s` had exactly the neighbor set `ns` —
    /// the "t₁" terms of Var, evaluated without mutating anything.
    pub fn latency_sum_over(&self, s: Slot, ns: &[Slot]) -> u64 {
        ns.iter().map(|&n| self.d(s, n) as u64).sum()
    }

    /// Total latency over all logical links (each edge once), in ms.
    pub fn total_link_latency(&self) -> u64 {
        self.graph.edges().map(|(a, b)| self.d(a, b) as u64).sum()
    }

    /// Mean logical link latency — numerator of the paper's *stretch*.
    pub fn mean_link_latency(&self) -> f64 {
        let e = self.graph.num_edges();
        if e == 0 {
            return f64::NAN;
        }
        self.total_link_latency() as f64 / e as f64
    }

    /// The paper's stretch: mean logical link latency over mean physical
    /// link latency.
    pub fn stretch(&self) -> f64 {
        self.mean_link_latency() / self.oracle.mean_phys_link_latency()
    }

    /// PROP-G primitive: peers at `a` and `b` trade logical positions.
    /// O(1); the logical graph is untouched.
    pub fn swap_peers(&mut self, a: Slot, b: Slot) {
        debug_assert!(self.graph.is_alive(a) && self.graph.is_alive(b));
        self.placement.swap_slots(a, b);
    }

    /// Minimum end-to-end latency from `src` to `dst` using at most
    /// `max_hops` overlay hops — the delivery latency of a Gnutella-style
    /// flood with TTL `max_hops` (the first query copy to arrive travelled
    /// the fastest ≤TTL-hop path). Per-hop processing delay is charged at
    /// each *receiving* node, destination included.
    ///
    /// Returns `(latency, hops)` or `None` if `dst` is not reachable within
    /// the hop budget.
    pub fn min_latency_within_hops(
        &self,
        src: Slot,
        dst: Slot,
        max_hops: u32,
    ) -> Option<(u64, u32)> {
        let mut scratch = FloodScratch::new();
        self.min_latency_within_hops_with(src, dst, max_hops, &mut scratch)
    }

    /// [`OverlayNet::min_latency_within_hops`] with caller-owned scratch —
    /// the fast path for measurement sweeps, which run thousands of floods
    /// back to back and reuse one [`FloodScratch`] per worker. Same answer
    /// as the allocating version for every input (see [`FloodScratch::run`]
    /// for why the scratch's dedup and pruning are observationally safe).
    pub fn min_latency_within_hops_with(
        &self,
        src: Slot,
        dst: Slot,
        max_hops: u32,
        scratch: &mut FloodScratch,
    ) -> Option<(u64, u32)> {
        self.run_flood(
            scratch,
            src,
            dst,
            max_hops,
            |_| true,
            |u, v| self.d(u, v) as u64 + self.proc_delay(v) as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::SimRng;
    use prop_netsim::{generate, TransitStubParams};

    fn small_net(n: usize, seed: u64) -> (OverlayNet, Arc<LatencyOracle>) {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
        let mut g = LogicalGraph::new(n);
        // ring + one chord for interesting routing
        for i in 0..n as u32 {
            g.add_edge(Slot(i), Slot((i + 1) % n as u32));
        }
        let net = OverlayNet::new(g, Placement::identity(n), Arc::clone(&oracle));
        (net, oracle)
    }

    #[test]
    fn d_reflects_placement() {
        let (mut net, oracle) = small_net(6, 1);
        let before = net.d(Slot(0), Slot(1));
        assert_eq!(before, oracle.d(0, 1));
        net.swap_peers(Slot(1), Slot(4));
        assert_eq!(net.d(Slot(0), Slot(1)), oracle.d(0, 4));
    }

    #[test]
    fn neighbor_latency_sum_matches_manual() {
        let (net, _) = small_net(6, 2);
        let s = Slot(2);
        let manual: u64 = net.graph().neighbors(s).iter().map(|&x| net.d(s, x) as u64).sum();
        assert_eq!(net.neighbor_latency_sum(s), manual);
    }

    #[test]
    fn total_link_latency_counts_each_edge_once() {
        let (net, _) = small_net(5, 3);
        let by_edges: u64 = net.graph().edges().map(|(a, b)| net.d(a, b) as u64).sum();
        assert_eq!(net.total_link_latency(), by_edges);
        // Sum over per-node sums double counts:
        let per_node: u64 = net.graph().live_slots().map(|s| net.neighbor_latency_sum(s)).sum();
        assert_eq!(per_node, 2 * by_edges);
    }

    #[test]
    fn stretch_is_ratio_of_means() {
        let (net, oracle) = small_net(6, 4);
        let expect = net.mean_link_latency() / oracle.mean_phys_link_latency();
        assert!((net.stretch() - expect).abs() < 1e-12);
        assert!(net.stretch() > 0.0);
    }

    #[test]
    fn swap_preserves_total_when_symmetric() {
        // Swapping two peers changes only the latencies of their incident
        // links; the logical structure is unchanged.
        let (mut net, _) = small_net(6, 5);
        let edges_before: Vec<_> = net.graph().edges().collect();
        net.swap_peers(Slot(0), Slot(3));
        let edges_after: Vec<_> = net.graph().edges().collect();
        assert_eq!(edges_before, edges_after);
    }

    #[test]
    fn flood_reaches_neighbors_in_one_hop() {
        let (net, _) = small_net(6, 6);
        let (lat, hops) = net.min_latency_within_hops(Slot(0), Slot(1), 7).unwrap();
        assert_eq!(hops, 1);
        assert_eq!(lat, net.d(Slot(0), Slot(1)) as u64);
    }

    #[test]
    fn flood_respects_ttl() {
        // On a 6-ring the antipode is 3 hops away.
        let (net, _) = small_net(6, 7);
        assert!(net.min_latency_within_hops(Slot(0), Slot(3), 2).is_none());
        assert!(net.min_latency_within_hops(Slot(0), Slot(3), 3).is_some());
    }

    #[test]
    fn flood_finds_cheapest_not_shortest() {
        // Build a custom net where the 2-hop route is cheaper than 1-hop.
        let mut rng = SimRng::seed_from(8);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, 10, &mut rng));
        // Find a triple where d(a,c) > d(a,b) + d(b,c).
        let mut found = None;
        'outer: for a in 0..10 {
            for b in 0..10 {
                for c in 0..10 {
                    if a != b
                        && b != c
                        && a != c
                        && oracle.d(a, c) > oracle.d(a, b) + oracle.d(b, c)
                    {
                        found = Some((a, b, c));
                        break 'outer;
                    }
                }
            }
        }
        // Shortest-path metrics satisfy the triangle inequality, so strict
        // violation can't exist; equality can. Use ≥ and assert the flood
        // never does worse than the direct link.
        let (a, b, c) = found.unwrap_or((0, 1, 2));
        let mut g = LogicalGraph::new(10);
        g.add_edge(Slot(a as u32), Slot(b as u32));
        g.add_edge(Slot(b as u32), Slot(c as u32));
        g.add_edge(Slot(a as u32), Slot(c as u32));
        let net = OverlayNet::new(g, Placement::identity(10), oracle);
        let (lat, _) = net.min_latency_within_hops(Slot(a as u32), Slot(c as u32), 7).unwrap();
        assert!(lat <= net.d(Slot(a as u32), Slot(c as u32)) as u64);
    }

    #[test]
    fn processing_delay_charged_per_receiving_hop() {
        let (mut net, oracle) = small_net(4, 9);
        net.set_processing_delays(vec![50; oracle.len()]);
        let (lat, hops) = net.min_latency_within_hops(Slot(0), Slot(2), 7).unwrap();
        // Whatever path it takes, it pays 50ms per hop.
        let link_only: u64 = lat - 50 * hops as u64;
        assert!(link_only > 0);
        assert!(hops >= 1);
    }

    #[test]
    fn lookup_to_self_is_free() {
        let (net, _) = small_net(4, 10);
        assert_eq!(net.min_latency_within_hops(Slot(1), Slot(1), 7), Some((0, 0)));
    }

    #[test]
    fn clique_flood_relaxation_counts_are_exact() {
        // On a clique whose latencies come from a shortest-path metric,
        // round 1 improves every other member exactly once (triangle
        // inequality: no 2-hop route beats a direct edge), and round 2 scans
        // everything once more, improves nothing, and terminates. With a
        // deduped frontier the work is therefore exactly:
        //   scans        = (c-1) + (c-1)²   improvements = c-1
        //   pushes       = c-1              (each member enters once)
        // regardless of TTL, seed, or latency values. A regression that
        // re-admits duplicate frontier entries breaks the scan count.
        let c = 8usize; // clique size; slot c is isolated (flood target)
        let n = c + 1;
        let mut rng = SimRng::seed_from(12);
        let phys = generate(&TransitStubParams::tiny(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
        let mut g = LogicalGraph::new(n);
        for a in 0..c as u32 {
            for b in (a + 1)..c as u32 {
                g.add_edge(Slot(a), Slot(b));
            }
        }
        let net = OverlayNet::new(g, Placement::identity(n), oracle);
        let mut scratch = FloodScratch::new();
        // Destination is the isolated slot: unreachable, so the `du ≥ best`
        // prune never fires and the counts depend only on the topology.
        let out = net.min_latency_within_hops_with(Slot(0), Slot(c as u32), 7, &mut scratch);
        assert_eq!(out, None);
        let k = (c - 1) as u64;
        assert_eq!(scratch.edges_scanned(), k + k * k, "clique flood scan count");
        assert_eq!(scratch.improvements(), k, "clique flood improvement count");
        assert_eq!(scratch.frontier_pushes(), k, "clique flood frontier pushes");
    }

    #[test]
    fn frontier_dedup_admits_each_slot_once_per_round() {
        // Diamond src—{a,b}—v: in round 2 both a and b may improve v; the
        // deduped frontier must admit v once either way, so total pushes are
        // exactly 3 (a, b, v) for every seed.
        for seed in 0..20u64 {
            let mut rng = SimRng::seed_from(seed);
            let phys = generate(&TransitStubParams::tiny(), &mut rng);
            let oracle = Arc::new(LatencyOracle::select_and_build(&phys, 4, &mut rng));
            let mut g = LogicalGraph::new(4);
            g.add_edge(Slot(0), Slot(1));
            g.add_edge(Slot(0), Slot(2));
            g.add_edge(Slot(1), Slot(3));
            g.add_edge(Slot(2), Slot(3));
            let net = OverlayNet::new(g, Placement::identity(4), oracle);
            let mut scratch = FloodScratch::new();
            let out = net.min_latency_within_hops_with(Slot(0), Slot(3), 7, &mut scratch);
            assert!(out.is_some());
            assert_eq!(scratch.frontier_pushes(), 3, "seed {seed}: duplicate frontier entry");
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        // One scratch across many floods (the measurement-plane pattern)
        // must agree with a fresh allocation per call, including across
        // different sources, TTLs, and interleaved unreachable queries.
        let (net, _) = small_net(12, 13);
        let mut scratch = FloodScratch::new();
        for ttl in [1u32, 2, 3, 7] {
            for a in 0..12u32 {
                for b in 0..12u32 {
                    let fresh = net.min_latency_within_hops(Slot(a), Slot(b), ttl);
                    let reused =
                        net.min_latency_within_hops_with(Slot(a), Slot(b), ttl, &mut scratch);
                    assert_eq!(fresh, reused, "{a}→{b} ttl {ttl}");
                }
            }
        }
    }

    #[test]
    fn scratch_grows_across_net_sizes() {
        // A scratch sized by a small net must serve a larger net next call.
        let (small, _) = small_net(4, 14);
        let (large, _) = small_net(16, 15);
        let mut scratch = FloodScratch::new();
        let s = small.min_latency_within_hops_with(Slot(0), Slot(2), 7, &mut scratch);
        assert_eq!(s, small.min_latency_within_hops(Slot(0), Slot(2), 7));
        let l = large.min_latency_within_hops_with(Slot(0), Slot(9), 7, &mut scratch);
        assert_eq!(l, large.min_latency_within_hops(Slot(0), Slot(9), 7));
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn live_slot_must_be_occupied() {
        let (net, oracle) = small_net(4, 11);
        let mut placement = net.placement().clone();
        let graph = net.graph().clone();
        placement.vacate(Slot(2));
        let _ = OverlayNet::new(graph, placement, oracle);
    }
}
