//! Property tests for the overlay substrate: logical-graph bookkeeping,
//! placement bijectivity, probe walks, and CAN's zone geometry, over
//! randomized inputs.

use prop_engine::SimRng;
use prop_netsim::graph::{LinkClass, NodeClass, PhysGraphBuilder};
use prop_netsim::LatencyOracle;
use prop_overlay::can::Can;
use prop_overlay::walk::random_walk;
use prop_overlay::{LogicalGraph, Lookup, OverlayNet, Placement, Slot};
use proptest::prelude::{prop_oneof, Strategy};
use proptest::test_runner::Config as ProptestConfig;
use proptest::{prop_assert, prop_assert_eq, proptest};
use std::sync::Arc;

/// A trivial complete-graph oracle (distance = |i − j| · 10 ms) for tests
/// that only need *some* metric.
fn line_oracle(n: usize) -> Arc<LatencyOracle> {
    let mut b = PhysGraphBuilder::new();
    let ids: Vec<_> = (0..n).map(|_| b.add_node(NodeClass::Transit { domain: 0 })).collect();
    for w in ids.windows(2) {
        b.add_link(w[0], w[1], 10, LinkClass::TransitTransit);
    }
    let g = b.build();
    Arc::new(LatencyOracle::build(&g, ids))
}

#[derive(Clone, Debug)]
enum GraphOp {
    AddEdge(u32, u32),
    RemoveEdgeAt(usize),
    KillSlot(u32),
}

fn graph_op(n: u32) -> impl Strategy<Value = GraphOp> {
    prop_oneof![
        (0..n, 0..n).prop_map(|(a, b)| GraphOp::AddEdge(a, b)),
        (0usize..64).prop_map(GraphOp::RemoveEdgeAt),
        (0..n).prop_map(GraphOp::KillSlot),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LogicalGraph bookkeeping (edge counts, degrees, symmetry) survives
    /// arbitrary add/remove/kill sequences.
    #[test]
    fn logical_graph_bookkeeping(n in 3u32..24, ops in proptest::collection::vec(graph_op(24), 1..60)) {
        let mut g = LogicalGraph::new(n as usize);
        let mut edges: Vec<(Slot, Slot)> = Vec::new();
        let mut alive: Vec<bool> = vec![true; n as usize];
        for op in ops {
            match op {
                GraphOp::AddEdge(a, b) => {
                    let (a, b) = (a % n, b % n);
                    let (sa, sb) = (Slot(a), Slot(b));
                    if a != b && alive[a as usize] && alive[b as usize] && !g.has_edge(sa, sb) {
                        g.add_edge(sa, sb);
                        edges.push((sa.min(sb), sa.max(sb)));
                    }
                }
                GraphOp::RemoveEdgeAt(i) => {
                    if !edges.is_empty() {
                        let (a, b) = edges.swap_remove(i % edges.len());
                        g.remove_edge(a, b);
                    }
                }
                GraphOp::KillSlot(s) => {
                    let s = s % n;
                    if alive[s as usize] {
                        g.remove_slot(Slot(s));
                        alive[s as usize] = false;
                        edges.retain(|&(a, b)| a != Slot(s) && b != Slot(s));
                    }
                }
            }
            prop_assert_eq!(g.num_edges(), edges.len());
            let degree_sum: usize = g.live_slots().map(|s| g.degree(s)).sum();
            prop_assert_eq!(degree_sum, 2 * edges.len(), "handshake lemma violated");
            for &(a, b) in &edges {
                prop_assert!(g.has_edge(a, b) && g.has_edge(b, a));
            }
        }
    }

    /// Placement stays a bijection under arbitrary swap sequences, and any
    /// even number of repeated swaps of the same pair is the identity.
    #[test]
    fn placement_is_always_a_bijection(n in 2usize..30, swaps in proptest::collection::vec((0u32..30, 0u32..30), 0..60)) {
        let mut p = Placement::identity(n);
        for (a, b) in swaps {
            let (a, b) = (a as usize % n, b as usize % n);
            if a != b {
                p.swap_slots(Slot(a as u32), Slot(b as u32));
            }
            prop_assert!(p.is_consistent());
            // Round-trip: every peer found through its slot.
            for peer in 0..n {
                let slot = p.slot_of(peer).unwrap();
                prop_assert_eq!(p.peer(slot), peer);
            }
        }
    }

    /// Random walks never repeat a node, always follow edges, and respect
    /// the TTL, on arbitrary connected graphs.
    #[test]
    fn walks_are_simple_paths(n in 4u32..30, extra in 0usize..40, nhops in 1u32..6, seed in 0u64..10_000) {
        let mut rng = SimRng::seed_from(seed);
        let mut g = LogicalGraph::new(n as usize);
        for i in 1..n {
            let parent = rng.range(0..i);
            g.add_edge(Slot(i), Slot(parent));
        }
        for _ in 0..extra {
            let a = Slot(rng.range(0..n));
            let b = Slot(rng.range(0..n));
            if a != b && !g.has_edge(a, b) {
                g.add_edge(a, b);
            }
        }
        let origin = Slot(rng.range(0..n));
        let nbrs = g.neighbors(origin).to_vec();
        let first = *rng.pick(&nbrs).unwrap();
        let w = random_walk(&g, origin, first, nhops, &mut rng);
        prop_assert!(w.path.len() as u32 <= nhops + 1);
        prop_assert_eq!(w.path[0], origin);
        let mut sorted = w.path.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), w.path.len(), "walk revisited a node");
        for pair in w.path.windows(2) {
            prop_assert!(g.has_edge(pair[0], pair[1]));
        }
    }

    /// CAN zones always tile the unit torus exactly, and every greedy route
    /// terminates, for arbitrary join-point sets.
    #[test]
    fn can_always_tiles_and_routes(
        points in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..40),
    ) {
        let n = points.len();
        let pts: Vec<[f64; 2]> = points.iter().map(|&(x, y)| [x, y]).collect();
        let (can, net) = Can::build_at(pts, line_oracle(n));
        let area: f64 = (0..n as u32)
            .map(|s| {
                let z = can.zone(Slot(s));
                z.extent(0) * z.extent(1)
            })
            .sum();
        prop_assert!((area - 1.0).abs() < 1e-9, "area {area}");
        prop_assert!(net.graph().is_connected());
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let out = can.lookup(&net, Slot(a), Slot(b));
                prop_assert!(out.is_some());
            }
        }
    }
}
