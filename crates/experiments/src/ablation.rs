//! Ablations backing the paper's analytical and prose claims.
//!
//! * **A1 — overhead (§4.3)**: per-adjustment message cost is
//!   `nhop + 2c` for PROP-G vs `nhop + 2m` for PROP-O, and the probe rate
//!   decays after warm-up thanks to the Markov timer.
//! * **A2 — dynamics (§5 text)**: under Poisson churn the probe rate spikes
//!   (timers reset) and then recovers; the overlay stays connected and the
//!   stretch stays bounded.
//! * **A3 — combining (§1/§6)**: PROP-G stacks with PNS/PRS-Chord,
//!   PNS-Pastry, and PIS-CAN ("combining it with other recent methods …
//!   further improve[s]" the overall performance).
//! * **A4 — selfish strawman (§3.1)**: uncooperative nearest-neighbor
//!   rewiring is worse for system-wide average latency than cooperative
//!   peer-exchange.
//! * **A5 — selection strategy (§3.1)**: greedy most-profitable neighbor
//!   offers vs random eligible ones.
//! * **A6 — warm-up length (§3.2)**: the "MAX_INIT_TRIAL < 10" knee.
//! * **A7 — physical-model robustness**: transit–stub vs flat Waxman.
//! * **A8 — object custody (§3.2/§4.2)**: forwarding pointers vs key
//!   migration after identifier swaps.
//! * **A9 — MIN_VAR sensitivity (§4.2)**.
//! * **A10 — LTM connection-cap sensitivity** (the reproduction's knob).
//! * **A11 — Zipf popularity workload** (the mechanistic Fig. 7).
//! * **A12 — flooding message cost per query** (degree preservation as
//!   bandwidth economics).

use crate::setup::{Scale, Scenario, Topology};
use prop_baselines::pis::build_pis_can;
use prop_baselines::pns::build_pns_chord;
use prop_baselines::selfish::{SelfishConfig, SelfishSim};
use prop_baselines::{LtmConfig, LtmSim};
use prop_core::{PropConfig, ProtocolSim};
use prop_engine::{Duration, SimTime};
use prop_metrics::degree::degree_summary;
use prop_metrics::{link_stretch, par_path_stretch, TimeSeries};
use prop_overlay::chord::ChordParams;
use prop_overlay::{Lookup, Slot};
use prop_workloads::churn::{ChurnOp, ChurnTrace};
use prop_workloads::LookupGen;
use serde::{Deserialize, Serialize};

fn topology_for(scale: Scale) -> Topology {
    match scale {
        Scale::Paper => Topology::TsLarge,
        Scale::Quick => Topology::TsSmall,
    }
}

// ---------------------------------------------------------------- A1 ----

/// One scheme's cost line in the A1 report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverheadRow {
    pub label: String,
    pub trials: u64,
    pub exchanges: u64,
    pub total_msgs: u64,
    pub msgs_per_trial: f64,
    /// The §4.3 closed-form prediction for this scheme (`nhop + 2c` or
    /// `nhop + 2m`).
    pub predicted_msgs_per_trial: f64,
}

/// A1 output: cost rows plus the probe-rate decay series for PROP-G.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverheadReport {
    pub rows: Vec<OverheadRow>,
    /// Probe trials per minute, per sampling window.
    pub probe_rate: TimeSeries,
}

/// A1: measure message overhead per adjustment for PROP-G vs PROP-O.
pub fn overhead(scale: Scale, seed: u64) -> OverheadReport {
    let scenario = Scenario::build(topology_for(scale), scale.default_n(), seed);
    let nhops = 2.0;
    let mut rows = Vec::new();
    let mut probe_rate = TimeSeries::new("PROP-G probe rate (trials/min)");

    for (label, cfg) in [
        ("PROP-G".to_string(), PropConfig::prop_g()),
        ("PROP-O (m=δ(G))".to_string(), PropConfig::prop_o()),
    ] {
        let (_, net) = scenario.gnutella();
        let c = net.graph().mean_degree();
        let mut rng = scenario.rng(&format!("a1-{label}"));
        let mut sim = ProtocolSim::new(net, cfg.clone(), &mut rng);
        let is_prop_g = label.starts_with("PROP-G");
        let m = sim.m_default() as f64;

        let step = scale.sample_every();
        let mut elapsed = Duration::ZERO;
        let mut last = sim.overhead();
        while elapsed < scale.horizon() {
            sim.run_for(step);
            elapsed = elapsed + step;
            if is_prop_g {
                let window = sim.overhead().since(&last);
                let mins = step.as_millis() as f64 / 60_000.0;
                probe_rate.push(sim.now(), window.trials as f64 / mins);
                last = sim.overhead();
            }
        }

        let o = sim.overhead();
        let predicted = if is_prop_g { nhops + 2.0 * c } else { nhops + 2.0 * m };
        rows.push(OverheadRow {
            label,
            trials: o.trials,
            exchanges: o.exchanges,
            total_msgs: o.total_msgs(),
            msgs_per_trial: o.total_msgs() as f64 / o.trials.max(1) as f64,
            predicted_msgs_per_trial: predicted,
        });
    }
    OverheadReport { rows, probe_rate }
}

// ---------------------------------------------------------------- A2 ----

/// A2 output: stretch and probe-rate series across a churn episode.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChurnReport {
    pub stretch: TimeSeries,
    pub probe_rate: TimeSeries,
    /// (churn start, churn end) in minutes, for plotting.
    pub churn_window: (f64, f64),
    pub leaves: u64,
    pub joins: u64,
    pub always_connected: bool,
}

/// A2: run PROP-O on Gnutella with a Poisson churn episode mid-run.
pub fn churn(scale: Scale, seed: u64) -> ChurnReport {
    let scenario = Scenario::build(topology_for(scale), scale.default_n(), seed);
    let (gn, net) = scenario.gnutella();
    let mut rng = scenario.rng("a2-sim");
    let mut sim = ProtocolSim::new(net, PropConfig::prop_o(), &mut rng);
    let mut churn_rng = scenario.rng("a2-churn");

    let horizon = scale.horizon();
    let churn_start = SimTime::ZERO + Duration(horizon.as_millis() / 3);
    let churn_len = Duration(horizon.as_millis() / 3);
    // Rate: ~4% of the population churning per minute at Quick scale,
    // ~1% at Paper scale (enough to visibly perturb timers).
    let rate = scale.default_n() as f64 / 100.0;
    let trace = ChurnTrace::poisson(churn_start, churn_len, rate, rate, &mut churn_rng);

    let mut stretch = TimeSeries::new("link stretch under churn");
    let mut probe_rate = TimeSeries::new("probe rate (trials/min)");
    let mut absent: Vec<usize> = Vec::new();
    let mut leaves = 0u64;
    let mut joins = 0u64;
    let mut always_connected = true;
    let mut next_event = 0usize;

    let step = scale.sample_every();
    let mut last_overhead = sim.overhead();
    let mut t = SimTime::ZERO;
    stretch.push(t, link_stretch(sim.net()));
    while t.since(SimTime::ZERO) < horizon {
        let deadline = t + step;
        // Interleave churn events with protocol execution.
        while next_event < trace.events.len() && trace.events[next_event].0 <= deadline {
            let (et, op) = trace.events[next_event];
            next_event += 1;
            sim.run_until(et);
            match op {
                ChurnOp::Leave => {
                    let live: Vec<Slot> = sim.net().graph().live_slots().collect();
                    if live.len() <= 8 {
                        continue;
                    }
                    let victim = *churn_rng.pick(&live).unwrap();
                    let peer = sim.net().peer(victim);
                    let affected: Vec<Slot> = sim.net().graph().neighbors(victim).to_vec();
                    gn.leave(sim.net_mut(), victim, &mut churn_rng);
                    sim.handle_leave(victim, &affected);
                    absent.push(peer);
                    leaves += 1;
                }
                ChurnOp::Join => {
                    let Some(peer) = absent.pop() else { continue };
                    let slot = gn.join(sim.net_mut(), peer, &mut churn_rng);
                    sim.handle_join(slot);
                    joins += 1;
                }
            }
            always_connected &= sim.net().graph().is_connected();
        }
        sim.run_until(deadline);
        t = deadline;
        stretch.push(t, link_stretch(sim.net()));
        let window = sim.overhead().since(&last_overhead);
        last_overhead = sim.overhead();
        let mins = step.as_millis() as f64 / 60_000.0;
        probe_rate.push(t, window.trials as f64 / mins);
        always_connected &= sim.net().graph().is_connected();
    }

    ChurnReport {
        stretch,
        probe_rate,
        churn_window: (churn_start.as_minutes_f64(), (churn_start + churn_len).as_minutes_f64()),
        leaves,
        joins,
        always_connected,
    }
}

// ---------------------------------------------------------------- A3 ----

/// A3 output: stretch of each stacked configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CombineRow {
    pub label: String,
    pub stretch_initial: f64,
    pub stretch_final: f64,
}

/// A3: PROP-G layered on PNS-Chord and PIS-CAN.
pub fn combine(scale: Scale, seed: u64) -> Vec<CombineRow> {
    let scenario = Scenario::build(topology_for(scale), scale.default_n(), seed);
    let live = scenario.all_slots();
    let pairs = LookupGen::new(&scenario.rng("a3-lookups"))
        .uniform_pairs(&live, scale.lookups_per_sample());
    let mut rows = Vec::new();

    // Chord family.
    {
        let (vanilla, vanilla_net) = scenario.chord();
        rows.push(CombineRow {
            label: "Chord".into(),
            stretch_initial: par_path_stretch(&vanilla_net, &vanilla, &pairs).mean,
            stretch_final: par_path_stretch(&vanilla_net, &vanilla, &pairs).mean,
        });
        rows.push(run_propg_over(&scenario, scale, "Chord + PROP-G", vanilla, vanilla_net, &pairs));

        let mut rng = scenario.rng("a3-pns");
        let (pns, pns_net) = build_pns_chord(
            ChordParams::default(),
            std::sync::Arc::clone(&scenario.oracle),
            &mut rng,
        );
        rows.push(CombineRow {
            label: "PNS-Chord".into(),
            stretch_initial: par_path_stretch(&pns_net, &pns, &pairs).mean,
            stretch_final: par_path_stretch(&pns_net, &pns, &pairs).mean,
        });
        rows.push(run_propg_over(&scenario, scale, "PNS-Chord + PROP-G", pns, pns_net, &pairs));
    }

    // PRS is a lookup-time policy over the same Chord; PROP-G stacks too.
    {
        let (chord, net) = scenario.chord();
        let prs = prop_baselines::PrsChord::new(chord);
        rows.push(CombineRow {
            label: "PRS-Chord".into(),
            stretch_initial: par_path_stretch(&net, &prs, &pairs).mean,
            stretch_final: par_path_stretch(&net, &prs, &pairs).mean,
        });
        rows.push(run_propg_over(&scenario, scale, "PRS-Chord + PROP-G", prs, net, &pairs));
    }

    // Pastry family (PROP-G's generality: a third DHT geometry).
    {
        let mut rng = scenario.rng("a3-pastry");
        let (vanilla, vanilla_net) = prop_overlay::pastry::Pastry::build(
            prop_overlay::pastry::PastryParams::default(),
            std::sync::Arc::clone(&scenario.oracle),
            &mut rng,
        );
        rows.push(CombineRow {
            label: "Pastry".into(),
            stretch_initial: par_path_stretch(&vanilla_net, &vanilla, &pairs).mean,
            stretch_final: par_path_stretch(&vanilla_net, &vanilla, &pairs).mean,
        });
        rows.push(run_propg_over(
            &scenario,
            scale,
            "Pastry + PROP-G",
            vanilla,
            vanilla_net,
            &pairs,
        ));

        let mut rng = scenario.rng("a3-pns-pastry");
        let (pns, pns_net) = prop_baselines::pns::build_pns_pastry(
            prop_overlay::pastry::PastryParams::default(),
            std::sync::Arc::clone(&scenario.oracle),
            &mut rng,
        );
        rows.push(CombineRow {
            label: "PNS-Pastry".into(),
            stretch_initial: par_path_stretch(&pns_net, &pns, &pairs).mean,
            stretch_final: par_path_stretch(&pns_net, &pns, &pairs).mean,
        });
        rows.push(run_propg_over(&scenario, scale, "PNS-Pastry + PROP-G", pns, pns_net, &pairs));
    }

    // CAN family.
    {
        let mut rng = scenario.rng("a3-can");
        let (vanilla, vanilla_net) =
            prop_overlay::can::Can::build(std::sync::Arc::clone(&scenario.oracle), &mut rng);
        rows.push(CombineRow {
            label: "CAN".into(),
            stretch_initial: par_path_stretch(&vanilla_net, &vanilla, &pairs).mean,
            stretch_final: par_path_stretch(&vanilla_net, &vanilla, &pairs).mean,
        });
        rows.push(run_propg_over(&scenario, scale, "CAN + PROP-G", vanilla, vanilla_net, &pairs));

        let mut rng = scenario.rng("a3-pis");
        let (pis, pis_net) = build_pis_can(std::sync::Arc::clone(&scenario.oracle), &mut rng);
        rows.push(CombineRow {
            label: "PIS-CAN".into(),
            stretch_initial: par_path_stretch(&pis_net, &pis, &pairs).mean,
            stretch_final: par_path_stretch(&pis_net, &pis, &pairs).mean,
        });
        rows.push(run_propg_over(&scenario, scale, "PIS-CAN + PROP-G", pis, pis_net, &pairs));
    }

    rows
}

// ---------------------------------------------------------------- A5 ----

/// A5 output: greedy vs random PROP-O neighbor selection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SelectionRow {
    pub label: String,
    /// Total link latency after the same number of accepted exchanges.
    pub total_link_latency_final: u64,
    pub exchanges: u64,
    pub trials: u64,
}

/// A5: the §3.1 "selectively choose neighbors" decision. Both variants run
/// the same number of probe trials with identical walks; greedy offers the
/// most profitable eligible neighbors, random offers arbitrary ones.
pub fn selection_strategy(scale: Scale, seed: u64) -> Vec<SelectionRow> {
    use prop_core::exchange::{self};
    use prop_overlay::walk::random_walk;

    let scenario = Scenario::build(topology_for(scale), scale.default_n(), seed);
    let n = scale.default_n();
    let trials = match scale {
        Scale::Paper => 40_000,
        Scale::Quick => 6_000,
    };

    let mut rows = Vec::new();
    for greedy in [true, false] {
        let (_, mut net) = scenario.gnutella();
        let m = net.graph().min_degree().unwrap_or(1);
        let mut rng = scenario.rng("a5-walks"); // identical walk stream
        let mut pick_rng = scenario.rng("a5-pick");
        let mut exchanges = 0u64;
        for _ in 0..trials {
            let u = Slot(rng.range(0..n as u32));
            let nbrs = net.graph().neighbors(u).to_vec();
            let Some(&first) = rng.pick(&nbrs) else { continue };
            let walk = random_walk(net.graph(), u, first, 2, &mut rng);
            if walk.counterpart(2).is_none() {
                continue;
            }
            let plan = if greedy {
                exchange::plan_propo(&net, &walk, m)
            } else {
                exchange::plan_propo_random(&net, &walk, m, &mut pick_rng)
            };
            if let Some(plan) = plan {
                if plan.var > 0 {
                    exchange::apply(&mut net, &plan);
                    exchanges += 1;
                }
            }
        }
        rows.push(SelectionRow {
            label: if greedy { "greedy selection (PROP-O)" } else { "random selection" }.into(),
            total_link_latency_final: net.total_link_latency(),
            exchanges,
            trials: trials as u64,
        });
    }
    rows
}

// ---------------------------------------------------------------- A7 ----

/// A7 output: PROP-G robustness to the physical-network model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PhysicalModelRow {
    pub label: String,
    pub stretch_initial: f64,
    pub stretch_final: f64,
    pub improvement: f64,
}

/// A7: does PROP-G's benefit depend on the hierarchical transit–stub
/// structure? Re-run the Fig. 5-style optimization on a flat Waxman random
/// graph of comparable size.
pub fn physical_model(scale: Scale, seed: u64) -> Vec<PhysicalModelRow> {
    use prop_netsim::{generate_waxman, LatencyOracle, WaxmanParams};
    use std::sync::Arc;

    let n = scale.default_n();
    let mut rows = Vec::new();

    // Transit–stub reference.
    {
        let scenario = Scenario::build(topology_for(scale), n, seed);
        let (_, net) = scenario.gnutella();
        let initial = link_stretch(&net);
        let mut rng = scenario.rng("a7-ts");
        let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
        sim.run_for(scale.horizon());
        let fin = link_stretch(sim.net());
        rows.push(PhysicalModelRow {
            label: topology_for(scale).label().to_string(),
            stretch_initial: initial,
            stretch_final: fin,
            improvement: (initial - fin) / initial,
        });
    }

    // Waxman.
    {
        let params = match scale {
            Scale::Paper => WaxmanParams::comparable_to_ts(),
            Scale::Quick => WaxmanParams { nodes: 400, ..WaxmanParams::comparable_to_ts() },
        };
        let mut rng = prop_engine::SimRng::seed_from(seed);
        let phys = generate_waxman(&params, &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
        let (_, net) = prop_overlay::gnutella::Gnutella::build(
            prop_overlay::gnutella::GnutellaParams::default(),
            oracle,
            &mut rng,
        );
        let initial = link_stretch(&net);
        let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
        sim.run_for(scale.horizon());
        let fin = link_stretch(sim.net());
        rows.push(PhysicalModelRow {
            label: "waxman".to_string(),
            stretch_initial: initial,
            stretch_final: fin,
            improvement: (initial - fin) / initial,
        });
    }

    rows
}

// ---------------------------------------------------------------- A8 ----

/// A8 output: object custody under PROP-G identifier swaps.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CustodyReport {
    /// Mean object-lookup latency before optimization, ms.
    pub baseline_ms: f64,
    /// After optimization, with permanent forwarding pointers.
    pub pointers_ms: f64,
    /// After optimization, with custody migrated to the new ID owners.
    pub migrated_ms: f64,
    /// Fraction of keys displaced by the run.
    pub displacement: f64,
    /// Summed migration "distance" (ms-equivalents of transfer cost).
    pub migration_cost: u64,
}

/// A8: the §3.2/§4.2 custody question. PROP-G swaps identifiers; keys
/// follow identifiers but stored objects sit on physical peers. Quantify
/// the three regimes on Chord: baseline, permanent redirect pointers, and
/// post-exchange custody migration.
pub fn custody(scale: Scale, seed: u64) -> CustodyReport {
    use prop_core::forwarding::ObjectStore;

    let scenario = Scenario::build(topology_for(scale), scale.default_n(), seed);
    let (chord, net) = scenario.chord();
    let mut store = ObjectStore::snapshot(&net);
    let live = scenario.all_slots();
    let pairs = LookupGen::new(&scenario.rng("a8-lookups"))
        .uniform_pairs(&live, scale.lookups_per_sample());

    let mean = |store: &ObjectStore, net: &prop_overlay::OverlayNet| -> f64 {
        let total: u64 = pairs
            .iter()
            .map(|&(a, b)| store.lookup_object(&chord, net, a, b).unwrap().0.latency_ms)
            .sum();
        total as f64 / pairs.len() as f64
    };

    let baseline_ms = mean(&store, &net);
    let mut rng = scenario.rng("a8-sim");
    let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
    sim.run_for(scale.horizon());
    let net = sim.into_net();

    let displacement = store.displacement_ratio(&net);
    let pointers_ms = mean(&store, &net);
    let migration_cost = store.migrate_all(&net);
    let migrated_ms = mean(&store, &net);

    CustodyReport { baseline_ms, pointers_ms, migrated_ms, displacement, migration_cost }
}

// ---------------------------------------------------------------- A9 ----

/// A9 output: one row per exchange threshold.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThresholdRow {
    pub min_var: i64,
    pub stretch_final: f64,
    pub exchanges: u64,
    pub notify_msgs: u64,
}

/// A9: MIN_VAR sensitivity. §4.2 argues any `Var > 0` exchange helps, so
/// the paper sets `MIN_VAR = 0`; raising the bar trades fewer (cheaper)
/// exchanges for a worse final topology.
pub fn threshold_sweep(scale: Scale, seed: u64) -> Vec<ThresholdRow> {
    let scenario = Scenario::build(topology_for(scale), scale.default_n(), seed);
    [0i64, 20, 100, 400, 1600]
        .into_iter()
        .map(|min_var| {
            let (_, net) = scenario.gnutella();
            let mut cfg = PropConfig::prop_g();
            cfg.min_var = min_var;
            let mut rng = scenario.rng(&format!("a9-{min_var}"));
            let mut sim = ProtocolSim::new(net, cfg, &mut rng);
            sim.run_for(scale.horizon());
            let o = sim.overhead();
            ThresholdRow {
                min_var,
                stretch_final: link_stretch(sim.net()),
                exchanges: o.exchanges,
                notify_msgs: o.notify_msgs,
            }
        })
        .collect()
}

// --------------------------------------------------------------- A10 ----

/// A10 output: one row per LTM connection cap.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LtmCapRow {
    pub max_degree: usize,
    pub mean_degree_final: f64,
    pub mean_link_latency_final: f64,
    /// Mean lookup delay ratio at Fig. 7's two endpoints (fast-lookup
    /// fraction 0 and 1), normalized by the unoptimized overlay.
    pub ratio_frac0: f64,
    pub ratio_frac1: f64,
}

/// A10: sensitivity of the Fig. 7 LTM comparison to the client connection
/// cap — the one modeling knob this reproduction had to introduce (see
/// EXPERIMENTS.md). Reported so readers can judge the comparison's
/// robustness themselves.
pub fn ltm_cap_sweep(scale: Scale, seed: u64) -> Vec<LtmCapRow> {
    use prop_workloads::hetero;

    let scenario = Scenario::build(topology_for(scale), scale.default_n(), seed);
    let n = scale.default_n();
    let params = prop_workloads::BimodalParams::default();
    let n_fast = ((n as f64) * params.fast_fraction).round() as usize;
    let delays: Vec<u32> = (0..n)
        .map(|p| if p < n_fast { params.fast_delay_ms } else { params.slow_delay_ms })
        .collect();
    let is_fast = |s: Slot| s.index() < n_fast;
    let _ = hetero::assign; // module reference kept for readers

    let peer_slots: Vec<Slot> = (0..n as u32).map(Slot).collect();
    let mut gen = LookupGen::new(&scenario.rng("a10-lookups"));
    let pairs0 = gen.skewed_pairs(&peer_slots, is_fast, 0.0, scale.lookups_per_sample());
    let pairs1 = gen.skewed_pairs(&peer_slots, is_fast, 1.0, scale.lookups_per_sample());

    // Unoptimized baseline.
    let (gn0, mut net0) = scenario.gnutella();
    net0.set_processing_delays(delays.clone());
    let base0 = prop_metrics::par_avg_lookup_latency(&net0, &gn0, &pairs0).mean_ms;
    let base1 = prop_metrics::par_avg_lookup_latency(&net0, &gn0, &pairs1).mean_ms;

    [8usize, 12, 16, 24, usize::MAX]
        .into_iter()
        .map(|cap| {
            let (gn, mut net) = scenario.gnutella();
            net.set_processing_delays(delays.clone());
            let mut rng = scenario.rng(&format!("a10-{cap}"));
            let cfg = LtmConfig { max_degree: cap, ..Default::default() };
            let mut sim = LtmSim::new(net, cfg, &mut rng);
            sim.run_for(scale.horizon());
            let net = sim.into_net();
            LtmCapRow {
                max_degree: cap,
                mean_degree_final: net.graph().mean_degree(),
                mean_link_latency_final: net.mean_link_latency(),
                ratio_frac0: prop_metrics::par_avg_lookup_latency(&net, &gn, &pairs0).mean_ms
                    / base0,
                ratio_frac1: prop_metrics::par_avg_lookup_latency(&net, &gn, &pairs1).mean_ms
                    / base1,
            }
        })
        .collect()
}

// --------------------------------------------------------------- A11 ----

/// A11 output: one row per scheme under the Zipf workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ZipfRow {
    pub label: String,
    /// Mean lookup delay under Zipf(α) popularity, normalized by the
    /// unoptimized overlay.
    pub ratio: f64,
}

/// A11: the mechanistic version of Fig. 7's skew knob — object popularity
/// is Zipf(α = 0.9) with the popular objects held by the high-degree fast
/// hubs (popularity rank = join order). Compares the same three schemes
/// under the workload real file-sharing systems see.
pub fn zipf_workload(scale: Scale, seed: u64) -> Vec<ZipfRow> {
    use prop_workloads::zipf::zipf_pairs;

    let scenario = Scenario::build(topology_for(scale), scale.default_n(), seed);
    let n = scale.default_n();
    let params = prop_workloads::BimodalParams::default();
    let n_fast = ((n as f64) * params.fast_fraction).round() as usize;
    let delays: Vec<u32> = (0..n)
        .map(|p| if p < n_fast { params.fast_delay_ms } else { params.slow_delay_ms })
        .collect();

    // Popularity ranking = join order (peer 0 most popular): hubs hold the
    // hot objects.
    let live: Vec<Slot> = (0..n as u32).map(Slot).collect();
    let ranking: Vec<Slot> = live.clone();
    let mut rng = scenario.rng("a11-workload");
    let pairs = zipf_pairs(&live, &ranking, 0.9, scale.lookups_per_sample(), &mut rng);

    let (gn0, mut net0) = scenario.gnutella();
    net0.set_processing_delays(delays.clone());
    let base = prop_metrics::par_avg_lookup_latency(&net0, &gn0, &pairs).mean_ms;

    let mut rows = Vec::new();
    for (label, which) in [("PROP-O", 0), ("PROP-G", 1), ("LTM", 2)] {
        let (gn, mut net) = scenario.gnutella();
        net.set_processing_delays(delays.clone());
        let mut rng = scenario.rng(&format!("a11-{label}"));
        let net = match which {
            0 => {
                let mut sim = ProtocolSim::new(net, PropConfig::prop_o(), &mut rng);
                sim.run_for(scale.horizon());
                sim.into_net()
            }
            1 => {
                let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
                sim.run_for(scale.horizon());
                sim.into_net()
            }
            _ => {
                let mut sim = LtmSim::new(net, LtmConfig::default(), &mut rng);
                sim.run_for(scale.horizon());
                sim.into_net()
            }
        };
        // Destinations follow the *peer* (PROP-G relocates peers).
        let slot_pairs: Vec<(Slot, Slot)> = pairs
            .iter()
            .map(|&(s, d)| {
                (
                    net.placement().slot_of(s.index()).expect("peer present"),
                    net.placement().slot_of(d.index()).expect("peer present"),
                )
            })
            .collect();
        let mean = prop_metrics::par_avg_lookup_latency(&net, &gn, &slot_pairs).mean_ms;
        rows.push(ZipfRow { label: label.to_string(), ratio: mean / base });
    }
    rows
}

// --------------------------------------------------------------- A12 ----

/// A12 output: per-query flooding message cost before/after optimization.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FloodCostRow {
    pub label: String,
    pub msgs_per_query_initial: f64,
    pub msgs_per_query_final: f64,
    pub mean_degree_final: f64,
}

/// A12: flooding economics. A Gnutella query is broadcast through the TTL
/// region, so per-query message cost tracks graph density. PROP preserves
/// it exactly; LTM's added links make every query more expensive.
pub fn flood_cost(scale: Scale, seed: u64) -> Vec<FloodCostRow> {
    use prop_metrics::par_mean_flood_messages;

    let scenario = Scenario::build(topology_for(scale), scale.default_n(), seed);
    let sources: Vec<Slot> = scenario.all_slots().into_iter().step_by(7).collect();
    let ttl = 7;
    let mut rows = Vec::new();

    for label in ["PROP-O", "PROP-G", "LTM"] {
        let (_, net) = scenario.gnutella();
        let initial = par_mean_flood_messages(&net, &sources, ttl);
        let mut rng = scenario.rng(&format!("a12-{label}"));
        let net = match label {
            "PROP-O" => {
                let mut sim = ProtocolSim::new(net, PropConfig::prop_o(), &mut rng);
                sim.run_for(scale.horizon());
                sim.into_net()
            }
            "PROP-G" => {
                let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
                sim.run_for(scale.horizon());
                sim.into_net()
            }
            _ => {
                let mut sim = LtmSim::new(net, LtmConfig::default(), &mut rng);
                sim.run_for(scale.horizon());
                sim.into_net()
            }
        };
        rows.push(FloodCostRow {
            label: label.to_string(),
            msgs_per_query_initial: initial,
            msgs_per_query_final: par_mean_flood_messages(&net, &sources, ttl),
            mean_degree_final: net.graph().mean_degree(),
        });
    }
    rows
}

// ---------------------------------------------------------------- A6 ----

/// A6 output: one row per warm-up length.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WarmupRow {
    pub max_init_trial: u32,
    /// Stretch at the measurement horizon.
    pub stretch_final: f64,
    /// Probe trials spent getting there (the cost of a longer warm-up).
    pub trials: u64,
}

/// A6: sweep `MAX_INIT_TRIAL`, backing the paper's "simulations … show
/// this number to be less than ten" — longer warm-ups buy little extra
/// stretch at a real probing cost.
pub fn warmup_sweep(scale: Scale, seed: u64) -> Vec<WarmupRow> {
    let scenario = Scenario::build(topology_for(scale), scale.default_n(), seed);
    [2u32, 5, 10, 20, 40]
        .into_iter()
        .map(|w| {
            let (_, net) = scenario.gnutella();
            let mut cfg = PropConfig::prop_g();
            cfg.max_init_trial = w;
            let mut rng = scenario.rng(&format!("a6-{w}"));
            let mut sim = ProtocolSim::new(net, cfg, &mut rng);
            sim.run_for(scale.horizon());
            WarmupRow {
                max_init_trial: w,
                stretch_final: link_stretch(sim.net()),
                trials: sim.overhead().trials,
            }
        })
        .collect()
}

fn run_propg_over<L: Lookup>(
    scenario: &Scenario,
    scale: Scale,
    label: &str,
    overlay: L,
    net: prop_overlay::OverlayNet,
    pairs: &[(Slot, Slot)],
) -> CombineRow {
    let initial = par_path_stretch(&net, &overlay, pairs).mean;
    let mut rng = scenario.rng(&format!("a3-sim-{label}"));
    let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
    sim.run_for(scale.horizon());
    let net = sim.into_net();
    CombineRow {
        label: label.into(),
        stretch_initial: initial,
        stretch_final: par_path_stretch(&net, &overlay, pairs).mean,
    }
}

// ---------------------------------------------------------------- A4 ----

/// A4 output: system-wide comparison of cooperative vs selfish rewiring.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SelfishRow {
    pub label: String,
    /// System-wide mean logical link latency, ms.
    pub mean_link_latency_final: f64,
    /// Degree-distribution coefficient of variation drift (|after − before|).
    pub degree_cv_drift: f64,
}

/// A4: cooperative PROP-O vs selfish nearest-neighbor rewiring.
pub fn selfish_vs_prop(scale: Scale, seed: u64) -> Vec<SelfishRow> {
    let scenario = Scenario::build(topology_for(scale), scale.default_n(), seed);
    let mut rows = Vec::new();

    let (_, net) = scenario.gnutella();
    let cv0 = degree_summary(net.graph()).cv;
    {
        let mut rng = scenario.rng("a4-propo");
        let mut sim = ProtocolSim::new(net, PropConfig::prop_o(), &mut rng);
        sim.run_for(scale.horizon());
        let net = sim.into_net();
        rows.push(SelfishRow {
            label: "PROP-O (cooperative)".into(),
            mean_link_latency_final: net.mean_link_latency(),
            degree_cv_drift: (degree_summary(net.graph()).cv - cv0).abs(),
        });
    }
    {
        let (_, net) = scenario.gnutella();
        let mut rng = scenario.rng("a4-selfish");
        let mut sim = SelfishSim::new(net, SelfishConfig::default(), &mut rng);
        sim.run_for(scale.horizon());
        let net = sim.into_net();
        rows.push(SelfishRow {
            label: "selfish rewiring".into(),
            mean_link_latency_final: net.mean_link_latency(),
            degree_cv_drift: (degree_summary(net.graph()).cv - cv0).abs(),
        });
    }
    {
        let (_, net) = scenario.gnutella();
        let mut rng = scenario.rng("a4-ltm");
        let mut sim = LtmSim::new(net, LtmConfig::default(), &mut rng);
        sim.run_for(scale.horizon());
        let net = sim.into_net();
        rows.push(SelfishRow {
            label: "LTM".into(),
            mean_link_latency_final: net.mean_link_latency(),
            degree_cv_drift: (degree_summary(net.graph()).cv - cv0).abs(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_prop_o_is_cheaper_per_trial() {
        let r = overhead(Scale::Quick, 50);
        assert_eq!(r.rows.len(), 2);
        let g = &r.rows[0];
        let o = &r.rows[1];
        assert!(g.trials > 0 && o.trials > 0);
        assert!(
            o.msgs_per_trial < g.msgs_per_trial,
            "PROP-O {:.1} should be cheaper than PROP-G {:.1}",
            o.msgs_per_trial,
            g.msgs_per_trial
        );
        assert!(!r.probe_rate.is_empty());
    }

    #[test]
    fn a2_churn_keeps_overlay_healthy() {
        let r = churn(Scale::Quick, 51);
        assert!(r.always_connected, "overlay disconnected during churn");
        assert!(r.leaves > 0 && r.joins > 0);
        // Stretch should remain finite the whole way.
        for &(_, v) in &r.stretch.points {
            assert!(v.is_finite() && v > 0.0);
        }
    }

    #[test]
    fn a5_greedy_selection_beats_random() {
        let rows = selection_strategy(Scale::Quick, 54);
        assert_eq!(rows.len(), 2);
        let greedy = &rows[0];
        let random = &rows[1];
        assert!(greedy.exchanges > 0 && random.exchanges > 0);
        assert!(
            greedy.total_link_latency_final < random.total_link_latency_final,
            "greedy {} should beat random {}",
            greedy.total_link_latency_final,
            random.total_link_latency_final
        );
    }

    #[test]
    fn a6_warmup_has_diminishing_returns() {
        let rows = warmup_sweep(Scale::Quick, 55);
        assert_eq!(rows.len(), 5);
        // Longer warm-ups cost more trials…
        for w in rows.windows(2) {
            assert!(w[1].trials >= w[0].trials, "{:?}", rows);
        }
        // …and every row lands within a tight band of the best stretch
        // (the claim: pushing past ~10 buys almost nothing).
        let best = rows.iter().map(|r| r.stretch_final).fold(f64::MAX, f64::min);
        let at_10 = rows.iter().find(|r| r.max_init_trial == 10).unwrap();
        assert!(
            at_10.stretch_final <= best * 1.15,
            "warm-up 10 ({:.2}) should be near the best ({best:.2})",
            at_10.stretch_final
        );
    }

    #[test]
    fn a9_zero_threshold_is_best() {
        let rows = threshold_sweep(Scale::Quick, 58);
        assert_eq!(rows.len(), 5);
        let zero = &rows[0];
        let strictest = rows.last().unwrap();
        assert!(zero.exchanges > strictest.exchanges);
        assert!(
            zero.stretch_final <= strictest.stretch_final,
            "MIN_VAR=0 ({:.2}) should beat MIN_VAR={} ({:.2})",
            zero.stretch_final,
            strictest.min_var,
            strictest.stretch_final
        );
    }

    #[test]
    fn a10_ltm_cap_drives_density() {
        let rows = ltm_cap_sweep(Scale::Quick, 59);
        assert_eq!(rows.len(), 5);
        // Mean degree grows (weakly) with the cap.
        for w in rows.windows(2) {
            assert!(w[1].mean_degree_final >= w[0].mean_degree_final - 0.5, "{:?}", rows);
        }
        // Every cap still improves over the unoptimized overlay at frac 0.
        for r in &rows {
            assert!(r.ratio_frac0 < 1.0, "{r:?}");
        }
    }

    #[test]
    fn a11_propo_wins_the_zipf_workload() {
        let rows = zipf_workload(Scale::Quick, 61);
        assert_eq!(rows.len(), 3);
        let get = |l: &str| rows.iter().find(|r| r.label == l).unwrap().ratio;
        // Degree-preserving schemes must improve the hub-bound workload…
        assert!(get("PROP-O") < 1.0, "PROP-O ratio {:.3}", get("PROP-O"));
        assert!(get("LTM") < 1.0, "LTM ratio {:.3}", get("LTM"));
        // …and PROP-O must beat PROP-G, whose position swaps erode the
        // hubs (the Fig. 7 mechanism under a mechanistic workload —
        // PROP-G may even end slightly above 1.0 here).
        assert!(
            get("PROP-O") < get("PROP-G"),
            "PROP-O {:.3} vs PROP-G {:.3}",
            get("PROP-O"),
            get("PROP-G")
        );
    }

    #[test]
    fn a12_prop_preserves_flood_cost_ltm_inflates_it() {
        let rows = flood_cost(Scale::Quick, 62);
        assert_eq!(rows.len(), 3);
        let get = |l: &str| rows.iter().find(|r| r.label == l).unwrap();
        // PROP-G never touches the graph; PROP-O moves edges but preserves
        // degrees, so flood cost stays within a whisker.
        for l in ["PROP-O", "PROP-G"] {
            let r = get(l);
            let drift = (r.msgs_per_query_final / r.msgs_per_query_initial - 1.0).abs();
            assert!(drift < 0.05, "{l}: flood cost drifted {:.1}%", drift * 100.0);
        }
        let ltm = get("LTM");
        assert!(
            ltm.msgs_per_query_final > ltm.msgs_per_query_initial * 1.1,
            "LTM should inflate flood cost: {:.0} → {:.0}",
            ltm.msgs_per_query_initial,
            ltm.msgs_per_query_final
        );
    }

    #[test]
    fn a8_migration_beats_permanent_pointers() {
        let r = custody(Scale::Quick, 57);
        assert!(r.displacement > 0.1, "displacement {:.2}", r.displacement);
        assert!(r.migrated_ms < r.baseline_ms, "{r:?}");
        assert!(r.migrated_ms < r.pointers_ms, "{r:?}");
        assert!(r.migration_cost > 0);
    }

    #[test]
    fn a7_propg_works_on_flat_waxman_too() {
        let rows = physical_model(Scale::Quick, 56);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.improvement > 0.05, "{}: improvement {:.3}", r.label, r.improvement);
        }
    }

    #[test]
    fn a3_propg_helps_on_top_of_everything() {
        let rows = combine(Scale::Quick, 52);
        assert_eq!(rows.len(), 14);
        for pair in rows.chunks(2) {
            let (base, stacked) = (&pair[0], &pair[1]);
            // On proximity-built tables (PNS), PROP-G's position swaps can
            // slightly perturb the build-time entry choices (they were
            // optimized for the *original* occupants), so those rows get a
            // looser bound; on everything else PROP-G must not hurt.
            let tolerance = if base.label.starts_with("PNS") { 1.15 } else { 1.05 };
            assert!(
                stacked.stretch_final <= base.stretch_final * tolerance,
                "{} ({:.2}) should not be worse than {} ({:.2})",
                stacked.label,
                stacked.stretch_final,
                base.label,
                base.stretch_final
            );
            // And the vanilla overlays must strictly improve.
            if matches!(base.label.as_str(), "Chord" | "Pastry" | "CAN") {
                assert!(
                    stacked.stretch_final < base.stretch_final,
                    "{} should improve on {}",
                    stacked.label,
                    base.label
                );
            }
        }
    }

    #[test]
    fn a4_cooperative_beats_selfish_on_degree_preservation() {
        let rows = selfish_vs_prop(Scale::Quick, 53);
        let propo = &rows[0];
        let selfish = &rows[1];
        assert!(propo.degree_cv_drift < 1e-9, "PROP-O must not drift degrees");
        assert!(selfish.degree_cv_drift > 0.0, "selfish rewiring should drift degrees");
    }
}
