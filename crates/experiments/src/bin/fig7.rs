//! Regenerate **Figure 7** — PROP-O vs PROP-G vs LTM under bimodal node
//! heterogeneity.
//!
//! ```text
//! cargo run --release -p prop-experiments --bin fig7 [--quick] [--seed N]
//!     [--seeds N [--resume]]
//! ```
//!
//! Prints the normalized average lookup delay of each scheme as the
//! fraction of fast-destination lookups sweeps 0 → 1, and writes
//! `results/fig7.json`.

use prop_experiments::fig7::run;
use prop_experiments::report::{write_json, Cli};
use prop_experiments::sweep::{SweepConfig, SweepExperiment};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let cli = Cli::parse();
    if let Some(seeds) = cli.seeds {
        let cfg = SweepConfig::new(SweepExperiment::Fig7, cli.scale, cli.seed, seeds);
        return prop_experiments::sweep::run_cli(&cfg, Path::new("results"), cli.resume, &[]);
    }
    let curves = run(cli.scale, cli.seed);

    println!("\n=== Fig 7 — normalized avg lookup delay vs fraction of fast-node lookups ===");
    print!("{:>10}", "frac_fast");
    for c in &curves {
        print!("  {:>14}", c.label);
    }
    println!();
    let rows = curves[0].points.len();
    for r in 0..rows {
        print!("{:>10.3}", curves[0].points[r].0);
        for c in &curves {
            print!("  {:>14.3}", c.points[r].1);
        }
        println!();
    }

    // The paper's headline observation, as a one-line verdict.
    let at = |label: &str, f: f64| {
        curves
            .iter()
            .find(|c| c.label == label)
            .and_then(|c| c.points.iter().find(|&&(x, _)| (x - f).abs() < 1e-9).map(|&(_, y)| y))
            .unwrap_or(f64::NAN)
    };
    println!(
        "\nat frac=0.0:  LTM {:.3} vs PROP-O(m=4) {:.3}  (paper: LTM best when all lookups hit slow nodes)",
        at("LTM", 0.0),
        at("PROP-O (m=4)", 0.0)
    );
    println!(
        "at frac=1.0:  LTM {:.3} vs PROP-O(m=4) {:.3}  (paper: PROP-O wins when lookups concentrate on fast nodes)",
        at("LTM", 1.0),
        at("PROP-O (m=4)", 1.0)
    );

    write_json("fig7", &curves);
    ExitCode::SUCCESS
}
