//! sweep — seed-sharded Monte-Carlo runs of any experiment, with error
//! bars, a resumable manifest, and optional CI-width gates.
//!
//! ```text
//! cargo run --release -p prop-experiments --bin sweep --
//!     --experiment fig5|fig6|fig7|ablation|faults|embed_agreement
//!     [--quick] [--seed BASE] [--seeds N] [--resume]
//!     [--gate METRIC=MAX_CI_HALF_WIDTH]... [--root DIR]
//! ```
//!
//! Fans N derived seeds of the experiment across the rayon pool (one
//! deterministic run per seed), streams `seed-<k>.json` records under
//! `<root>/sweep-<experiment>-<scale>-s<base>/`, and writes an
//! `aggregate.json` with mean ± 95% CI for every headline metric. A
//! killed sweep resumes exactly where it stopped with `--resume`; a
//! config change refuses to resume. Each `--gate` arms a CI-width check:
//! the run exits non-zero when the metric's 95% half-width exceeds the
//! tolerance (or cannot be computed) — what the `seed-sweep` CI job
//! gates on.

use prop_experiments::sweep::{GateSpec, SweepConfig, SweepExperiment};
use prop_experiments::Scale;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut experiment = None;
    let mut scale = Scale::Paper;
    let mut base_seed = 1u64;
    let mut seeds = 8usize;
    let mut resume = false;
    let mut gates: Vec<GateSpec> = Vec::new();
    let mut root = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--experiment" => {
                let name = args.next().expect("--experiment needs a name");
                experiment = Some(SweepExperiment::parse(&name).unwrap_or_else(|| {
                    panic!(
                        "--experiment must be one of \
                         fig5|fig6|fig7|ablation|faults|embed_agreement, got {name}"
                    )
                }));
            }
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                base_seed =
                    args.next().and_then(|s| s.parse().ok()).expect("--seed needs an integer");
            }
            "--seeds" => {
                seeds =
                    args.next().and_then(|s| s.parse().ok()).expect("--seeds needs a seed count");
            }
            "--resume" => resume = true,
            "--gate" => {
                let spec = args.next().expect("--gate needs METRIC=MAX_WIDTH");
                gates.push(
                    GateSpec::parse(&spec)
                        .unwrap_or_else(|| panic!("--gate must be METRIC=MAX_WIDTH, got {spec}")),
                );
            }
            "--root" => root = PathBuf::from(args.next().expect("--root needs a directory")),
            other => panic!("unknown flag {other}"),
        }
    }
    let experiment = experiment.expect("--experiment is required");
    let cfg = SweepConfig::new(experiment, scale, base_seed, seeds);
    prop_experiments::sweep::run_cli(&cfg, &root, resume, &gates)
}
