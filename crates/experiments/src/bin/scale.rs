//! S1 — simulator scalability: wall-clock and memory-ish cost of the full
//! pipeline (topology → APSP oracle → overlay → 2 h of PROP-G → one
//! measurement) as the overlay grows.
//!
//! ```text
//! cargo run --release -p prop-experiments --bin scale [--quick] [--seed N]
//! ```
//!
//! Useful for sizing reproduction runs; not a paper figure. Wall-clock
//! numbers are machine-dependent by nature.

use prop_core::{PropConfig, ProtocolSim};
use prop_experiments::report::Cli;
use prop_experiments::setup::Scale;
use prop_metrics::avg_lookup_latency;
use prop_netsim::{generate_waxman, LatencyOracle, WaxmanParams};
use prop_overlay::gnutella::{Gnutella, GnutellaParams};
use prop_workloads::LookupGen;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let cli = Cli::parse();
    let sizes: Vec<usize> = match cli.scale {
        Scale::Paper => vec![500, 1000, 2000, 4000],
        Scale::Quick => vec![200, 400],
    };

    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "peers", "topo (ms)", "APSP (ms)", "sim 2h (ms)", "measure (ms)", "matrix (MiB)"
    );
    for n in sizes {
        // A flat Waxman sized 2× the membership keeps host selection
        // meaningful at every n.
        let params = WaxmanParams {
            nodes: n * 2,
            alpha: (30.0 / n as f64).min(0.5),
            beta: 0.18,
            max_latency_ms: 120,
        };
        let mut rng = prop_engine::SimRng::seed_from(cli.seed);

        let t0 = Instant::now();
        let phys = generate_waxman(&params, &mut rng);
        let t_topo = t0.elapsed();

        let t0 = Instant::now();
        let oracle = Arc::new(LatencyOracle::select_and_build(&phys, n, &mut rng));
        let t_apsp = t0.elapsed();

        let (gn, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);

        let t0 = Instant::now();
        let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
        sim.run_for(prop_engine::Duration::from_minutes(120));
        let t_sim = t0.elapsed();

        let t0 = Instant::now();
        let live: Vec<prop_overlay::Slot> = sim.net().graph().live_slots().collect();
        let pairs = LookupGen::new(&rng).uniform_pairs(&live, 2000);
        let summary = avg_lookup_latency(sim.net(), &gn, &pairs);
        let t_measure = t0.elapsed();

        let matrix_mib = (n * n * 4) as f64 / (1024.0 * 1024.0);
        println!(
            "{:>7} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>14.1}   (mean lookup {:.0} ms, {} exchanges)",
            n,
            t_topo.as_secs_f64() * 1e3,
            t_apsp.as_secs_f64() * 1e3,
            t_sim.as_secs_f64() * 1e3,
            t_measure.as_secs_f64() * 1e3,
            matrix_mib,
            summary.mean_ms,
            sim.overhead().exchanges
        );
    }
}
