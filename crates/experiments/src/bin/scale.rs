//! S1 — production-scale latency oracle + protocol demo.
//!
//! The paper stops at ~1,000 members, where a dense APSP matrix is cheap.
//! This binary pushes the same pipeline (topology → latency oracle →
//! overlay → PROP warm-up) to 100,000 members, where a dense matrix would
//! need ~40 GB and the oracle instead runs on its row-cache tier: one
//! Dijkstra per requested source, rows held in a byte-bounded LRU.
//!
//! Two stages per size:
//!
//! 1. **Query storm** — answer 1,000,000 random `d(u, v)` queries
//!    (200,000 under `--quick`), grouped by source and warmed in
//!    cache-sized batches, asserting peak oracle memory stays under the
//!    512 MiB cap.
//! 2. **Protocol warm-up** — build a Gnutella overlay over the same
//!    oracle and run a few minutes of PROP-G and PROP-O, reporting
//!    stretch improvement and the cache counters the run generated.
//!
//! ```text
//! cargo run --release -p prop-experiments --bin scale [--quick] [--seed N]
//!     [--oracle-tier auto|dense|cached|embedded] [--million]
//!     [--n N] [--budget-secs S]
//! ```
//!
//! `--oracle-tier` pins the oracle tier instead of letting the member
//! count choose — the axis for comparing the row-cache and the
//! coordinate-embedded paths on identical workloads. `--million` appends a
//! 1,000,000-member entry; the PROP warm-up runs at *every* size now that
//! the drivers' hot path is O(1) per event (timer-wheel queue, zero-alloc
//! trials, cached δ(G)) — the EXPERIMENTS S5 table is this binary's
//! output. `--n N` replaces the size ladder with the single size N;
//! `--budget-secs S` makes the run exit non-zero if its total wall clock
//! exceeds S seconds (the CI driver-scale-smoke gate).
//!
//! Useful for sizing reproduction runs; not a paper figure. Wall-clock
//! numbers are machine-dependent by nature; the 100k paper-scale run is
//! compute-heavy (hundreds of thousands of on-demand Dijkstra rows) and
//! is meant for offline study, not CI.

use prop_core::{PropConfig, ProtocolSim};
use prop_engine::{Duration, SimRng};
use prop_experiments::report::write_json;
use prop_experiments::setup::{OracleTier, Scale};
use prop_metrics::{OracleCacheReport, OracleEmbedReport};
use prop_netsim::{generate, LatencyOracle, OracleConfig, TransitStubParams};
use prop_overlay::gnutella::{Gnutella, GnutellaParams};
use prop_overlay::{OverlayNet, Slot};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Hard cap on oracle cache memory — the headline claim of this binary.
const CACHE_CAP_BYTES: usize = 512 << 20;

#[derive(Serialize)]
struct SizeReport {
    members: usize,
    phys_hosts: usize,
    phys_links: usize,
    tier: &'static str,
    topo_ms: f64,
    oracle_build_ms: f64,
    queries: usize,
    query_ms: f64,
    queries_per_sec: f64,
    mean_query_latency_ms: f64,
    query_cache: OracleCacheReport,
    /// Embed-tier counters and calibration over the storm; absent on the
    /// exact tiers.
    query_embed: Option<OracleEmbedReport>,
    warmups: Vec<WarmupReport>,
}

#[derive(Serialize)]
struct WarmupReport {
    policy: &'static str,
    sim_minutes: u64,
    wall_ms: f64,
    exchanges: u64,
    stretch_before: f64,
    stretch_after: f64,
    cache: OracleCacheReport,
}

fn main() -> std::process::ExitCode {
    let mut scale = Scale::Paper;
    let mut seed = 1u64;
    let mut tier = OracleTier::Auto;
    let mut million = false;
    let mut single_n: Option<usize> = None;
    let mut budget_secs: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).expect("--seed needs an integer");
            }
            "--oracle-tier" => {
                let val = args.next().expect("--oracle-tier needs auto|dense|cached|embedded");
                tier = OracleTier::parse(&val).unwrap_or_else(|| {
                    panic!("--oracle-tier must be auto|dense|cached|embedded, got {val}")
                });
            }
            "--million" => million = true,
            "--n" => {
                single_n =
                    Some(args.next().and_then(|s| s.parse().ok()).expect("--n needs an integer"));
            }
            "--budget-secs" => {
                budget_secs = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--budget-secs needs an integer"),
                );
            }
            other => panic!("unknown flag {other}"),
        }
    }
    let (mut sizes, queries, sim_minutes): (Vec<usize>, usize, u64) = match scale {
        Scale::Paper => (vec![2_000, 50_000, 100_000], 1_000_000, 5),
        Scale::Quick => (vec![2_000, 5_000, 20_000], 200_000, 3),
    };
    if million {
        sizes.push(1_000_000);
    }
    if let Some(n) = single_n {
        sizes = vec![n];
    }
    let cfg = tier.config(CACHE_CAP_BYTES);

    let start = Instant::now();
    let mut reports = Vec::new();
    for n in sizes {
        reports.push(run_size(n, queries, sim_minutes, &cfg, seed));
    }
    write_json("scale", &reports);

    if let Some(budget) = budget_secs {
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed > budget as f64 {
            eprintln!("WALL-CLOCK BUDGET EXCEEDED: run took {elapsed:.0} s, budget {budget} s");
            return std::process::ExitCode::FAILURE;
        }
        println!("wall-clock budget OK: {elapsed:.0} s <= {budget} s");
    }
    std::process::ExitCode::SUCCESS
}

fn run_size(
    n: usize,
    queries: usize,
    sim_minutes: u64,
    cfg: &OracleConfig,
    seed: u64,
) -> SizeReport {
    let mut rng = SimRng::seed_from(seed);

    let t0 = Instant::now();
    let params = TransitStubParams::scaled(n);
    let phys = generate(&params, &mut rng);
    let topo_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let oracle = Arc::new(LatencyOracle::select_and_build_with(&phys, n, &mut rng, cfg));
    let oracle_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "\n=== n = {n} members over {} hosts / {} links (tier: {}; topo {topo_ms:.0} ms, \
         oracle build {oracle_build_ms:.0} ms) ===",
        phys.num_nodes(),
        phys.num_links(),
        oracle.tier(),
    );

    // Stage 1: the query storm. Group by source so each cached row is
    // computed once, and warm sources in batches sized to half the cache
    // so a batch never evicts its own rows. On the coordinate-embedded
    // tier `d(u,v)` never touches a row, so warming would only run
    // Dijkstras the storm doesn't need — skip it there.
    let warm = oracle.tier() != "coord-embed";
    let mark = oracle.cache_stats().unwrap_or_default();
    let embed_mark = oracle.embed_stats().unwrap_or_default();
    let t0 = Instant::now();
    let mut pairs: Vec<(usize, usize)> =
        (0..queries).map(|_| (rng.range(0..n), rng.range(0..n))).collect();
    pairs.sort_unstable();
    let row_bytes = 4 * n;
    let batch_rows = (CACHE_CAP_BYTES / row_bytes / 2).max(1);
    let mut total_latency = 0u64;
    let mut answered = 0u64;
    let mut i = 0;
    while i < pairs.len() {
        // Extend the window until it spans `batch_rows` distinct sources.
        let mut j = i;
        let mut batch: Vec<usize> = Vec::with_capacity(batch_rows);
        while j < pairs.len() && batch.len() < batch_rows {
            if batch.last() != Some(&pairs[j].0) {
                batch.push(pairs[j].0);
            }
            j += 1;
        }
        // Extend forward so the window ends on a source boundary.
        while j < pairs.len() && pairs[j].0 == pairs[j - 1].0 {
            j += 1;
        }
        if warm {
            oracle.warm_rows(&batch);
        }
        for &(a, b) in &pairs[i..j] {
            let d = oracle.d(a, b);
            total_latency += d as u64;
            answered += 1;
        }
        i = j;
    }
    let query_ms = t0.elapsed().as_secs_f64() * 1e3;
    let query_cache = OracleCacheReport::from_oracle_since(&oracle, &mark);
    let query_embed = OracleEmbedReport::from_oracle_since(&oracle, &embed_mark);
    let mean_query_latency_ms =
        if answered == 0 { 0.0 } else { total_latency as f64 / answered as f64 };
    println!(
        "query storm: {queries} queries in {:.0} ms ({:.0}k queries/s, mean d(u,v) = {:.1} ms)",
        query_ms,
        queries as f64 / query_ms,
        mean_query_latency_ms,
    );
    println!("  {query_cache}");
    if let Some(embed) = &query_embed {
        println!("  {embed}");
    }
    if let Some(stats) = oracle.cache_stats() {
        assert!(
            stats.peak_resident_bytes <= CACHE_CAP_BYTES,
            "oracle exceeded the {} MiB cap: peak {} bytes",
            CACHE_CAP_BYTES >> 20,
            stats.peak_resident_bytes
        );
        println!(
            "  memory cap OK: peak {:.1} MiB <= {} MiB",
            stats.peak_resident_bytes as f64 / (1024.0 * 1024.0),
            CACHE_CAP_BYTES >> 20
        );
    }

    // Stage 2: PROP warm-up over the same oracle — at every size,
    // including a million members: with the timer-wheel queue and the
    // zero-alloc trial loop the drivers' per-event cost is O(1), so the
    // wall clock scales with the event count, not the population (the
    // EXPERIMENTS S5 row this run prints).
    let mut warmups = Vec::new();
    for (label, policy) in [("PROP-G", PropConfig::prop_g()), ("PROP-O", PropConfig::prop_o())] {
        let mut wrng = rng.fork(label);
        let (_gn, net) = Gnutella::build(GnutellaParams::default(), Arc::clone(&oracle), &mut wrng);
        let stretch_before = batched_stretch(&net, batch_rows);
        let mark = oracle.cache_stats().unwrap_or_default();
        let t0 = Instant::now();
        let mut sim = ProtocolSim::new(net, policy, &mut wrng);
        sim.run_for(Duration::from_minutes(sim_minutes));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let cache = OracleCacheReport::from_oracle_since(&oracle, &mark);
        let stretch_after = batched_stretch(sim.net(), batch_rows);
        let exchanges = sim.overhead().exchanges;
        println!(
            "{label}: {sim_minutes} sim-min in {wall_ms:.0} ms, {exchanges} exchanges, \
             stretch {stretch_before:.3} -> {stretch_after:.3}",
        );
        println!("  {cache}");
        warmups.push(WarmupReport {
            policy: label,
            sim_minutes,
            wall_ms,
            exchanges,
            stretch_before,
            stretch_after,
            cache,
        });
    }

    SizeReport {
        members: n,
        phys_hosts: phys.num_nodes(),
        phys_links: phys.num_links(),
        tier: oracle.tier(),
        topo_ms,
        oracle_build_ms,
        queries,
        query_ms,
        queries_per_sec: queries as f64 / (query_ms / 1e3),
        mean_query_latency_ms,
        query_cache,
        query_embed,
        warmups,
    }
}

/// Link stretch computed in cache-sized batches: warm the rows of a chunk
/// of slots, then sum the latency of the edges sourced in that chunk.
/// Equivalent to [`OverlayNet::stretch`] but never needs more than one
/// batch of rows resident at a time.
fn batched_stretch(net: &OverlayNet, rows_per_batch: usize) -> f64 {
    let g = net.graph();
    let slots: Vec<Slot> = g.live_slots().collect();
    let mut total = 0u64;
    let mut edges = 0u64;
    let warm = net.oracle().tier() != "coord-embed";
    for chunk in slots.chunks(rows_per_batch.max(1)) {
        if warm {
            net.warm_latency_rows(chunk);
        }
        for &a in chunk {
            for &b in g.neighbors(a) {
                if a < b {
                    total += net.d(a, b) as u64;
                    edges += 1;
                }
            }
        }
    }
    if edges == 0 {
        return 0.0;
    }
    (total as f64 / edges as f64) / net.oracle().mean_phys_link_latency()
}
