//! perf — regenerate `BENCH_PERF.json` and optionally gate on a baseline.
//!
//! ```text
//! cargo run --release -p prop-experiments --bin perf [--quick] [--seed N]
//!     [--out PATH] [--check PATH] [--repr vecvec|csr]
//! ```
//!
//! Without flags: Quick- and Paper-scale entries, each under both the CSR
//! and the legacy `Vec<Vec<Slot>>` adjacency, written to `BENCH_PERF.json`
//! in the current directory (the repo root, when run via cargo from
//! there). `--quick` restricts the run to the Quick scale — what CI uses.
//! `--repr` restricts to one representation. `--check PATH` additionally
//! loads the committed baseline at PATH and exits non-zero when any gated
//! metric regressed more than `prop_experiments::perf::CHECK_TOLERANCE`
//! against the same-(scale, repr) baseline entry; a placeholder or
//! metric-less baseline makes the run record-only.

use prop_experiments::perf::{check_against_baseline, run, Repr, CHECK_TOLERANCE};
use prop_experiments::Scale;
use std::fs;
use std::process::ExitCode;

/// Count heap allocations so the report's `allocs_per_trial` is real here
/// (library tests have no global allocator hook and record 0).
#[global_allocator]
static ALLOC: prop_engine::CountingAllocator = prop_engine::CountingAllocator;

fn main() -> ExitCode {
    let mut scales = vec![Scale::Quick, Scale::Paper];
    let mut reprs = vec![Repr::Csr, Repr::Vecvec];
    let mut seed = 1u64;
    let mut out = String::from("BENCH_PERF.json");
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scales = vec![Scale::Quick],
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).expect("--seed needs an integer");
            }
            "--out" => out = args.next().expect("--out needs a path"),
            "--check" => check = Some(args.next().expect("--check needs a baseline path")),
            "--repr" => {
                let val = args.next().expect("--repr needs vecvec or csr");
                reprs = vec![Repr::parse(&val)
                    .unwrap_or_else(|| panic!("--repr must be vecvec or csr, got {val}"))];
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let report = run(&scales, &reprs, seed);
    println!("perf (seed {}, {} rayon threads):", report.seed, report.threads);
    for entry in &report.entries {
        let m = &entry.metrics;
        println!("[{} · {}]", entry.scale, entry.repr);
        println!(
            "  driver      {:>12.0} trials/s   ({} trials)",
            m.driver_trials_per_sec, m.driver_trials
        );
        println!(
            "  lookups     {:>12.0} /s serial   {:>12.0} /s parallel   ({:.2}x, bit-identical)",
            m.serial_lookups_per_sec, m.parallel_lookups_per_sec, m.parallel_speedup
        );
        println!(
            "  flood       {:>12.1} edges   {:>8.1} improvements   {:>8.1} pushes   (per lookup)",
            m.flood_edges_scanned_per_lookup,
            m.flood_improvements_per_lookup,
            m.flood_frontier_pushes_per_lookup
        );
        println!("  oracle      {:>11.1}% row-cache hit rate", m.oracle_hit_rate * 100.0);
        println!(
            "  oracle ns/q {:>12.1} dense   {:>8.1} cached-cold   {:>8.1} cached-warm   \
             {:>8.1} embedded   ({:.1}x embed vs cold)",
            m.oracle_dense_ns,
            m.oracle_cached_cold_ns,
            m.oracle_cached_warm_ns,
            m.oracle_embed_ns,
            m.oracle_embed_cold_speedup
        );
        println!(
            "  queue       {:>12.1} ns/schedule   {:>12.0} events/s (pop+reschedule)",
            m.driver_sched_ns, m.driver_events_per_sec
        );
        println!("  allocs      {:>12.2} per steady-state trial", m.allocs_per_trial);
    }

    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
            println!("(wrote {out})");
        }
        Err(e) => panic!("cannot serialize report: {e}"),
    }

    if let Some(path) = check {
        let baseline: serde_json::Value = match fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("baseline {path} is not JSON: {e}")),
            Err(e) => {
                println!("no baseline at {path} ({e}); recording only");
                return ExitCode::SUCCESS;
            }
        };
        // An unarmed gate must say so loudly: without this line, a
        // placeholder baseline's empty failure list reads like a pass in
        // CI logs.
        let status = baseline.get("status").and_then(|s| s.as_str()).unwrap_or("missing");
        if status != "generated" {
            println!(
                "RECORD-ONLY (placeholder baseline): {path} has status \"{status}\"; the \
                 regression gate is disarmed — regenerate BENCH_PERF.json on the reference \
                 machine to arm it"
            );
            return ExitCode::SUCCESS;
        }
        let failures = check_against_baseline(&report, &baseline);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!(
                    "PERF REGRESSION [{}]: {} fell {:.1}% (baseline {:.0}, now {:.0}, \
                     tolerance {:.0}%)",
                    f.scale,
                    f.metric,
                    (1.0 - f.current / f.baseline) * 100.0,
                    f.baseline,
                    f.current,
                    CHECK_TOLERANCE * 100.0
                );
            }
            return ExitCode::FAILURE;
        }
        println!("baseline check passed ({path})");
    }
    ExitCode::SUCCESS
}
