//! embed_agreement — gate the embedded tier's exchange-decision quality.
//!
//! ```text
//! cargo run --release -p prop-experiments --bin embed_agreement
//!     [--quick] [--seed N] [--n MEMBERS] [--samples N] [--floor RATE]
//!     [--seeds N [--resume]]
//! ```
//!
//! Samples candidate PROP-G/PROP-O exchanges on a Gnutella overlay built
//! over the coordinate-embedded oracle tier and compares the banded
//! decision ([`prop_core::decide`]) against the exact one plan by plan
//! (see [`prop_experiments::embed_agreement`]). Defaults: 100,000 members
//! and 2,000 samples over scaled transit-stub geometry (`--quick`:
//! 20,000 members, 1,000 samples — what CI runs). Exits non-zero when the
//! agreement rate falls below `--floor` (default 0.99).

use prop_experiments::embed_agreement::run;
use prop_experiments::report::write_json;
use prop_experiments::sweep::{SweepConfig, SweepExperiment};
use prop_experiments::Scale;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut n = 100_000usize;
    let mut samples = 2_000usize;
    let mut seed = 1u64;
    let mut floor = 0.99f64;
    let mut scale = Scale::Paper;
    let mut seeds: Option<usize> = None;
    let mut resume = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                n = 20_000;
                samples = 1_000;
                scale = Scale::Quick;
            }
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).expect("--seed needs an integer");
            }
            "--n" => {
                n = args.next().and_then(|s| s.parse().ok()).expect("--n needs a member count");
            }
            "--samples" => {
                samples =
                    args.next().and_then(|s| s.parse().ok()).expect("--samples needs an integer");
            }
            "--floor" => {
                floor = args.next().and_then(|s| s.parse().ok()).expect("--floor needs a rate");
            }
            "--seeds" => {
                seeds = Some(
                    args.next().and_then(|s| s.parse().ok()).expect("--seeds needs a seed count"),
                );
            }
            "--resume" => resume = true,
            other => panic!("unknown flag {other}"),
        }
    }
    if let Some(seeds) = seeds {
        // Sweep mode uses smaller scale-derived member counts (the sweep
        // runs N full oracle builds) — agreement_rate ± CI per seed.
        let cfg = SweepConfig::new(SweepExperiment::EmbedAgreement, scale, seed, seeds);
        return prop_experiments::sweep::run_cli(&cfg, Path::new("results"), resume, &[]);
    }

    let report = run(n, samples, seed);
    println!(
        "embed agreement: n = {}, {} plans, {} agree ({:.4}), {} escalations ({:.4})",
        report.members,
        report.plans,
        report.agreements,
        report.agreement_rate,
        report.escalations,
        report.escalation_rate,
    );
    if let Some(embed) = &report.embed {
        println!("  {embed}");
    }
    write_json("embed_agreement", &report);

    if report.agreement_rate < floor {
        eprintln!(
            "EMBED AGREEMENT REGRESSION: rate {:.4} below floor {:.4}",
            report.agreement_rate, floor
        );
        return ExitCode::FAILURE;
    }
    println!("agreement floor passed ({:.4} >= {floor:.4})", report.agreement_rate);
    ExitCode::SUCCESS
}
