//! Regenerate the ablation studies (A1–A10; DESIGN.md §4).
//!
//! ```text
//! cargo run --release -p prop-experiments --bin ablation \
//!     [overhead|churn|combine|selfish|selection|warmup|waxman|custody|threshold|ltmcap|zipf|floodcost] [--quick] [--seed N]
//!     [--seeds N [--resume]]
//! ```

use prop_experiments::ablation;
use prop_experiments::report::{print_series_table, write_json, Cli};
use prop_experiments::sweep::{SweepConfig, SweepExperiment};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let cli = Cli::parse();
    if let Some(seeds) = cli.seeds {
        // The sweep unit is the A1 overhead ablation (msgs/trial ± CI).
        let cfg = SweepConfig::new(SweepExperiment::Ablation, cli.scale, cli.seed, seeds);
        return prop_experiments::sweep::run_cli(&cfg, Path::new("results"), cli.resume, &[]);
    }
    let run_all = cli.panel.is_none();
    let want = |p: &str| run_all || cli.panel.as_deref() == Some(p);

    if want("overhead") {
        let r = ablation::overhead(cli.scale, cli.seed);
        println!("\n=== A1 — per-adjustment overhead (§4.3: nhop+2c vs nhop+2m) ===");
        println!(
            "{:<20} {:>8} {:>10} {:>12} {:>12} {:>12}",
            "scheme", "trials", "exchanges", "msgs", "msgs/trial", "predicted"
        );
        for row in &r.rows {
            println!(
                "{:<20} {:>8} {:>10} {:>12} {:>12.2} {:>12.2}",
                row.label,
                row.trials,
                row.exchanges,
                row.total_msgs,
                row.msgs_per_trial,
                row.predicted_msgs_per_trial
            );
        }
        print_series_table("A1 — probe-rate decay (PROP-G)", &[&r.probe_rate]);
        write_json("ablation_overhead", &r);
    }

    if want("churn") {
        let r = ablation::churn(cli.scale, cli.seed);
        println!(
            "\n=== A2 — churn episode from {:.0} to {:.0} min ({} leaves, {} joins) ===",
            r.churn_window.0, r.churn_window.1, r.leaves, r.joins
        );
        println!("always connected: {}", r.always_connected);
        print_series_table("A2 — link stretch under churn", &[&r.stretch]);
        print_series_table("A2 — probe rate (trials/min)", &[&r.probe_rate]);
        write_json("ablation_churn", &r);
    }

    if want("combine") {
        let rows = ablation::combine(cli.scale, cli.seed);
        println!("\n=== A3 — PROP-G combined with PNS / PRS / PIS (path stretch) ===");
        println!("{:<24} {:>10} {:>10}", "configuration", "initial", "final");
        for row in &rows {
            println!("{:<24} {:>10.3} {:>10.3}", row.label, row.stretch_initial, row.stretch_final);
        }
        write_json("ablation_combine", &rows);
    }

    if want("selection") {
        let rows = ablation::selection_strategy(cli.scale, cli.seed);
        println!("\n=== A5 — PROP-O neighbor selection: greedy vs random ===");
        println!(
            "{:<28} {:>16} {:>10} {:>10}",
            "strategy", "total link lat", "exchanges", "trials"
        );
        for row in &rows {
            println!(
                "{:<28} {:>16} {:>10} {:>10}",
                row.label, row.total_link_latency_final, row.exchanges, row.trials
            );
        }
        write_json("ablation_selection", &rows);
    }

    if want("warmup") {
        let rows = ablation::warmup_sweep(cli.scale, cli.seed);
        println!("\n=== A6 — warm-up length (MAX_INIT_TRIAL) sweep ===");
        println!("{:<16} {:>12} {:>12}", "MAX_INIT_TRIAL", "stretch", "trials");
        for row in &rows {
            println!("{:<16} {:>12.3} {:>12}", row.max_init_trial, row.stretch_final, row.trials);
        }
        write_json("ablation_warmup", &rows);
    }

    if want("waxman") {
        let rows = ablation::physical_model(cli.scale, cli.seed);
        println!("\n=== A7 — physical-model robustness: transit–stub vs flat Waxman ===");
        println!("{:<12} {:>10} {:>10} {:>12}", "topology", "initial", "final", "improvement");
        for row in &rows {
            println!(
                "{:<12} {:>10.2} {:>10.2} {:>11.1}%",
                row.label,
                row.stretch_initial,
                row.stretch_final,
                row.improvement * 100.0
            );
        }
        write_json("ablation_waxman", &rows);
    }

    if want("threshold") {
        let rows = ablation::threshold_sweep(cli.scale, cli.seed);
        println!("\n=== A9 — MIN_VAR sensitivity ===");
        println!("{:<10} {:>12} {:>12} {:>14}", "MIN_VAR", "stretch", "exchanges", "notify msgs");
        for row in &rows {
            println!(
                "{:<10} {:>12.3} {:>12} {:>14}",
                row.min_var, row.stretch_final, row.exchanges, row.notify_msgs
            );
        }
        write_json("ablation_threshold", &rows);
    }

    if want("ltmcap") {
        let rows = ablation::ltm_cap_sweep(cli.scale, cli.seed);
        println!("\n=== A10 — LTM connection-cap sensitivity (Fig. 7 endpoints) ===");
        println!(
            "{:<12} {:>10} {:>14} {:>12} {:>12}",
            "max_degree", "mean deg", "mean link lat", "ratio@f=0", "ratio@f=1"
        );
        for row in &rows {
            let cap = if row.max_degree == usize::MAX {
                "unbounded".to_string()
            } else {
                row.max_degree.to_string()
            };
            println!(
                "{:<12} {:>10.1} {:>14.1} {:>12.3} {:>12.3}",
                cap,
                row.mean_degree_final,
                row.mean_link_latency_final,
                row.ratio_frac0,
                row.ratio_frac1
            );
        }
        write_json("ablation_ltmcap", &rows);
    }

    if want("zipf") {
        let rows = ablation::zipf_workload(cli.scale, cli.seed);
        println!("\n=== A11 — Zipf(0.9) popularity workload, hot objects on hubs ===");
        println!("{:<10} {:>16}", "scheme", "delay ratio");
        for row in &rows {
            println!("{:<10} {:>16.3}", row.label, row.ratio);
        }
        write_json("ablation_zipf", &rows);
    }

    if want("floodcost") {
        let rows = ablation::flood_cost(cli.scale, cli.seed);
        println!("\n=== A12 — flooding message cost per query (TTL 7) ===");
        println!(
            "{:<10} {:>14} {:>14} {:>12}",
            "scheme", "msgs initial", "msgs final", "mean degree"
        );
        for row in &rows {
            println!(
                "{:<10} {:>14.0} {:>14.0} {:>12.1}",
                row.label,
                row.msgs_per_query_initial,
                row.msgs_per_query_final,
                row.mean_degree_final
            );
        }
        write_json("ablation_floodcost", &rows);
    }

    if want("custody") {
        let r = ablation::custody(cli.scale, cli.seed);
        println!("\n=== A8 — object custody under identifier swaps (Chord) ===");
        println!("baseline mean object lookup:        {:>10.1} ms", r.baseline_ms);
        println!("after PROP-G, permanent pointers:   {:>10.1} ms", r.pointers_ms);
        println!("after PROP-G, custody migrated:     {:>10.1} ms", r.migrated_ms);
        println!("keys displaced by the run:          {:>10.1}%", r.displacement * 100.0);
        println!("one-time migration cost (ms-equiv): {:>10}", r.migration_cost);
        write_json("ablation_custody", &r);
    }

    if want("selfish") {
        let rows = ablation::selfish_vs_prop(cli.scale, cli.seed);
        println!("\n=== A4 — cooperative exchange vs selfish rewiring ===");
        println!("{:<24} {:>18} {:>16}", "scheme", "mean link lat (ms)", "degree-CV drift");
        for row in &rows {
            println!(
                "{:<24} {:>18.2} {:>16.4}",
                row.label, row.mean_link_latency_final, row.degree_cv_drift
            );
        }
        write_json("ablation_selfish", &rows);
    }
    ExitCode::SUCCESS
}
