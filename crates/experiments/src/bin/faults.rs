//! Regenerate the robustness experiments (beyond-paper; DESIGN.md §10).
//!
//! ```text
//! cargo run --release -p prop-experiments --bin faults \
//!     [sweep|recovery] [--quick] [--seed N] [--seeds N [--resume]]
//!     [--traffic <scenario.json>]
//! ```
//!
//! With `--traffic` the binary replays the scenario bundle (its traffic
//! script composed with its fault script, if any) on the asynchronous
//! driver and reports per-phase stretch/delivery.

use prop_experiments::faults;
use prop_experiments::report::{print_fault_table, print_series_table, write_json, Cli};
use prop_experiments::sweep::{SweepConfig, SweepExperiment};
use prop_experiments::traffic::{load_script_or_scenario, run_scenario, TrafficDriver};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let cli = Cli::parse();
    if let Some(path) = &cli.traffic {
        let spec = load_script_or_scenario(path, cli.scale, cli.seed);
        let r = run_scenario(&spec, TrafficDriver::Async, cli.scale);
        println!("\n=== scenario {} on the async driver (seed {}) ===", spec.name, spec.seed);
        println!("{}", r.report);
        println!(
            "final link stretch {:.3}, connected throughout: {}",
            r.final_link_stretch, r.always_connected
        );
        write_json(&format!("faults_traffic_{}", spec.name), &r);
        return ExitCode::SUCCESS;
    }
    if let Some(seeds) = cli.seeds {
        // The sweep unit is the loss × partition grid (improvement% ± CI
        // per cell).
        let cfg = SweepConfig::new(SweepExperiment::Faults, cli.scale, cli.seed, seeds);
        return prop_experiments::sweep::run_cli(&cfg, Path::new("results"), cli.resume, &[]);
    }
    let run_all = cli.panel.is_none();
    let want = |p: &str| run_all || cli.panel.as_deref() == Some(p);

    if want("sweep") {
        let rows = faults::sweep(cli.scale, cli.seed);
        print_fault_table("F1 — PROP-G under loss × transit partition", &rows);
        write_json("faults_sweep", &rows);
    }

    if want("recovery") {
        let r = faults::recovery(cli.scale, cli.seed);
        println!(
            "\n=== F2 — partition recovery (split at {:.1} min, heals at {:.1} min) ===",
            r.partition.0 as f64 / 60_000.0,
            r.partition.1 as f64 / 60_000.0
        );
        print_series_table("F2 — exchange rate across the split", &[&r.exchange_rate]);
        println!("{}", r.faults);
        write_json("faults_recovery", &r);
    }
    ExitCode::SUCCESS
}
