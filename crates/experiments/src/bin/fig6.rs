//! Regenerate **Figure 6** — PROP-G in a Chord environment.
//!
//! ```text
//! cargo run --release -p prop-experiments --bin fig6 [a|b|c] [--quick] [--seed N]
//!     [--seeds N [--resume]] [--traffic <script.json>]
//! ```
//!
//! Prints each panel's stretch series (vs simulated minutes) and writes
//! `results/fig6<panel>.json`. With `--seeds N` the run becomes a
//! seed-sharded Monte-Carlo sweep of the representative stretch curve
//! (mean ± 95% CI on stretch and protocol overhead; see
//! [`prop_experiments::sweep`]). With `--traffic` the workload follows a
//! TrafficScript's time-varying Zipf popularity instead of the static
//! uniform pair set (writes `results/fig6_scripted.json`).

use prop_core::PropConfig;
use prop_experiments::fig6::{panel_a, panel_b, panel_c, run_curve_scripted, StretchCurve};
use prop_experiments::report::{print_series_table, write_json, Cli};
use prop_experiments::setup::Scenario;
use prop_experiments::sweep::{SweepConfig, SweepExperiment};
use prop_experiments::traffic::{load_script_or_scenario, topology_from_label};
use std::path::Path;
use std::process::ExitCode;

fn show(panel: &str, title: &str, curves: &[StretchCurve]) {
    let series: Vec<_> = curves.iter().map(|c| &c.series).collect();
    print_series_table(title, &series);
    println!("\n{}", prop_experiments::plot::ascii_chart(&series, 72, 14));
    println!("\nconvergence (start → end, t90 = minutes to 90% of the gain):");
    for c in curves {
        if let Some(conv) = prop_experiments::convergence_of(&c.series) {
            println!(
                "  {:<28} {:>10.2} → {:>10.2}  ({:+.1}%)  t90 {}  max regression {:.1}%",
                c.series.label,
                conv.initial,
                conv.final_,
                conv.improvement * 100.0,
                conv.t90_minutes.map_or("n/a".into(), |t| format!("{t:.0} min")),
                conv.max_regression * 100.0
            );
        }
    }
    write_json(&format!("fig6{panel}"), &curves.to_vec());
}

fn main() -> ExitCode {
    let cli = Cli::parse();
    if let Some(seeds) = cli.seeds {
        let cfg = SweepConfig::new(SweepExperiment::Fig6, cli.scale, cli.seed, seeds);
        return prop_experiments::sweep::run_cli(&cfg, Path::new("results"), cli.resume, &[]);
    }
    if let Some(path) = &cli.traffic {
        let spec = load_script_or_scenario(path, cli.scale, cli.seed);
        let scenario = Scenario::build(topology_from_label(&spec.topology), spec.n, spec.seed);
        let (curve, overhead) = run_curve_scripted(
            &scenario,
            PropConfig::prop_g(),
            &spec.traffic,
            cli.scale,
            format!("scripted:{}", spec.name),
        );
        show("_scripted", "Fig 6 — stretch under scripted popularity", &[curve]);
        println!(
            "\noverhead: {} trials, {:.1} msgs/trial",
            overhead.trials,
            if overhead.trials == 0 {
                0.0
            } else {
                overhead.total_msgs() as f64 / overhead.trials as f64
            }
        );
        return ExitCode::SUCCESS;
    }
    let run_all = cli.panel.is_none();
    let want = |p: &str| run_all || cli.panel.as_deref() == Some(p);

    if want("a") {
        show("a", "Fig 6(a) — stretch, varying the TTL scale", &panel_a(cli.scale, cli.seed));
    }
    if want("b") {
        show("b", "Fig 6(b) — stretch, varying the system size", &panel_b(cli.scale, cli.seed));
    }
    if want("c") {
        show(
            "c",
            "Fig 6(c) — stretch, varying the physical topology",
            &panel_c(cli.scale, cli.seed),
        );
    }
    ExitCode::SUCCESS
}
