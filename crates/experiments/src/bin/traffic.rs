//! Replay a production traffic scenario against the PROP drivers.
//!
//! ```text
//! cargo run --release -p prop-experiments --bin traffic \
//!     [<builtin>|<scenario.json>] [--driver <d>] [--quick] [--seed N] \
//!     [--seeds N [--resume]] [--min-delivery X] [--max-stretch X]
//! ```
//!
//! * Positional: a builtin scenario name (`diurnal-regional`,
//!   `flash-crowd`) or a path to a Scenario/TrafficScript JSON (see
//!   `examples/`). Default: `diurnal-regional`.
//! * `--driver`: `prop-g`, `prop-o`, `async`, `selfish`, `both`
//!   (prop-o sync + async), or `compare` (prop-g + prop-o + selfish;
//!   default).
//! * `--seeds N [--resume]`: seed-sharded sweep of the diurnal-regional
//!   comparison with 95% CI error bars (see `prop_experiments::sweep`).
//! * `--min-delivery X` / `--max-stretch X`: CI gates over the PROP
//!   drivers' runs (the selfish strawman is reported but never gated);
//!   a violated gate exits non-zero.
//!
//! Each run prints the per-phase/per-domain report and writes
//! `results/traffic_<scenario>_<driver>.json`.

use prop_experiments::report::write_json;
use prop_experiments::sweep::{SweepConfig, SweepExperiment};
use prop_experiments::traffic::{
    builtin_scenario, load_script_or_scenario, run_scenario, TrafficDriver, TrafficRunReport,
};
use prop_experiments::Scale;
use std::path::Path;
use std::process::ExitCode;

struct Args {
    scenario: String,
    drivers: Vec<TrafficDriver>,
    scale: Scale,
    seed: u64,
    seeds: Option<usize>,
    resume: bool,
    min_delivery: Option<f64>,
    max_stretch: Option<f64>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        scenario: "diurnal-regional".to_string(),
        drivers: vec![TrafficDriver::PropG, TrafficDriver::PropO, TrafficDriver::Selfish],
        scale: Scale::Paper,
        seed: 1,
        seeds: None,
        resume: false,
        min_delivery: None,
        max_stretch: None,
    };
    let mut args = std::env::args().skip(1);
    let f64_arg = |args: &mut dyn Iterator<Item = String>, flag: &str| -> f64 {
        args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| panic!("{flag} needs a number"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => parsed.scale = Scale::Quick,
            "--seed" => {
                parsed.seed =
                    args.next().and_then(|s| s.parse().ok()).expect("--seed needs an integer");
            }
            "--seeds" => {
                parsed.seeds = Some(
                    args.next().and_then(|s| s.parse().ok()).expect("--seeds needs a seed count"),
                );
            }
            "--resume" => parsed.resume = true,
            "--driver" => {
                let d = args.next().expect("--driver needs a name");
                parsed.drivers = match d.as_str() {
                    "both" => vec![TrafficDriver::PropO, TrafficDriver::Async],
                    "compare" => {
                        vec![TrafficDriver::PropG, TrafficDriver::PropO, TrafficDriver::Selfish]
                    }
                    one => vec![TrafficDriver::parse(one)
                        .unwrap_or_else(|| panic!("unknown driver {one:?}"))],
                };
            }
            "--min-delivery" => parsed.min_delivery = Some(f64_arg(&mut args, "--min-delivery")),
            "--max-stretch" => parsed.max_stretch = Some(f64_arg(&mut args, "--max-stretch")),
            other if !other.starts_with('-') => parsed.scenario = other.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }
    if parsed.resume && parsed.seeds.is_none() {
        panic!("--resume only makes sense with --seeds N");
    }
    parsed
}

fn check_gates(args: &Args, run: &TrafficRunReport) -> Vec<String> {
    let mut failures = Vec::new();
    if run.driver == "selfish" {
        return failures; // the strawman is reported, never gated
    }
    if let Some(min) = args.min_delivery {
        let got = run.report.delivery_rate();
        if got < min {
            failures.push(format!("{}: delivery {:.4} below gate {:.4}", run.driver, got, min));
        }
    }
    if let Some(max) = args.max_stretch {
        let got = run.report.overall_stretch();
        if got > max {
            failures.push(format!("{}: stretch {:.4} above gate {:.4}", run.driver, got, max));
        }
    }
    failures
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(seeds) = args.seeds {
        let cfg = SweepConfig::new(SweepExperiment::Traffic, args.scale, args.seed, seeds);
        return prop_experiments::sweep::run_cli(&cfg, Path::new("results"), args.resume, &[]);
    }

    let spec = if args.scenario.ends_with(".json") || args.scenario.contains('/') {
        load_script_or_scenario(&args.scenario, args.scale, args.seed)
    } else {
        builtin_scenario(&args.scenario, args.scale, args.seed, None, None)
    };
    println!(
        "scenario {} on {} (n = {}, seed {}): {} domains, {} flash crowds, {} shifts",
        spec.name,
        spec.topology,
        spec.n,
        spec.seed,
        spec.traffic.domains.len(),
        spec.traffic.flash_crowds.len(),
        spec.traffic.popularity.len()
    );

    let mut failures = Vec::new();
    for driver in &args.drivers {
        let r = run_scenario(&spec, *driver, args.scale);
        println!("\n=== {} ===", driver.label());
        println!("{}", r.report);
        println!(
            "plane emitted {} events ({} joins, {} leaves, {} lookups); \
             final link stretch {:.3}; connected throughout: {}",
            r.emitted.total(),
            r.emitted.joins,
            r.emitted.leaves,
            r.emitted.lookups,
            r.final_link_stretch,
            r.always_connected
        );
        failures.extend(check_gates(&args, &r));
        write_json(&format!("traffic_{}_{}", spec.name, driver.label()), &r);
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("GATE FAILED — {f}");
        }
        ExitCode::FAILURE
    }
}
