//! G1 — PROP-G's generality table: the same protocol, unchanged, over
//! Gnutella (flat and two-tier), Chord, Pastry, Kademlia, and CAN.
//!
//! ```text
//! cargo run --release -p prop-experiments --bin generality [--quick] [--seed N]
//! ```

use prop_experiments::generality::run;
use prop_experiments::report::{write_json, Cli};

fn main() {
    let cli = Cli::parse();
    let rows = run(cli.scale, cli.seed);

    println!("\n=== G1 — one protocol, six overlays (PROP-G, identical settings) ===");
    println!(
        "{:<10} {:<26} {:>10} {:>10} {:>12} {:>10}",
        "overlay", "metric", "initial", "final", "improvement", "structure"
    );
    for r in &rows {
        println!(
            "{:<10} {:<26} {:>10.2} {:>10.2} {:>11.1}% {:>10}",
            r.overlay,
            r.metric,
            r.initial,
            r.final_,
            r.improvement * 100.0,
            if r.structure_preserved { "preserved" } else { "BROKEN" }
        );
    }
    write_json("generality", &rows);
}
