//! Terminal plots for experiment output.
//!
//! Every figure binary prints its series as an ASCII chart next to the raw
//! rows, so a reader can see the paper's curve shapes (convergence,
//! crossover, decay) straight from the terminal without exporting the JSON.

use prop_metrics::TimeSeries;

const GLYPHS: &[char] = &['o', '+', 'x', '*', '#', '@', '%', '&'];

/// Render multiple series into one fixed-size ASCII chart. Each series gets
/// a glyph; a legend line maps glyphs to labels. Returns the full text.
pub fn ascii_chart(series: &[&TimeSeries], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(6);
    let points: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if points.is_empty() {
        return "(no data)\n".to_string();
    }
    let (mut x_min, mut x_max) = (f64::MAX, f64::MIN);
    let (mut y_min, mut y_max) = (f64::MAX, f64::MIN);
    for &(x, y) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    // A little headroom so curves don't sit on the frame.
    let pad = (y_max - y_min) * 0.05;
    let (y_lo, y_hi) = (y_min - pad, y_max + pad);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            // Later series overwrite: collisions show the last glyph, which
            // is fine for eyeballing.
            grid[row][col] = glyph;
        }
    }

    let mut out = String::new();
    let y_label_width = 10;
    for (r, row) in grid.iter().enumerate() {
        let y_val = y_hi - (y_hi - y_lo) * r as f64 / (height - 1) as f64;
        let label = if r == 0 || r == height - 1 || r == height / 2 {
            format!("{y_val:>9.2} ")
        } else {
            " ".repeat(y_label_width)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(y_label_width));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:y$}{:<w$.1}{:>r$.1}\n",
        "",
        x_min,
        x_max,
        y = y_label_width + 1,
        w = width / 2,
        r = width - width / 2
    ));
    // Legend.
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:y$}{} = {}\n",
            "",
            GLYPHS[si % GLYPHS.len()],
            s.label,
            y = y_label_width + 1
        ));
    }
    out
}

/// Render a swept mean curve with its 95% confidence band: the mean series
/// plus derived `+CI` / `−CI` series (only where a half-width exists, i.e.
/// ≥ 2 seeds), through the same fixed-size chart renderer. `ci` aligns
/// with `mean.points`; extra or missing entries are ignored.
pub fn ascii_band_chart(
    mean: &TimeSeries,
    ci: &[Option<f64>],
    width: usize,
    height: usize,
) -> String {
    let mut upper = TimeSeries::new("mean + 95% CI");
    let mut lower = TimeSeries::new("mean − 95% CI");
    for (i, &(t, v)) in mean.points.iter().enumerate() {
        if let Some(Some(w)) = ci.get(i) {
            upper.points.push((t, v + w));
            lower.points.push((t, v - w));
        }
    }
    if upper.is_empty() {
        return ascii_chart(&[mean], width, height);
    }
    ascii_chart(&[mean, &upper, &lower], width, height)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prop_engine::{Duration, SimTime};

    fn mk(label: &str, vals: &[f64]) -> TimeSeries {
        let mut ts = TimeSeries::new(label);
        let mut t = SimTime::ZERO;
        for &v in vals {
            ts.push(t, v);
            t += Duration::from_minutes(10);
        }
        ts
    }

    #[test]
    fn chart_has_expected_dimensions() {
        let a = mk("falling", &[10.0, 8.0, 6.0, 5.0, 4.5]);
        let chart = ascii_chart(&[&a], 40, 10);
        let lines: Vec<&str> = chart.lines().collect();
        // height rows + frame + x labels + 1 legend line
        assert_eq!(lines.len(), 10 + 2 + 1);
        assert!(chart.contains("o = falling"));
    }

    #[test]
    fn both_series_appear() {
        let a = mk("a", &[1.0, 2.0, 3.0]);
        let b = mk("b", &[3.0, 2.0, 1.0]);
        let chart = ascii_chart(&[&a, &b], 30, 8);
        assert!(chart.contains('o'));
        assert!(chart.contains('+'));
        assert!(chart.contains("o = a"));
        assert!(chart.contains("+ = b"));
    }

    #[test]
    fn empty_input_is_graceful() {
        assert_eq!(ascii_chart(&[], 30, 8), "(no data)\n");
        let empty = TimeSeries::new("e");
        assert_eq!(ascii_chart(&[&empty], 30, 8), "(no data)\n");
    }

    #[test]
    fn band_chart_renders_three_series_when_ci_exists() {
        let mean = mk("mean", &[10.0, 8.0, 6.0]);
        let ci = vec![Some(1.0), Some(0.5), Some(0.25)];
        let chart = ascii_band_chart(&mean, &ci, 40, 10);
        assert!(chart.contains("o = mean"));
        assert!(chart.contains("+ = mean + 95% CI"));
        assert!(chart.contains("x = mean − 95% CI"));
    }

    #[test]
    fn band_chart_degrades_to_plain_when_ci_is_null() {
        let mean = mk("mean", &[10.0, 8.0, 6.0]);
        let chart = ascii_band_chart(&mean, &[None, None, None], 40, 10);
        assert!(chart.contains("o = mean"));
        assert!(!chart.contains("95% CI"));
        // Short or empty ci slices are also fine.
        let chart = ascii_band_chart(&mean, &[], 40, 10);
        assert!(chart.contains("o = mean"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let c = mk("const", &[5.0, 5.0, 5.0]);
        let chart = ascii_chart(&[&c], 30, 8);
        assert!(chart.contains('o'));
    }

    #[test]
    fn extremes_land_on_frame_rows() {
        let a = mk("line", &[0.0, 10.0]);
        let chart = ascii_chart(&[&a], 20, 8);
        let lines: Vec<&str> = chart.lines().collect();
        // Max value near the top row, min near the bottom row (with 5%
        // padding they sit one row in at most).
        let top_two = format!("{}{}", lines[0], lines[1]);
        let bottom_two = format!("{}{}", lines[6], lines[7]);
        assert!(top_two.contains('o'));
        assert!(bottom_two.contains('o'));
    }
}
