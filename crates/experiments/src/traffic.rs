//! Scripted-traffic experiments: replaying a production traffic plane
//! against the PROP drivers.
//!
//! A [`prop_faults::Scenario`] bundles topology + population +
//! [`TrafficScript`] + `FaultScript` under one seed. This module compiles
//! the script into a [`prop_workloads::CompiledTraffic`] plane and pumps it
//! through any [`ChurnDriver`] — the synchronous [`ProtocolSim`] (PROP-G or
//! PROP-O), the asynchronous [`AsyncProtocolSim`], or the selfish baseline
//! — interleaving scripted joins/leaves/lookups with protocol execution
//! exactly the way the A2 ablation interleaves its Poisson trace.
//!
//! Everything is deterministic: the plane is a pure function of
//! `(script, seed)`, the apply-side RNG is a labelled fork of the scenario
//! seed, and measurement uses the deterministic parallel plane — so the
//! same scenario file replays byte-for-byte on any worker count
//! (`tests/traffic_replay.rs` pins this).

use crate::setup::{Scale, Scenario, Topology};
use prop_baselines::selfish::{SelfishConfig, SelfishSim};
use prop_core::{
    AsyncProtocolSim, ChurnDriver, PropConfig, ProtocolSim, TrafficCounters, TrafficEvent,
    TrafficPlane,
};
use prop_engine::{Duration, SimTime};
use prop_faults::{transit_bisection, Scenario as ScenarioSpec};
use prop_metrics::{link_stretch, par_path_stretch, StretchSummary, TimeSeries, TrafficReport};
use prop_netsim::oracle::MemberIdx;
use prop_overlay::gnutella::Gnutella;
use prop_overlay::Slot;
use prop_workloads::traffic::script::PHASES;
use prop_workloads::{CompiledTraffic, TrafficScript};
use serde::{Deserialize, Serialize};

/// Which driver consumes the traffic plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficDriver {
    /// Synchronous driver, PROP-G policy.
    PropG,
    /// Synchronous driver, PROP-O policy.
    PropO,
    /// Asynchronous driver (PROP-O policy, per-node clocks).
    Async,
    /// The §3.1 selfish-rewiring strawman.
    Selfish,
}

impl TrafficDriver {
    pub fn parse(s: &str) -> Option<TrafficDriver> {
        match s {
            "prop-g" | "sync" => Some(TrafficDriver::PropG),
            "prop-o" => Some(TrafficDriver::PropO),
            "async" => Some(TrafficDriver::Async),
            "selfish" => Some(TrafficDriver::Selfish),
            _ => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            TrafficDriver::PropG => "prop-g",
            TrafficDriver::PropO => "prop-o",
            TrafficDriver::Async => "async",
            TrafficDriver::Selfish => "selfish",
        }
    }
}

/// One driver's run of one scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrafficRunReport {
    pub scenario: String,
    pub driver: String,
    pub seed: u64,
    /// Per-sample-window mean path stretch of the scripted lookups.
    pub series: TimeSeries,
    /// Per-phase and per-domain accounting.
    pub report: TrafficReport,
    /// Events the compiled plane emitted (applied + suppressed).
    pub emitted: TrafficCounters,
    pub final_link_stretch: f64,
    pub always_connected: bool,
}

/// Wrapper giving the selfish baseline the [`ChurnDriver`] surface (the
/// trait lives in prop-core, the sim in prop-baselines — neither crate
/// knows the other, so the glue sits here).
struct SelfishDriver(SelfishSim);

impl ChurnDriver for SelfishDriver {
    fn run_until(&mut self, deadline: SimTime) {
        self.0.run_until(deadline);
    }
    fn now(&self) -> SimTime {
        self.0.now()
    }
    fn net(&self) -> &prop_overlay::OverlayNet {
        self.0.net()
    }
    fn net_mut(&mut self) -> &mut prop_overlay::OverlayNet {
        self.0.net_mut()
    }
    fn handle_join(&mut self, slot: Slot) {
        self.0.handle_join(slot);
    }
    fn handle_leave(&mut self, slot: Slot, affected: &[Slot]) {
        self.0.handle_leave(slot, affected);
    }
}

/// Resolve a scenario's topology label to the [`Topology`] preset.
pub fn topology_from_label(label: &str) -> Topology {
    [Topology::TsLarge, Topology::TsSmall, Topology::Tiny]
        .into_iter()
        .find(|t| t.label() == label)
        .unwrap_or_else(|| panic!("unknown topology label {label:?}"))
}

/// Run one scenario on one driver. Scripted lookups become the stretch
/// workload; scripted joins/leaves flow through the driver's churn entry
/// points (which refresh `m_default`); faults, if scripted, ride the
/// transit-bisection fault plane (ignored by the selfish baseline, which
/// has no message plane).
pub fn run_scenario(spec: &ScenarioSpec, driver: TrafficDriver, scale: Scale) -> TrafficRunReport {
    let scenario = Scenario::build(topology_from_label(&spec.topology), spec.n, spec.seed);
    let (gn, net) = scenario.gnutella();
    let mut plane = prop_workloads::compile(&spec.traffic, spec.seed);
    let mut rng = scenario.rng("traffic-sim");

    let fault_plane = || {
        let sides = transit_bisection(scenario.phys(), &scenario.oracle);
        Box::new(prop_faults::compile(&spec.faults, &sides, spec.seed))
    };

    let (series, report, always_connected, final_link_stretch) = match driver {
        TrafficDriver::PropG | TrafficDriver::PropO => {
            let cfg = match driver {
                TrafficDriver::PropG => PropConfig::prop_g(),
                _ => PropConfig::prop_o(),
            };
            let mut sim = ProtocolSim::new(net, cfg, &mut rng);
            if !spec.faults.events.is_empty() {
                sim.set_fault_plane(fault_plane());
            }
            drive(&mut sim, &gn, spec, &scenario, &mut plane, scale, |s| {
                let o = s.overhead();
                (o.trials, o.total_msgs())
            })
        }
        TrafficDriver::Async => {
            let mut sim = AsyncProtocolSim::new(net, PropConfig::prop_o(), &mut rng);
            if !spec.faults.events.is_empty() {
                sim.set_fault_plane(fault_plane());
            }
            drive(&mut sim, &gn, spec, &scenario, &mut plane, scale, |s| {
                let st = s.stats();
                (st.launched, st.exchanges)
            })
        }
        TrafficDriver::Selfish => {
            let mut sim = SelfishDriver(SelfishSim::new(net, SelfishConfig::default(), &mut rng));
            drive(&mut sim, &gn, spec, &scenario, &mut plane, scale, |s| (s.0.rewires, 0))
        }
    };

    TrafficRunReport {
        scenario: spec.name.clone(),
        driver: driver.label().to_string(),
        seed: spec.seed,
        series,
        report,
        emitted: plane.counters(),
        final_link_stretch,
        always_connected,
    }
}

/// Run the headline comparison: PROP-G vs PROP-O vs selfish on the same
/// scenario (same plane, same apply-side RNG streams).
pub fn run_comparison(spec: &ScenarioSpec, scale: Scale) -> Vec<TrafficRunReport> {
    [TrafficDriver::PropG, TrafficDriver::PropO, TrafficDriver::Selfish]
        .into_iter()
        .map(|d| run_scenario(spec, d, scale))
        .collect()
}

/// The generic pump: interleave plane events with protocol execution, one
/// sample window at a time; measure the window's scripted lookups with the
/// deterministic parallel stretch plane; attribute everything to diurnal
/// phases. `progress` reads the driver's cumulative (trials, msgs).
fn drive<S: ChurnDriver>(
    sim: &mut S,
    gn: &Gnutella,
    spec: &ScenarioSpec,
    scenario: &Scenario,
    plane: &mut CompiledTraffic,
    scale: Scale,
    progress: impl Fn(&S) -> (u64, u64),
) -> (TimeSeries, TrafficReport, bool, f64) {
    let phys = scenario.phys();
    let num_domains = (phys.num_transit_domains().max(1)).min(u16::MAX as usize) as u16;
    // A member's region never changes; slots are resolved through the
    // placement at apply time (joins reuse departed members).
    let member_domain: Vec<u16> = (0..spec.n)
        .map(|m| phys.transit_domain_of(scenario.oracle.host(m)).unwrap_or(0) % num_domains)
        .collect();
    // Popularity rank → holder slot, fixed for the run.
    let ranking: Vec<Slot> = {
        let mut slots = scenario.all_slots();
        scenario.rng("traffic-ranking").shuffle(&mut slots);
        slots
    };
    let mut churn_rng = scenario.rng("traffic-churn");

    let mut report = TrafficReport::new(&PHASES, num_domains);
    let mut series = TimeSeries::new("scripted-lookup path stretch");
    let mut absent: Vec<MemberIdx> = Vec::new();
    let mut window_pairs: Vec<(Slot, Slot)> = Vec::new();
    let mut always_connected = true;
    let (mut last_trials, mut last_msgs) = progress(sim);

    let horizon = Duration::from_millis(spec.traffic.horizon_ms);
    let step = scale.sample_every();
    let mut t = SimTime::ZERO;
    while t.since(SimTime::ZERO) < horizon {
        let window_phase = spec.traffic.phase_of_ms(t.as_millis());
        let deadline = t + step;
        while let Some((et, ev)) = plane.next_event(deadline) {
            sim.run_until(et);
            let phase = spec.traffic.phase_of_ms(et.as_millis());
            match ev {
                TrafficEvent::Leave { domain } => {
                    let domain = domain % num_domains;
                    let live: Vec<Slot> = sim.net().graph().live_slots().collect();
                    if live.len() <= 8 {
                        report.record_suppressed(phase);
                        continue;
                    }
                    let in_domain: Vec<Slot> = live
                        .iter()
                        .copied()
                        .filter(|&s| member_domain[sim.net().peer(s)] == domain)
                        .collect();
                    let pool = if in_domain.is_empty() { &live } else { &in_domain };
                    let victim = *churn_rng.pick(pool).unwrap();
                    let peer = sim.net().peer(victim);
                    let affected: Vec<Slot> = sim.net().graph().neighbors(victim).to_vec();
                    gn.leave(sim.net_mut(), victim, &mut churn_rng);
                    sim.handle_leave(victim, &affected);
                    absent.push(peer);
                    report.record_leave(phase, member_domain[peer]);
                    always_connected &= sim.net().graph().is_connected();
                }
                TrafficEvent::Join { domain } => {
                    let domain = domain % num_domains;
                    if absent.is_empty() {
                        report.record_suppressed(phase);
                        continue;
                    }
                    // Prefer rejoining a peer homed in the scripted region;
                    // fall back to the most recent departure.
                    let pos = absent
                        .iter()
                        .position(|&p| member_domain[p] == domain)
                        .unwrap_or(absent.len() - 1);
                    let peer = absent.swap_remove(pos);
                    let slot = gn.join(sim.net_mut(), peer, &mut churn_rng);
                    sim.handle_join(slot);
                    report.record_join(phase, member_domain[peer]);
                    always_connected &= sim.net().graph().is_connected();
                }
                TrafficEvent::Lookup { domain, rank } => {
                    let domain = domain % num_domains;
                    let dst = ranking[rank as usize % ranking.len()];
                    if !sim.net().graph().is_alive(dst) {
                        report.record_suppressed(phase);
                        continue;
                    }
                    let in_domain: Vec<Slot> = sim
                        .net()
                        .graph()
                        .live_slots()
                        .filter(|&s| s != dst && member_domain[sim.net().peer(s)] == domain)
                        .collect();
                    let src = if in_domain.is_empty() {
                        let live: Vec<Slot> =
                            sim.net().graph().live_slots().filter(|&s| s != dst).collect();
                        match churn_rng.pick(&live) {
                            Some(&s) => s,
                            None => {
                                report.record_suppressed(phase);
                                continue;
                            }
                        }
                    } else {
                        *churn_rng.pick(&in_domain).unwrap()
                    };
                    window_pairs.push((src, dst));
                    report.record_lookup(phase, domain);
                }
            }
        }
        sim.run_until(deadline);
        t = deadline;

        let summary = if window_pairs.is_empty() {
            StretchSummary { mean: f64::NAN, delivered: 0, failed: 0, skipped: 0 }
        } else {
            par_path_stretch(sim.net(), gn, &window_pairs)
        };
        window_pairs.clear();
        let (trials, msgs) = progress(sim);
        report.record_window(
            window_phase,
            &summary,
            trials.saturating_sub(last_trials),
            msgs.saturating_sub(last_msgs),
        );
        (last_trials, last_msgs) = (trials, msgs);
        if summary.delivered > 0 {
            series.push(t, summary.mean);
        }
    }

    let final_link_stretch = link_stretch(sim.net());
    (series, report, always_connected, final_link_stretch)
}

/// Built-in scenarios for the `traffic` binary, the sweep orchestrator,
/// and CI: the two committed example scripts, regenerated at any scale.
/// `topology`/`n` override the scale defaults (the sweep does this for its
/// tiny test fixtures).
pub fn builtin_scenario(
    name: &str,
    scale: Scale,
    seed: u64,
    topology: Option<Topology>,
    n: Option<usize>,
) -> ScenarioSpec {
    let topo = topology.unwrap_or(match scale {
        Scale::Paper => Topology::TsLarge,
        Scale::Quick => Topology::TsSmall,
    });
    let n = n.unwrap_or(scale.default_n());
    let horizon_ms = scale.horizon().as_millis();
    // Compress a full 24-hour diurnal day into the run.
    let hour_ms = (horizon_ms / prop_workloads::traffic::HOURS_PER_DAY).max(1);
    let catalog = (n as u32 / 2).max(10);
    // Total churn matches the A2 ablation (n/100 per minute across the
    // overlay); lookups refill the scale's per-sample workload.
    let churn_per_min = n as f64 / 100.0 / 4.0;
    let lookups_per_min = scale.lookups_per_sample() as f64 * 60_000.0
        / scale.sample_every().as_millis() as f64
        / 4.0;
    let script = match name {
        "diurnal-regional" => TrafficScript::preset_diurnal_regional(
            hour_ms,
            horizon_ms,
            catalog,
            churn_per_min,
            lookups_per_min,
        ),
        "flash-crowd" => TrafficScript::preset_flash_crowd(
            hour_ms,
            horizon_ms,
            catalog,
            churn_per_min,
            lookups_per_min,
        ),
        other => panic!("unknown builtin scenario {other:?} (try diurnal-regional, flash-crowd)"),
    };
    ScenarioSpec::new(name, topo.label(), n, seed, script)
}

/// Load a scenario bundle from a JSON file (see `examples/*.json`).
pub fn load_scenario(path: &str) -> ScenarioSpec {
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read scenario {path}: {e}"));
    serde_json::from_str(&json).unwrap_or_else(|e| panic!("cannot parse scenario {path}: {e}"))
}

/// Load either a full [`ScenarioSpec`] bundle or a bare [`TrafficScript`]
/// from JSON (the `--traffic` flag accepts both). A bare script is wrapped
/// in a scenario named after the file, at the scale's default topology and
/// population, under `seed`. A full bundle keeps its own seed — it *is*
/// the reproducible unit.
pub fn load_script_or_scenario(path: &str, scale: Scale, seed: u64) -> ScenarioSpec {
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read scenario {path}: {e}"));
    if let Ok(spec) = serde_json::from_str::<ScenarioSpec>(&json) {
        return spec;
    }
    let script: TrafficScript = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("{path} is neither a Scenario nor a TrafficScript: {e}"));
    let topo = match scale {
        Scale::Paper => Topology::TsLarge,
        Scale::Quick => Topology::TsSmall,
    };
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("scripted")
        .to_string();
    ScenarioSpec::new(name, topo.label(), scale.default_n(), seed, script)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(seed: u64) -> ScenarioSpec {
        // A compressed day over the tiny topology: 24 "hours" of 25 s each,
        // sampled by Quick-scale 5-minute windows (2 windows total).
        let script = TrafficScript::preset_diurnal_regional(25_000, 600_000, 12, 0.8, 12.0);
        ScenarioSpec::new("tiny-diurnal", "tiny", 24, seed, script)
    }

    #[test]
    fn scripted_run_applies_traffic_and_stays_connected() {
        let r = run_scenario(&tiny_spec(7), TrafficDriver::PropO, Scale::Quick);
        assert!(r.always_connected, "overlay disconnected under scripted churn");
        assert!(r.emitted.total() > 0, "plane emitted nothing");
        assert!(r.report.total_applied() > 0, "nothing applied");
        assert!(r.report.phases.iter().map(|p| p.lookups).sum::<u64>() > 0);
        assert!(r.final_link_stretch.is_finite() && r.final_link_stretch > 0.0);
        assert!(!r.series.is_empty(), "no stretch samples");
    }

    #[test]
    fn same_seed_replays_identically() {
        let a = run_scenario(&tiny_spec(9), TrafficDriver::PropG, Scale::Quick);
        let b = run_scenario(&tiny_spec(9), TrafficDriver::PropG, Scale::Quick);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same (scenario, seed) must replay byte-for-byte"
        );
    }

    #[test]
    fn selfish_driver_consumes_the_same_plane() {
        let r = run_scenario(&tiny_spec(11), TrafficDriver::Selfish, Scale::Quick);
        assert_eq!(r.driver, "selfish");
        assert!(r.always_connected);
        assert!(r.report.total_applied() > 0);
    }

    #[test]
    fn builtin_scenarios_build_at_quick_scale() {
        let d = builtin_scenario("diurnal-regional", Scale::Quick, 1, None, None);
        assert_eq!(d.topology, "ts-small");
        assert_eq!(d.traffic.domains.len(), 4);
        assert_eq!(d.traffic.buckets(), 24, "a full compressed day");
        let f = builtin_scenario("flash-crowd", Scale::Quick, 1, Some(Topology::Tiny), Some(24));
        assert_eq!(f.n, 24);
        assert_eq!(f.traffic.flash_crowds.len(), 2);
    }

    #[test]
    fn driver_labels_round_trip() {
        for d in [
            TrafficDriver::PropG,
            TrafficDriver::PropO,
            TrafficDriver::Async,
            TrafficDriver::Selfish,
        ] {
            assert_eq!(TrafficDriver::parse(d.label()), Some(d));
        }
        assert_eq!(TrafficDriver::parse("sync"), Some(TrafficDriver::PropG));
        assert_eq!(TrafficDriver::parse("nope"), None);
    }
}
