//! Plain-text and JSON reporting for the experiment binaries.
//!
//! Every `fig*`/`ablation` binary prints the series it produced (the same
//! rows the paper plots) and drops a JSON copy under `results/` so
//! EXPERIMENTS.md numbers can be traced to a file.

use prop_metrics::{MetricSummary, TimeSeries};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

/// Print a titled block of labelled time series as aligned columns:
/// one row per sample time, one column per series.
pub fn print_series_table(title: &str, curves: &[&TimeSeries]) {
    println!("\n=== {title} ===");
    if curves.is_empty() || curves[0].is_empty() {
        println!("(no data)");
        return;
    }
    print!("{:>8}", "min");
    for c in curves {
        print!("  {:>22}", truncate(&c.label, 22));
    }
    println!();
    let rows = curves.iter().map(|c| c.len()).max().unwrap_or(0);
    for r in 0..rows {
        let t = curves.iter().find_map(|c| c.points.get(r).map(|&(t, _)| t)).unwrap_or(f64::NAN);
        print!("{t:>8.1}");
        for c in curves {
            match c.points.get(r) {
                Some(&(_, v)) => print!("  {v:>22.3}"),
                None => print!("  {:>22}", "-"),
            }
        }
        println!();
    }
}

/// Print per-curve start/end/improvement summary lines.
pub fn print_improvements(curves: &[(&str, f64, f64)]) {
    for (label, first, last) in curves {
        let imp = if *first != 0.0 { (first - last) / first * 100.0 } else { 0.0 };
        println!("  {label:<28} {first:>10.2} → {last:>10.2}   ({imp:+.1}%)");
    }
}

/// Print the fault-sweep grid: one row per (loss, partition) cell, with the
/// driver's progress counters (including `stale_aborts` and `faulted`) next
/// to the plane's own counters and the achieved stretch improvement.
pub fn print_fault_table(title: &str, rows: &[crate::faults::FaultSweepRow]) {
    println!("\n=== {title} ===");
    if rows.is_empty() {
        println!("(no data)");
        return;
    }
    println!(
        "{:>7} {:>7} {:>9} {:>9} {:>8} {:>7} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "loss%",
        "part s",
        "launched",
        "exchange",
        "no-gain",
        "stale",
        "faulted",
        "drops",
        "crashed",
        "part ms",
        "improv%"
    );
    for r in rows {
        println!(
            "{:>7.1} {:>7} {:>9} {:>9} {:>8} {:>7} {:>8} {:>8} {:>8} {:>9} {:>8.1}",
            r.loss_pct,
            r.partition_secs,
            r.launched,
            r.exchanges,
            r.no_gain,
            r.stale_aborts,
            r.faulted,
            r.drops,
            r.crashed_aborts,
            r.partition_ms,
            r.improvement_pct
        );
    }
}

/// Print a sweep aggregate's metric summaries: one row per headline
/// metric with mean, sample stddev, and the 95% CI half-width (`n/a` on
/// single-seed sweeps, where the CI is null by design).
pub fn print_ci_table(title: &str, metrics: &BTreeMap<String, MetricSummary>) {
    println!("\n=== {title} ===");
    if metrics.is_empty() {
        println!("(no data)");
        return;
    }
    println!("{:<44} {:>4} {:>12} {:>12} {:>12}", "metric", "n", "mean", "stddev", "95% CI ±");
    for (name, s) in metrics {
        let ci = s.ci95.map_or("n/a".to_string(), |w| format!("{w:.4}"));
        println!(
            "{:<44} {:>4} {:>12.4} {:>12.4} {:>12}",
            truncate(name, 44),
            s.n,
            s.mean,
            s.stddev,
            ci
        );
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

/// Serialize `value` to `results/<name>.json` (best effort: failures are
/// reported but never abort the run).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("results");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Shared CLI convention for the experiment binaries:
/// `<bin> [panel] [--quick] [--seed N] [--seeds N] [--resume]
/// [--traffic <file.json>]`.
///
/// `--seeds N` turns the invocation into a seed-sharded Monte-Carlo sweep
/// (see [`crate::sweep`]); `--resume` continues an interrupted sweep of
/// the same configuration. `--traffic` points at a TrafficScript or
/// Scenario JSON for the binaries that accept scripted traffic (`fig6`,
/// `faults`, `traffic`).
pub struct Cli {
    pub panel: Option<String>,
    pub scale: crate::Scale,
    pub seed: u64,
    /// `--seeds N`: run the sweep orchestrator instead of a single seed.
    pub seeds: Option<usize>,
    /// `--resume`: continue an interrupted sweep (only with `--seeds`).
    pub resume: bool,
    /// `--traffic <path>`: scripted-traffic input for the binaries that
    /// support it (ignored by the others).
    pub traffic: Option<String>,
}

impl Cli {
    pub fn parse() -> Cli {
        let mut panel = None;
        let mut scale = crate::Scale::Paper;
        let mut seed = 1u64;
        let mut seeds = None;
        let mut resume = false;
        let mut traffic = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => scale = crate::Scale::Quick,
                "--seed" => {
                    seed =
                        args.next().and_then(|s| s.parse().ok()).expect("--seed needs an integer");
                }
                "--seeds" => {
                    seeds = Some(
                        args.next()
                            .and_then(|s| s.parse().ok())
                            .expect("--seeds needs a seed count"),
                    );
                }
                "--resume" => resume = true,
                "--traffic" => {
                    traffic = Some(args.next().expect("--traffic needs a JSON path"));
                }
                other if !other.starts_with('-') => panel = Some(other.to_string()),
                other => panic!("unknown flag {other}"),
            }
        }
        if resume && seeds.is_none() {
            panic!("--resume only makes sense with --seeds N");
        }
        Cli { panel, scale, seed, seeds, resume, traffic }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_behaviour() {
        assert_eq!(truncate("short", 22), "short");
        assert_eq!(truncate("abcdefghij", 5), "abcd…");
    }

    #[test]
    fn print_handles_empty() {
        // Just exercise the no-data paths for panics.
        print_series_table("empty", &[]);
        let ts = TimeSeries::new("x");
        print_series_table("empty2", &[&ts]);
        print_improvements(&[]);
    }
}
