//! G1 — the generality claim, head-on.
//!
//! "PROP-G, to the best of our knowledge, is the first scheme that can be
//! deployed effortlessly on both unstructured and structured P2P systems,
//! while preserving the logical topology." One table: the *same*
//! `prop_core::ProtocolSim` with the *same* configuration, run over six
//! overlay families, with the family's native quality metric before and
//! after, plus a structural checksum (route hop counts for DHTs; the
//! degree sequence for Gnutella) proving nothing but the placement moved.

use crate::setup::{Scale, Scenario, Topology};
use prop_core::{PropConfig, ProtocolSim};
use prop_metrics::{par_avg_lookup_latency, par_path_stretch};
use prop_overlay::can::Can;
use prop_overlay::kademlia::{Kademlia, KademliaParams};
use prop_overlay::pastry::{Pastry, PastryParams};
use prop_overlay::{Lookup, OverlayNet, Slot};
use prop_workloads::LookupGen;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One overlay family's before/after line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeneralityRow {
    pub overlay: String,
    pub metric: String,
    pub initial: f64,
    pub final_: f64,
    pub improvement: f64,
    /// Did the structural checksum (hops / degree sequence) survive
    /// unchanged? Must always be `true` for PROP-G.
    pub structure_preserved: bool,
}

fn optimize(scenario: &Scenario, net: OverlayNet, scale: Scale, label: &str) -> OverlayNet {
    let mut rng = scenario.rng(&format!("g1-{label}"));
    let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
    sim.run_for(scale.horizon());
    sim.into_net()
}

fn dht_row(
    scenario: &Scenario,
    scale: Scale,
    label: &str,
    overlay: impl Lookup + Sync,
    net: OverlayNet,
    pairs: &[(Slot, Slot)],
) -> GeneralityRow {
    let initial = par_path_stretch(&net, &overlay, pairs).mean;
    let hops_before: Vec<Option<u32>> =
        pairs.iter().map(|&(a, b)| overlay.lookup(&net, a, b).map(|o| o.hops)).collect();
    let net = optimize(scenario, net, scale, label);
    let final_ = par_path_stretch(&net, &overlay, pairs).mean;
    let hops_after: Vec<Option<u32>> =
        pairs.iter().map(|&(a, b)| overlay.lookup(&net, a, b).map(|o| o.hops)).collect();
    GeneralityRow {
        overlay: label.to_string(),
        metric: "path stretch".to_string(),
        initial,
        final_,
        improvement: (initial - final_) / initial,
        structure_preserved: hops_before == hops_after,
    }
}

/// Run PROP-G over every overlay family with identical protocol settings.
pub fn run(scale: Scale, seed: u64) -> Vec<GeneralityRow> {
    let topo = match scale {
        Scale::Paper => Topology::TsLarge,
        Scale::Quick => Topology::TsSmall,
    };
    let n = scale.default_n();
    let scenario = Scenario::build(topo, n, seed);
    let pairs = LookupGen::new(&scenario.rng("g1-lookups"))
        .uniform_pairs(&scenario.all_slots(), scale.lookups_per_sample());

    // Each closure builds, optimizes, and reports one family.
    let jobs: Vec<Box<dyn Fn() -> GeneralityRow + Sync + Send>> = vec![
        Box::new(|| {
            // Gnutella: flooding has no per-lookup route, so the metric is
            // mean lookup latency and the checksum is the degree sequence.
            let (gn, net) = scenario.gnutella();
            let initial = par_avg_lookup_latency(&net, &gn, &pairs).mean_ms;
            let degseq = net.graph().degree_sequence();
            let net = optimize(&scenario, net, scale, "gnutella");
            let final_ = par_avg_lookup_latency(&net, &gn, &pairs).mean_ms;
            GeneralityRow {
                overlay: "Gnutella".into(),
                metric: "avg lookup latency (ms)".into(),
                initial,
                final_,
                improvement: (initial - final_) / initial,
                structure_preserved: net.graph().degree_sequence() == degseq,
            }
        }),
        Box::new(|| {
            // Two-tier Gnutella: same flooding metric, leaf-aware relays.
            let mut rng = scenario.rng("g1-ultrapeer-build");
            let (up, net) = prop_overlay::ultrapeer::Ultrapeer::build(
                prop_overlay::ultrapeer::UltrapeerParams::default(),
                std::sync::Arc::clone(&scenario.oracle),
                &mut rng,
            );
            let initial = par_avg_lookup_latency(&net, &up, &pairs).mean_ms;
            let degseq = net.graph().degree_sequence();
            let net = optimize(&scenario, net, scale, "ultrapeer");
            let final_ = par_avg_lookup_latency(&net, &up, &pairs).mean_ms;
            GeneralityRow {
                overlay: "Gnutella-2T".into(),
                metric: "avg lookup latency (ms)".into(),
                initial,
                final_,
                improvement: (initial - final_) / initial,
                structure_preserved: net.graph().degree_sequence() == degseq,
            }
        }),
        Box::new(|| {
            let (chord, net) = scenario.chord();
            dht_row(&scenario, scale, "Chord", chord, net, &pairs)
        }),
        Box::new(|| {
            let mut rng = scenario.rng("g1-pastry-build");
            let (pastry, net) = Pastry::build(
                PastryParams::default(),
                std::sync::Arc::clone(&scenario.oracle),
                &mut rng,
            );
            dht_row(&scenario, scale, "Pastry", pastry, net, &pairs)
        }),
        Box::new(|| {
            let mut rng = scenario.rng("g1-kad-build");
            let (kad, net) = Kademlia::build(
                KademliaParams::default(),
                std::sync::Arc::clone(&scenario.oracle),
                &mut rng,
            );
            dht_row(&scenario, scale, "Kademlia", kad, net, &pairs)
        }),
        Box::new(|| {
            let mut rng = scenario.rng("g1-can-build");
            let (can, net) = Can::build(std::sync::Arc::clone(&scenario.oracle), &mut rng);
            dht_row(&scenario, scale, "CAN", can, net, &pairs)
        }),
    ];

    jobs.into_par_iter().map(|job| job()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_generality_improves_every_family() {
        let rows = run(Scale::Quick, 60);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.structure_preserved, "{}: PROP-G must not alter routes/degrees", r.overlay);
            assert!(r.improvement > 0.03, "{}: improvement {:.3}", r.overlay, r.improvement);
        }
    }
}
