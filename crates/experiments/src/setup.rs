//! Shared experiment scaffolding: topologies, scales, scenario builders.

use prop_engine::{Duration, SimRng};
use prop_netsim::{generate, LatencyOracle, OracleConfig, PhysGraph, TransitStubParams};
use prop_overlay::chord::{Chord, ChordParams};
use prop_overlay::gnutella::{Gnutella, GnutellaParams};
use prop_overlay::{OverlayNet, Slot};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which transit–stub preset backs the experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    TsLarge,
    TsSmall,
    /// Miniature topology for tests/benches.
    Tiny,
}

impl Topology {
    pub fn params(self) -> TransitStubParams {
        match self {
            Topology::TsLarge => TransitStubParams::ts_large(),
            Topology::TsSmall => TransitStubParams::ts_small(),
            Topology::Tiny => TransitStubParams::tiny(),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Topology::TsLarge => "ts-large",
            Topology::TsSmall => "ts-small",
            Topology::Tiny => "tiny",
        }
    }
}

/// Which latency-oracle tier an experiment forces. `Auto` lets the member
/// count pick through the config thresholds (the production default); the
/// others pin the tier regardless of size, so the same workload can be
/// compared across the dense, row-cache, and coordinate-embedded paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleTier {
    Auto,
    Dense,
    Cached,
    Embedded,
}

impl OracleTier {
    /// Parse an `--oracle-tier` argument.
    pub fn parse(s: &str) -> Option<OracleTier> {
        match s {
            "auto" => Some(OracleTier::Auto),
            "dense" => Some(OracleTier::Dense),
            "cached" | "row-cache" => Some(OracleTier::Cached),
            "embedded" | "coord-embed" => Some(OracleTier::Embedded),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            OracleTier::Auto => "auto",
            OracleTier::Dense => "dense",
            OracleTier::Cached => "cached",
            OracleTier::Embedded => "embedded",
        }
    }

    /// The forcing [`OracleConfig`], with the row cache (the tier itself on
    /// `Cached`, the escalation cache on `Embedded`) capped at
    /// `cache_capacity_bytes`.
    pub fn config(self, cache_capacity_bytes: usize) -> OracleConfig {
        match self {
            OracleTier::Auto => OracleConfig { cache_capacity_bytes, ..OracleConfig::default() },
            OracleTier::Dense => OracleConfig {
                dense_threshold: usize::MAX,
                embed_threshold: usize::MAX,
                cache_capacity_bytes,
                ..OracleConfig::default()
            },
            OracleTier::Cached => OracleConfig::cached(cache_capacity_bytes),
            OracleTier::Embedded => {
                OracleConfig { cache_capacity_bytes, ..OracleConfig::embedded() }
            }
        }
    }
}

/// Experiment scale: the paper's parameterization or a fast smoke-test one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// n = 1000 peers, 2 simulated hours, 10-minute sampling,
    /// 2,000 sampled lookups per measurement.
    Paper,
    /// n = 120 peers over the tiny... no — `ts-small` is still used where
    /// the panel demands it; 30 simulated minutes, 5-minute sampling,
    /// 400 sampled lookups.
    Quick,
}

impl Scale {
    pub fn default_n(self) -> usize {
        match self {
            Scale::Paper => 1000,
            Scale::Quick => 120,
        }
    }

    /// Total simulated time.
    pub fn horizon(self) -> Duration {
        match self {
            Scale::Paper => Duration::from_minutes(120),
            Scale::Quick => Duration::from_minutes(30),
        }
    }

    /// Interval between metric samples.
    pub fn sample_every(self) -> Duration {
        match self {
            Scale::Paper => Duration::from_minutes(10),
            Scale::Quick => Duration::from_minutes(5),
        }
    }

    /// Lookup pairs sampled per measurement point.
    pub fn lookups_per_sample(self) -> usize {
        match self {
            Scale::Paper => 2000,
            Scale::Quick => 400,
        }
    }
}

/// A ready-to-run physical substrate: topology + membership + oracle.
pub struct Scenario {
    pub topology: Topology,
    pub n: usize,
    pub seed: u64,
    pub oracle: Arc<LatencyOracle>,
    phys: PhysGraph,
    rng: SimRng,
}

impl Scenario {
    /// Generate the physical network, select `n` overlay members from its
    /// stub hosts, and precompute the latency oracle.
    pub fn build(topology: Topology, n: usize, seed: u64) -> Self {
        Self::build_with(topology, n, seed, &OracleConfig::default())
    }

    /// [`Scenario::build`] with an explicit oracle config — how the
    /// tier-comparison experiments pin a tier (see [`OracleTier::config`]).
    /// The RNG consumption is identical to `build`, so two scenarios that
    /// differ only in config share topology, membership, and overlays.
    pub fn build_with(topology: Topology, n: usize, seed: u64, cfg: &OracleConfig) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let phys = generate(&topology.params(), &mut rng);
        let oracle = Arc::new(LatencyOracle::select_and_build_with(&phys, n, &mut rng, cfg));
        Scenario { topology, n, seed, oracle, phys, rng }
    }

    /// The generated physical network (the fault experiments need it to
    /// compute transit-partition sides).
    pub fn phys(&self) -> &PhysGraph {
        &self.phys
    }

    /// A derived RNG stream for a named experiment stage.
    pub fn rng(&self, label: &str) -> SimRng {
        self.rng.fork(label)
    }

    /// Build the Gnutella overlay for this scenario.
    pub fn gnutella(&self) -> (Gnutella, OverlayNet) {
        let mut rng = self.rng("gnutella");
        Gnutella::build(GnutellaParams::default(), Arc::clone(&self.oracle), &mut rng)
    }

    /// Build the Chord overlay for this scenario.
    pub fn chord(&self) -> (Chord, OverlayNet) {
        let mut rng = self.rng("chord");
        Chord::build(ChordParams::default(), Arc::clone(&self.oracle), &mut rng)
    }

    /// Live slots of a freshly built overlay (0..n for both builders).
    pub fn all_slots(&self) -> Vec<Slot> {
        (0..self.n as u32).map(Slot).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_consistently() {
        let s = Scenario::build(Topology::Tiny, 20, 7);
        assert_eq!(s.oracle.len(), 20);
        let (_, g1) = s.gnutella();
        let (_, g2) = s.gnutella();
        // Same scenario ⇒ identical overlay builds.
        for slot in g1.graph().live_slots() {
            assert_eq!(g1.graph().neighbors(slot), g2.graph().neighbors(slot));
        }
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Quick.default_n() < Scale::Paper.default_n());
        assert!(Scale::Quick.horizon() < Scale::Paper.horizon());
        assert!(Scale::Quick.lookups_per_sample() < Scale::Paper.lookups_per_sample());
    }

    #[test]
    fn oracle_tier_parse_and_config_force_tiers() {
        for (s, t) in [
            ("auto", OracleTier::Auto),
            ("dense", OracleTier::Dense),
            ("cached", OracleTier::Cached),
            ("row-cache", OracleTier::Cached),
            ("embedded", OracleTier::Embedded),
            ("coord-embed", OracleTier::Embedded),
        ] {
            assert_eq!(OracleTier::parse(s), Some(t));
        }
        assert_eq!(OracleTier::parse("bogus"), None);

        let cap = 1 << 20;
        for (tier, expect) in [
            (OracleTier::Dense, "dense"),
            (OracleTier::Cached, "row-cache"),
            (OracleTier::Embedded, "coord-embed"),
        ] {
            let s = Scenario::build_with(Topology::Tiny, 16, 3, &tier.config(cap));
            assert_eq!(s.oracle.tier(), expect, "forcing {:?}", tier);
        }
    }

    #[test]
    fn forced_tiers_share_membership_with_auto() {
        // Same seed + topology ⇒ same hosts regardless of oracle config.
        let auto = Scenario::build(Topology::Tiny, 16, 5);
        let emb =
            Scenario::build_with(Topology::Tiny, 16, 5, &OracleTier::Embedded.config(1 << 20));
        for i in 0..16 {
            assert_eq!(auto.oracle.host(i), emb.oracle.host(i));
        }
    }

    #[test]
    fn chord_and_gnutella_share_membership() {
        let s = Scenario::build(Topology::Tiny, 15, 9);
        let (_, gn) = s.gnutella();
        let (_, ch) = s.chord();
        assert_eq!(gn.oracle().len(), ch.oracle().len());
        for i in 0..15 {
            assert_eq!(gn.oracle().host(i), ch.oracle().host(i));
        }
    }
}
