//! Figure 6 — *Effectiveness of PROP-G in a Chord environment.*
//!
//! Metric: **stretch** — per-lookup route latency over direct physical
//! latency, averaged over a sampled key workload (DHT routes are
//! well-defined, so stretch is measurable directly, unlike flooding).
//! Same three panels as Fig. 5: (a) TTL scale, (b) system size,
//! (c) physical topology. PROP-G's exchanges here are *identifier swaps* —
//! the ring, fingers, and every DHT guarantee are untouched.

use crate::setup::{Scale, Scenario, Topology};
use prop_core::{ProbeMode, PropConfig, ProtocolSim};
use prop_metrics::{par_path_stretch, TimeSeries};
use prop_workloads::{LookupGen, PopularityProcess, TrafficScript};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One plotted stretch curve plus the workload's disposition — how many of
/// the sampled pairs actually entered the mean at the final sample, and how
/// many were dropped as undelivered or co-located. A stretch mean over a
/// silently-shrunken workload would be biased; the counts make the
/// denominator auditable in the JSON output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StretchCurve {
    pub series: TimeSeries,
    /// Relative improvement start → end (0.25 = 25% lower).
    pub improvement: f64,
    /// Pairs delivered (and averaged) at the final sample.
    pub delivered: u64,
    /// Pairs the overlay failed to deliver at the final sample.
    pub failed: u64,
    /// Zero-physical-distance pairs excluded from the ratio.
    pub skipped: u64,
}

/// Run PROP-G on this scenario's Chord overlay and sample path stretch.
pub fn run_curve(
    scenario: &Scenario,
    cfg: PropConfig,
    scale: Scale,
    label: String,
) -> StretchCurve {
    run_curve_traced(scenario, cfg, scale, label).0
}

/// [`run_curve`] that also returns the driver's protocol [`Overhead`]
/// counters, so the sweep orchestrator can put error bars on message cost
/// per trial next to the stretch numbers.
///
/// [`Overhead`]: prop_core::Overhead
pub fn run_curve_traced(
    scenario: &Scenario,
    cfg: PropConfig,
    scale: Scale,
    label: String,
) -> (StretchCurve, prop_core::Overhead) {
    let (chord, net) = scenario.chord();
    let mut sim_rng = scenario.rng(&format!("fig6-sim-{label}"));
    let mut sim = ProtocolSim::new(net, cfg, &mut sim_rng);
    let live = scenario.all_slots();
    let pairs = LookupGen::new(&scenario.rng("fig6-lookups"))
        .uniform_pairs(&live, scale.lookups_per_sample());

    let mut series = TimeSeries::new(label);
    let step = scale.sample_every();
    let horizon = scale.horizon();
    let mut elapsed = prop_engine::Duration::ZERO;
    let mut summary = par_path_stretch(sim.net(), &chord, &pairs);
    series.push(sim.now(), summary.mean);
    while elapsed < horizon {
        sim.run_for(step);
        elapsed = elapsed + step;
        summary = par_path_stretch(sim.net(), &chord, &pairs);
        series.push(sim.now(), summary.mean);
    }
    let improvement = series.improvement().unwrap_or(0.0);
    let curve = StretchCurve {
        series,
        improvement,
        delivered: summary.delivered,
        failed: summary.failed,
        skipped: summary.skipped,
    };
    (curve, sim.overhead())
}

/// Fig. 6 under a scripted traffic plane (`fig6 --traffic <script.json>`):
/// each sample's workload follows the script's *time-varying* Zipf
/// popularity — exponent shifts and hot-set rotations included — instead
/// of the static uniform pair set, and the horizon is the script's. The
/// script's churn events are not applied on the Chord overlay (full
/// scenarios, churn included, run through the `traffic` binary against the
/// Gnutella drivers); what this curve isolates is how PROP-G's stretch
/// tracks a shifting popularity distribution.
pub fn run_curve_scripted(
    scenario: &Scenario,
    cfg: PropConfig,
    script: &TrafficScript,
    scale: Scale,
    label: String,
) -> (StretchCurve, prop_core::Overhead) {
    let (chord, net) = scenario.chord();
    let mut sim_rng = scenario.rng(&format!("fig6-sim-{label}"));
    let mut sim = ProtocolSim::new(net, cfg, &mut sim_rng);
    let live = scenario.all_slots();
    let ranking: Vec<prop_overlay::Slot> = {
        let mut slots = scenario.all_slots();
        scenario.rng("fig6-ranking").shuffle(&mut slots);
        slots
    };
    let pop = PopularityProcess::new(script);
    let mut lookup_rng = scenario.rng("fig6-scripted-lookups");
    let count = scale.lookups_per_sample();

    let mut series = TimeSeries::new(label);
    let step = scale.sample_every();
    let horizon = prop_engine::Duration::from_millis(script.horizon_ms);
    let mut elapsed = prop_engine::Duration::ZERO;
    let mut sample = |sim: &ProtocolSim, rng: &mut prop_engine::SimRng, t_ms: u64| {
        let pairs = pop.pairs_at(t_ms, &live, &ranking, count, rng);
        par_path_stretch(sim.net(), &chord, &pairs)
    };
    let mut summary = sample(&sim, &mut lookup_rng, 0);
    series.push(sim.now(), summary.mean);
    while elapsed < horizon {
        sim.run_for(step);
        elapsed = elapsed + step;
        summary = sample(&sim, &mut lookup_rng, elapsed.as_millis());
        series.push(sim.now(), summary.mean);
    }
    let improvement = series.improvement().unwrap_or(0.0);
    let curve = StretchCurve {
        series,
        improvement,
        delivered: summary.delivered,
        failed: summary.failed,
        skipped: summary.skipped,
    };
    (curve, sim.overhead())
}

/// Panel (a): vary the probe TTL at fixed n.
pub fn panel_a(scale: Scale, seed: u64) -> Vec<StretchCurve> {
    let n = scale.default_n();
    let topo = default_topology(scale);
    let scenario = Scenario::build(topo, n, seed);
    let variants: Vec<(String, ProbeMode)> = vec![
        (format!("n={n}, nhops=1"), ProbeMode::Walk { nhops: 1 }),
        (format!("n={n}, nhops=2"), ProbeMode::Walk { nhops: 2 }),
        (format!("n={n}, nhops=4"), ProbeMode::Walk { nhops: 4 }),
        (format!("n={n}, random"), ProbeMode::Random),
    ];
    variants
        .into_par_iter()
        .map(|(label, probe)| {
            run_curve(&scenario, PropConfig::prop_g().with_probe(probe), scale, label)
        })
        .collect()
}

/// Panel (b): vary the overlay size at `nhops = 2`.
pub fn panel_b(scale: Scale, seed: u64) -> Vec<StretchCurve> {
    let sizes: Vec<usize> = match scale {
        Scale::Paper => vec![300, 500, 1000, 3000],
        Scale::Quick => vec![60, 120, 240],
    };
    let topo = default_topology(scale);
    sizes
        .into_par_iter()
        .map(|n| {
            let scenario = Scenario::build(topo, n, seed);
            run_curve(&scenario, PropConfig::prop_g(), scale, format!("n={n}, nhops=2"))
        })
        .collect()
}

/// Panel (c): `ts-large` vs `ts-small` at the default n.
pub fn panel_c(scale: Scale, seed: u64) -> Vec<StretchCurve> {
    let n = scale.default_n();
    [Topology::TsLarge, Topology::TsSmall]
        .into_par_iter()
        .map(|topo| {
            let scenario = Scenario::build(topo, n, seed);
            run_curve(&scenario, PropConfig::prop_g(), scale, topo.label().to_string())
        })
        .collect()
}

fn default_topology(scale: Scale) -> Topology {
    match scale {
        Scale::Paper => Topology::TsLarge,
        Scale::Quick => Topology::TsSmall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_panel_a_reduces_stretch() {
        let curves = panel_a(Scale::Quick, 45);
        assert_eq!(curves.len(), 4);
        for c in &curves {
            // Stretch stays ≥ 1 (routes can't beat the direct path).
            assert!(c.series.min_value().unwrap() >= 1.0);
        }
        for c in &curves[1..] {
            assert!(c.improvement > 0.02, "{}: {:.3}", c.series.label, c.improvement);
        }
    }

    #[test]
    fn curves_account_for_every_sampled_pair() {
        let curves = panel_c(Scale::Quick, 48);
        for c in &curves {
            assert_eq!(
                c.delivered + c.failed + c.skipped,
                Scale::Quick.lookups_per_sample() as u64,
                "{}: workload disposition must cover the whole sample",
                c.series.label
            );
            assert!(c.delivered > 0, "{}: nothing delivered", c.series.label);
        }
    }

    #[test]
    fn scripted_curve_is_deterministic_and_sane() {
        let scenario = Scenario::build(Topology::Tiny, 24, 49);
        let script = TrafficScript::preset_diurnal_regional(60_000, 10 * 60_000, 12, 0.5, 4.0);
        let run = || {
            run_curve_scripted(
                &scenario,
                PropConfig::prop_g(),
                &script,
                Scale::Quick,
                "scripted".into(),
            )
        };
        let (c, overhead) = run();
        assert!(!c.series.is_empty());
        assert!(c.series.min_value().unwrap() >= 1.0, "routes can't beat the direct path");
        assert!(overhead.trials > 0);
        let (c2, _) = run();
        assert_eq!(
            serde_json::to_string(&c).unwrap(),
            serde_json::to_string(&c2).unwrap(),
            "scripted fig6 must replay identically"
        );
    }

    #[test]
    fn quick_panel_b_improves_at_every_size() {
        for c in panel_b(Scale::Quick, 46) {
            assert!(c.improvement > 0.0, "{}: {:.3}", c.series.label, c.improvement);
        }
    }

    #[test]
    fn quick_panel_c_ts_large_wins() {
        let curves = panel_c(Scale::Quick, 47);
        let large = &curves[0];
        let small = &curves[1];
        // The paper's claim: the large-backbone topology benefits more.
        assert!(
            large.improvement > small.improvement * 0.8,
            "ts-large {:.3} vs ts-small {:.3}",
            large.improvement,
            small.improvement
        );
    }
}
