//! Robustness sweeps: PROP-G under scripted faults.
//!
//! Two panels, both on the async driver (the one that exposes in-flight
//! trials to the fault plane):
//!
//! * [`sweep`] — loss rate × partition duration grid. Each cell replays a
//!   [`FaultScript`] (uniform loss from t = 0, one transit bisection a third
//!   of the way in) and reports protocol progress (exchanges, aborts,
//!   faulted trials) alongside the plane's own counters and the achieved
//!   stretch improvement.
//! * [`recovery`] — an exchange-rate timeline across one partition + heal,
//!   sampled with the saturating windowed [`AsyncStats::since`] diff, so the
//!   collapse during the split and the recovery after the heal are visible.
//!
//! [`AsyncStats::since`]: prop_core::AsyncStats::since

use crate::setup::{Scale, Scenario, Topology};
use prop_core::{AsyncProtocolSim, PropConfig};
use prop_engine::{Duration, SimTime};
use prop_faults::{compile, transit_bisection, FaultScript};
use prop_metrics::{FaultReport, TimeSeries};
use serde::{Deserialize, Serialize};

fn topology_for(scale: Scale) -> Topology {
    match scale {
        Scale::Paper => Topology::TsLarge,
        Scale::Quick => Topology::TsSmall,
    }
}

/// Loss probabilities swept by the default grid.
pub const LOSS_RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];
/// Partition durations (seconds) swept by the default grid.
pub const PARTITION_SECS: [u64; 3] = [0, 30, 120];

/// One cell of the loss × partition grid.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultSweepRow {
    /// Scripted uniform loss probability, in percent.
    pub loss_pct: f64,
    /// Scripted partition duration (0 = no partition).
    pub partition_secs: u64,
    pub launched: u64,
    pub exchanges: u64,
    pub no_gain: u64,
    pub stale_aborts: u64,
    /// Trials the fault plane turned into failures (dropped probe or commit).
    pub faulted: u64,
    pub drops: u64,
    pub crashed_aborts: u64,
    /// Partition time the plane actually enforced, in ms.
    pub partition_ms: u64,
    pub stretch_initial: f64,
    pub stretch_final: f64,
    /// Stretch improvement in percent (positive = got better).
    pub improvement_pct: f64,
}

/// Run the default loss × partition grid at `scale`.
pub fn sweep(scale: Scale, seed: u64) -> Vec<FaultSweepRow> {
    sweep_with(
        topology_for(scale),
        scale.default_n(),
        scale.horizon(),
        seed,
        &LOSS_RATES,
        &PARTITION_SECS,
    )
}

/// The grid with every knob explicit (tests use a tiny configuration).
pub fn sweep_with(
    topology: Topology,
    n: usize,
    horizon: Duration,
    seed: u64,
    losses: &[f64],
    partitions: &[u64],
) -> Vec<FaultSweepRow> {
    let scenario = Scenario::build(topology, n, seed);
    let sides = transit_bisection(scenario.phys(), &scenario.oracle);
    let split_at = horizon.as_millis() / 3;
    let mut rows = Vec::new();
    for &loss in losses {
        for &psecs in partitions {
            let (_, net) = scenario.gnutella();
            let stretch_initial = net.stretch();
            let mut rng = scenario.rng(&format!("faults-sweep-{loss}-{psecs}"));
            let mut sim = AsyncProtocolSim::new(net, PropConfig::prop_g(), &mut rng);

            let mut script = FaultScript::new();
            if loss > 0.0 {
                script = script.loss(0, loss);
            }
            if psecs > 0 {
                script = script.partition(split_at, psecs * 1000);
            }
            if !script.events.is_empty() {
                sim.set_fault_plane(Box::new(compile(&script, &sides, seed)));
            }

            sim.run_until(SimTime(horizon.as_millis()));
            let stats = sim.stats();
            let counters = sim.fault_counters().unwrap_or_default();
            let stretch_final = sim.net().stretch();
            let improvement_pct = if stretch_initial != 0.0 {
                (stretch_initial - stretch_final) / stretch_initial * 100.0
            } else {
                0.0
            };
            rows.push(FaultSweepRow {
                loss_pct: loss * 100.0,
                partition_secs: psecs,
                launched: stats.launched,
                exchanges: stats.exchanges,
                no_gain: stats.no_gain,
                stale_aborts: stats.stale_aborts,
                faulted: stats.faulted,
                drops: counters.drops,
                crashed_aborts: counters.crashed_aborts,
                partition_ms: counters.partition_ms,
                stretch_initial,
                stretch_final,
                improvement_pct,
            });
        }
    }
    rows
}

/// [`recovery`] output: the rate timeline plus the run's fault totals.
#[derive(Clone, Debug, Serialize)]
pub struct RecoveryReport {
    /// Exchanges per minute, one point per sampling window.
    pub exchange_rate: TimeSeries,
    /// Plane totals for the whole run.
    pub faults: FaultReport,
    /// The scripted split: (start ms, heal ms).
    pub partition: (u64, u64),
}

/// Exchange-rate collapse and recovery across one transit partition.
pub fn recovery(scale: Scale, seed: u64) -> RecoveryReport {
    recovery_with(
        topology_for(scale),
        scale.default_n(),
        scale.horizon(),
        scale.sample_every(),
        seed,
    )
}

/// [`recovery`] with every knob explicit. The partition opens a third of
/// the way into the horizon and heals after a sixth of it.
pub fn recovery_with(
    topology: Topology,
    n: usize,
    horizon: Duration,
    window: Duration,
    seed: u64,
) -> RecoveryReport {
    let scenario = Scenario::build(topology, n, seed);
    let sides = transit_bisection(scenario.phys(), &scenario.oracle);
    let split_at = horizon.as_millis() / 3;
    let heal_after = horizon.as_millis() / 6;

    let (_, net) = scenario.gnutella();
    let mut rng = scenario.rng("faults-recovery");
    let mut sim = AsyncProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
    let script = FaultScript::new().partition(split_at, heal_after);
    sim.set_fault_plane(Box::new(compile(&script, &sides, seed)));

    let mut exchange_rate = TimeSeries::new("exchanges/min");
    let mut elapsed = Duration::ZERO;
    let mut last = sim.stats();
    while elapsed < horizon {
        sim.run_for(window);
        elapsed = elapsed + window;
        let diff = sim.stats().since(&last);
        let mins = window.as_millis() as f64 / 60_000.0;
        exchange_rate.push(sim.now(), diff.exchanges as f64 / mins);
        last = sim.stats();
    }

    let stats = sim.stats();
    let counters = sim.fault_counters().unwrap_or_default();
    RecoveryReport {
        exchange_rate,
        faults: FaultReport::from_counters(counters, stats.launched * 4),
        partition: (split_at, split_at + heal_after),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_reports_faults_and_partitions() {
        let rows =
            sweep_with(Topology::Tiny, 24, Duration::from_minutes(10), 3, &[0.0, 0.3], &[0, 60]);
        assert_eq!(rows.len(), 4);

        let clean = &rows[0];
        assert_eq!((clean.loss_pct, clean.partition_secs), (0.0, 0));
        assert_eq!(clean.faulted, 0, "no script ⇒ no faulted trials");
        assert_eq!(clean.drops + clean.partition_ms, 0);

        let lossy = rows.iter().find(|r| r.loss_pct > 0.0 && r.partition_secs == 0).unwrap();
        assert!(lossy.drops > 0, "30% loss must drop something");
        assert!(lossy.faulted > 0, "dropped messages must fail trials");
        // One trial can lose several of its messages, so drops ≥ faulted.
        assert!(lossy.drops >= lossy.faulted);

        let split = rows.iter().find(|r| r.partition_secs == 60).unwrap();
        assert_eq!(split.partition_ms, 60_000, "scripted split fits inside the horizon");
    }

    #[test]
    fn tiny_sweep_is_deterministic() {
        let a = sweep_with(Topology::Tiny, 24, Duration::from_minutes(8), 11, &[0.2], &[30]);
        let b = sweep_with(Topology::Tiny, 24, Duration::from_minutes(8), 11, &[0.2], &[30]);
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn tiny_recovery_covers_the_split() {
        let horizon = Duration::from_minutes(12);
        let r = recovery_with(Topology::Tiny, 24, horizon, Duration::from_minutes(2), 5);
        assert_eq!(r.exchange_rate.len(), 6);
        assert_eq!(r.partition, (horizon.as_millis() / 3, horizon.as_millis() / 2));
        assert!((r.faults.partition_secs - 120.0).abs() < 1e-9);
    }
}
