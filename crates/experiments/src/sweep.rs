//! Seed-sharded Monte-Carlo sweep orchestrator.
//!
//! Every figure in the reproduction is bit-deterministic per seed, so the
//! statistically honest way to spend cores is *across* runs, never inside
//! one: the orchestrator fans N independent seeds of an experiment over
//! the rayon pool, one complete deterministic run per seed (the parallel
//! measurement plane inside a run stays bit-identical on any worker
//! count, so sharding seeds on top of it changes nothing), and reduces
//! every headline metric to mean ± 95% CI ([`MetricSummary`], Student t
//! for small N).
//!
//! Mechanics:
//!
//! * **Seed derivation** — seed k of a sweep is drawn from
//!   `SimRng::seed_from(base_seed).fork_indexed("sweep-seed", k)`, the
//!   same derivation discipline the drivers use for per-trial streams:
//!   seeds are decorrelated but fully reproducible from `(base_seed, k)`.
//! * **Streaming records** — each finished seed writes
//!   `results/<sweep>/seed-<k>.json` (atomic tmp + rename) the moment it
//!   completes, so a killed sweep loses at most the in-flight seeds.
//! * **Resumable manifest** — `manifest.json` persists the config, a hash
//!   of it, and per-seed done/pending status with an FNV-64 digest of each
//!   record. `--resume` re-runs only the pending (or corrupted) seeds and
//!   refuses outright when the config hash changed: stale partial results
//!   can never leak into a differently-configured aggregate.
//! * **Aggregate** — `aggregate.json` carries a [`MetricSummary`] per
//!   headline metric and, for the curve experiments (fig5/fig6), a mean
//!   curve in the existing [`Curve`] shape with a [`CurveCi`] error-bar
//!   block. The aggregate is a pure fold over the per-seed records in
//!   index order — resuming an interrupted sweep reproduces it
//!   byte-for-byte.
//!
//! The `sweep` binary fronts this module; every figure binary also
//! accepts `--seeds N [--resume]` and delegates here.

use crate::fig5::{Curve, CurveCi};
use crate::setup::{Scale, Scenario, Topology};
use crate::{ablation, embed_agreement, faults, fig5, fig6, fig7, traffic};
use prop_core::PropConfig;
use prop_engine::SimRng;
use prop_metrics::{MetricSummary, TimeSeries};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Which experiment a sweep fans out. Each variant maps to one
/// representative deterministic unit run per seed (panel-independent: the
/// figure binaries still own per-panel single-seed output).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepExperiment {
    /// PROP-G on Gnutella — mean flooded-lookup latency curve.
    Fig5,
    /// PROP-G on Chord — path-stretch curve plus protocol overhead.
    Fig6,
    /// PROP-O vs PROP-G vs LTM under bimodal heterogeneity.
    Fig7,
    /// A1 per-adjustment overhead ablation.
    Ablation,
    /// Loss × partition robustness grid.
    Faults,
    /// Embedded-tier exchange-decision agreement.
    EmbedAgreement,
    /// Scripted diurnal-regional traffic: PROP-G vs PROP-O vs selfish,
    /// per-diurnal-phase stretch and overhead.
    Traffic,
}

impl SweepExperiment {
    /// Parse an `--experiment` argument.
    pub fn parse(s: &str) -> Option<SweepExperiment> {
        match s {
            "fig5" => Some(SweepExperiment::Fig5),
            "fig6" => Some(SweepExperiment::Fig6),
            "fig7" => Some(SweepExperiment::Fig7),
            "ablation" => Some(SweepExperiment::Ablation),
            "faults" => Some(SweepExperiment::Faults),
            "embed_agreement" => Some(SweepExperiment::EmbedAgreement),
            "traffic" => Some(SweepExperiment::Traffic),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            SweepExperiment::Fig5 => "fig5",
            SweepExperiment::Fig6 => "fig6",
            SweepExperiment::Fig7 => "fig7",
            SweepExperiment::Ablation => "ablation",
            SweepExperiment::Faults => "faults",
            SweepExperiment::EmbedAgreement => "embed_agreement",
            SweepExperiment::Traffic => "traffic",
        }
    }
}

/// Everything that determines a sweep's results. The manifest stores this
/// config plus its hash; any field changing between a manifest and a
/// `--resume` invocation refuses the resume.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    pub experiment: SweepExperiment,
    pub scale: Scale,
    /// Root seed the per-seed streams are derived from.
    pub base_seed: u64,
    /// Number of independent seeds.
    pub seeds: usize,
    /// Override the scale's default topology (tests use [`Topology::Tiny`];
    /// honored by the fig5/fig6 units, which build their own scenario).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub topology: Option<Topology>,
    /// Override the scale's default member count (fig5/fig6 units, and the
    /// embed-agreement member count).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub n: Option<usize>,
}

impl SweepConfig {
    pub fn new(experiment: SweepExperiment, scale: Scale, base_seed: u64, seeds: usize) -> Self {
        SweepConfig { experiment, scale, base_seed, seeds, topology: None, n: None }
    }

    /// Directory (under the sweep root) this config writes into.
    pub fn dir_name(&self) -> String {
        format!("sweep-{}-{}-s{}", self.experiment.label(), scale_label(self.scale), self.base_seed)
    }

    /// Stable FNV-64 hash of the canonical JSON form. Field order in the
    /// struct is fixed, so equal configs hash equally across runs and
    /// platforms.
    pub fn hash(&self) -> String {
        let json = serde_json::to_string(self).expect("config serializes");
        format!("{:016x}", fnv64(json.as_bytes()))
    }

    /// The u64 experiment seed for shard `k`: one draw from a
    /// `fork_indexed` stream off the base seed.
    pub fn seed_for(&self, k: usize) -> u64 {
        let root = SimRng::seed_from(self.base_seed);
        root.fork_indexed("sweep-seed", k as u64).range(0..u64::MAX)
    }
}

fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Paper => "paper",
        Scale::Quick => "quick",
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One seed's completed run: the headline metrics the aggregator reduces,
/// plus the experiment's full report for auditability.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SeedRecord {
    pub index: usize,
    pub seed: u64,
    /// Flat metric name → value. Keys are identical across seeds of one
    /// sweep (they depend only on the config), which is what makes the
    /// per-metric reduction well-defined.
    pub metrics: BTreeMap<String, f64>,
    /// The experiment's own report shape for this seed.
    pub payload: serde_json::Value,
}

/// Per-seed completion state in the manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum SeedStatus {
    Pending,
    Done,
}

/// One manifest row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SeedEntry {
    pub index: usize,
    /// The derived u64 experiment seed for this shard.
    pub seed: u64,
    pub status: SeedStatus,
    /// FNV-64 digest of the written `seed-<k>.json` bytes (done seeds
    /// only); a mismatch on resume re-runs the seed instead of trusting a
    /// truncated or hand-edited record.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub digest: Option<String>,
}

/// The on-disk resume state: `results/<sweep>/manifest.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepManifest {
    pub config: SweepConfig,
    pub config_hash: String,
    pub seeds: Vec<SeedEntry>,
}

impl SweepManifest {
    fn fresh(cfg: &SweepConfig) -> SweepManifest {
        let seeds = (0..cfg.seeds)
            .map(|k| SeedEntry {
                index: k,
                seed: cfg.seed_for(k),
                status: SeedStatus::Pending,
                digest: None,
            })
            .collect();
        SweepManifest { config: cfg.clone(), config_hash: cfg.hash(), seeds }
    }
}

/// The cross-seed reduction: `results/<sweep>/aggregate.json`. A pure
/// function of the per-seed records in index order — no clocks, no thread
/// counts — so interrupted-then-resumed sweeps reproduce it byte-for-byte.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepAggregate {
    pub experiment: String,
    pub scale: String,
    pub config_hash: String,
    pub base_seed: u64,
    /// The derived per-shard seeds, in index order.
    pub seeds: Vec<u64>,
    /// Every headline metric with mean, sample stddev, and 95% CI.
    pub metrics: BTreeMap<String, MetricSummary>,
    /// For the curve experiments (fig5/fig6): the pointwise-mean curve in
    /// the figure's own shape, with the [`CurveCi`] error-bar block.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub mean_curve: Option<Curve>,
}

/// What `run_sweep` did, beyond the files on disk.
pub struct SweepOutcome {
    /// The sweep directory (`<root>/<dir_name>`).
    pub dir: PathBuf,
    pub aggregate: SweepAggregate,
    /// Seeds executed by this invocation.
    pub ran: usize,
    /// Seeds reused from a prior interrupted run.
    pub reused: usize,
}

/// Why a sweep could not run.
#[derive(Debug)]
pub enum SweepError {
    Io(std::io::Error),
    /// `--resume` with no manifest on disk.
    NoManifest(PathBuf),
    /// Manifest or seed record exists but does not parse.
    Corrupt(String),
    /// `--resume` against a manifest written under a different config.
    ConfigChanged {
        manifest: String,
        requested: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "sweep I/O error: {e}"),
            SweepError::NoManifest(p) => {
                write!(f, "cannot resume: no manifest at {}", p.display())
            }
            SweepError::Corrupt(what) => write!(f, "sweep state is corrupt: {what}"),
            SweepError::ConfigChanged { manifest, requested } => write!(
                f,
                "refusing to resume: manifest config hash {manifest} does not match requested \
                 {requested} (the sweep on disk was produced by a different configuration; rerun \
                 without --resume to start over)"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}

fn seed_file(dir: &Path, k: usize) -> PathBuf {
    dir.join(format!("seed-{k}.json"))
}

fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

fn write_manifest(dir: &Path, m: &SweepManifest) -> std::io::Result<()> {
    let bytes = serde_json::to_vec_pretty(m).expect("manifest serializes");
    write_atomic(&dir.join("manifest.json"), &bytes)
}

fn load_manifest(dir: &Path) -> Result<SweepManifest, SweepError> {
    let path = dir.join("manifest.json");
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(_) => return Err(SweepError::NoManifest(path)),
    };
    serde_json::from_slice(&bytes)
        .map_err(|e| SweepError::Corrupt(format!("{}: {e}", path.display())))
}

/// Run (or resume) a sweep, writing all state under `<root>/<dir_name>`.
///
/// Without `resume`, any prior state for this config is discarded and
/// every seed runs. With `resume`, the on-disk manifest must exist and
/// carry the same config hash; done seeds with intact digests are reused,
/// everything else re-runs.
pub fn run_sweep(cfg: &SweepConfig, root: &Path, resume: bool) -> Result<SweepOutcome, SweepError> {
    assert!(cfg.seeds > 0, "a sweep needs at least one seed");
    let dir = root.join(cfg.dir_name());
    fs::create_dir_all(&dir)?;
    let hash = cfg.hash();

    let mut manifest = if resume {
        let m = load_manifest(&dir)?;
        if m.config_hash != hash {
            return Err(SweepError::ConfigChanged { manifest: m.config_hash, requested: hash });
        }
        m
    } else {
        SweepManifest::fresh(cfg)
    };

    // Trust a done seed only when its record is on disk and its digest
    // matches the manifest; anything else re-runs.
    for e in &mut manifest.seeds {
        if e.status == SeedStatus::Done {
            let intact = fs::read(seed_file(&dir, e.index))
                .map(|b| Some(format!("{:016x}", fnv64(&b))) == e.digest)
                .unwrap_or(false);
            if !intact {
                e.status = SeedStatus::Pending;
                e.digest = None;
            }
        }
    }
    write_manifest(&dir, &manifest)?;

    let pending: Vec<(usize, u64)> = manifest
        .seeds
        .iter()
        .filter(|e| e.status == SeedStatus::Pending)
        .map(|e| (e.index, e.seed))
        .collect();
    let reused = manifest.seeds.len() - pending.len();
    let ran = pending.len();

    // Fan the pending seeds across the rayon pool: one complete
    // deterministic run per shard, streamed to disk as it finishes. The
    // manifest update after each seed is what makes a kill cheap — only
    // in-flight seeds are lost.
    let shared = Mutex::new(manifest);
    let io_errors = Mutex::new(Vec::<std::io::Error>::new());
    pending.into_par_iter().for_each(|(k, seed)| {
        let record = run_unit(cfg, k, seed);
        let bytes = serde_json::to_vec_pretty(&record).expect("record serializes");
        let digest = format!("{:016x}", fnv64(&bytes));
        if let Err(e) = write_atomic(&seed_file(&dir, k), &bytes) {
            io_errors.lock().unwrap().push(e);
            return;
        }
        let mut m = shared.lock().unwrap();
        m.seeds[k].status = SeedStatus::Done;
        m.seeds[k].digest = Some(digest);
        if let Err(e) = write_manifest(&dir, &m) {
            io_errors.lock().unwrap().push(e);
        }
    });
    if let Some(e) = io_errors.into_inner().unwrap().into_iter().next() {
        return Err(SweepError::Io(e));
    }
    let manifest = shared.into_inner().unwrap();

    // Reduce in index order — the fixed fold order is what makes the
    // aggregate byte-identical whether or not the sweep was interrupted.
    let mut records = Vec::with_capacity(manifest.seeds.len());
    for e in &manifest.seeds {
        let path = seed_file(&dir, e.index);
        let bytes = fs::read(&path)?;
        let rec: SeedRecord = serde_json::from_slice(&bytes)
            .map_err(|err| SweepError::Corrupt(format!("{}: {err}", path.display())))?;
        records.push(rec);
    }
    let aggregate = aggregate(cfg, &hash, &records);
    let bytes = serde_json::to_vec_pretty(&aggregate).expect("aggregate serializes");
    write_atomic(&dir.join("aggregate.json"), &bytes)?;

    Ok(SweepOutcome { dir, aggregate, ran, reused })
}

/// The pure cross-seed reduction (exposed for tests).
pub fn aggregate(cfg: &SweepConfig, hash: &str, records: &[SeedRecord]) -> SweepAggregate {
    let mut by_metric: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for rec in records {
        for (k, &v) in &rec.metrics {
            by_metric.entry(k.clone()).or_default().push(v);
        }
    }
    let metrics = by_metric
        .into_iter()
        .filter_map(|(k, xs)| MetricSummary::from_samples(&xs).map(|s| (k, s)))
        .collect();
    SweepAggregate {
        experiment: cfg.experiment.label().to_string(),
        scale: scale_label(cfg.scale).to_string(),
        config_hash: hash.to_string(),
        base_seed: cfg.base_seed,
        seeds: records.iter().map(|r| r.seed).collect(),
        metrics,
        mean_curve: mean_curve(cfg, records),
    }
}

/// Pointwise-mean curve with a [`CurveCi`] error-bar block, for the
/// experiments whose per-seed payload is a single curve (fig5/fig6).
fn mean_curve(cfg: &SweepConfig, records: &[SeedRecord]) -> Option<Curve> {
    if !matches!(cfg.experiment, SweepExperiment::Fig5 | SweepExperiment::Fig6) {
        return None;
    }
    // Both payload shapes serialize `series: TimeSeries` + `improvement`.
    #[derive(Deserialize)]
    struct CurveLike {
        series: TimeSeries,
        improvement: f64,
    }
    let curves: Vec<CurveLike> = records
        .iter()
        .map(|r| serde_json::from_value(r.payload.clone()))
        .collect::<Result<_, _>>()
        .ok()?;
    let first = curves.first()?;
    let len = first.series.points.len();
    if len == 0 || curves.iter().any(|c| c.series.points.len() != len) {
        return None;
    }

    let mut series =
        TimeSeries::new(format!("{} (mean of {} seeds)", first.series.label, curves.len()));
    let mut point_ci95 = Vec::with_capacity(len);
    for i in 0..len {
        let t = first.series.points[i].0;
        let samples: Vec<f64> = curves.iter().map(|c| c.series.points[i].1).collect();
        let s = MetricSummary::from_samples(&samples)?;
        series.points.push((t, s.mean));
        point_ci95.push(s.ci95);
    }
    let finals: Vec<f64> = curves.iter().map(|c| c.series.points[len - 1].1).collect();
    let improvements: Vec<f64> = curves.iter().map(|c| c.improvement).collect();
    let final_value = MetricSummary::from_samples(&finals)?;
    let improvement = MetricSummary::from_samples(&improvements)?;
    Some(Curve {
        series,
        improvement: improvement.mean,
        ci: Some(CurveCi { seeds: curves.len(), final_value, improvement, point_ci95 }),
    })
}

// ------------------------------------------------------------ units ----

/// Run one experiment unit for one derived seed. Deterministic in
/// `(cfg, seed)`; the index only labels the record.
pub fn run_unit(cfg: &SweepConfig, index: usize, seed: u64) -> SeedRecord {
    let mut metrics = BTreeMap::new();
    let payload = match cfg.experiment {
        SweepExperiment::Fig5 => {
            let scenario = unit_scenario(cfg, seed);
            let n = scenario.n;
            let curve = fig5::run_curve(
                &scenario,
                PropConfig::prop_g(),
                cfg.scale,
                format!("n={n}, nhops=2"),
            );
            metrics.insert("latency_initial_ms".into(), curve.series.first_value().unwrap_or(0.0));
            metrics.insert("latency_final_ms".into(), curve.series.last_value().unwrap_or(0.0));
            metrics.insert("improvement".into(), curve.improvement);
            serde_json::to_value(&curve).expect("curve serializes")
        }
        SweepExperiment::Fig6 => {
            let scenario = unit_scenario(cfg, seed);
            let n = scenario.n;
            let (curve, overhead) = fig6::run_curve_traced(
                &scenario,
                PropConfig::prop_g(),
                cfg.scale,
                format!("n={n}, nhops=2"),
            );
            metrics.insert("stretch_initial".into(), curve.series.first_value().unwrap_or(0.0));
            metrics.insert("stretch_final".into(), curve.series.last_value().unwrap_or(0.0));
            metrics.insert("improvement".into(), curve.improvement);
            metrics.insert("delivered".into(), curve.delivered as f64);
            let per_trial = if overhead.trials == 0 {
                0.0
            } else {
                overhead.total_msgs() as f64 / overhead.trials as f64
            };
            metrics.insert("overhead_msgs_per_trial".into(), per_trial);
            metrics.insert("overhead_trials".into(), overhead.trials as f64);
            serde_json::to_value(&curve).expect("curve serializes")
        }
        SweepExperiment::Fig7 => {
            let curves = fig7::run(cfg.scale, seed);
            for c in &curves {
                if let Some(&(_, last)) = c.points.last() {
                    metrics.insert(format!("final_ratio/{}", c.label), last);
                }
                let best = c.points.iter().map(|&(_, r)| r).fold(f64::MAX, f64::min);
                metrics.insert(format!("best_ratio/{}", c.label), best);
            }
            serde_json::to_value(&curves).expect("curves serialize")
        }
        SweepExperiment::Ablation => {
            let r = ablation::overhead(cfg.scale, seed);
            for row in &r.rows {
                metrics.insert(format!("msgs_per_trial/{}", row.label), row.msgs_per_trial);
                metrics.insert(
                    format!("predicted_msgs_per_trial/{}", row.label),
                    row.predicted_msgs_per_trial,
                );
            }
            serde_json::to_value(&r).expect("report serializes")
        }
        SweepExperiment::Faults => {
            let rows = faults::sweep(cfg.scale, seed);
            for row in &rows {
                let cell = format!("loss{:02.0}_part{:03}", row.loss_pct, row.partition_secs);
                metrics.insert(format!("improvement_pct/{cell}"), row.improvement_pct);
                metrics.insert(format!("faulted/{cell}"), row.faulted as f64);
            }
            serde_json::to_value(&rows).expect("rows serialize")
        }
        SweepExperiment::EmbedAgreement => {
            let (n, samples) = match cfg.scale {
                Scale::Paper => (20_000, 2_000),
                Scale::Quick => (2_000, 400),
            };
            let n = cfg.n.unwrap_or(n);
            let r = embed_agreement::run(n, samples, seed);
            metrics.insert("agreement_rate".into(), r.agreement_rate);
            metrics.insert("escalation_rate".into(), r.escalation_rate);
            metrics.insert("plans".into(), r.plans as f64);
            serde_json::to_value(&r).expect("report serializes")
        }
        SweepExperiment::Traffic => {
            let spec =
                traffic::builtin_scenario("diurnal-regional", cfg.scale, seed, cfg.topology, cfg.n);
            let runs = traffic::run_comparison(&spec, cfg.scale);
            for r in &runs {
                metrics.insert(
                    format!("stretch_final/{}", r.driver),
                    r.series.last_value().unwrap_or(0.0),
                );
                metrics.insert(format!("link_stretch/{}", r.driver), r.final_link_stretch);
                metrics.insert(format!("delivery/{}", r.driver), r.report.delivery_rate());
                metrics.insert(
                    format!("overhead_msgs_per_trial/{}", r.driver),
                    r.report.msgs_per_trial(),
                );
                for p in &r.report.phases {
                    metrics.insert(format!("stretch/{}/{}", r.driver, p.phase), p.stretch);
                }
            }
            serde_json::to_value(&runs).expect("runs serialize")
        }
    };
    SeedRecord { index, seed, metrics, payload }
}

/// Scenario for the curve units, honoring the config's topology / n
/// overrides (scale defaults otherwise).
fn unit_scenario(cfg: &SweepConfig, seed: u64) -> Scenario {
    let topo = cfg.topology.unwrap_or(match cfg.scale {
        Scale::Paper => Topology::TsLarge,
        Scale::Quick => Topology::TsSmall,
    });
    let n = cfg.n.unwrap_or(cfg.scale.default_n());
    Scenario::build(topo, n, seed)
}

// ------------------------------------------------------------- gate ----

/// One CI-width gate: fail when `metrics[metric].ci95` exceeds
/// `max_ci95` — or cannot be assessed at all (missing metric, or a
/// single-seed sweep whose CI is null). An armed gate must be meaningful.
#[derive(Clone, Debug)]
pub struct GateSpec {
    pub metric: String,
    pub max_ci95: f64,
}

impl GateSpec {
    /// Parse a `--gate metric=width` argument.
    pub fn parse(s: &str) -> Option<GateSpec> {
        let (metric, width) = s.split_once('=')?;
        let max_ci95: f64 = width.parse().ok()?;
        (!metric.is_empty() && max_ci95.is_finite() && max_ci95 >= 0.0)
            .then(|| GateSpec { metric: metric.to_string(), max_ci95 })
    }
}

/// Evaluate gates against an aggregate; returns one failure message per
/// violated gate (empty = pass).
pub fn check_gates(agg: &SweepAggregate, gates: &[GateSpec]) -> Vec<String> {
    let mut failures = Vec::new();
    for g in gates {
        match agg.metrics.get(&g.metric) {
            None => failures.push(format!(
                "gate {}: metric absent from the aggregate (known: {})",
                g.metric,
                agg.metrics.keys().cloned().collect::<Vec<_>>().join(", ")
            )),
            Some(s) => match s.ci95 {
                None => failures.push(format!(
                    "gate {}: no CI available (n={} seeds) — a CI-width gate needs ≥ 2 seeds",
                    g.metric, s.n
                )),
                Some(w) if w > g.max_ci95 => failures.push(format!(
                    "gate {}: 95% CI half-width {:.4} exceeds tolerance {:.4} (mean {:.4}, n={})",
                    g.metric, w, g.max_ci95, s.mean, s.n
                )),
                Some(_) => {}
            },
        }
    }
    failures
}

// -------------------------------------------------------------- cli ----

/// Shared front-end for the `sweep` binary and the figure binaries'
/// `--seeds N [--resume]` mode: run (or resume) the sweep under `root`,
/// print the aggregate (summary table, and the mean curve with its
/// confidence band for the curve experiments), evaluate `gates`, and turn
/// the outcome into an exit code.
pub fn run_cli(
    cfg: &SweepConfig,
    root: &Path,
    resume: bool,
    gates: &[GateSpec],
) -> std::process::ExitCode {
    use std::process::ExitCode;
    println!(
        "sweep: {} at {} scale, {} seeds off base seed {}{}",
        cfg.experiment.label(),
        scale_label(cfg.scale),
        cfg.seeds,
        cfg.base_seed,
        if resume { " (resuming)" } else { "" }
    );
    let outcome = match run_sweep(cfg, root, resume) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "ran {} seed(s), reused {} from disk; state under {}",
        outcome.ran,
        outcome.reused,
        outcome.dir.display()
    );
    let agg = &outcome.aggregate;
    crate::report::print_ci_table(
        &format!(
            "{} sweep — {} seeds, mean ± 95% CI (config {})",
            agg.experiment,
            agg.seeds.len(),
            agg.config_hash
        ),
        &agg.metrics,
    );
    if let Some(curve) = &agg.mean_curve {
        if let Some(ci) = &curve.ci {
            println!("\n{}", crate::plot::ascii_band_chart(&curve.series, &ci.point_ci95, 72, 14));
            println!("final value {}   improvement {}", ci.final_value, ci.improvement);
        }
    }
    println!("(wrote {})", outcome.dir.join("aggregate.json").display());

    let failures = check_gates(agg, gates);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("SWEEP GATE FAILED: {f}");
        }
        return ExitCode::FAILURE;
    }
    if !gates.is_empty() {
        println!("all {} CI-width gate(s) passed", gates.len());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            experiment: SweepExperiment::Fig6,
            scale: Scale::Quick,
            base_seed: 5,
            seeds: 4,
            topology: Some(Topology::Tiny),
            n: Some(24),
        }
    }

    #[test]
    fn config_hash_is_stable_and_sensitive() {
        let a = tiny_cfg();
        assert_eq!(a.hash(), tiny_cfg().hash());
        let mut b = tiny_cfg();
        b.seeds = 5;
        assert_ne!(a.hash(), b.hash());
        let mut c = tiny_cfg();
        c.n = Some(25);
        assert_ne!(a.hash(), c.hash());
        let mut d = tiny_cfg();
        d.base_seed = 6;
        assert_ne!(a.hash(), d.hash());
    }

    #[test]
    fn derived_seeds_are_distinct_and_reproducible() {
        let cfg = tiny_cfg();
        let seeds: Vec<u64> = (0..16).map(|k| cfg.seed_for(k)).collect();
        assert_eq!(seeds, (0..16).map(|k| cfg.seed_for(k)).collect::<Vec<_>>());
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "derived seeds collide: {seeds:?}");
        // Different base seed ⇒ different derived streams.
        let mut other = tiny_cfg();
        other.base_seed = 99;
        assert_ne!(cfg.seed_for(0), other.seed_for(0));
    }

    #[test]
    fn aggregate_is_a_pure_ordered_fold() {
        let cfg = tiny_cfg();
        let recs: Vec<SeedRecord> = (0..4)
            .map(|k| SeedRecord {
                index: k,
                seed: cfg.seed_for(k),
                metrics: BTreeMap::from([
                    ("stretch_final".to_string(), 2.0 + k as f64 * 0.1),
                    ("improvement".to_string(), 0.3),
                ]),
                payload: serde_json::Value::Null,
            })
            .collect();
        let a = aggregate(&cfg, "h", &recs);
        let b = aggregate(&cfg, "h", &recs);
        assert_eq!(serde_json::to_vec(&a).unwrap(), serde_json::to_vec(&b).unwrap());
        let s = &a.metrics["stretch_final"];
        assert!((s.mean - 2.15).abs() < 1e-12);
        assert_eq!(s.n, 4);
        assert!(s.ci95.is_some());
        // Identical samples keep a zero-width interval.
        assert_eq!(a.metrics["improvement"].ci95, Some(0.0));
        // fig6 payloads were null here, so no mean curve could be built.
        assert!(a.mean_curve.is_none());
    }

    #[test]
    fn gates_fail_on_width_absence_and_single_seed() {
        let cfg = tiny_cfg();
        let rec = |k: usize, v: f64| SeedRecord {
            index: k,
            seed: cfg.seed_for(k),
            metrics: BTreeMap::from([("stretch_final".to_string(), v)]),
            payload: serde_json::Value::Null,
        };
        let agg = aggregate(&cfg, "h", &[rec(0, 2.0), rec(1, 2.1), rec(2, 1.9)]);
        let w = agg.metrics["stretch_final"].ci95.unwrap();

        let pass = GateSpec { metric: "stretch_final".into(), max_ci95: w + 0.01 };
        assert!(check_gates(&agg, &[pass]).is_empty());
        let fail = GateSpec { metric: "stretch_final".into(), max_ci95: w - 0.01 };
        assert_eq!(check_gates(&agg, &[fail]).len(), 1);
        let missing = GateSpec { metric: "nope".into(), max_ci95: 1.0 };
        assert_eq!(check_gates(&agg, &[missing]).len(), 1);

        // One seed ⇒ null CI ⇒ an armed gate must fail, not silently pass.
        let single = aggregate(&cfg, "h", &[rec(0, 2.0)]);
        let g = GateSpec { metric: "stretch_final".into(), max_ci95: 10.0 };
        assert_eq!(check_gates(&single, &[g]).len(), 1);
    }

    #[test]
    fn gate_spec_parses() {
        let g = GateSpec::parse("stretch_final=0.05").unwrap();
        assert_eq!(g.metric, "stretch_final");
        assert!((g.max_ci95 - 0.05).abs() < 1e-12);
        assert!(GateSpec::parse("nope").is_none());
        assert!(GateSpec::parse("=0.05").is_none());
        assert!(GateSpec::parse("m=-1").is_none());
        assert!(GateSpec::parse("m=NaN").is_none());
    }

    #[test]
    fn experiment_labels_round_trip() {
        for e in [
            SweepExperiment::Fig5,
            SweepExperiment::Fig6,
            SweepExperiment::Fig7,
            SweepExperiment::Ablation,
            SweepExperiment::Faults,
            SweepExperiment::EmbedAgreement,
            SweepExperiment::Traffic,
        ] {
            assert_eq!(SweepExperiment::parse(e.label()), Some(e));
        }
        assert_eq!(SweepExperiment::parse("bogus"), None);
    }
}
