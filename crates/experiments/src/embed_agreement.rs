//! S3 — exchange-decision agreement of the coordinate-embedded tier.
//!
//! The embedded oracle answers `d(u,v)` from coordinates with a calibrated
//! error, and the protocol's exchange decision compensates with the
//! exact-fallback band ([`prop_core::decide`]): comparisons landing within
//! the calibrated margin of `MIN_VAR` re-evaluate with exact distances.
//! This harness measures what is left — how often the *banded* embedded
//! decision still disagrees with the fully exact decision on the same
//! plan — by sampling candidate PROP-G swaps and PROP-O subset exchanges
//! over a Gnutella overlay built on the embedded tier and comparing
//! [`prop_core::decide`] against `exact_var > MIN_VAR` plan by plan.
//!
//! Geometry comes from [`TransitStubParams::scaled`] (like the `scale`
//! binary), so the harness runs at any membership up to the million-member
//! smoke — the fixed figure presets stop at ~3,000 hosts.
//!
//! The binary (`cargo run --release -p prop-experiments --bin
//! embed_agreement`) prints and JSON-dumps the [`AgreementReport`] and
//! exits non-zero when the agreement rate falls below `--floor` — the CI
//! gate for the embedding's decision quality.

use crate::setup::OracleTier;
use prop_core::exchange::{plan_propg, plan_propo};
use prop_core::{decide, exact_var, PropConfig};
use prop_engine::SimRng;
use prop_metrics::OracleEmbedReport;
use prop_netsim::{generate, LatencyOracle, TransitStubParams};
use prop_overlay::gnutella::{Gnutella, GnutellaParams};
use prop_overlay::walk::WalkPath;
use prop_overlay::Slot;
use serde::Serialize;
use std::sync::Arc;

/// Decision-agreement numbers over one sampled plan population.
#[derive(Clone, Debug, Serialize)]
pub struct AgreementReport {
    pub members: usize,
    pub phys_hosts: usize,
    pub seed: u64,
    /// Plans evaluated (PROP-G and PROP-O alternating; PROP-O pairs with
    /// no eligible neighbors are skipped, not counted).
    pub plans: u64,
    /// Plans where the banded embedded decision matched the exact one.
    pub agreements: u64,
    /// `agreements / plans` (1.0 when nothing was sampled).
    pub agreement_rate: f64,
    /// Decisions that fell inside the fallback band (these agree by
    /// construction — the band *is* the exact path).
    pub escalations: u64,
    /// `escalations / plans`.
    pub escalation_rate: f64,
    /// The oracle's embed-tier counters and calibration over the run.
    pub embed: Option<OracleEmbedReport>,
}

/// Sample `samples` candidate exchanges on an embedded-tier overlay of `n`
/// members and compare the banded decision against the exact one.
/// Deterministic in `(n, samples, seed)`.
pub fn run(n: usize, samples: usize, seed: u64) -> AgreementReport {
    let mut rng = SimRng::seed_from(seed);
    let phys = generate(&TransitStubParams::scaled(n), &mut rng);
    let cfg = OracleTier::Embedded.config(512 << 20);
    let oracle = Arc::new(LatencyOracle::select_and_build_with(&phys, n, &mut rng, &cfg));
    let mut grng = rng.fork("gnutella");
    let (_gn, net) = Gnutella::build(GnutellaParams::default(), Arc::clone(&oracle), &mut grng);
    let min_var = PropConfig::prop_g().min_var;
    // Fig. 7's middle PROP-O setting; the agreement question is the same
    // for any m, this just fixes the subset size the samples evaluate.
    let m = 2;

    let mark = oracle.embed_stats().unwrap_or_default();
    let mut srng = rng.fork("embed-agreement");
    let mut plans = 0u64;
    let mut agreements = 0u64;
    for i in 0..samples {
        let u = Slot(srng.range(0..n as u32));
        let v = Slot(srng.range(0..n as u32));
        if u == v {
            continue;
        }
        // Alternate the two plan shapes; a two-node walk makes every
        // non-shared neighbor eligible for the subset exchange.
        let plan = if i % 2 == 0 {
            Some(plan_propg(&net, u, v))
        } else {
            plan_propo(&net, &WalkPath { path: vec![u, v] }, m)
        };
        let Some(plan) = plan else { continue };
        plans += 1;
        let banded = decide(&net, &plan, min_var);
        let exact = exact_var(&net, &plan) > min_var;
        if banded == exact {
            agreements += 1;
        }
    }
    let since = oracle.embed_stats().map(|s| s.since(&mark)).unwrap_or_default();

    AgreementReport {
        members: n,
        phys_hosts: phys.num_nodes(),
        seed,
        plans,
        agreements,
        agreement_rate: if plans == 0 { 1.0 } else { agreements as f64 / plans as f64 },
        escalations: since.escalations,
        escalation_rate: if plans == 0 { 0.0 } else { since.escalations as f64 / plans as f64 },
        embed: OracleEmbedReport::from_oracle_since(&oracle, &mark),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miniature_agreement_is_high_and_deterministic() {
        let a = run(200, 120, 11);
        assert!(a.plans > 50, "enough pairs evaluate to plans: {}", a.plans);
        assert!(a.embed.is_some(), "embedded tier must report");
        // The band escalates every near-threshold decision, so even a
        // miniature embedding decides like the exact oracle almost always.
        assert!(a.agreement_rate >= 0.9, "agreement {}", a.agreement_rate);
        let b = run(200, 120, 11);
        assert_eq!(a.plans, b.plans);
        assert_eq!(a.agreements, b.agreements);
        assert_eq!(a.escalations, b.escalations);
    }
}
