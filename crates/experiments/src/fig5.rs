//! Figure 5 — *Effectiveness of PROP-G in a Gnutella-like environment.*
//!
//! Metric: **average lookup latency** (flooding makes all-pairs stretch
//! impractical, so the paper samples "1[0,000] lookup operations"), plotted
//! against simulated time as PROP-G keeps exchanging.
//!
//! * **(a) varying the TTL scale** — probe walks of `nhops ∈ {1, 2, 4}` and
//!   the idealized uniform-random probe. Expected shape: `nhops = 1`
//!   barely helps; 2, 4 and random are nearly equivalent.
//! * **(b) varying the system size** — n ∈ {300, 500, 1000, 3000}; the
//!   relative improvement shrinks a little as the overlay approaches the
//!   whole physical network.
//! * **(c) varying the physical topology** — `ts-large` vs `ts-small`;
//!   the big-backbone topology benefits more.

use crate::setup::{Scale, Scenario, Topology};
use prop_core::{ProbeMode, PropConfig, ProtocolSim};
use prop_metrics::{par_avg_lookup_latency, MetricSummary, TimeSeries};
use prop_workloads::LookupGen;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One plotted curve plus the numbers EXPERIMENTS.md quotes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Curve {
    pub series: TimeSeries,
    /// Relative improvement start → end (0.25 = 25% lower).
    pub improvement: f64,
    /// Cross-seed dispersion, present only on swept (multi-seed) output:
    /// single-seed runs keep the historical JSON shape unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ci: Option<CurveCi>,
}

/// Error-bar block attached to a mean curve by the sweep orchestrator
/// (see [`crate::sweep`]): the headline metrics as [`MetricSummary`]s plus
/// a per-sample 95% half-width band aligned with `series.points`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CurveCi {
    /// Seeds aggregated into the mean curve.
    pub seeds: usize,
    /// Final-sample value across seeds.
    pub final_value: MetricSummary,
    /// Start → end relative improvement across seeds.
    pub improvement: MetricSummary,
    /// 95% CI half-width at each series sample (`None` where undefined).
    pub point_ci95: Vec<Option<f64>>,
}

/// Run PROP-G on this scenario's Gnutella overlay and sample mean lookup
/// latency on a fixed pair workload at every interval.
pub fn run_curve(scenario: &Scenario, cfg: PropConfig, scale: Scale, label: String) -> Curve {
    let (gn, net) = scenario.gnutella();
    let mut sim_rng = scenario.rng(&format!("fig5-sim-{label}"));
    let mut sim = ProtocolSim::new(net, cfg, &mut sim_rng);
    let live = scenario.all_slots();
    let pairs = LookupGen::new(&scenario.rng("fig5-lookups"))
        .uniform_pairs(&live, scale.lookups_per_sample());

    let mut series = TimeSeries::new(label);
    let step = scale.sample_every();
    let horizon = scale.horizon();
    let mut elapsed = prop_engine::Duration::ZERO;
    series.push(sim.now(), par_avg_lookup_latency(sim.net(), &gn, &pairs).mean_ms);
    while elapsed < horizon {
        sim.run_for(step);
        elapsed = elapsed + step;
        series.push(sim.now(), par_avg_lookup_latency(sim.net(), &gn, &pairs).mean_ms);
    }
    let improvement = series.improvement().unwrap_or(0.0);
    Curve { series, improvement, ci: None }
}

/// Panel (a): vary the probe TTL at fixed n.
pub fn panel_a(scale: Scale, seed: u64) -> Vec<Curve> {
    let n = scale.default_n();
    let topo = default_topology(scale);
    let scenario = Scenario::build(topo, n, seed);
    let variants: Vec<(String, ProbeMode)> = vec![
        (format!("n={n}, nhops=1"), ProbeMode::Walk { nhops: 1 }),
        (format!("n={n}, nhops=2"), ProbeMode::Walk { nhops: 2 }),
        (format!("n={n}, nhops=4"), ProbeMode::Walk { nhops: 4 }),
        (format!("n={n}, random"), ProbeMode::Random),
    ];
    variants
        .into_par_iter()
        .map(|(label, probe)| {
            run_curve(&scenario, PropConfig::prop_g().with_probe(probe), scale, label)
        })
        .collect()
}

/// Panel (b): vary the overlay size at `nhops = 2`.
pub fn panel_b(scale: Scale, seed: u64) -> Vec<Curve> {
    let sizes: Vec<usize> = match scale {
        Scale::Paper => vec![300, 500, 1000, 3000],
        Scale::Quick => vec![60, 120, 240],
    };
    let topo = default_topology(scale);
    sizes
        .into_par_iter()
        .map(|n| {
            let scenario = Scenario::build(topo, n, seed);
            run_curve(&scenario, PropConfig::prop_g(), scale, format!("n={n}, nhops=2"))
        })
        .collect()
}

/// Panel (c): `ts-large` vs `ts-small` at the default n.
pub fn panel_c(scale: Scale, seed: u64) -> Vec<Curve> {
    let n = scale.default_n();
    [Topology::TsLarge, Topology::TsSmall]
        .into_par_iter()
        .map(|topo| {
            let scenario = Scenario::build(topo, n, seed);
            run_curve(&scenario, PropConfig::prop_g(), scale, topo.label().to_string())
        })
        .collect()
}

fn default_topology(scale: Scale) -> Topology {
    match scale {
        Scale::Paper => Topology::TsLarge,
        // Quick mode still needs >240 stub hosts, which `tiny` lacks.
        Scale::Quick => Topology::TsSmall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_panel_a_shows_the_paper_shape() {
        let curves = panel_a(Scale::Quick, 42);
        assert_eq!(curves.len(), 4);
        // Everything but nhops=1 should improve noticeably.
        for c in &curves[1..] {
            assert!(c.improvement > 0.03, "{}: improvement {:.3}", c.series.label, c.improvement);
        }
        // nhops ≥ 2 should beat nhops = 1.
        let one = curves[0].improvement;
        let best_rest = curves[1..].iter().map(|c| c.improvement).fold(f64::MIN, f64::max);
        assert!(
            best_rest > one,
            "nhops=1 ({one:.3}) should not dominate (best rest {best_rest:.3})"
        );
    }

    #[test]
    fn quick_panel_b_all_sizes_improve() {
        let curves = panel_b(Scale::Quick, 43);
        assert_eq!(curves.len(), 3);
        for c in &curves {
            assert!(c.improvement > 0.0, "{}: {:.3}", c.series.label, c.improvement);
        }
    }

    #[test]
    fn quick_panel_c_both_topologies_improve() {
        let curves = panel_c(Scale::Quick, 44);
        assert_eq!(curves.len(), 2);
        for c in &curves {
            assert!(c.improvement > 0.0, "{}: {:.3}", c.series.label, c.improvement);
        }
    }
}
