//! perf — the measurement plane's committed performance trajectory.
//!
//! Times the pipeline stages that the parallel measurement plane
//! optimizes, on the machine it runs on:
//!
//! 1. **Driver throughput** — PROP-G trials per wall-clock second over a
//!    full horizon of the synchronous driver.
//! 2. **Lookup throughput** — the same measurement workload through the
//!    serial and the parallel measurement plane, with the bit-identity of
//!    the two results asserted on every run.
//! 3. **Flood work** — the [`FloodScratch`] relaxation counters per
//!    lookup (edges scanned, distance improvements, frontier pushes): the
//!    algorithmic cost of a flood, independent of the clock.
//! 4. **Oracle hit rate** — the row-cache behaviour of the same workload
//!    on the cached oracle tier sized to hold half the rows.
//! 5. **Oracle tier microbench** — ns per `d(u,v)` query on each tier over
//!    one identical random-pair workload: dense (array lookup), row-cache
//!    cold (first pass, Dijkstra misses) and warm (second pass, all hits),
//!    and coordinate-embedded (O(1) arithmetic). The headline ratio
//!    `oracle_embed_cold_speedup` is cached-cold over embedded — the
//!    factor the embedded tier buys on a workload whose rows aren't
//!    resident yet.
//!
//! The binary (`cargo run --release -p prop-experiments --bin perf`)
//! runs both Quick and Paper scale and writes the report to
//! `BENCH_PERF.json` at the repo root; CI re-runs the Quick entry and
//! fails when a throughput metric regresses more than [`CHECK_TOLERANCE`]
//! against the committed same-scale baseline entry. Wall-clock numbers
//! are machine-dependent by nature — the committed file records the
//! trajectory on the reference machine, and `--check` compares runs made
//! on the *same* machine (CI runners, a developer box before/after a
//! change).

use crate::setup::{OracleTier, Scale, Scenario, Topology};
use prop_core::{PropConfig, ProtocolSim};
use prop_engine::{allocation_count, counting_active, Duration, EventQueue, SimRng, SimTime};
use prop_metrics::{avg_lookup_latency, par_avg_lookup_latency};
use prop_netsim::{generate, LatencyOracle, OracleConfig};
use prop_overlay::gnutella::{Gnutella, GnutellaParams};
use prop_overlay::{FloodScratch, Slot};
use prop_workloads::LookupGen;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Maximum tolerated relative regression under `--check`: a metric must
/// stay above `baseline × (1 − CHECK_TOLERANCE)`.
pub const CHECK_TOLERANCE: f64 = 0.25;

/// The whole report, as committed to `BENCH_PERF.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfReport {
    /// `"generated"` for real runs. The committed placeholder carries
    /// `"placeholder"` until the file is regenerated on a networked
    /// machine; `--check` treats anything but `"generated"` as
    /// record-only.
    pub status: String,
    /// How to regenerate this file.
    pub regenerate: String,
    pub seed: u64,
    /// Rayon worker count the parallel numbers were taken with.
    pub threads: usize,
    /// One entry per scale run; the default binary invocation runs both
    /// Quick and Paper.
    pub entries: Vec<PerfEntry>,
}

/// One (scale, representation) cell's numbers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfEntry {
    /// `"quick"` or `"paper"`.
    pub scale: String,
    /// Adjacency representation the run used: `"csr"` (the default fast
    /// path) or `"vecvec"` (CSR disabled, legacy rows). Baselines written
    /// before this field existed are read as `"csr"`.
    #[serde(default = "default_repr")]
    pub repr: String,
    pub metrics: PerfMetrics,
}

fn default_repr() -> String {
    Repr::Csr.label().to_string()
}

/// Which adjacency representation the overlay's traversal hot paths use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Repr {
    /// Legacy `Vec<Vec<Slot>>` rows (CSR view disabled).
    Vecvec,
    /// Compact CSR view (the default).
    Csr,
}

impl Repr {
    pub fn label(self) -> &'static str {
        match self {
            Repr::Vecvec => "vecvec",
            Repr::Csr => "csr",
        }
    }

    /// Parse a `--repr` argument.
    pub fn parse(s: &str) -> Option<Repr> {
        match s {
            "vecvec" => Some(Repr::Vecvec),
            "csr" => Some(Repr::Csr),
            _ => None,
        }
    }
}

/// The numbers CI tracks.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfMetrics {
    /// PROP-G trials per wall-clock second (synchronous driver).
    pub driver_trials_per_sec: f64,
    /// Driver trials executed during the timed horizon.
    pub driver_trials: u64,
    /// Flood lookups per second through the serial measurement plane.
    pub serial_lookups_per_sec: f64,
    /// Flood lookups per second through the parallel measurement plane.
    pub parallel_lookups_per_sec: f64,
    /// parallel / serial throughput.
    pub parallel_speedup: f64,
    /// Serial and parallel summaries agreed bit-for-bit (always asserted;
    /// recorded so the JSON is self-describing).
    pub bitwise_identical: bool,
    /// Mean flood-engine edge relaxation attempts per lookup.
    pub flood_edges_scanned_per_lookup: f64,
    /// Mean accepted distance improvements per lookup.
    pub flood_improvements_per_lookup: f64,
    /// Mean deduplicated frontier admissions per lookup.
    pub flood_frontier_pushes_per_lookup: f64,
    /// Row-cache hit rate of the workload on the cached oracle tier sized
    /// to half the member rows.
    pub oracle_hit_rate: f64,
    /// ns per `d(u,v)` on the dense tier (full matrix lookup). The oracle
    /// microbench fields default to 0 so baselines written before they
    /// existed still load (0 is record-only under `--check`).
    #[serde(default)]
    pub oracle_dense_ns: f64,
    /// ns per query on the row-cache tier, first pass (rows cold).
    #[serde(default)]
    pub oracle_cached_cold_ns: f64,
    /// ns per query on the row-cache tier, second pass (rows resident).
    #[serde(default)]
    pub oracle_cached_warm_ns: f64,
    /// ns per query on the coordinate-embedded tier.
    #[serde(default)]
    pub oracle_embed_ns: f64,
    /// `oracle_cached_cold_ns / oracle_embed_ns`.
    #[serde(default)]
    pub oracle_embed_cold_speedup: f64,
    /// ns per `schedule_at` on the timer-wheel event queue (bulk fill over
    /// mixed-magnitude delays). Like the oracle fields, the queue and
    /// allocation fields default to 0 so older baselines still load, and 0
    /// is record-only under `--check`.
    #[serde(default)]
    pub driver_sched_ns: f64,
    /// Events per wall-clock second through a driver-shaped pop+reschedule
    /// loop on the event queue (every pop reschedules on the probe backoff
    /// lattice).
    #[serde(default)]
    pub driver_events_per_sec: f64,
    /// Heap allocations per steady-state driver trial, measured over a
    /// post-horizon window of stage 1's simulation. 0.0 when the binary
    /// installs no counting allocator (the library test harness does not;
    /// the `perf` binary does).
    #[serde(default)]
    pub allocs_per_trial: f64,
}

/// Per-tier ns-per-query over one identical random-pair workload.
#[derive(Clone, Copy, Debug)]
pub struct OracleTierBench {
    pub dense_ns: f64,
    pub cached_cold_ns: f64,
    pub cached_warm_ns: f64,
    pub embed_ns: f64,
}

/// One metric's `--check` verdict.
#[derive(Clone, Debug)]
pub struct CheckFailure {
    pub scale: String,
    pub metric: &'static str,
    pub baseline: f64,
    pub current: f64,
}

/// Run the suite at the given scales × representations (deduplicated, in
/// order), so the report shows the CSR step-change next to the legacy
/// numbers on the same machine.
pub fn run(scales: &[Scale], reprs: &[Repr], seed: u64) -> PerfReport {
    let mut entries = Vec::new();
    for &scale in scales {
        let label = scale_label(scale);
        for &repr in reprs {
            if entries.iter().any(|e: &PerfEntry| e.scale == label && e.repr == repr.label()) {
                continue;
            }
            let topo = match scale {
                Scale::Paper => Topology::TsLarge,
                Scale::Quick => Topology::TsSmall,
            };
            let reps = match scale {
                Scale::Paper => 3,
                Scale::Quick => 10,
            };
            let metrics = run_metrics(
                topo,
                scale.default_n(),
                scale.horizon(),
                scale.lookups_per_sample(),
                reps,
                repr,
                seed,
            );
            entries.push(PerfEntry {
                scale: label.to_string(),
                repr: repr.label().to_string(),
                metrics,
            });
        }
    }
    PerfReport {
        status: "generated".to_string(),
        regenerate: "cargo run --release -p prop-experiments --bin perf".to_string(),
        seed,
        threads: rayon::current_num_threads(),
        entries,
    }
}

fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Paper => "paper",
        Scale::Quick => "quick",
    }
}

/// The measurement core, parameterized so tests can run a miniature
/// configuration. `repr` selects the adjacency representation the driver
/// and lookup stages traverse; results are bit-identical across reprs,
/// only the wall-clock metrics move.
#[allow(clippy::too_many_arguments)]
pub fn run_metrics(
    topo: Topology,
    n: usize,
    horizon: Duration,
    lookups: usize,
    reps: usize,
    repr: Repr,
    seed: u64,
) -> PerfMetrics {
    let scenario = Scenario::build(topo, n, seed);
    let (gn, mut net) = scenario.gnutella();
    net.set_csr_enabled(repr == Repr::Csr);
    let pairs =
        LookupGen::new(&scenario.rng("perf-lookups")).uniform_pairs(&scenario.all_slots(), lookups);

    // Stage 1: driver throughput over the full horizon, ending with the
    // optimized overlay the lookup stages measure.
    let mut rng = scenario.rng("perf-driver");
    let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
    let t = Instant::now();
    sim.run_for(horizon);
    let driver_secs = t.elapsed().as_secs_f64().max(1e-9);
    let driver_trials = sim.overhead().trials;

    // Stage 1b: allocations per steady-state trial, over a quarter-horizon
    // window appended to the same simulation (buffers are at their
    // high-water marks by now). Reads 0 unless the binary installed the
    // counting allocator. The window runs unconditionally so the overlay
    // the lookup stages see does not depend on which binary measured it.
    let trials_before = sim.overhead().trials;
    let allocs_before = allocation_count();
    sim.run_for(Duration::from_millis((horizon.as_millis() / 4).max(1)));
    let window_trials = sim.overhead().trials - trials_before;
    let allocs_per_trial = if counting_active() && window_trials > 0 {
        (allocation_count() - allocs_before) as f64 / window_trials as f64
    } else {
        0.0
    };
    let net = sim.into_net();

    // Stage 2: serial vs parallel lookup throughput on identical work.
    let t = Instant::now();
    let mut serial = avg_lookup_latency(&net, &gn, &pairs);
    for _ in 1..reps {
        serial = avg_lookup_latency(&net, &gn, &pairs);
    }
    let serial_secs = t.elapsed().as_secs_f64().max(1e-9);

    let t = Instant::now();
    let mut parallel = par_avg_lookup_latency(&net, &gn, &pairs);
    for _ in 1..reps {
        parallel = par_avg_lookup_latency(&net, &gn, &pairs);
    }
    let parallel_secs = t.elapsed().as_secs_f64().max(1e-9);

    let bitwise_identical = serial.mean_ms.to_bits() == parallel.mean_ms.to_bits()
        && serial.mean_hops.to_bits() == parallel.mean_hops.to_bits()
        && serial.delivered == parallel.delivered
        && serial.failed == parallel.failed;
    assert!(bitwise_identical, "parallel plane diverged from serial: {serial:?} vs {parallel:?}");

    let total_lookups = (pairs.len() * reps) as f64;
    let serial_lookups_per_sec = total_lookups / serial_secs;
    let parallel_lookups_per_sec = total_lookups / parallel_secs;

    // Stage 3: the flood engine's relaxation counters over one workload
    // pass — deterministic, clock-independent cost accounting.
    let mut scratch = FloodScratch::new();
    for &(src, dst) in &pairs {
        let _ = net.min_latency_within_hops_with(src, dst, gn.params.flood_ttl, &mut scratch);
    }
    let per_lookup = |c: u64| c as f64 / pairs.len() as f64;

    // Stage 4: the same overlay family on the cached oracle tier, sized to
    // hold half the member rows, so the workload produces both hits and
    // evictions.
    let oracle_hit_rate = cached_tier_hit_rate(topo, n, lookups, seed);

    // Stage 5: the per-tier oracle microbench on one identical workload.
    let tiers = oracle_tier_bench(topo, n, lookups, seed);

    // Stage 6: the event-queue microbench, sized with the population.
    let (driver_sched_ns, driver_events_per_sec) = queue_bench((8 * n).clamp(4_096, 500_000), seed);

    PerfMetrics {
        driver_trials_per_sec: driver_trials as f64 / driver_secs,
        driver_trials,
        serial_lookups_per_sec,
        parallel_lookups_per_sec,
        parallel_speedup: parallel_lookups_per_sec / serial_lookups_per_sec,
        bitwise_identical,
        flood_edges_scanned_per_lookup: per_lookup(scratch.edges_scanned()),
        flood_improvements_per_lookup: per_lookup(scratch.improvements()),
        flood_frontier_pushes_per_lookup: per_lookup(scratch.frontier_pushes()),
        oracle_hit_rate,
        oracle_dense_ns: tiers.dense_ns,
        oracle_cached_cold_ns: tiers.cached_cold_ns,
        oracle_cached_warm_ns: tiers.cached_warm_ns,
        oracle_embed_ns: tiers.embed_ns,
        oracle_embed_cold_speedup: tiers.cached_cold_ns / tiers.embed_ns.max(f64::MIN_POSITIVE),
        driver_sched_ns,
        driver_events_per_sec,
        allocs_per_trial,
    }
}

/// Time the timer-wheel event queue in isolation: (1) ns per `schedule_at`
/// while bulk-filling `n_events` events at mixed-magnitude delays (sub-slot
/// through multi-level, exercising direct placement into every wheel
/// level), then (2) events per second through a driver-shaped loop where
/// every pop reschedules its event on the probe backoff lattice — the
/// access pattern `run_until` generates at million scale, cascades
/// included.
pub fn queue_bench(n_events: usize, seed: u64) -> (f64, f64) {
    let mut rng = SimRng::seed_from(seed ^ 0x51ab_51ab);
    let delays: Vec<u64> = (0..n_events.max(1)).map(|_| rng.range(0..7_200_000)).collect();
    let mut q: EventQueue<u32> = EventQueue::new();
    let t = Instant::now();
    for (i, &d) in delays.iter().enumerate() {
        q.schedule_at(SimTime(d), i as u32);
    }
    let sched_ns = t.elapsed().as_secs_f64() * 1e9 / delays.len() as f64;

    // The paper's probe intervals: 2^k minutes, k ≤ 5.
    let lattice: [u64; 6] = [60_000, 120_000, 240_000, 480_000, 960_000, 1_920_000];
    let ops = 4 * delays.len();
    let t = Instant::now();
    let mut count = 0u64;
    for _ in 0..ops {
        let Some((at, ev)) = q.pop() else { break };
        count += 1;
        q.schedule_at(at + Duration(lattice[ev as usize % lattice.len()]), ev);
    }
    std::hint::black_box(q.len());
    let secs = t.elapsed().as_secs_f64().max(1e-9);
    (sched_ns, count as f64 / secs)
}

/// Time one pass of `queries` random `d(u,v)` calls on every tier, built
/// over the same physical graph and member set. The cold number is the
/// cached tier's *first* pass (every distinct source pays its Dijkstra),
/// the warm number a second pass over the now-resident rows; the cache is
/// sized to hold every row so the warm pass never misses.
pub fn oracle_tier_bench(topo: Topology, n: usize, queries: usize, seed: u64) -> OracleTierBench {
    let mut rng = SimRng::seed_from(seed ^ 0x7e1e_5c0e);
    let phys = generate(&topo.params(), &mut rng);
    let pairs: Vec<(usize, usize)> =
        (0..queries.max(1)).map(|_| (rng.range(0..n), rng.range(0..n))).collect();
    // Identical fork label ⇒ identical member selection on every tier.
    let build = |cfg: &OracleConfig| {
        let mut r = rng.fork("oracle-tier-members");
        LatencyOracle::select_and_build_with(&phys, n, &mut r, cfg)
    };
    let time_pass = |oracle: &LatencyOracle| -> f64 {
        let t = Instant::now();
        let mut acc = 0u64;
        for &(a, b) in &pairs {
            acc += oracle.d(a, b) as u64;
        }
        std::hint::black_box(acc);
        t.elapsed().as_secs_f64() * 1e9 / pairs.len() as f64
    };
    let full_cap = (4 * n * n).max(1);

    let dense = build(&OracleTier::Dense.config(full_cap));
    let dense_ns = time_pass(&dense);
    let cached = build(&OracleTier::Cached.config(full_cap));
    let cached_cold_ns = time_pass(&cached);
    let cached_warm_ns = time_pass(&cached);
    let embedded = build(&OracleTier::Embedded.config(full_cap));
    let embed_ns = time_pass(&embedded);

    OracleTierBench { dense_ns, cached_cold_ns, cached_warm_ns, embed_ns }
}

fn cached_tier_hit_rate(topo: Topology, n: usize, lookups: usize, seed: u64) -> f64 {
    let mut rng = SimRng::seed_from(seed ^ 0x9e37_79b9);
    let phys = generate(&topo.params(), &mut rng);
    let row_bytes = 4 * n;
    let cfg = OracleConfig::cached((row_bytes * n / 2).max(1));
    let oracle = Arc::new(LatencyOracle::select_and_build_with(&phys, n, &mut rng, &cfg));
    let (gn, net) = Gnutella::build(GnutellaParams::default(), oracle, &mut rng);
    let live: Vec<Slot> = net.graph().live_slots().collect();
    let pairs = LookupGen::new(&rng).uniform_pairs(&live, lookups);
    let _ = par_avg_lookup_latency(&net, &gn, &pairs);
    net.oracle_cache_stats().map(|s| s.hit_rate()).unwrap_or(f64::NAN)
}

/// Compare a fresh report against a committed baseline (parsed JSON).
///
/// Only the wall-clock throughput metrics are gated, and only against the
/// baseline entry of the *same scale*. A metric is skipped — record-only —
/// when the baseline is a placeholder (`status` ≠ `"generated"`), has no
/// matching-scale entry, or the value is absent, null, or non-positive:
/// a newly added metric or an ungenerated committed file never fails the
/// gate.
pub fn check_against_baseline(
    report: &PerfReport,
    baseline: &serde_json::Value,
) -> Vec<CheckFailure> {
    if baseline.get("status").and_then(|s| s.as_str()) != Some("generated") {
        return Vec::new();
    }
    let empty = Vec::new();
    let base_entries = baseline.get("entries").and_then(|e| e.as_array()).unwrap_or(&empty);
    let mut failures = Vec::new();
    for entry in &report.entries {
        // Entries match on (scale, repr); a baseline written before the
        // repr field existed is read as "csr" (the default fast path).
        let Some(base) = base_entries.iter().find(|b| {
            b.get("scale").and_then(|s| s.as_str()) == Some(entry.scale.as_str())
                && b.get("repr").and_then(|r| r.as_str()).unwrap_or("csr") == entry.repr
        }) else {
            continue;
        };
        let base_metric = |name: &str| {
            base.get("metrics")
                .and_then(|m| m.get(name))
                .and_then(|v| v.as_f64())
                .filter(|v| v.is_finite() && *v > 0.0)
        };
        // Throughputs gate downward (lower = regression)…
        let gated: [(&'static str, f64); 3] = [
            ("driver_trials_per_sec", entry.metrics.driver_trials_per_sec),
            ("serial_lookups_per_sec", entry.metrics.serial_lookups_per_sec),
            ("parallel_lookups_per_sec", entry.metrics.parallel_lookups_per_sec),
        ];
        for (name, current) in gated {
            if let Some(base_val) = base_metric(name) {
                if current < base_val * (1.0 - CHECK_TOLERANCE) {
                    failures.push(CheckFailure {
                        scale: entry.scale.clone(),
                        metric: name,
                        baseline: base_val,
                        current,
                    });
                }
            }
        }
        // …flood work gates upward: more edge scans per lookup means the
        // flood engine does more algorithmic work for the same answers.
        if let Some(base_val) = base_metric("flood_edges_scanned_per_lookup") {
            let current = entry.metrics.flood_edges_scanned_per_lookup;
            if current > base_val * (1.0 + CHECK_TOLERANCE) {
                failures.push(CheckFailure {
                    scale: entry.scale.clone(),
                    metric: "flood_edges_scanned_per_lookup",
                    baseline: base_val,
                    current,
                });
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miniature(repr: Repr) -> PerfMetrics {
        run_metrics(Topology::Tiny, 24, Duration::from_minutes(2), 60, 1, repr, 7)
    }

    #[test]
    fn miniature_run_produces_sane_metrics() {
        let m = miniature(Repr::Csr);
        assert!(m.bitwise_identical);
        assert!(m.driver_trials > 0);
        assert!(m.driver_trials_per_sec > 0.0);
        assert!(m.serial_lookups_per_sec > 0.0 && m.parallel_lookups_per_sec > 0.0);
        // Every lookup floods at least one edge out of the source.
        assert!(m.flood_edges_scanned_per_lookup >= 1.0);
        assert!(m.flood_improvements_per_lookup > 0.0);
        assert!(m.flood_frontier_pushes_per_lookup > 0.0);
        assert!((0.0..=1.0).contains(&m.oracle_hit_rate), "hit rate {}", m.oracle_hit_rate);
        // Each flood round re-queries a frontier row once per neighbor, so
        // even the half-sized cache must serve a solid hit fraction.
        assert!(m.oracle_hit_rate > 0.5, "hit rate {}", m.oracle_hit_rate);
        // The tier microbench always produces positive timings, and warming
        // the row cache can only make it faster (1.5× slack absorbs clock
        // jitter at this miniature query count).
        assert!(m.oracle_dense_ns > 0.0);
        assert!(m.oracle_cached_cold_ns > 0.0);
        assert!(m.oracle_cached_warm_ns > 0.0);
        assert!(m.oracle_embed_ns > 0.0);
        assert!(m.oracle_embed_cold_speedup > 0.0);
        assert!(m.driver_sched_ns > 0.0);
        assert!(m.driver_events_per_sec > 0.0);
        // The library test harness installs no counting allocator, so the
        // allocation probe must report the record-only 0.
        assert_eq!(m.allocs_per_trial, 0.0);
        assert!(
            m.oracle_cached_warm_ns <= m.oracle_cached_cold_ns * 1.5,
            "warm {} vs cold {}",
            m.oracle_cached_warm_ns,
            m.oracle_cached_cold_ns
        );
    }

    #[test]
    fn reprs_agree_on_everything_but_the_clock() {
        // The adjacency representation is a traversal detail: every
        // deterministic metric must be identical between runs.
        let csr = miniature(Repr::Csr);
        let vecvec = miniature(Repr::Vecvec);
        assert_eq!(csr.driver_trials, vecvec.driver_trials);
        assert_eq!(
            csr.flood_edges_scanned_per_lookup.to_bits(),
            vecvec.flood_edges_scanned_per_lookup.to_bits()
        );
        assert_eq!(
            csr.flood_improvements_per_lookup.to_bits(),
            vecvec.flood_improvements_per_lookup.to_bits()
        );
        assert_eq!(
            csr.flood_frontier_pushes_per_lookup.to_bits(),
            vecvec.flood_frontier_pushes_per_lookup.to_bits()
        );
        assert!(csr.bitwise_identical && vecvec.bitwise_identical);
    }

    fn report_with(scale: &str, trials_per_sec: f64) -> PerfReport {
        PerfReport {
            status: "generated".into(),
            regenerate: String::new(),
            seed: 1,
            threads: 1,
            entries: vec![PerfEntry {
                scale: scale.into(),
                repr: "csr".into(),
                metrics: PerfMetrics {
                    driver_trials_per_sec: trials_per_sec,
                    driver_trials: 1000,
                    serial_lookups_per_sec: 100.0,
                    parallel_lookups_per_sec: 100.0,
                    parallel_speedup: 1.0,
                    bitwise_identical: true,
                    flood_edges_scanned_per_lookup: 1.0,
                    flood_improvements_per_lookup: 1.0,
                    flood_frontier_pushes_per_lookup: 1.0,
                    oracle_hit_rate: 0.9,
                    oracle_dense_ns: 10.0,
                    oracle_cached_cold_ns: 1000.0,
                    oracle_cached_warm_ns: 20.0,
                    oracle_embed_ns: 15.0,
                    oracle_embed_cold_speedup: 1000.0 / 15.0,
                    driver_sched_ns: 50.0,
                    driver_events_per_sec: 1e7,
                    allocs_per_trial: 0.0,
                },
            }],
        }
    }

    #[test]
    fn check_skips_placeholder_and_gates_generated() {
        let report = report_with("quick", 100.0);

        // Placeholder baselines never gate.
        let placeholder = serde_json::json!({ "status": "placeholder" });
        assert!(check_against_baseline(&report, &placeholder).is_empty());

        // Null / missing metrics are record-only.
        let partial = serde_json::json!({
            "status": "generated",
            "entries": [{ "scale": "quick", "metrics": { "driver_trials_per_sec": null } }]
        });
        assert!(check_against_baseline(&report, &partial).is_empty());

        // A baseline entry at a different scale never gates this run.
        let other_scale = serde_json::json!({
            "status": "generated",
            "entries": [{ "scale": "paper", "metrics": { "driver_trials_per_sec": 500.0 } }]
        });
        assert!(check_against_baseline(&report, &other_scale).is_empty());

        // Within tolerance passes; beyond it fails.
        let close = serde_json::json!({
            "status": "generated",
            "entries": [{ "scale": "quick", "metrics": { "driver_trials_per_sec": 120.0 } }]
        });
        assert!(check_against_baseline(&report, &close).is_empty());
        let far = serde_json::json!({
            "status": "generated",
            "entries": [{ "scale": "quick", "metrics": { "driver_trials_per_sec": 500.0 } }]
        });
        let failures = check_against_baseline(&report, &far);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].metric, "driver_trials_per_sec");
        assert_eq!(failures[0].scale, "quick");
    }

    #[test]
    fn check_matches_repr_and_gates_flood_work_upward() {
        let report = report_with("quick", 100.0);

        // A baseline entry for a different repr never gates this run.
        let other_repr = serde_json::json!({
            "status": "generated",
            "entries": [{ "scale": "quick", "repr": "vecvec",
                          "metrics": { "driver_trials_per_sec": 500.0 } }]
        });
        assert!(check_against_baseline(&report, &other_repr).is_empty());

        // A baseline without a repr field is treated as "csr" and gates.
        let legacy_baseline = serde_json::json!({
            "status": "generated",
            "entries": [{ "scale": "quick",
                          "metrics": { "driver_trials_per_sec": 500.0 } }]
        });
        assert_eq!(check_against_baseline(&report, &legacy_baseline).len(), 1);

        // flood_edges_scanned_per_lookup fails upward, not downward. The
        // report's value is 1.0: a baseline of 2.0 passes (we scan fewer
        // edges), a baseline of 0.5 fails (we scan twice as many).
        let fewer = serde_json::json!({
            "status": "generated",
            "entries": [{ "scale": "quick", "repr": "csr",
                          "metrics": { "flood_edges_scanned_per_lookup": 2.0 } }]
        });
        assert!(check_against_baseline(&report, &fewer).is_empty());
        let more = serde_json::json!({
            "status": "generated",
            "entries": [{ "scale": "quick", "repr": "csr",
                          "metrics": { "flood_edges_scanned_per_lookup": 0.5 } }]
        });
        let failures = check_against_baseline(&report, &more);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].metric, "flood_edges_scanned_per_lookup");
    }
}
