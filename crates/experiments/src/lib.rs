//! # prop-experiments — regenerating the paper's evaluation
//!
//! One module per figure, with every panel an explicit function returning
//! the plotted series:
//!
//! | module | paper figure | panels |
//! |---|---|---|
//! | [`fig5`] | Fig. 5 — PROP-G in a Gnutella-like environment (avg lookup latency vs time) | (a) TTL scale, (b) system size, (c) physical topology |
//! | [`fig6`] | Fig. 6 — PROP-G in a Chord environment (stretch vs time) | (a) TTL scale, (b) system size, (c) physical topology |
//! | [`fig7`] | Fig. 7 — PROP-O vs PROP-G vs LTM under bimodal heterogeneity (normalized delay vs fraction of fast-node lookups) | single panel |
//! | [`ablation`] | §4.3 / §5 text claims | A1 overhead, A2 churn, A3 combining with PNS/PIS, A4 selfish rewiring |
//! | [`faults`] | robustness (beyond-paper) | loss × partition sweep, partition-recovery timeline |
//! | [`traffic`] | scripted production traffic (beyond-paper) | diurnal-regional and flash-crowd scenarios, PROP-G vs PROP-O vs selfish per diurnal phase |
//!
//! Each experiment takes a [`Scale`]: `Paper` reproduces the published
//! parameterization (n = 1000 over the ≈3,000-host `ts-large` topology,
//! two simulated hours), `Quick` shrinks everything for smoke tests and
//! Criterion benches.
//!
//! Any of these can also run as a seed-sharded Monte-Carlo sweep
//! ([`sweep`], or `--seeds N [--resume]` on the figure binaries): N
//! derived seeds fan across the rayon pool, each seed streams its record
//! to `results/<sweep>/seed-<k>.json`, and the aggregate reports every
//! headline metric as mean ± 95% CI.

pub mod ablation;
pub mod embed_agreement;
pub mod faults;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod generality;
pub mod perf;
pub mod plot;
pub mod report;
pub mod setup;
pub mod sweep;
pub mod traffic;

pub use setup::{OracleTier, Scale, Scenario, Topology};

/// Convenience re-export used by the figure binaries: convergence summary
/// of a sampled series (see [`prop_metrics::convergence`]).
pub fn convergence_of(ts: &prop_metrics::TimeSeries) -> Option<prop_metrics::Convergence> {
    prop_metrics::convergence(ts)
}
