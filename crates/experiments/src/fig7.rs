//! Figure 7 — *PROP-O vs PROP-G vs LTM in a heterogeneous environment.*
//!
//! Setup (§5.3): bimodal processing delays — 20% *fast* peers (10 ms), 80%
//! *slow* (100 ms) — on a Gnutella-like overlay. In real unstructured
//! networks powerful peers hold more connections, so the fast class is
//! assigned to the earliest joiners, whom preferential attachment makes the
//! high-degree hubs. The x-axis skews lookup *destinations* toward fast
//! peers ("the destination of lookup operations will be concentrated on
//! the powerful nodes"); the y-axis is the converged average lookup delay,
//! normalized by the unoptimized overlay's delay on the same workload.
//!
//! Expected shape: LTM is strongest when all lookups target slow peers; as
//! the fast-lookup fraction grows, PROP-G and LTM degrade (their rewiring /
//! position swaps are blind to node capability and erode the fast hubs'
//! placement advantage) while PROP-O — which provably preserves every
//! node's degree — keeps improving and crosses below them.

use crate::setup::{Scale, Scenario, Topology};
use prop_baselines::{LtmConfig, LtmSim};
use prop_core::{PropConfig, ProtocolSim};
use prop_metrics::par_avg_lookup_latency;
use prop_overlay::gnutella::Gnutella;
use prop_overlay::{OverlayNet, Slot};
use prop_workloads::hetero::HeteroAssignment;
use prop_workloads::{BimodalParams, LookupGen};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One scheme's curve: (fraction of fast-destination lookups, delay ratio).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HeteroCurve {
    pub label: String,
    pub points: Vec<(f64, f64)>,
}

#[derive(Clone, Copy, Debug)]
enum Scheme {
    PropO { m: usize },
    PropG,
    Ltm,
}

impl Scheme {
    fn label(self) -> String {
        match self {
            Scheme::PropO { m } => format!("PROP-O (m={m})"),
            Scheme::PropG => "PROP-G".to_string(),
            Scheme::Ltm => "LTM".to_string(),
        }
    }
}

/// Fast peers are the earliest joiners: with preferential attachment, peer
/// index correlates with degree, so this reproduces "powerful nodes own
/// more connections".
fn hub_correlated_assignment(params: &BimodalParams, n: usize) -> HeteroAssignment {
    let n_fast = ((n as f64) * params.fast_fraction).round() as usize;
    let is_fast: Vec<bool> = (0..n).map(|p| p < n_fast).collect();
    let delay_ms = is_fast
        .iter()
        .map(|&f| if f { params.fast_delay_ms } else { params.slow_delay_ms })
        .collect();
    HeteroAssignment { delay_ms, is_fast }
}

/// Peer-space lookup pairs mapped to current slots (PROP-G relocates peers,
/// so destinations follow the *peer*, not the slot).
fn to_slot_pairs(net: &OverlayNet, peer_pairs: &[(Slot, Slot)]) -> Vec<(Slot, Slot)> {
    peer_pairs
        .iter()
        .map(|&(s, d)| {
            (
                net.placement().slot_of(s.index()).expect("peer present"),
                net.placement().slot_of(d.index()).expect("peer present"),
            )
        })
        .collect()
}

fn optimize(
    scenario: &Scenario,
    scheme: Scheme,
    assignment: &HeteroAssignment,
    scale: Scale,
) -> (Gnutella, OverlayNet) {
    let (gn, mut net) = scenario.gnutella();
    net.set_processing_delays(assignment.delay_ms.clone());
    match scheme {
        Scheme::PropO { m } => {
            let mut rng = scenario.rng(&format!("fig7-propo-{m}"));
            let mut sim = ProtocolSim::new(net, PropConfig::prop_o_m(m), &mut rng);
            sim.run_for(scale.horizon());
            (gn, take_net(sim))
        }
        Scheme::PropG => {
            let mut rng = scenario.rng("fig7-propg");
            let mut sim = ProtocolSim::new(net, PropConfig::prop_g(), &mut rng);
            sim.run_for(scale.horizon());
            (gn, take_net(sim))
        }
        Scheme::Ltm => {
            let mut rng = scenario.rng("fig7-ltm");
            let mut sim = LtmSim::new(net, LtmConfig::default(), &mut rng);
            sim.run_for(scale.horizon());
            (gn, sim.into_net())
        }
    }
}

fn take_net(sim: ProtocolSim) -> OverlayNet {
    sim.into_net()
}

/// The full Fig. 7 sweep.
pub fn run(scale: Scale, seed: u64) -> Vec<HeteroCurve> {
    let n = scale.default_n();
    let topo = match scale {
        Scale::Paper => Topology::TsLarge,
        Scale::Quick => Topology::TsSmall,
    };
    let scenario = Scenario::build(topo, n, seed);
    let params = BimodalParams::default();
    let assignment = hub_correlated_assignment(&params, n);

    let fractions: Vec<f64> = match scale {
        Scale::Paper => (0..=8).map(|i| i as f64 / 8.0).collect(),
        Scale::Quick => vec![0.0, 0.25, 0.5, 0.75, 1.0],
    };

    // Shared peer-space workloads, one per fraction, identical for every
    // scheme (and for the unoptimized baseline used as the normalizer).
    let peer_slots: Vec<Slot> = (0..n as u32).map(Slot).collect();
    let is_fast = |s: Slot| assignment.is_fast[s.index()];
    let workloads: Vec<(f64, Vec<(Slot, Slot)>)> = {
        let mut gen = LookupGen::new(&scenario.rng("fig7-lookups"));
        fractions
            .iter()
            .map(|&f| (f, gen.skewed_pairs(&peer_slots, is_fast, f, scale.lookups_per_sample())))
            .collect()
    };

    // Normalizer: the unoptimized overlay.
    let (gn0, mut net0) = scenario.gnutella();
    net0.set_processing_delays(assignment.delay_ms.clone());
    let baseline: Vec<f64> = workloads
        .iter()
        .map(|(_, pairs)| par_avg_lookup_latency(&net0, &gn0, &to_slot_pairs(&net0, pairs)).mean_ms)
        .collect();

    let schemes = [
        Scheme::PropO { m: 1 },
        Scheme::PropO { m: 2 },
        Scheme::PropO { m: 4 },
        Scheme::PropG,
        Scheme::Ltm,
    ];
    schemes
        .into_par_iter()
        .map(|scheme| {
            let (gn, net) = optimize(&scenario, scheme, &assignment, scale);
            let points = workloads
                .iter()
                .zip(&baseline)
                .map(|((f, pairs), &base)| {
                    let mean =
                        par_avg_lookup_latency(&net, &gn, &to_slot_pairs(&net, pairs)).mean_ms;
                    (*f, mean / base)
                })
                .collect();
            HeteroCurve { label: scheme.label(), points }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_assignment_marks_prefix_fast() {
        let a = hub_correlated_assignment(&BimodalParams::default(), 50);
        assert_eq!(a.num_fast(), 10);
        assert!(a.is_fast[..10].iter().all(|&f| f));
        assert!(!a.is_fast[10..].iter().any(|&f| f));
    }

    #[test]
    fn quick_sweep_has_sane_shape() {
        let curves = run(Scale::Quick, 48);
        assert_eq!(curves.len(), 5);
        for c in &curves {
            assert_eq!(c.points.len(), 5);
            for &(f, ratio) in &c.points {
                assert!((0.0..=1.0).contains(&f));
                assert!(ratio.is_finite() && ratio > 0.0, "{}: ratio {ratio}", c.label);
                // Optimization should rarely make things meaningfully worse.
                assert!(ratio < 1.25, "{}: ratio {ratio} at f={f}", c.label);
            }
        }
        // Every scheme should help somewhere.
        for c in &curves {
            let best = c.points.iter().map(|&(_, r)| r).fold(f64::MAX, f64::min);
            assert!(best < 1.0, "{} never improved (best {best})", c.label);
        }
    }
}
