//! Sweep manifest resume semantics, end to end on a miniature fig6 sweep:
//!
//! * an interrupted sweep (manifest truncated to half its completed
//!   seeds) resumed with `--resume` reproduces the uninterrupted
//!   aggregate **byte for byte**;
//! * a corrupted seed record is detected by its digest and re-run;
//! * a changed configuration refuses to resume;
//! * resuming with no manifest on disk is an error, not a silent fresh
//!   start.

use prop_experiments::setup::Topology;
use prop_experiments::sweep::{
    run_sweep, SeedStatus, SweepConfig, SweepError, SweepExperiment, SweepManifest,
};
use prop_experiments::Scale;
use std::fs;
use std::path::{Path, PathBuf};

/// A process-unique scratch root (no wall clock: test name + pid).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prop-sweep-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch root");
    dir
}

fn tiny_cfg(seeds: usize) -> SweepConfig {
    SweepConfig {
        experiment: SweepExperiment::Fig6,
        scale: Scale::Quick,
        base_seed: 5,
        seeds,
        topology: Some(Topology::Tiny),
        n: Some(24),
    }
}

fn read_manifest(dir: &Path) -> SweepManifest {
    serde_json::from_slice(&fs::read(dir.join("manifest.json")).unwrap()).unwrap()
}

fn write_manifest(dir: &Path, m: &SweepManifest) {
    fs::write(dir.join("manifest.json"), serde_json::to_vec_pretty(m).unwrap()).unwrap();
}

#[test]
fn interrupted_sweep_resumes_to_byte_identical_aggregate() {
    let cfg = tiny_cfg(6);

    // Reference: one uninterrupted 6-seed sweep.
    let root_a = scratch("uninterrupted");
    let full = run_sweep(&cfg, &root_a, false).expect("uninterrupted sweep");
    assert_eq!((full.ran, full.reused), (6, 0));
    let reference = fs::read(full.dir.join("aggregate.json")).unwrap();

    // Same sweep elsewhere, then simulate a kill after 3 seeds: truncate
    // the manifest to 3 completed entries, delete the other records and
    // the aggregate.
    let root_b = scratch("interrupted");
    let first = run_sweep(&cfg, &root_b, false).expect("initial sweep");
    let dir = first.dir.clone();
    let mut manifest = read_manifest(&dir);
    for e in manifest.seeds.iter_mut().skip(3) {
        e.status = SeedStatus::Pending;
        e.digest = None;
    }
    write_manifest(&dir, &manifest);
    for k in 3..6 {
        fs::remove_file(dir.join(format!("seed-{k}.json"))).unwrap();
    }
    fs::remove_file(dir.join("aggregate.json")).unwrap();

    // Resume: exactly the 3 missing seeds run, and the aggregate matches
    // the uninterrupted run byte for byte.
    let resumed = run_sweep(&cfg, &root_b, true).expect("resume");
    assert_eq!((resumed.ran, resumed.reused), (3, 3));
    let resumed_bytes = fs::read(resumed.dir.join("aggregate.json")).unwrap();
    assert_eq!(resumed_bytes, reference, "resumed aggregate diverged from the uninterrupted one");

    // Sanity on content: fig6 sweeps carry stretch + overhead CIs and a
    // mean curve with an error-bar block.
    let agg = &resumed.aggregate;
    for metric in ["stretch_final", "stretch_initial", "improvement", "overhead_msgs_per_trial"] {
        let s = agg.metrics.get(metric).unwrap_or_else(|| panic!("missing metric {metric}"));
        assert_eq!(s.n, 6);
        assert!(s.ci95.is_some(), "{metric} must have a CI at n=6");
    }
    let curve = agg.mean_curve.as_ref().expect("fig6 sweep builds a mean curve");
    let ci = curve.ci.as_ref().expect("mean curve carries the CI block");
    assert_eq!(ci.seeds, 6);
    assert_eq!(ci.point_ci95.len(), curve.series.points.len());
}

#[test]
fn corrupted_seed_record_is_rerun_not_trusted() {
    let cfg = tiny_cfg(3);
    let root = scratch("corrupt");
    let full = run_sweep(&cfg, &root, false).expect("sweep");
    let reference = fs::read(full.dir.join("aggregate.json")).unwrap();

    // Truncate one record on disk without touching the manifest: the
    // digest check must catch it and re-run that seed.
    let victim = full.dir.join("seed-1.json");
    let bytes = fs::read(&victim).unwrap();
    fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    let resumed = run_sweep(&cfg, &root, true).expect("resume over corruption");
    assert_eq!((resumed.ran, resumed.reused), (1, 2));
    assert_eq!(fs::read(resumed.dir.join("aggregate.json")).unwrap(), reference);
}

#[test]
fn changed_config_refuses_to_resume() {
    let cfg = tiny_cfg(3);
    let root = scratch("config-change");
    run_sweep(&cfg, &root, false).expect("sweep");

    // Same directory name (same experiment/scale/base seed), different
    // membership: the config hash differs, resume must refuse.
    let mut changed = cfg.clone();
    changed.n = Some(32);
    match run_sweep(&changed, &root, true) {
        Err(SweepError::ConfigChanged { manifest, requested }) => {
            assert_ne!(manifest, requested);
            assert_eq!(manifest, cfg.hash());
            assert_eq!(requested, changed.hash());
        }
        other => panic!("expected ConfigChanged, got {other:?}", other = other.err()),
    }

    // A different seed count is also a different sweep.
    let more = tiny_cfg(4);
    assert!(matches!(run_sweep(&more, &root, true), Err(SweepError::ConfigChanged { .. })));

    // Without --resume the changed config simply starts over.
    let fresh = run_sweep(&changed, &root, false).expect("fresh run overwrites");
    assert_eq!((fresh.ran, fresh.reused), (3, 0));
}

#[test]
fn resume_without_manifest_is_an_error() {
    let cfg = tiny_cfg(2);
    let root = scratch("no-manifest");
    match run_sweep(&cfg, &root, true) {
        Err(SweepError::NoManifest(path)) => {
            assert!(path.ends_with("manifest.json"), "{}", path.display());
        }
        other => panic!("expected NoManifest, got {other:?}", other = other.err()),
    }
}
