//! Scenario replay guarantees, end to end:
//!
//! * the same (scenario JSON, seed) replays **byte for byte** on the
//!   synchronous and asynchronous drivers — including a round trip of the
//!   scenario itself through serde;
//! * a `Traffic` sweep interrupted mid-run and resumed with `--resume`
//!   reproduces the uninterrupted aggregate byte for byte;
//! * the committed `examples/*.json` scenario bundles stay parseable and
//!   compile to non-empty traffic planes.

use prop_experiments::setup::Topology;
use prop_experiments::sweep::{run_sweep, SeedStatus, SweepConfig, SweepExperiment, SweepManifest};
use prop_experiments::traffic::{run_scenario, TrafficDriver};
use prop_experiments::Scale;
use prop_faults::Scenario as ScenarioSpec;
use prop_workloads::TrafficScript;
use std::fs;
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prop-traffic-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch root");
    dir
}

fn tiny_spec(seed: u64) -> ScenarioSpec {
    let script = TrafficScript::preset_flash_crowd(25_000, 600_000, 12, 0.8, 12.0);
    ScenarioSpec::new("tiny-flash", "tiny", 24, seed, script)
}

#[test]
fn scenario_json_replays_byte_identically_on_both_drivers() {
    let spec = tiny_spec(21);
    // The JSON file *is* the reproducible unit: round-trip the bundle
    // through serde and replay both copies.
    let json = serde_json::to_string(&spec).unwrap();
    let reparsed: ScenarioSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, reparsed, "scenario serde round trip changed the bundle");

    for driver in [TrafficDriver::PropO, TrafficDriver::Async] {
        let a = run_scenario(&spec, driver, Scale::Quick);
        let b = run_scenario(&reparsed, driver, Scale::Quick);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "{} replay diverged across a serde round trip",
            driver.label()
        );
        assert!(a.report.total_applied() > 0, "{} applied nothing", driver.label());
    }
}

#[test]
fn async_driver_differs_from_sync_but_is_self_consistent() {
    // Same plane, different execution model: the async driver must be
    // deterministic in its own right (not accidentally identical to sync,
    // which would suggest the plane is being ignored).
    let spec = tiny_spec(23);
    let sync_run = run_scenario(&spec, TrafficDriver::PropO, Scale::Quick);
    let async_a = run_scenario(&spec, TrafficDriver::Async, Scale::Quick);
    let async_b = run_scenario(&spec, TrafficDriver::Async, Scale::Quick);
    assert_eq!(serde_json::to_string(&async_a).unwrap(), serde_json::to_string(&async_b).unwrap());
    // Both consume the identical emitted stream.
    assert_eq!(sync_run.emitted, async_a.emitted, "drivers saw different planes");
}

fn read_manifest(dir: &Path) -> SweepManifest {
    serde_json::from_slice(&fs::read(dir.join("manifest.json")).unwrap()).unwrap()
}

#[test]
fn interrupted_traffic_sweep_resumes_byte_identically() {
    let cfg = SweepConfig {
        experiment: SweepExperiment::Traffic,
        scale: Scale::Quick,
        base_seed: 3,
        seeds: 4,
        topology: Some(Topology::Tiny),
        n: Some(24),
    };

    let root_a = scratch("sweep-uninterrupted");
    let full = run_sweep(&cfg, &root_a, false).expect("uninterrupted sweep");
    assert_eq!((full.ran, full.reused), (4, 0));
    let reference = fs::read(full.dir.join("aggregate.json")).unwrap();

    // Simulate a kill after 2 seeds, then resume.
    let root_b = scratch("sweep-interrupted");
    let first = run_sweep(&cfg, &root_b, false).expect("initial sweep");
    let dir = first.dir.clone();
    let mut manifest = read_manifest(&dir);
    for e in manifest.seeds.iter_mut().skip(2) {
        e.status = SeedStatus::Pending;
        e.digest = None;
    }
    fs::write(dir.join("manifest.json"), serde_json::to_vec_pretty(&manifest).unwrap()).unwrap();
    for k in 2..4 {
        fs::remove_file(dir.join(format!("seed-{k}.json"))).unwrap();
    }
    fs::remove_file(dir.join("aggregate.json")).unwrap();

    let resumed = run_sweep(&cfg, &root_b, true).expect("resume");
    assert_eq!((resumed.ran, resumed.reused), (2, 2));
    assert_eq!(
        fs::read(resumed.dir.join("aggregate.json")).unwrap(),
        reference,
        "resumed traffic sweep diverged from the uninterrupted one"
    );

    // The aggregate carries the per-driver headline metrics with CIs.
    for metric in ["stretch_final/prop-g", "delivery/prop-o", "link_stretch/selfish"] {
        let s = resumed
            .aggregate
            .metrics
            .get(metric)
            .unwrap_or_else(|| panic!("missing metric {metric}"));
        assert_eq!(s.n, 4);
        assert!(s.ci95.is_some(), "{metric} must carry a CI at n=4");
    }
}

#[test]
fn committed_example_scenarios_parse_and_compile() {
    let examples = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    for (file, flashes) in [("diurnal_regional.json", 0usize), ("flash_crowd.json", 2usize)] {
        let path = examples.join(file);
        let json = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let spec: ScenarioSpec = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
        assert_eq!(spec.traffic.flash_crowds.len(), flashes, "{file}");
        assert!(!spec.traffic.domains.is_empty(), "{file} has no domains");
        let plane = prop_workloads::compile(&spec.traffic, spec.seed);
        assert!(!plane.is_empty(), "{file} compiled to an empty plane");
    }
}
