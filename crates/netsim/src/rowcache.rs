//! Sharded LRU cache of latency-oracle rows.
//!
//! One entry is a full source row: `d(src, ·)` over all members, 4 bytes a
//! member. Rows are expensive to make (a Dijkstra over the physical graph)
//! and cheap to keep, so the cache is bounded in **bytes**, not entries:
//! the capacity is split evenly over `shards` independently-locked LRU
//! shards (a source's rows always live in shard `src % shards`), and each
//! shard evicts its least-recently-used rows when over budget.
//!
//! Invariant: a shard never evicts its *last* row, so a single over-sized
//! row still caches (resident bytes then exceed the configured capacity by
//! at most `shards × row_bytes`; with any sane configuration
//! `row_bytes × shards ≪ capacity` and residency stays under the cap —
//! asserted by `tests/scale_cap.rs`).
//!
//! Hit/miss/eviction counters are plain relaxed atomics — they are
//! reporting, not synchronization.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Snapshot of the row cache's counters, for experiment reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct CacheStats {
    /// Queries answered from a resident row.
    pub hits: u64,
    /// Queries that forced a Dijkstra (row computations via `warm` count
    /// one miss per computed row).
    pub misses: u64,
    /// Rows dropped by the LRU policy.
    pub evictions: u64,
    /// Rows currently resident.
    pub resident_rows: usize,
    /// Bytes currently resident (rows only, excluding bookkeeping).
    pub resident_bytes: usize,
    /// High-water mark of `resident_bytes` over the cache's lifetime.
    pub peak_resident_bytes: usize,
    /// Configured byte budget.
    pub capacity_bytes: usize,
}

impl CacheStats {
    /// Fraction of queries served without a Dijkstra, in `[0, 1]`
    /// (`NaN`-free: 0 when nothing was asked yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter difference versus an earlier snapshot (gauges are kept from
    /// `self`).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            ..*self
        }
    }
}

struct Entry {
    row: Arc<[u32]>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    rows: HashMap<usize, Entry>,
    /// Monotonic use counter; higher = more recently used.
    tick: u64,
}

/// The sharded, byte-bounded LRU row store.
pub struct RowCache {
    shards: Box<[Mutex<Shard>]>,
    /// Byte budget per shard.
    shard_capacity: usize,
    /// Bytes one row occupies (`4 × n`).
    row_bytes: usize,
    capacity_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    resident_bytes: AtomicUsize,
    peak_resident_bytes: AtomicUsize,
}

impl RowCache {
    /// A cache for rows of `row_len` `u32`s, bounded by `capacity_bytes`
    /// split over `shards` locks.
    pub fn new(row_len: usize, capacity_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        RowCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity_bytes / shards,
            row_bytes: row_len * std::mem::size_of::<u32>(),
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            resident_bytes: AtomicUsize::new(0),
            peak_resident_bytes: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn shard(&self, src: usize) -> &Mutex<Shard> {
        &self.shards[src % self.shards.len()]
    }

    /// Fetch the row for `src` if resident, bumping its recency and the hit
    /// counter. Misses are *not* counted here — the caller records one miss
    /// per row it actually computes (a `d(a, b)` query probes both `a` and
    /// `b`, and must not count twice).
    pub fn get(&self, src: usize) -> Option<Arc<[u32]>> {
        let mut shard = self.shard(src).lock();
        shard.tick += 1;
        let tick = shard.tick;
        let entry = shard.rows.get_mut(&src)?;
        entry.last_used = tick;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.row))
    }

    /// Is the row for `src` resident? No counter or recency side effects.
    pub fn contains(&self, src: usize) -> bool {
        self.shard(src).lock().rows.contains_key(&src)
    }

    /// Record one computed row (one Dijkstra).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Insert a freshly computed row, evicting LRU rows while the shard is
    /// over budget. A concurrent duplicate insert is benign: the second
    /// copy replaces the first.
    pub fn insert(&self, src: usize, row: Arc<[u32]>) {
        debug_assert_eq!(row.len() * std::mem::size_of::<u32>(), self.row_bytes);
        let mut shard = self.shard(src).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if shard.rows.insert(src, Entry { row, last_used: tick }).is_none() {
            self.add_resident(self.row_bytes);
        }
        while shard.rows.len() * self.row_bytes > self.shard_capacity && shard.rows.len() > 1 {
            let (&lru, _) = shard
                .rows
                .iter()
                .filter(|&(&k, _)| k != src)
                .min_by_key(|(_, e)| e.last_used)
                .expect("len > 1 so another key exists");
            shard.rows.remove(&lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.resident_bytes.fetch_sub(self.row_bytes, Ordering::Relaxed);
        }
    }

    fn add_resident(&self, bytes: usize) {
        let now = self.resident_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_resident_bytes.fetch_max(now, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let resident_bytes = self.resident_bytes.load(Ordering::Relaxed);
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_rows: resident_bytes / self.row_bytes.max(1),
            resident_bytes,
            peak_resident_bytes: self.peak_resident_bytes.load(Ordering::Relaxed),
            capacity_bytes: self.capacity_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(len: usize, fill: u32) -> Arc<[u32]> {
        vec![fill; len].into()
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = RowCache::new(8, 1 << 20, 4);
        assert!(c.get(0).is_none());
        c.record_miss();
        c.insert(0, row(8, 7));
        let r = c.get(0).expect("resident");
        assert_eq!(r[3], 7);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.resident_rows, 1);
        assert_eq!(s.resident_bytes, 32);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent_within_shard() {
        // One shard, room for exactly two 32-byte rows.
        let c = RowCache::new(8, 64, 1);
        c.insert(0, row(8, 0));
        c.insert(1, row(8, 1));
        assert!(c.get(0).is_some()); // 0 now more recent than 1
        c.insert(2, row(8, 2)); // over budget ⇒ evict 1
        assert!(c.contains(0));
        assert!(!c.contains(1));
        assert!(c.contains(2));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= 64);
    }

    #[test]
    fn never_evicts_the_only_row() {
        // Capacity smaller than a single row: the fresh row must survive.
        let c = RowCache::new(8, 16, 1);
        c.insert(0, row(8, 0));
        assert!(c.contains(0));
        c.insert(1, row(8, 1));
        assert!(c.contains(1));
        assert!(!c.contains(0), "old row evicted in favor of the fresh one");
        assert_eq!(c.stats().resident_rows, 1);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let c = RowCache::new(8, 32, 1); // one row fits
        c.insert(0, row(8, 0));
        c.insert(1, row(8, 1));
        let s = c.stats();
        assert_eq!(s.resident_bytes, 32);
        // Insert-then-evict briefly held two rows.
        assert_eq!(s.peak_resident_bytes, 64);
    }

    #[test]
    fn shards_are_independent() {
        let c = RowCache::new(8, 128, 4); // 32 B per shard = 1 row each
        for src in 0..4 {
            c.insert(src, row(8, src as u32));
        }
        for src in 0..4 {
            assert!(c.contains(src), "each shard holds its own row");
        }
    }

    #[test]
    fn since_diffs_counters_only() {
        let c = RowCache::new(8, 1 << 20, 1);
        c.record_miss();
        c.insert(0, row(8, 0));
        let early = c.stats();
        c.get(0);
        c.get(0);
        let diff = c.stats().since(&early);
        assert_eq!((diff.hits, diff.misses), (2, 0));
        assert_eq!(diff.resident_rows, 1);
    }
}
