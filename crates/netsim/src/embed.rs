//! Coordinate-embedded latency tier: `d(u, v)` in O(1) at million-member
//! scale.
//!
//! The row-cache tier ([`crate::CachedOracle`]) pays one full single-source
//! Dijkstra per cold row. At 100,000 members that is tolerable; at 1,000,000
//! it is the wall between the reproduction and the ROADMAP's "millions of
//! users" north star. This module removes the per-pair graph computation
//! entirely: every member gets a **network coordinate** — a Vivaldi-style
//! *height-vector* (position in a low-dimensional Euclidean space plus a
//! non-negative "height" modelling the access-link cost of climbing out of
//! the stub domain) — fit **once** at construction from a small number of
//! exact Dijkstra rows, after which
//!
//! ```text
//! d̂(u, v) = ‖x_u − x_v‖ + h_u + h_v
//! ```
//!
//! answers any pair in a few nanoseconds, independent of graph size.
//!
//! ## Fit procedure (deterministic, seeded)
//!
//! 1. **Landmarks.** `L` members are chosen by deterministic stride over the
//!    member index space. One exact Dijkstra per landmark (Rayon-parallel)
//!    yields the landmark→member distance rows — the only graph computation
//!    the fit performs.
//! 2. **Landmark relaxation.** Landmark coordinates are fit against the
//!    L × L exact inter-landmark distances by seeded spring relaxation:
//!    fixed iteration order, fixed decaying step schedule, no data-dependent
//!    branching — bit-identical on every run.
//! 3. **Member fit.** Every member independently relaxes its own coordinate
//!    against the (now frozen) landmark coordinates using its column of the
//!    landmark rows. Members are mutually independent, so this pass is
//!    Rayon-parallel *and* bit-deterministic for any worker count.
//! 4. **Calibration.** Fresh exact rows from `C` stride-chosen sources (not
//!    used during the fit) are compared against the embedding; the
//!    per-percentile absolute and relative error distribution is committed
//!    into the oracle ([`EmbedCalibration`]) alongside the coordinates.
//!
//! ## The exact-fallback band
//!
//! An embedding is an estimate; the protocol's `Var > MIN_VAR` exchange
//! decisions must stay trustworthy. The calibration yields a **margin per
//! distance term** (the configured error percentile × a safety scale). When
//! a Var comparison lands within `terms × margin` of the threshold, the
//! decision **escalates**: the same plan is re-evaluated with exact
//! distances through the embedded oracle's internal row-cache tier
//! ([`EmbedOracle::d_exact`]). Decisions far from the threshold — the vast
//! majority — stay on the O(1) path. `prop-core`'s `exchange::decide` is
//! the single consumer of this contract, and the `embed_agreement` harness
//! measures the resulting exchange-decision agreement the way the
//! `tier_equivalence` proptests pin the cached tier.
//!
//! Rounding uses `ceil`, which preserves the triangle inequality exactly:
//! `⌈x⌉ + ⌈y⌉ ≥ ⌈x + y⌉ ≥ ⌈z⌉` whenever `x + y ≥ z`.

use crate::dijkstra::shortest_paths;
use crate::graph::{PhysGraph, PhysNodeId};
use crate::latency::{Latency, OracleBuildError, OracleConfig};
use crate::oracle::{member_row, CachedOracle, MemberIdx};
use prop_engine::SimRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Hard upper bound on embedding dimensionality (coordinates live in fixed
/// stack arrays on the fit's hot path).
pub const MAX_DIMS: usize = 8;

/// Initial coordinate radius, ms — relaxation moves points far beyond it.
const INIT_RADIUS_MS: f64 = 50.0;

/// Construction-time knobs of the coordinate embedding.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct EmbedConfig {
    /// Euclidean dimensions of the coordinate space (2..=[`MAX_DIMS`];
    /// the height is carried separately). 4 is the classic Vivaldi sweet
    /// spot for internet-like latency spaces.
    pub dims: usize,
    /// Number of landmark members (one exact Dijkstra each). More
    /// landmarks ⇒ better-conditioned fit, linearly more build work.
    pub landmarks: usize,
    /// Spring-relaxation rounds over all landmark pairs.
    pub landmark_rounds: usize,
    /// Relaxation rounds each member performs against the frozen
    /// landmarks.
    pub member_rounds: usize,
    /// Held-out exact sources for the error calibration pass (one
    /// Dijkstra each).
    pub calibration_sources: usize,
    /// Stride-sampled destinations per calibration source.
    pub calibration_targets: usize,
    /// Which absolute-error percentile becomes the fallback band's
    /// per-term margin (in `[0, 1]`, e.g. `0.95`).
    pub fallback_percentile: f64,
    /// Safety multiplier on the per-term margin. Raising it escalates more
    /// borderline decisions to the exact tier (slower, safer).
    pub margin_scale: f64,
    /// Seed of the relaxation's deterministic initial placement.
    pub seed: u64,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        EmbedConfig {
            dims: 4,
            landmarks: 32,
            landmark_rounds: 128,
            member_rounds: 24,
            calibration_sources: 16,
            calibration_targets: 256,
            fallback_percentile: 0.95,
            margin_scale: 1.0,
            seed: 0x454d_4245_44,
        }
    }
}

impl EmbedConfig {
    /// Clamp every knob into its valid range (the fit assumes this).
    fn validated(self) -> EmbedConfig {
        EmbedConfig {
            dims: self.dims.clamp(2, MAX_DIMS),
            landmarks: self.landmarks.max(self.dims + 1),
            landmark_rounds: self.landmark_rounds.max(1),
            member_rounds: self.member_rounds.max(1),
            calibration_sources: self.calibration_sources.max(1),
            calibration_targets: self.calibration_targets.max(2),
            fallback_percentile: self.fallback_percentile.clamp(0.0, 1.0),
            margin_scale: self.margin_scale.max(0.0),
            ..self
        }
    }
}

/// The embedding's measured error distribution, committed alongside the
/// fit. All `abs` fields are milliseconds; `rel` fields are fractions of
/// the exact distance (floored at 1 ms to keep ratios finite).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct EmbedCalibration {
    /// Held-out (source, destination) samples measured.
    pub samples: usize,
    pub abs_p50_ms: f64,
    pub abs_p90_ms: f64,
    pub abs_p95_ms: f64,
    pub abs_p99_ms: f64,
    pub abs_max_ms: f64,
    pub rel_p50: f64,
    pub rel_p90: f64,
    pub rel_p95: f64,
    pub rel_p99: f64,
}

/// Query counters of the embedded tier (relaxed atomics — reporting, not
/// synchronization).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct EmbedStats {
    /// `d(u,v)` queries answered from coordinates (the O(1) path).
    pub embed_queries: u64,
    /// Queries answered by the internal exact row-cache tier
    /// ([`EmbedOracle::d_exact`]).
    pub exact_queries: u64,
    /// Var decisions that fell inside the fallback band and were
    /// re-evaluated exactly.
    pub escalations: u64,
}

impl EmbedStats {
    /// Counter difference versus an earlier snapshot.
    pub fn since(&self, earlier: &EmbedStats) -> EmbedStats {
        EmbedStats {
            embed_queries: self.embed_queries - earlier.embed_queries,
            exact_queries: self.exact_queries - earlier.exact_queries,
            escalations: self.escalations - earlier.escalations,
        }
    }

    /// Escalations per embedded query, 0 when nothing was asked.
    pub fn escalation_rate(&self) -> f64 {
        if self.embed_queries == 0 {
            0.0
        } else {
            self.escalations as f64 / self.embed_queries as f64
        }
    }
}

/// Decaying relaxation step: starts at 0.25, anneals toward a 0.02 floor.
#[inline]
fn step_at(round: usize, rounds: usize) -> f64 {
    0.02 + 0.23 * (1.0 - round as f64 / rounds as f64)
}

/// Squared-distance-free height-vector estimate between two coordinate
/// slices (`‖a − b‖ + h_a + h_b`).
#[inline]
fn estimate_raw(pa: &[f64], ha: f64, pb: &[f64], hb: f64) -> f64 {
    let mut s = 0.0;
    for k in 0..pa.len() {
        let d = pa[k] - pb[k];
        s += d * d;
    }
    s.sqrt() + ha + hb
}

/// One spring-relaxation update: move (`pos`, `height`) so that the
/// estimate toward the frozen (`other_pos`, `other_height`) approaches
/// `target_ms`. `fallback_axis` breaks the tie when the two positions
/// coincide (deterministically, never randomly).
#[inline]
fn nudge(
    pos: &mut [f64],
    height: &mut f64,
    other_pos: &[f64],
    other_height: f64,
    target_ms: f64,
    step: f64,
    fallback_axis: usize,
) {
    let dims = pos.len();
    let mut dir = [0.0f64; MAX_DIMS];
    let mut norm2 = 0.0;
    for k in 0..dims {
        let d = pos[k] - other_pos[k];
        dir[k] = d;
        norm2 += d * d;
    }
    let norm = norm2.sqrt();
    let est = norm + *height + other_height;
    let err = target_ms - est; // > 0: too close, push away
    if norm > 1e-9 {
        for d in dir.iter_mut().take(dims) {
            *d /= norm;
        }
    } else {
        dir = [0.0; MAX_DIMS];
        dir[fallback_axis % dims] = 1.0;
    }
    let delta = step * err * 0.5;
    for k in 0..dims {
        pos[k] += delta * dir[k];
    }
    *height = (*height + step * err * 0.25).max(0.0);
}

/// The coordinate-embedded oracle tier.
///
/// Owns its exact escalation path: a full [`CachedOracle`] over the same
/// member set, pre-seeded with the landmark and calibration rows the fit
/// already paid for.
pub struct EmbedOracle {
    exact: CachedOracle,
    dims: usize,
    /// Row-major `n × dims` coordinates, ms-scaled.
    coords: Box<[f64]>,
    /// Per-member height (access-link) component, ms, non-negative.
    heights: Box<[f64]>,
    landmarks: Vec<MemberIdx>,
    calibration: EmbedCalibration,
    margin_per_term: f64,
    embed_queries: AtomicU64,
    exact_queries: AtomicU64,
    escalations: AtomicU64,
}

impl EmbedOracle {
    /// Fit the embedding and build the escalation tier. Connectivity is
    /// validated by the internal exact build and by every landmark /
    /// calibration row (a disconnected pair fails fast with the offending
    /// members named).
    pub fn try_build(
        graph: &PhysGraph,
        members: Vec<PhysNodeId>,
        cfg: &OracleConfig,
    ) -> Result<Self, OracleBuildError> {
        let ecfg = cfg.embed.validated();
        let exact = CachedOracle::try_build(graph, members.clone(), cfg)?;
        let n = members.len();
        let dims = ecfg.dims;

        if n == 0 {
            return Ok(EmbedOracle {
                exact,
                dims,
                coords: Box::new([]),
                heights: Box::new([]),
                landmarks: Vec::new(),
                calibration: EmbedCalibration::default(),
                margin_per_term: 0.0,
                embed_queries: AtomicU64::new(0),
                exact_queries: AtomicU64::new(0),
                escalations: AtomicU64::new(0),
            });
        }

        // 1. Landmarks by deterministic stride (distinct for l <= n).
        let l = ecfg.landmarks.min(n);
        let landmarks: Vec<MemberIdx> = (0..l).map(|k| k * n / l).collect();
        let landmark_rows: Vec<Vec<u32>> = landmarks
            .par_iter()
            .map(|&lm| member_row(&shortest_paths(graph, members[lm]), &members, lm))
            .collect::<Result<_, _>>()?;

        // 2. Landmark relaxation over the exact L × L distances.
        let root = SimRng::seed_from(ecfg.seed);
        let mut lpos = vec![0.0f64; l * dims];
        let mut lh = vec![1.0f64; l];
        {
            let mut rng = root.fork("landmark-init");
            for p in lpos.iter_mut() {
                *p = (rng.unit() - 0.5) * 2.0 * INIT_RADIUS_MS;
            }
        }
        for round in 0..ecfg.landmark_rounds {
            let step = step_at(round, ecfg.landmark_rounds);
            for i in 0..l {
                for j in 0..l {
                    if i == j {
                        continue;
                    }
                    let target = landmark_rows[j][landmarks[i]] as f64;
                    let mut other = [0.0f64; MAX_DIMS];
                    other[..dims].copy_from_slice(&lpos[j * dims..j * dims + dims]);
                    let oh = lh[j];
                    nudge(
                        &mut lpos[i * dims..i * dims + dims],
                        &mut lh[i],
                        &other[..dims],
                        oh,
                        target,
                        step,
                        i + j,
                    );
                }
            }
        }

        // 3. Per-member fit against the frozen landmarks. Members are
        //    independent, so the parallel pass is bit-deterministic for
        //    any rayon worker count. Landmark members pin to their own
        //    relaxed coordinate.
        let fitted: Vec<([f64; MAX_DIMS], f64)> = (0..n)
            .into_par_iter()
            .map(|m| {
                if let Ok(li) = landmarks.binary_search(&m) {
                    let mut pos = [0.0f64; MAX_DIMS];
                    pos[..dims].copy_from_slice(&lpos[li * dims..li * dims + dims]);
                    return (pos, lh[li]);
                }
                let mut rng = root.fork_indexed("member-init", m as u64);
                let mut pos = [0.0f64; MAX_DIMS];
                for p in pos.iter_mut().take(dims) {
                    *p = (rng.unit() - 0.5) * 2.0 * INIT_RADIUS_MS;
                }
                let mut h = 1.0f64;
                for round in 0..ecfg.member_rounds {
                    let step = step_at(round, ecfg.member_rounds);
                    for (j, row) in landmark_rows.iter().enumerate() {
                        nudge(
                            &mut pos[..dims],
                            &mut h,
                            &lpos[j * dims..j * dims + dims],
                            lh[j],
                            row[m] as f64,
                            step,
                            m + j,
                        );
                    }
                }
                (pos, h)
            })
            .collect();
        let mut coords = vec![0.0f64; n * dims];
        let mut heights = vec![0.0f64; n];
        for (m, (pos, h)) in fitted.into_iter().enumerate() {
            coords[m * dims..m * dims + dims].copy_from_slice(&pos[..dims]);
            heights[m] = h;
        }

        // 4. Calibration from held-out stride sources (offset by half a
        //    stride so they interleave with, not duplicate, the landmarks).
        let c = ecfg.calibration_sources.min(n);
        let mut cal_sources: Vec<MemberIdx> =
            (0..c).map(|k| (k * n / c + n / (2 * c).max(1)).min(n - 1)).collect();
        cal_sources.dedup();
        let cal_rows: Vec<Vec<u32>> = cal_sources
            .par_iter()
            .map(|&s| member_row(&shortest_paths(graph, members[s]), &members, s))
            .collect::<Result<_, _>>()?;

        let tgt = ecfg.calibration_targets.min(n);
        let mut abs_errs: Vec<f64> = Vec::with_capacity(cal_sources.len() * tgt);
        let mut rel_errs: Vec<f64> = Vec::with_capacity(cal_sources.len() * tgt);
        for (si, &s) in cal_sources.iter().enumerate() {
            for t in 0..tgt {
                let b = t * n / tgt;
                if b == s {
                    continue;
                }
                let exact_ms = cal_rows[si][b] as f64;
                let est = estimate_raw(
                    &coords[s * dims..s * dims + dims],
                    heights[s],
                    &coords[b * dims..b * dims + dims],
                    heights[b],
                );
                let e = (est - exact_ms).abs();
                abs_errs.push(e);
                rel_errs.push(e / exact_ms.max(1.0));
            }
        }
        abs_errs.sort_by(f64::total_cmp);
        rel_errs.sort_by(f64::total_cmp);
        let pct = |xs: &[f64], p: f64| -> f64 {
            if xs.is_empty() {
                return 0.0;
            }
            let idx = (p.clamp(0.0, 1.0) * (xs.len() - 1) as f64).round() as usize;
            xs[idx.min(xs.len() - 1)]
        };
        let calibration = EmbedCalibration {
            samples: abs_errs.len(),
            abs_p50_ms: pct(&abs_errs, 0.50),
            abs_p90_ms: pct(&abs_errs, 0.90),
            abs_p95_ms: pct(&abs_errs, 0.95),
            abs_p99_ms: pct(&abs_errs, 0.99),
            abs_max_ms: abs_errs.last().copied().unwrap_or(0.0),
            rel_p50: pct(&rel_errs, 0.50),
            rel_p90: pct(&rel_errs, 0.90),
            rel_p95: pct(&rel_errs, 0.95),
            rel_p99: pct(&rel_errs, 0.99),
        };
        let margin_per_term = if abs_errs.is_empty() {
            0.0
        } else {
            (pct(&abs_errs, ecfg.fallback_percentile) * ecfg.margin_scale).max(1.0)
        };

        // The fit already paid for these rows — seed the escalation tier
        // so borderline decisions near the landmarks start warm.
        for (i, &lm) in landmarks.iter().enumerate() {
            exact.seed_row(lm, landmark_rows[i].clone().into());
        }
        for (i, &s) in cal_sources.iter().enumerate() {
            exact.seed_row(s, cal_rows[i].clone().into());
        }

        Ok(EmbedOracle {
            exact,
            dims,
            coords: coords.into_boxed_slice(),
            heights: heights.into_boxed_slice(),
            landmarks,
            calibration,
            margin_per_term,
            embed_queries: AtomicU64::new(0),
            exact_queries: AtomicU64::new(0),
            escalations: AtomicU64::new(0),
        })
    }

    /// The raw (un-rounded, un-counted) embedded estimate, ms.
    #[inline]
    pub fn estimate(&self, a: MemberIdx, b: MemberIdx) -> f64 {
        if a == b {
            return 0.0;
        }
        let d = self.dims;
        estimate_raw(
            &self.coords[a * d..a * d + d],
            self.heights[a],
            &self.coords[b * d..b * d + d],
            self.heights[b],
        )
    }

    /// O(1) embedded distance, ms. Symmetric, zero on the diagonal, and
    /// `ceil`-rounded so the triangle inequality survives quantization.
    #[inline]
    pub fn d(&self, a: MemberIdx, b: MemberIdx) -> u32 {
        if a == b {
            return 0;
        }
        self.embed_queries.fetch_add(1, Ordering::Relaxed);
        self.estimate(a, b).ceil() as u32
    }

    /// Exact distance through the internal row-cache tier — the
    /// escalation path of the fallback band.
    #[inline]
    pub fn d_exact(&self, a: MemberIdx, b: MemberIdx) -> u32 {
        self.exact_queries.fetch_add(1, Ordering::Relaxed);
        self.exact.d(a, b)
    }

    /// Record one Var decision escalated into the band.
    #[inline]
    pub fn note_escalation(&self) {
        self.escalations.fetch_add(1, Ordering::Relaxed);
    }

    /// Absolute error margin (ms) one `d(u,v)` term contributes to a Var
    /// comparison's fallback band.
    #[inline]
    pub fn margin_per_term(&self) -> f64 {
        self.margin_per_term
    }

    /// The committed error-distribution calibration.
    pub fn calibration(&self) -> EmbedCalibration {
        self.calibration
    }

    /// Query counters.
    pub fn stats(&self) -> EmbedStats {
        EmbedStats {
            embed_queries: self.embed_queries.load(Ordering::Relaxed),
            exact_queries: self.exact_queries.load(Ordering::Relaxed),
            escalations: self.escalations.load(Ordering::Relaxed),
        }
    }

    /// The internal exact tier (escalation path).
    pub fn exact(&self) -> &CachedOracle {
        &self.exact
    }

    /// Warm the exact tier's rows for `sources` (Rayon-parallel) — for
    /// harnesses that will escalate a known slot set.
    pub fn warm_exact_rows(&self, sources: &[MemberIdx]) {
        self.exact.warm_rows(sources);
    }

    /// Member indices used as landmarks.
    pub fn landmark_members(&self) -> &[MemberIdx] {
        &self.landmarks
    }

    /// Flat row-major `n × dims()` coordinate array (determinism tests
    /// compare these bit-for-bit).
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Per-member height components, ms.
    pub fn heights(&self) -> &[f64] {
        &self.heights
    }

    /// Euclidean dimensionality of the fitted space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Deterministic stride-sampled estimate of the mean ordered-pair
    /// latency from the embedding (O(64 · n), no graph work).
    pub fn mean_pairwise_latency(&self) -> f64 {
        let n = self.heights.len();
        if n == 0 {
            return f64::NAN;
        }
        let k = n.min(64);
        let mut total = 0.0f64;
        for i in 0..k {
            let src = i * n / k;
            for b in 0..n {
                total += self.estimate(src, b).ceil();
            }
        }
        total / (k as f64 * n as f64)
    }
}

impl Latency for EmbedOracle {
    #[inline]
    fn len(&self) -> usize {
        self.heights.len()
    }

    #[inline]
    fn d(&self, a: MemberIdx, b: MemberIdx) -> u32 {
        EmbedOracle::d(self, a, b)
    }

    #[inline]
    fn host(&self, i: MemberIdx) -> PhysNodeId {
        self.exact.host(i)
    }

    #[inline]
    fn mean_phys_link_latency(&self) -> f64 {
        self.exact.mean_phys_link_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transit_stub::{generate, TransitStubParams};

    fn tiny_embed(n: usize, seed: u64) -> EmbedOracle {
        let mut rng = SimRng::seed_from(seed);
        let g = generate(&TransitStubParams::tiny(), &mut rng);
        let stubs = g.stub_nodes();
        let members = rng.sample_distinct(&stubs, n);
        EmbedOracle::try_build(&g, members, &OracleConfig::embedded()).unwrap()
    }

    #[test]
    fn symmetric_zero_diagonal() {
        let o = tiny_embed(20, 1);
        for a in 0..20 {
            assert_eq!(o.d(a, a), 0);
            for b in 0..20 {
                assert_eq!(o.d(a, b), o.d(b, a), "pair ({a}, {b})");
            }
        }
    }

    #[test]
    fn triangle_inequality_survives_ceil_rounding() {
        let o = tiny_embed(14, 2);
        for a in 0..14 {
            for b in 0..14 {
                for c in 0..14 {
                    assert!(
                        o.d(a, b) <= o.d(a, c) + o.d(c, b),
                        "({a},{b},{c}): {} > {} + {}",
                        o.d(a, b),
                        o.d(a, c),
                        o.d(c, b)
                    );
                }
            }
        }
    }

    #[test]
    fn same_seed_same_graph_bit_identical() {
        let a = tiny_embed(24, 7);
        let b = tiny_embed(24, 7);
        assert_eq!(a.coords().len(), b.coords().len());
        for (x, y) in a.coords().iter().zip(b.coords()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.heights().iter().zip(b.heights()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn heights_nonnegative_and_finite() {
        let o = tiny_embed(24, 3);
        for (&h, chunk) in o.heights().iter().zip(o.coords().chunks(o.dims())) {
            assert!(h >= 0.0 && h.is_finite());
            assert!(chunk.iter().all(|c| c.is_finite()));
        }
    }

    #[test]
    fn calibration_percentiles_are_monotone() {
        let o = tiny_embed(30, 4);
        let c = o.calibration();
        assert!(c.samples > 0);
        assert!(c.abs_p50_ms <= c.abs_p90_ms);
        assert!(c.abs_p90_ms <= c.abs_p95_ms);
        assert!(c.abs_p95_ms <= c.abs_p99_ms);
        assert!(c.abs_p99_ms <= c.abs_max_ms);
        assert!(c.rel_p50 <= c.rel_p99);
        assert!(o.margin_per_term() >= 1.0);
    }

    #[test]
    fn estimate_tracks_exact_within_calibrated_max() {
        // The calibrated max is a measured quantile of held-out error, not
        // a proof — but on this tiny graph the same stride sources were
        // measured, so re-checking them must reproduce errors <= max.
        let o = tiny_embed(30, 5);
        let c = o.calibration();
        let n = 30;
        for s in 0..n {
            for b in 0..n {
                if s == b {
                    continue;
                }
                let exact = o.d_exact(s, b) as f64;
                let err = (o.estimate(s, b) - exact).abs();
                // Fit + calibration errors share one distribution; allow
                // 3x the measured max for non-calibrated pairs.
                assert!(
                    err <= (3.0 * c.abs_max_ms).max(30.0),
                    "pair ({s},{b}) err {err} vs max {}",
                    c.abs_max_ms
                );
            }
        }
    }

    #[test]
    fn counters_track_queries() {
        let o = tiny_embed(10, 6);
        let s0 = o.stats();
        let _ = o.d(1, 2);
        let _ = o.d(3, 4);
        let _ = o.d_exact(1, 2);
        o.note_escalation();
        let s = o.stats().since(&s0);
        assert_eq!(s.embed_queries, 2);
        assert_eq!(s.exact_queries, 1);
        assert_eq!(s.escalations, 1);
        assert!(s.escalation_rate() > 0.0);
    }

    #[test]
    fn landmark_rows_preseed_exact_tier() {
        let o = tiny_embed(24, 8);
        let stats = o.exact().cache_stats();
        // Landmarks + calibration sources + the connectivity row.
        assert!(stats.resident_rows > 1, "fit rows should seed the cache: {stats:?}");
    }
}
