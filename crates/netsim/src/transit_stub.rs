//! Transit–stub topology generation (the GT-ITM model).
//!
//! Structure generated, top-down:
//!
//! 1. `transit_domains` domains whose *domain graph* is a random connected
//!    graph (spanning tree + extra edges with probability `extra_domain_edge`).
//! 2. Each transit domain holds `transit_nodes_per_domain` transit nodes,
//!    themselves wired as a random connected graph. Every domain-graph edge
//!    becomes one transit–transit link between random transit nodes of the
//!    two domains.
//! 3. Every transit node sponsors `stub_domains_per_transit` stub domains of
//!    `nodes_per_stub_domain` hosts each; a stub domain is a random connected
//!    graph joined to its transit node by one stub–transit link.
//!
//! Link latencies follow the paper's class assignment (defaults:
//! transit–transit 100 ms, stub–transit 20 ms, stub–stub 5 ms).
//!
//! The OCR of the paper drops the preset digits; `ts_large`/`ts_small`
//! follow the description — "ts-large has a larger backbone and sparser edge
//! network than ts-small", with both topologies holding roughly the same
//! number of hosts (≈3,000). See DESIGN.md §3.

use crate::graph::{LinkClass, NodeClass, PhysGraph, PhysGraphBuilder, PhysNodeId};
use prop_engine::SimRng;
use serde::{Deserialize, Serialize};

/// Parameters of the transit–stub generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransitStubParams {
    pub transit_domains: usize,
    pub transit_nodes_per_domain: usize,
    pub stub_domains_per_transit: usize,
    pub nodes_per_stub_domain: usize,
    /// Probability of each extra (non-tree) edge in the domain-level graph.
    pub extra_domain_edge: f64,
    /// Probability of each extra edge inside a transit domain.
    pub extra_transit_edge: f64,
    /// Probability of each extra edge inside a stub domain.
    pub extra_stub_edge: f64,
    pub transit_transit_ms: u32,
    pub stub_transit_ms: u32,
    pub stub_stub_ms: u32,
}

impl TransitStubParams {
    /// The paper's `ts-large`: big backbone, sparse edge. 10 transit domains
    /// × 5 transit nodes, 3 stub domains per transit node, 20 hosts per stub
    /// domain ⇒ 50 transit + 3,000 stub hosts.
    pub fn ts_large() -> Self {
        TransitStubParams {
            transit_domains: 10,
            transit_nodes_per_domain: 5,
            stub_domains_per_transit: 3,
            nodes_per_stub_domain: 20,
            extra_domain_edge: 0.3,
            extra_transit_edge: 0.4,
            extra_stub_edge: 0.08,
            transit_transit_ms: 100,
            stub_transit_ms: 20,
            stub_stub_ms: 5,
        }
    }

    /// The paper's `ts-small`: small backbone, dense edge. 2 transit domains
    /// × 5 transit nodes, 3 stub domains per transit node, 100 hosts per
    /// stub domain ⇒ 10 transit + 3,000 stub hosts (≈ same size as
    /// `ts-large`, per the paper).
    pub fn ts_small() -> Self {
        TransitStubParams {
            transit_domains: 2,
            transit_nodes_per_domain: 5,
            stub_domains_per_transit: 3,
            nodes_per_stub_domain: 100,
            extra_domain_edge: 0.3,
            extra_transit_edge: 0.4,
            extra_stub_edge: 0.03,
            transit_transit_ms: 100,
            stub_transit_ms: 20,
            stub_stub_ms: 5,
        }
    }

    /// A miniature topology for unit tests and the quickstart example:
    /// 2×2 transit, 2 stub domains of 5 ⇒ 4 transit + 40 stub hosts.
    pub fn tiny() -> Self {
        TransitStubParams {
            transit_domains: 2,
            transit_nodes_per_domain: 2,
            stub_domains_per_transit: 2,
            nodes_per_stub_domain: 5,
            extra_domain_edge: 0.5,
            extra_transit_edge: 0.5,
            extra_stub_edge: 0.2,
            transit_transit_ms: 100,
            stub_transit_ms: 20,
            stub_stub_ms: 5,
        }
    }

    /// A parameterization with *at least* `min_stub_hosts` stub hosts, for
    /// runs beyond the paper's ~1,000-member scale (the ROADMAP's
    /// production-scale north star). Keeps the `ts_large` backbone (50
    /// transit nodes, 3 stub domains each) and widens the stub domains; the
    /// extra-edge probability is lowered so edge counts — and therefore
    /// Dijkstra cost per latency-oracle row — stay near-linear in the host
    /// count.
    pub fn scaled(min_stub_hosts: usize) -> Self {
        let base = Self::ts_large();
        let stub_domains =
            base.transit_domains * base.transit_nodes_per_domain * base.stub_domains_per_transit;
        let k = min_stub_hosts.div_ceil(stub_domains).max(1);
        // Taper the extra-edge probability once stub domains grow past
        // ~2,000 hosts: at fixed p the expected extra edges per domain grow
        // as p·k²/2, which by a million hosts would dominate the link count.
        // Capping the expected extra *degree* at 4 keeps total edges — and
        // therefore Dijkstra cost per latency-oracle row — near-linear at
        // any scale. Below the cap (every scale up to ~300k hosts) the
        // historical 0.002 applies unchanged.
        let extra_stub_edge = if k > 1 { (0.002f64).min(4.0 / (k - 1) as f64) } else { 0.002 };
        TransitStubParams { nodes_per_stub_domain: k, extra_stub_edge, ..base }
    }

    /// Total number of hosts this parameterization produces.
    pub fn total_nodes(&self) -> usize {
        let transit = self.transit_domains * self.transit_nodes_per_domain;
        transit + transit * self.stub_domains_per_transit * self.nodes_per_stub_domain
    }
}

/// Domain size at and above which extra edges are drawn by geometric-skip
/// (binomial) sampling instead of one Bernoulli trial per pair. Every paper
/// preset and every `scaled()` parameterization up to ~75k hosts stays below
/// this, so their RNG streams — and therefore every pinned topology — are
/// unchanged; only the huge domains that would pay O(k²) trials (3.3 billion
/// at a million hosts) take the skip path.
const GEOMETRIC_SKIP_MIN_MEMBERS: usize = 512;

/// The `t`-th pair (row-major upper triangle) of `0..k`: the inverse of
/// `t = Σ_{r<i}(k−1−r) + (j−i−1)` via binary search on the row prefix sums.
fn pair_at(k: u64, t: u64) -> (usize, usize) {
    let pairs_before = |i: u64| i * k - i * (i + 1) / 2;
    let (mut lo, mut hi) = (0u64, k - 1);
    while lo < hi {
        let mid = (lo + hi + 1) / 2;
        if pairs_before(mid) <= t {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    (lo as usize, (lo + 1 + (t - pairs_before(lo))) as usize)
}

/// Wire `members` into a random connected subgraph: a uniform random spanning
/// tree (random-parent construction) plus each non-tree pair with probability
/// `extra`.
///
/// Small member sets draw the extra edges with one Bernoulli trial per pair
/// (the historical stream); sets of [`GEOMETRIC_SKIP_MIN_MEMBERS`] and above
/// jump between accepted pairs with geometrically distributed skips, which
/// is the same marginal distribution in O(extra · k²) expected work instead
/// of O(k²) RNG calls.
fn connect_random(
    b: &mut PhysGraphBuilder,
    members: &[PhysNodeId],
    extra: f64,
    latency: u32,
    class: LinkClass,
    rng: &mut SimRng,
) {
    if members.len() < 2 {
        return;
    }
    // Spanning tree: attach each node to a random earlier node.
    for i in 1..members.len() {
        let j = rng.range(0..i);
        b.add_link(members[i], members[j], latency, class);
    }
    // Extra edges.
    if members.len() < GEOMETRIC_SKIP_MIN_MEMBERS {
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if j != i && rng.chance(extra) && !b.has_link(members[i], members[j]) {
                    b.add_link(members[i], members[j], latency, class);
                }
            }
        }
    } else if extra > 0.0 {
        let k = members.len() as u64;
        let total = k * (k - 1) / 2;
        let ln_q = (1.0 - extra.min(1.0)).ln(); // ≤ 0; −inf when extra ≥ 1
        let mut t: u64 = 0;
        loop {
            // Geometric skip: failures before the next accepted pair is
            // ⌊ln(U)/ln(1−p)⌋ with U uniform on (0, 1]. unit() ∈ [0, 1), so
            // 1−unit() supplies the (0, 1] draw. f64→u64 casts saturate,
            // which turns an astronomically large skip into "past the end".
            let skip = if ln_q == 0.0 {
                u64::MAX
            } else {
                let u: f64 = 1.0 - rng.unit();
                (u.ln() / ln_q).floor() as u64
            };
            t = t.saturating_add(skip);
            if t >= total {
                break;
            }
            let (i, j) = pair_at(k, t);
            if !b.has_link(members[i], members[j]) {
                b.add_link(members[i], members[j], latency, class);
            }
            t += 1;
        }
    }
}

/// Generate a transit–stub physical network.
///
/// Always produces a connected graph (every level is built around a spanning
/// tree).
pub fn generate(params: &TransitStubParams, rng: &mut SimRng) -> PhysGraph {
    assert!(params.transit_domains >= 1);
    assert!(params.transit_nodes_per_domain >= 1);
    let mut b = PhysGraphBuilder::new();
    let mut rng = rng.fork("transit-stub");

    // 1. Transit nodes, per domain.
    let mut domains: Vec<Vec<PhysNodeId>> = Vec::with_capacity(params.transit_domains);
    for d in 0..params.transit_domains {
        let nodes: Vec<PhysNodeId> = (0..params.transit_nodes_per_domain)
            .map(|_| b.add_node(NodeClass::Transit { domain: d as u16 }))
            .collect();
        connect_random(
            &mut b,
            &nodes,
            params.extra_transit_edge,
            params.transit_transit_ms,
            LinkClass::TransitTransit,
            &mut rng,
        );
        domains.push(nodes);
    }

    // 2. Domain-level backbone: spanning tree + extras; each domain edge is
    //    realized between random transit nodes of the two domains.
    let connect_domains = |b: &mut PhysGraphBuilder, rng: &mut SimRng, x: usize, y: usize| {
        let u = *rng.pick(&domains[x]).unwrap();
        let v = *rng.pick(&domains[y]).unwrap();
        if !b.has_link(u, v) {
            b.add_link(u, v, params.transit_transit_ms, LinkClass::TransitTransit);
        }
    };
    for d in 1..params.transit_domains {
        let parent = rng.range(0..d);
        connect_domains(&mut b, &mut rng, d, parent);
    }
    for x in 0..params.transit_domains {
        for y in (x + 1)..params.transit_domains {
            if rng.chance(params.extra_domain_edge) {
                connect_domains(&mut b, &mut rng, x, y);
            }
        }
    }

    // 3. Stub domains hanging off each transit node.
    let mut stub_domain_id: u32 = 0;
    let transit_nodes: Vec<PhysNodeId> = domains.iter().flatten().copied().collect();
    for &gateway in &transit_nodes {
        for _ in 0..params.stub_domains_per_transit {
            let hosts: Vec<PhysNodeId> = (0..params.nodes_per_stub_domain)
                .map(|_| b.add_node(NodeClass::Stub { domain: stub_domain_id, gateway: gateway.0 }))
                .collect();
            connect_random(
                &mut b,
                &hosts,
                params.extra_stub_edge,
                params.stub_stub_ms,
                LinkClass::StubStub,
                &mut rng,
            );
            if let Some(&entry) = rng.pick(&hosts) {
                b.add_link(entry, gateway, params.stub_transit_ms, LinkClass::StubTransit);
            }
            stub_domain_id += 1;
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_topology_shape() {
        let mut rng = SimRng::seed_from(1);
        let p = TransitStubParams::tiny();
        let g = generate(&p, &mut rng);
        assert_eq!(g.num_nodes(), p.total_nodes());
        assert_eq!(g.num_nodes(), 44);
        assert!(g.is_connected());
        assert_eq!(g.stub_nodes().len(), 40);
    }

    #[test]
    fn presets_match_paper_scale() {
        let large = TransitStubParams::ts_large();
        let small = TransitStubParams::ts_small();
        assert_eq!(large.total_nodes(), 3050);
        assert_eq!(small.total_nodes(), 3010);
        // "ts-large has a larger backbone…"
        assert!(
            large.transit_domains * large.transit_nodes_per_domain
                > small.transit_domains * small.transit_nodes_per_domain
        );
        // "…and sparser edge network than ts-small."
        assert!(large.nodes_per_stub_domain < small.nodes_per_stub_domain);
    }

    #[test]
    fn ts_large_generates_connected() {
        let mut rng = SimRng::seed_from(7);
        let g = generate(&TransitStubParams::ts_large(), &mut rng);
        assert_eq!(g.num_nodes(), 3050);
        assert!(g.is_connected());
    }

    #[test]
    fn ts_small_generates_connected() {
        let mut rng = SimRng::seed_from(7);
        let g = generate(&TransitStubParams::ts_small(), &mut rng);
        assert_eq!(g.num_nodes(), 3010);
        assert!(g.is_connected());
    }

    #[test]
    fn deterministic_for_seed() {
        let p = TransitStubParams::tiny();
        let g1 = generate(&p, &mut SimRng::seed_from(99));
        let g2 = generate(&p, &mut SimRng::seed_from(99));
        assert_eq!(g1.num_links(), g2.num_links());
        for u in g1.nodes() {
            assert_eq!(g1.neighbors(u), g2.neighbors(u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = TransitStubParams::ts_large();
        let g1 = generate(&p, &mut SimRng::seed_from(1));
        let g2 = generate(&p, &mut SimRng::seed_from(2));
        // Same node count, but wiring should differ somewhere.
        let differs = g1.nodes().any(|u| g1.neighbors(u) != g2.neighbors(u));
        assert!(differs);
    }

    #[test]
    fn link_classes_use_configured_latencies() {
        let mut rng = SimRng::seed_from(3);
        let p = TransitStubParams::tiny();
        let g = generate(&p, &mut rng);
        for u in g.nodes() {
            for &(v, w) in g.neighbors(u) {
                let uv = (g.class(u).is_transit(), g.class(PhysNodeId(v)).is_transit());
                let expected = match uv {
                    (true, true) => p.transit_transit_ms,
                    (false, false) => p.stub_stub_ms,
                    _ => p.stub_transit_ms,
                };
                assert_eq!(w, expected);
            }
        }
    }

    #[test]
    fn scaled_meets_requested_stub_population() {
        for want in [1, 3_000, 20_000, 100_000] {
            let p = TransitStubParams::scaled(want);
            let transit = p.transit_domains * p.transit_nodes_per_domain;
            assert!(p.total_nodes() - transit >= want, "asked {want}");
        }
        // Generation at a beyond-paper scale stays tractable and connected.
        let p = TransitStubParams::scaled(10_000);
        let g = generate(&p, &mut SimRng::seed_from(11));
        assert!(g.stub_nodes().len() >= 10_000);
        assert!(g.is_connected());
        // Edge count stays near-linear in hosts (Dijkstra cost per oracle
        // row depends on it).
        assert!(g.num_links() < 3 * g.num_nodes());
    }

    #[test]
    fn pair_at_inverts_the_upper_triangle() {
        let k = 17u64;
        let mut t = 0u64;
        for i in 0..17usize {
            for j in (i + 1)..17usize {
                assert_eq!(pair_at(k, t), (i, j), "flat index {t}");
                t += 1;
            }
        }
        assert_eq!(t, k * (k - 1) / 2);
    }

    #[test]
    fn geometric_skip_matches_bernoulli_statistics() {
        // One domain above the skip threshold: edge count must land near
        // the binomial expectation, the graph must stay deduplicated and
        // connected, and the stream must be deterministic.
        let build = |seed: u64| {
            let mut b = PhysGraphBuilder::new();
            let nodes: Vec<PhysNodeId> =
                (0..600).map(|_| b.add_node(NodeClass::Stub { domain: 0, gateway: 0 })).collect();
            let mut rng = SimRng::seed_from(seed);
            connect_random(&mut b, &nodes, 0.01, 5, LinkClass::StubStub, &mut rng);
            b.build()
        };
        let g = build(42);
        assert!(g.is_connected());
        // 599 tree edges + Binomial(600·599/2, 0.01): mean ≈ 1797, σ ≈ 42.
        let extra = g.num_links() - 599;
        assert!((1000..2600).contains(&extra), "extra edges {extra} far from expectation");
        let h = build(42);
        assert_eq!(g.num_links(), h.num_links());
        for u in g.nodes() {
            assert_eq!(g.neighbors(u), h.neighbors(u));
        }
        let other = build(43);
        assert!(g.nodes().any(|u| g.neighbors(u) != other.neighbors(u)));
    }

    #[test]
    fn scaled_tapers_extra_edges_past_300k_hosts() {
        // Up to ~300k hosts the historical probability applies unchanged…
        assert_eq!(TransitStubParams::scaled(100_000).extra_stub_edge, 0.002);
        // …beyond it the expected extra degree is capped at 4.
        let p = TransitStubParams::scaled(1_000_000);
        let k = p.nodes_per_stub_domain;
        assert!(k >= 6_000);
        assert!(p.extra_stub_edge < 0.002);
        let expected_extra_degree = p.extra_stub_edge * (k - 1) as f64;
        assert!((3.5..=4.0).contains(&expected_extra_degree));
    }

    #[test]
    fn scaled_large_domain_generation_is_near_linear() {
        // 150 stub domains × ~1,334 hosts — every domain takes the
        // geometric-skip path; links stay near-linear and connected.
        let p = TransitStubParams::scaled(200_000);
        assert!(p.nodes_per_stub_domain >= GEOMETRIC_SKIP_MIN_MEMBERS);
        let g = generate(&p, &mut SimRng::seed_from(17));
        assert!(g.stub_nodes().len() >= 200_000);
        assert!(g.is_connected());
        assert!(g.num_links() < 3 * g.num_nodes());
    }

    #[test]
    fn every_stub_domain_reaches_its_gateway() {
        let mut rng = SimRng::seed_from(5);
        let g = generate(&TransitStubParams::tiny(), &mut rng);
        let (tt, st, ss) = g.link_class_counts();
        // 4 transit nodes × 2 stub domains each = 8 stub-transit links.
        assert_eq!(st, 8);
        assert!(tt >= 3); // backbone tree at minimum
        assert!(ss >= 8 * 4); // each 5-host stub domain has ≥4 tree edges
    }
}
