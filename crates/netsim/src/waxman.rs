//! Waxman random topology — the classic alternative to transit–stub.
//!
//! GT-ITM's own paper ("How to model an internetwork") evaluates both
//! hierarchical transit–stub graphs and flat Waxman random graphs. PROP's
//! benefit should not hinge on the hierarchy, so the robustness ablation
//! (A7) re-runs PROP-G over a Waxman physical network:
//!
//! * `n` hosts at uniformly random positions in the unit square;
//! * each pair is linked with probability `α · exp(−d / (β·L))` where `d`
//!   is their Euclidean distance and `L` the maximum possible distance —
//!   near pairs link often, far pairs rarely;
//! * link latency is proportional to Euclidean distance (speed-of-light
//!   flavor), scaled so the diameter-ish link costs `max_latency_ms`;
//! * components are stitched together by linking nearest pairs across
//!   components, so the graph is always connected.

use crate::graph::{LinkClass, NodeClass, PhysGraph, PhysGraphBuilder, PhysNodeId};
use prop_engine::SimRng;
use serde::{Deserialize, Serialize};

/// Waxman generator parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WaxmanParams {
    pub nodes: usize,
    /// Link-probability scale (α): higher ⇒ denser.
    pub alpha: f64,
    /// Locality decay (β): higher ⇒ longer links become likelier.
    pub beta: f64,
    /// Latency assigned to a link spanning the full diagonal, ms.
    pub max_latency_ms: u32,
}

impl WaxmanParams {
    /// A ≈3,000-host flat topology, comparable in size to `ts-large`.
    pub fn comparable_to_ts() -> Self {
        WaxmanParams { nodes: 3000, alpha: 0.015, beta: 0.18, max_latency_ms: 120 }
    }

    /// A miniature instance for tests.
    pub fn tiny() -> Self {
        WaxmanParams { nodes: 60, alpha: 0.3, beta: 0.25, max_latency_ms: 120 }
    }
}

/// Generate a Waxman random graph. All hosts are classified as stub nodes
/// (a flat topology has no backbone), so overlay member selection works
/// unchanged.
pub fn generate_waxman(params: &WaxmanParams, rng: &mut SimRng) -> PhysGraph {
    assert!(params.nodes >= 2);
    let mut rng = rng.fork("waxman");
    let n = params.nodes;
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.unit(), rng.unit())).collect();
    let l = std::f64::consts::SQRT_2; // max distance in the unit square

    let mut b = PhysGraphBuilder::new();
    let ids: Vec<PhysNodeId> = (0..n)
        .map(|i| b.add_node(NodeClass::Stub { domain: i as u32, gateway: u32::MAX }))
        .collect();

    let dist = |i: usize, j: usize| -> f64 {
        let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
        (dx * dx + dy * dy).sqrt()
    };
    let latency =
        |d: f64| -> u32 { ((d / l) * params.max_latency_ms as f64).ceil().max(1.0) as u32 };

    // Probabilistic Waxman edges, with the union-find built as we go (the
    // PhysGraphBuilder's `has_link` is a linear scan — never use it in an
    // all-pairs loop).
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist(i, j);
            let p = params.alpha * (-d / (params.beta * l)).exp();
            if rng.chance(p) {
                b.add_link(ids[i], ids[j], latency(d), LinkClass::StubStub);
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    loop {
        // Collect components.
        let mut roots: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
        let main_root = roots[0];
        let mut best: Option<(f64, usize, usize)> = None;
        let mut multiple = false;
        for (i, &ri) in roots.iter().enumerate() {
            if ri != main_root {
                multiple = true;
                for (j, &rj) in roots.iter().enumerate() {
                    if rj == main_root {
                        let d = dist(i, j);
                        if best.is_none_or(|(bd, _, _)| d < bd) {
                            best = Some((d, i, j));
                        }
                    }
                }
            }
        }
        if !multiple {
            break;
        }
        let (d, i, j) = best.expect("disconnected pair exists");
        b.add_link(ids[i], ids[j], latency(d), LinkClass::StubStub);
        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
        parent[ri] = rj;
        roots.clear();
    }

    let g = b.build();
    debug_assert!(g.is_connected());
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_waxman_is_connected() {
        let mut rng = SimRng::seed_from(1);
        let g = generate_waxman(&WaxmanParams::tiny(), &mut rng);
        assert_eq!(g.num_nodes(), 60);
        assert!(g.is_connected());
        assert!(g.num_links() >= 59, "at least a spanning tree");
    }

    #[test]
    fn all_nodes_are_stub_class() {
        let mut rng = SimRng::seed_from(2);
        let g = generate_waxman(&WaxmanParams::tiny(), &mut rng);
        assert_eq!(g.stub_nodes().len(), g.num_nodes());
    }

    #[test]
    fn latencies_bounded_by_max() {
        let mut rng = SimRng::seed_from(3);
        let p = WaxmanParams::tiny();
        let g = generate_waxman(&p, &mut rng);
        for u in g.nodes() {
            for &(_, w) in g.neighbors(u) {
                assert!(w >= 1 && w <= p.max_latency_ms);
            }
        }
    }

    #[test]
    fn locality_links_are_shorter_on_average() {
        // Waxman prefers short links: mean link latency should be well
        // below the mean pairwise scale.
        let mut rng = SimRng::seed_from(4);
        let p = WaxmanParams { nodes: 200, alpha: 0.1, beta: 0.15, max_latency_ms: 120 };
        let g = generate_waxman(&p, &mut rng);
        assert!(
            g.mean_link_latency() < 0.5 * p.max_latency_ms as f64,
            "mean link latency {:.1}",
            g.mean_link_latency()
        );
    }

    #[test]
    fn deterministic() {
        let a = generate_waxman(&WaxmanParams::tiny(), &mut SimRng::seed_from(5));
        let b = generate_waxman(&WaxmanParams::tiny(), &mut SimRng::seed_from(5));
        assert_eq!(a.num_links(), b.num_links());
    }

    #[test]
    fn denser_alpha_means_more_links() {
        let sparse = generate_waxman(
            &WaxmanParams { alpha: 0.05, ..WaxmanParams::tiny() },
            &mut SimRng::seed_from(6),
        );
        let dense = generate_waxman(
            &WaxmanParams { alpha: 0.6, ..WaxmanParams::tiny() },
            &mut SimRng::seed_from(6),
        );
        assert!(dense.num_links() > sparse.num_links());
    }
}
