//! Single-source shortest paths over link latencies.
//!
//! A plain binary-heap Dijkstra. The latency oracle runs one instance per
//! overlay member (a few thousand sources over a few-thousand-node graph),
//! parallelized across sources with Rayon in [`crate::oracle`]; per-source
//! performance is dominated by heap traffic, so distances are `u32`
//! milliseconds and the visited check is the standard "stale entry" skip.

use crate::graph::{PhysGraph, PhysNodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Distance value for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Shortest-path latency (ms) from `src` to every node.
///
/// Unreachable nodes get [`UNREACHABLE`].
pub fn shortest_paths(g: &PhysGraph, src: PhysNodeId) -> Vec<u32> {
    let n = g.num_nodes();
    let mut dist = vec![UNREACHABLE; n];
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0, src.0)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale
        }
        for &(v, w) in g.neighbors(PhysNodeId(u)) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Shortest-path latency (ms) between two nodes, or [`UNREACHABLE`].
///
/// Convenience for tests and one-off queries; bulk users go through
/// [`crate::LatencyOracle`].
pub fn distance(g: &PhysGraph, a: PhysNodeId, b: PhysNodeId) -> u32 {
    shortest_paths(g, a)[b.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkClass, NodeClass, PhysGraphBuilder};

    /// Path graph 0 -5- 1 -7- 2 -1- 3 plus shortcut 0 -20- 3.
    fn line_with_shortcut() -> PhysGraph {
        let mut b = PhysGraphBuilder::new();
        let ids: Vec<_> = (0..4).map(|_| b.add_node(NodeClass::Transit { domain: 0 })).collect();
        b.add_link(ids[0], ids[1], 5, LinkClass::TransitTransit);
        b.add_link(ids[1], ids[2], 7, LinkClass::TransitTransit);
        b.add_link(ids[2], ids[3], 1, LinkClass::TransitTransit);
        b.add_link(ids[0], ids[3], 20, LinkClass::TransitTransit);
        b.build()
    }

    #[test]
    fn shortest_path_beats_direct_link() {
        let g = line_with_shortcut();
        let d = shortest_paths(&g, PhysNodeId(0));
        assert_eq!(d, vec![0, 5, 12, 13]); // 5+7+1 = 13 < 20
    }

    #[test]
    fn symmetric_on_undirected_graph() {
        let g = line_with_shortcut();
        for a in 0..4u32 {
            let da = shortest_paths(&g, PhysNodeId(a));
            for b in 0..4u32 {
                let db = shortest_paths(&g, PhysNodeId(b));
                assert_eq!(da[b as usize], db[a as usize]);
            }
        }
    }

    #[test]
    fn unreachable_marked() {
        let mut b = PhysGraphBuilder::new();
        let u = b.add_node(NodeClass::Transit { domain: 0 });
        let _v = b.add_node(NodeClass::Transit { domain: 1 });
        let g = b.build();
        let d = shortest_paths(&g, u);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], UNREACHABLE);
    }

    #[test]
    fn triangle_inequality_holds() {
        let g = line_with_shortcut();
        let all: Vec<Vec<u32>> = (0..4).map(|i| shortest_paths(&g, PhysNodeId(i))).collect();
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    assert!(all[a][b] <= all[a][c] + all[c][b]);
                }
            }
        }
    }

    #[test]
    fn distance_helper_matches() {
        let g = line_with_shortcut();
        assert_eq!(distance(&g, PhysNodeId(0), PhysNodeId(3)), 13);
        assert_eq!(distance(&g, PhysNodeId(2), PhysNodeId(2)), 0);
    }
}
