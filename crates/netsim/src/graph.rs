//! The physical network graph.
//!
//! Undirected, latency-weighted. Built once by the generator, then read-only
//! for the lifetime of an experiment, so it is stored in CSR (compressed
//! sparse row) form: one contiguous edge array, one offset array — compact
//! and cache-friendly for the thousands of Dijkstra runs the latency oracle
//! performs.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Index of a host in the physical network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PhysNodeId(pub u32);

impl PhysNodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Transit/stub role of a physical node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeClass {
    /// Backbone router in transit domain `domain`.
    Transit { domain: u16 },
    /// Edge host in stub domain `domain`, attached (via its stub domain) to
    /// transit node `gateway`.
    Stub { domain: u32, gateway: u32 },
}

impl NodeClass {
    /// Is this a backbone (transit) node?
    #[inline]
    pub fn is_transit(self) -> bool {
        matches!(self, NodeClass::Transit { .. })
    }
}

/// Latency class of a physical link, following the paper's three-way
/// assignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LinkClass {
    TransitTransit,
    StubTransit,
    StubStub,
}

/// Builder-side edge record.
#[derive(Clone, Copy, Debug)]
struct RawEdge {
    a: u32,
    b: u32,
    latency_ms: u32,
    class: LinkClass,
}

/// Mutable construction phase for [`PhysGraph`].
#[derive(Default)]
pub struct PhysGraphBuilder {
    classes: Vec<NodeClass>,
    edges: Vec<RawEdge>,
    /// Normalized `(min, max)` endpoint pairs of `edges`, for O(1)
    /// `has_link` — the generators probe it inside their edge loops, and a
    /// linear scan made 100k-host topologies quadratic to build.
    edge_set: HashSet<(u32, u32)>,
}

impl PhysGraphBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, class: NodeClass) -> PhysNodeId {
        let id = PhysNodeId(self.classes.len() as u32);
        self.classes.push(class);
        id
    }

    /// Add an undirected link. Duplicate and self links are a generator bug
    /// and rejected with a panic.
    pub fn add_link(&mut self, a: PhysNodeId, b: PhysNodeId, latency_ms: u32, class: LinkClass) {
        assert_ne!(a, b, "self-link {a:?}");
        assert!(a.index() < self.classes.len() && b.index() < self.classes.len());
        self.edge_set.insert(Self::norm(a, b));
        self.edges.push(RawEdge { a: a.0, b: b.0, latency_ms, class });
    }

    #[inline]
    fn norm(a: PhysNodeId, b: PhysNodeId) -> (u32, u32) {
        (a.0.min(b.0), a.0.max(b.0))
    }

    /// Whether a link between `a` and `b` already exists. O(1).
    pub fn has_link(&self, a: PhysNodeId, b: PhysNodeId) -> bool {
        self.edge_set.contains(&Self::norm(a, b))
    }

    pub fn num_nodes(&self) -> usize {
        self.classes.len()
    }

    /// Freeze into the immutable CSR form.
    pub fn build(self) -> PhysGraph {
        let n = self.classes.len();
        let mut degree = vec![0u32; n];
        for e in &self.edges {
            degree[e.a as usize] += 1;
            degree[e.b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut adj = vec![(0u32, 0u32); self.edges.len() * 2];
        let mut fill = offsets.clone();
        let mut link_classes = Vec::with_capacity(self.edges.len());
        let mut total_link_latency: u64 = 0;
        for e in &self.edges {
            adj[fill[e.a as usize] as usize] = (e.b, e.latency_ms);
            fill[e.a as usize] += 1;
            adj[fill[e.b as usize] as usize] = (e.a, e.latency_ms);
            fill[e.b as usize] += 1;
            link_classes.push(e.class);
            total_link_latency += e.latency_ms as u64;
        }
        let num_links = self.edges.len();
        PhysGraph {
            classes: self.classes.into_boxed_slice(),
            offsets: offsets.into_boxed_slice(),
            adj: adj.into_boxed_slice(),
            link_classes: link_classes.into_boxed_slice(),
            mean_link_latency: if num_links == 0 {
                0.0
            } else {
                total_link_latency as f64 / num_links as f64
            },
        }
    }
}

/// The frozen physical network.
#[derive(Clone, Debug)]
pub struct PhysGraph {
    classes: Box<[NodeClass]>,
    /// CSR offsets, length `n + 1`.
    offsets: Box<[u32]>,
    /// CSR adjacency: `(neighbor, latency_ms)`.
    adj: Box<[(u32, u32)]>,
    link_classes: Box<[LinkClass]>,
    mean_link_latency: f64,
}

impl PhysGraph {
    /// Number of hosts.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.classes.len()
    }

    /// Number of undirected links.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.link_classes.len()
    }

    /// Neighbors of `u` with link latencies in ms.
    #[inline]
    pub fn neighbors(&self, u: PhysNodeId) -> &[(u32, u32)] {
        let i = u.index();
        &self.adj[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Transit/stub classification of `u`.
    #[inline]
    pub fn class(&self, u: PhysNodeId) -> NodeClass {
        self.classes[u.index()]
    }

    /// Mean latency over physical links — the denominator of the paper's
    /// *stretch* metric.
    #[inline]
    pub fn mean_link_latency(&self) -> f64 {
        self.mean_link_latency
    }

    /// The transit domain `u` belongs to: its own domain for a transit
    /// node, its gateway's domain for a stub host. The GT-ITM generator
    /// always hangs stub domains off a transit gateway, so this resolves
    /// for every generated node; `None` only for a hand-built stub whose
    /// recorded gateway is not a transit node.
    pub fn transit_domain_of(&self, u: PhysNodeId) -> Option<u16> {
        match self.class(u) {
            NodeClass::Transit { domain } => Some(domain),
            NodeClass::Stub { gateway, .. } => match self.class(PhysNodeId(gateway)) {
                NodeClass::Transit { domain } => Some(domain),
                NodeClass::Stub { .. } => None,
            },
        }
    }

    /// Number of distinct transit domains present (max domain id + 1).
    pub fn num_transit_domains(&self) -> usize {
        self.classes
            .iter()
            .filter_map(|c| match c {
                NodeClass::Transit { domain } => Some(*domain as usize + 1),
                NodeClass::Stub { .. } => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = PhysNodeId> + '_ {
        (0..self.classes.len() as u32).map(PhysNodeId)
    }

    /// Ids of all stub (edge-host) nodes — the population overlay members
    /// are drawn from.
    pub fn stub_nodes(&self) -> Vec<PhysNodeId> {
        self.nodes().filter(|&u| !self.class(u).is_transit()).collect()
    }

    /// Is the graph connected? (BFS from node 0.)
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in self.neighbors(PhysNodeId(u)) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Histogram of links by class: `(transit-transit, stub-transit, stub-stub)`.
    pub fn link_class_counts(&self) -> (usize, usize, usize) {
        let mut tt = 0;
        let mut st = 0;
        let mut ss = 0;
        for c in self.link_classes.iter() {
            match c {
                LinkClass::TransitTransit => tt += 1,
                LinkClass::StubTransit => st += 1,
                LinkClass::StubStub => ss += 1,
            }
        }
        (tt, st, ss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> PhysGraph {
        let mut b = PhysGraphBuilder::new();
        let t0 = b.add_node(NodeClass::Transit { domain: 0 });
        let s0 = b.add_node(NodeClass::Stub { domain: 0, gateway: 0 });
        let s1 = b.add_node(NodeClass::Stub { domain: 0, gateway: 0 });
        b.add_link(t0, s0, 20, LinkClass::StubTransit);
        b.add_link(s0, s1, 5, LinkClass::StubStub);
        b.add_link(s1, t0, 20, LinkClass::StubTransit);
        b.build()
    }

    #[test]
    fn csr_roundtrip() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_links(), 3);
        let mut n0: Vec<_> = g.neighbors(PhysNodeId(0)).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![(1, 20), (2, 20)]);
        let mut n1: Vec<_> = g.neighbors(PhysNodeId(1)).to_vec();
        n1.sort_unstable();
        assert_eq!(n1, vec![(0, 20), (2, 5)]);
    }

    #[test]
    fn mean_link_latency_is_link_average() {
        let g = triangle();
        assert!((g.mean_link_latency() - 45.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity_detection() {
        let g = triangle();
        assert!(g.is_connected());

        let mut b = PhysGraphBuilder::new();
        let a = b.add_node(NodeClass::Transit { domain: 0 });
        let c = b.add_node(NodeClass::Transit { domain: 1 });
        let _iso = b.add_node(NodeClass::Transit { domain: 2 });
        b.add_link(a, c, 100, LinkClass::TransitTransit);
        assert!(!b.build().is_connected());
    }

    #[test]
    fn stub_nodes_excludes_transit() {
        let g = triangle();
        let stubs = g.stub_nodes();
        assert_eq!(stubs, vec![PhysNodeId(1), PhysNodeId(2)]);
    }

    #[test]
    fn transit_domain_resolution() {
        let g = triangle();
        assert_eq!(g.transit_domain_of(PhysNodeId(0)), Some(0));
        assert_eq!(g.transit_domain_of(PhysNodeId(1)), Some(0), "stub resolves via gateway");
        assert_eq!(g.num_transit_domains(), 1);

        let mut b = PhysGraphBuilder::new();
        let t0 = b.add_node(NodeClass::Transit { domain: 0 });
        let t1 = b.add_node(NodeClass::Transit { domain: 3 });
        b.add_link(t0, t1, 100, LinkClass::TransitTransit);
        let g2 = b.build();
        assert_eq!(g2.num_transit_domains(), 4, "max id + 1, ids need not be dense here");
        assert_eq!(g2.transit_domain_of(t1), Some(3));
    }

    #[test]
    fn link_class_histogram() {
        let g = triangle();
        assert_eq!(g.link_class_counts(), (0, 2, 1));
    }

    #[test]
    #[should_panic(expected = "self-link")]
    fn self_links_rejected() {
        let mut b = PhysGraphBuilder::new();
        let u = b.add_node(NodeClass::Transit { domain: 0 });
        b.add_link(u, u, 1, LinkClass::TransitTransit);
    }

    #[test]
    fn has_link_is_symmetric() {
        let mut b = PhysGraphBuilder::new();
        let u = b.add_node(NodeClass::Transit { domain: 0 });
        let v = b.add_node(NodeClass::Transit { domain: 0 });
        assert!(!b.has_link(u, v));
        b.add_link(u, v, 100, LinkClass::TransitTransit);
        assert!(b.has_link(u, v));
        assert!(b.has_link(v, u));
    }

    #[test]
    fn empty_graph() {
        let g = PhysGraphBuilder::new().build();
        assert!(g.is_connected());
        assert_eq!(g.num_links(), 0);
        assert_eq!(g.mean_link_latency(), 0.0);
    }
}
