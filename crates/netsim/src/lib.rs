//! # prop-netsim — the physical-network substrate
//!
//! The paper evaluates PROP on GT-ITM *transit–stub* topologies: a small,
//! high-latency backbone of transit domains with many low-latency stub
//! domains hanging off it. The original experiments used the GT-ITM
//! generator binary; this crate implements the same model natively:
//!
//! * [`PhysGraph`] — an undirected, latency-weighted graph with per-node
//!   transit/stub classification.
//! * [`TransitStubParams`] / [`generate`](transit_stub::generate) — the
//!   generator, with the paper's two presets
//!   [`TransitStubParams::ts_large`] and [`TransitStubParams::ts_small`].
//! * [`dijkstra`] — single-source shortest paths over link latencies.
//! * [`LatencyOracle`] — the `d(u, v)` oracle every protocol and metric
//!   consults. **Tiered**: member counts up to
//!   [`OracleConfig::dense_threshold`] precompute the full latency matrix
//!   in parallel with Rayon (the paper-scale fast path); populations up to
//!   [`OracleConfig::embed_threshold`] answer from a byte-bounded sharded
//!   LRU of on-demand Dijkstra rows, so a 100,000-member overlay runs in a
//!   few hundred MB instead of the 40 GB a dense matrix would need; and
//!   larger populations (the million-member scale) answer in O(1) from a
//!   Vivaldi-style network-coordinate embedding with a calibrated error
//!   margin and an exact-fallback band. See [`latency`], [`rowcache`] and
//!   [`embed`], and DESIGN.md §9/§13 for the memory and error models.
//!
//! ## Faithfulness notes (see DESIGN.md §3)
//!
//! Link-class latencies default to transit–transit 100 ms, stub–transit
//! 20 ms, stub–stub 5 ms. `d(u, v)` is the shortest-path latency in this
//! graph — exactly the quantity a real PROP deployment estimates by probing.

pub mod dijkstra;
pub mod embed;
pub mod graph;
pub mod latency;
pub mod oracle;
pub mod rowcache;
pub mod transit_stub;
pub mod waxman;

pub use embed::{EmbedCalibration, EmbedConfig, EmbedOracle, EmbedStats};
pub use graph::{LinkClass, NodeClass, PhysGraph, PhysNodeId};
pub use latency::{Latency, OracleBuildError, OracleConfig};
pub use oracle::{CachedOracle, DenseOracle, LatencyOracle};
pub use rowcache::CacheStats;
pub use transit_stub::{generate, TransitStubParams};
pub use waxman::{generate_waxman, WaxmanParams};
