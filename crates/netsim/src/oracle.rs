//! The latency oracle: `d(u, v)` for overlay members.
//!
//! Every PROP probe, every LTM detector, and every metric evaluation asks
//! for the end-to-end latency between two overlay members. The oracle is
//! **tiered** behind one facade, [`LatencyOracle`]:
//!
//! * [`DenseOracle`] — the full row-major `n × n` matrix, one Dijkstra per
//!   member fanned out across cores with Rayon (~1,000 members × ~3,000-node
//!   graph completes in well under a second). `d(a, b)` is a single array
//!   load; this is the tier every paper-scale experiment uses.
//! * [`CachedOracle`] — for member counts where O(n²) memory is not an
//!   option (100,000 members would need 40 GB), one Dijkstra per *requested
//!   source*, with rows retained in a byte-bounded sharded LRU
//!   ([`crate::rowcache::RowCache`]). Batch warm-up fans the per-source
//!   Dijkstras over Rayon.
//! * [`EmbedOracle`] — for member counts where even a per-source Dijkstra
//!   is the wall (a million members), a height-vector network coordinate
//!   per member fit once at build time; `d(u, v)` is O(1) arithmetic with
//!   a calibrated error margin and an exact-escalation path through an
//!   internal row-cache tier. See [`crate::embed`].
//!
//! Construction routes on [`OracleConfig::dense_threshold`] and
//! [`OracleConfig::embed_threshold`]; callers are tier-agnostic.
//! Connectivity is validated per row *during* construction (dense) or from
//! a single source on the undirected graph (cached/embedded), and the
//! `try_build` constructors report the offending member pair instead of
//! panicking after the full build.
//!
//! Members are addressed by dense [`MemberIdx`] values `0..n`; the overlay
//! crates use the same indexing for peers.

use crate::dijkstra::{shortest_paths, UNREACHABLE};
use crate::embed::{EmbedCalibration, EmbedOracle, EmbedStats};
use crate::graph::{PhysGraph, PhysNodeId};
use crate::latency::{Latency, OracleBuildError, OracleConfig};
use crate::rowcache::{CacheStats, RowCache};
use prop_engine::SimRng;
use rayon::prelude::*;
use std::sync::Arc;

/// Dense index of an overlay member inside a [`LatencyOracle`].
pub type MemberIdx = usize;

/// Extract the member-indexed row from a full per-host distance array,
/// failing on the first unreachable destination.
pub(crate) fn member_row(
    full: &[u32],
    members: &[PhysNodeId],
    src_member: MemberIdx,
) -> Result<Vec<u32>, OracleBuildError> {
    let mut row = Vec::with_capacity(members.len());
    for (j, &dst) in members.iter().enumerate() {
        let d = full[dst.index()];
        if d == UNREACHABLE {
            return Err(OracleBuildError {
                from_member: src_member,
                from_host: members[src_member],
                to_member: j,
                to_host: dst,
            });
        }
        row.push(d);
    }
    Ok(row)
}

/// Dense tier: the fully materialized latency matrix.
pub struct DenseOracle {
    /// Physical host backing each member.
    members: Vec<PhysNodeId>,
    /// Row-major `n × n` latency matrix, ms.
    matrix: Box<[u32]>,
    n: usize,
    /// Mean physical *link* latency — denominator of the stretch metric.
    mean_phys_link_latency: f64,
}

impl DenseOracle {
    /// Build the full matrix, validating connectivity per row as rows are
    /// produced — a disconnected pair fails fast inside the parallel row
    /// pass, before the matrix is assembled.
    pub fn try_build(
        graph: &PhysGraph,
        members: Vec<PhysNodeId>,
    ) -> Result<Self, OracleBuildError> {
        let n = members.len();
        let rows: Vec<Vec<u32>> = members
            .par_iter()
            .enumerate()
            .map(|(i, &src)| member_row(&shortest_paths(graph, src), &members, i))
            .collect::<Result<_, _>>()?;
        let mut matrix = Vec::with_capacity(n * n);
        for row in rows {
            matrix.extend_from_slice(&row);
        }
        Ok(DenseOracle {
            members,
            matrix: matrix.into_boxed_slice(),
            n,
            mean_phys_link_latency: graph.mean_link_latency(),
        })
    }

    /// Mean latency over all ordered member pairs (exact; the paper's Eq. 3
    /// "average latency" with `d(i,i) = 0`).
    pub fn mean_pairwise_latency(&self) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        let total: u64 = self.matrix.iter().map(|&d| d as u64).sum();
        total as f64 / (self.n as f64 * self.n as f64)
    }
}

impl Latency for DenseOracle {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn d(&self, a: MemberIdx, b: MemberIdx) -> u32 {
        debug_assert!(a < self.n && b < self.n);
        self.matrix[a * self.n + b]
    }

    #[inline]
    fn host(&self, i: MemberIdx) -> PhysNodeId {
        self.members[i]
    }

    #[inline]
    fn mean_phys_link_latency(&self) -> f64 {
        self.mean_phys_link_latency
    }
}

/// Row-cache tier: Dijkstra on demand, rows kept in a byte-bounded LRU.
pub struct CachedOracle {
    members: Vec<PhysNodeId>,
    /// Owned copy of the physical graph (CSR arrays) — rows are recomputed
    /// from it on every cache miss.
    graph: PhysGraph,
    cache: RowCache,
    mean_phys_link_latency: f64,
}

impl CachedOracle {
    /// Validate connectivity with a single Dijkstra from the first member
    /// (the graph is undirected, so one source reaching every member means
    /// every pair is connected) and seed the cache with that row.
    pub fn try_build(
        graph: &PhysGraph,
        members: Vec<PhysNodeId>,
        cfg: &OracleConfig,
    ) -> Result<Self, OracleBuildError> {
        let cache = RowCache::new(members.len(), cfg.cache_capacity_bytes, cfg.cache_shards);
        let oracle = CachedOracle {
            mean_phys_link_latency: graph.mean_link_latency(),
            graph: graph.clone(),
            members,
            cache,
        };
        if !oracle.members.is_empty() {
            let full = shortest_paths(&oracle.graph, oracle.members[0]);
            let row = member_row(&full, &oracle.members, 0)?;
            oracle.cache.record_miss();
            oracle.cache.insert(0, row.into());
        }
        Ok(oracle)
    }

    fn compute_row(&self, src: MemberIdx) -> Arc<[u32]> {
        let full = shortest_paths(&self.graph, self.members[src]);
        let row: Arc<[u32]> = self.members.iter().map(|&m| full[m.index()]).collect();
        debug_assert!(
            row.iter().all(|&d| d != UNREACHABLE),
            "connectivity was validated at construction"
        );
        row
    }

    /// The cached row for `src`, computing and inserting it on a miss.
    pub fn row(&self, src: MemberIdx) -> Arc<[u32]> {
        if let Some(r) = self.cache.get(src) {
            return r;
        }
        self.cache.record_miss();
        let row = self.compute_row(src);
        self.cache.insert(src, Arc::clone(&row));
        row
    }

    /// Compute any non-resident rows among `sources` in parallel (Rayon)
    /// and insert them. Memory stays bounded: each worker holds one row in
    /// flight, and the LRU enforces the byte budget as rows land.
    pub fn warm_rows(&self, sources: &[MemberIdx]) {
        let mut todo: Vec<MemberIdx> = sources.to_vec();
        todo.sort_unstable();
        todo.dedup();
        todo.retain(|&s| !self.cache.contains(s));
        todo.into_par_iter().for_each(|s| {
            let row = self.compute_row(s);
            self.cache.record_miss();
            self.cache.insert(s, row);
        });
    }

    /// Seed the cache with an externally computed exact row — e.g. rows the
    /// embedding fit already paid Dijkstras for. Counted as a miss (the row
    /// *was* computed) so hit-rate accounting matches `warm_rows`.
    pub(crate) fn seed_row(&self, src: MemberIdx, row: Arc<[u32]>) {
        if !self.cache.contains(src) {
            self.cache.record_miss();
            self.cache.insert(src, row);
        }
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Deterministic *estimate* of the mean ordered-pair latency, averaged
    /// over up to 64 stride-sampled source rows (an exact mean would need
    /// all n Dijkstras — the very cost this tier exists to avoid).
    pub fn mean_pairwise_latency(&self) -> f64 {
        let n = self.members.len();
        if n == 0 {
            return f64::NAN;
        }
        let k = n.min(64);
        let mut total: u64 = 0;
        for i in 0..k {
            let src = i * n / k;
            total += self.row(src).iter().map(|&d| d as u64).sum::<u64>();
        }
        total as f64 / (k as f64 * n as f64)
    }
}

impl Latency for CachedOracle {
    #[inline]
    fn len(&self) -> usize {
        self.members.len()
    }

    fn d(&self, a: MemberIdx, b: MemberIdx) -> u32 {
        debug_assert!(a < self.members.len() && b < self.members.len());
        if a == b {
            return 0;
        }
        if let Some(r) = self.cache.get(a) {
            return r[b];
        }
        // Latencies are symmetric (undirected graph): b's row serves too.
        if let Some(r) = self.cache.get(b) {
            return r[a];
        }
        self.cache.record_miss();
        let row = self.compute_row(a);
        let d = row[b];
        self.cache.insert(a, row);
        d
    }

    #[inline]
    fn host(&self, i: MemberIdx) -> PhysNodeId {
        self.members[i]
    }

    #[inline]
    fn mean_phys_link_latency(&self) -> f64 {
        self.mean_phys_link_latency
    }
}

/// The tier-agnostic latency oracle every caller holds.
///
/// Constructors pick the tier from [`OracleConfig::dense_threshold`]
/// (default 4,096) and [`OracleConfig::embed_threshold`] (default
/// 150,000): paper-scale populations get the dense matrix, mid-scale ones
/// the bounded row cache, and million-member populations the coordinate
/// embedding. Dense and cached answer identically byte-for-byte
/// (property-tested in `tests/tier_equivalence.rs`); the embedded tier is
/// an estimate with a calibrated margin, kept decision-safe by the
/// exact-fallback band (`tests/embed.rs` and `prop-core`'s
/// `exchange::decide`).
pub enum LatencyOracle {
    Dense(DenseOracle),
    Cached(CachedOracle),
    Embedded(EmbedOracle),
}

impl LatencyOracle {
    /// Build with default configuration for an explicit member set.
    ///
    /// Panics if any member cannot reach any other (the generators always
    /// produce connected graphs, so this indicates a bug); the panic names
    /// the offending member pair. Use [`LatencyOracle::try_build`] to
    /// handle the error instead.
    pub fn build(graph: &PhysGraph, members: Vec<PhysNodeId>) -> Self {
        Self::build_with(graph, members, &OracleConfig::default())
    }

    /// Build with an explicit configuration, panicking on disconnection.
    pub fn build_with(graph: &PhysGraph, members: Vec<PhysNodeId>, cfg: &OracleConfig) -> Self {
        match Self::try_build_with(graph, members, cfg) {
            Ok(o) => o,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible build with default configuration.
    pub fn try_build(
        graph: &PhysGraph,
        members: Vec<PhysNodeId>,
    ) -> Result<Self, OracleBuildError> {
        Self::try_build_with(graph, members, &OracleConfig::default())
    }

    /// Fallible build: dense tier when `members.len() <= cfg.dense_threshold`,
    /// row-cache tier up to `cfg.embed_threshold`, coordinate-embedded tier
    /// above. Disconnected member sets fail fast with the offending pair
    /// named.
    pub fn try_build_with(
        graph: &PhysGraph,
        members: Vec<PhysNodeId>,
        cfg: &OracleConfig,
    ) -> Result<Self, OracleBuildError> {
        if members.len() <= cfg.dense_threshold {
            DenseOracle::try_build(graph, members).map(LatencyOracle::Dense)
        } else if members.len() <= cfg.embed_threshold {
            CachedOracle::try_build(graph, members, cfg).map(LatencyOracle::Cached)
        } else {
            EmbedOracle::try_build(graph, members, cfg).map(LatencyOracle::Embedded)
        }
    }

    /// Select `n` overlay members uniformly from the graph's stub (edge
    /// host) population and build the oracle. This mirrors the paper's
    /// setup: overlay peers are end systems, not backbone routers.
    ///
    /// Panics if the graph has fewer than `n` stub nodes.
    pub fn select_and_build(graph: &PhysGraph, n: usize, rng: &mut SimRng) -> Self {
        Self::select_and_build_with(graph, n, rng, &OracleConfig::default())
    }

    /// [`LatencyOracle::select_and_build`] with an explicit configuration.
    pub fn select_and_build_with(
        graph: &PhysGraph,
        n: usize,
        rng: &mut SimRng,
        cfg: &OracleConfig,
    ) -> Self {
        let stubs = graph.stub_nodes();
        assert!(
            stubs.len() >= n,
            "requested {n} members but the topology has only {} stub hosts",
            stubs.len()
        );
        let members = rng.fork("member-selection").sample_distinct(&stubs, n);
        Self::build_with(graph, members, cfg)
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            LatencyOracle::Dense(o) => o.len(),
            LatencyOracle::Cached(o) => o.len(),
            LatencyOracle::Embedded(o) => o.len(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// End-to-end latency between members `a` and `b`, in ms. Exact on the
    /// dense and row-cache tiers; the calibrated O(1) estimate on the
    /// embedded tier.
    #[inline]
    pub fn d(&self, a: MemberIdx, b: MemberIdx) -> u32 {
        match self {
            LatencyOracle::Dense(o) => o.d(a, b),
            LatencyOracle::Cached(o) => o.d(a, b),
            LatencyOracle::Embedded(o) => o.d(a, b),
        }
    }

    /// Exact latency regardless of tier — the embedded tier's escalation
    /// path (through its internal row cache); identical to [`Self::d`] on
    /// the other two tiers.
    #[inline]
    pub fn d_exact(&self, a: MemberIdx, b: MemberIdx) -> u32 {
        match self {
            LatencyOracle::Dense(o) => o.d(a, b),
            LatencyOracle::Cached(o) => o.d(a, b),
            LatencyOracle::Embedded(o) => o.d_exact(a, b),
        }
    }

    /// Absolute error margin (ms) one `d(u, v)` term contributes to a Var
    /// comparison's exact-fallback band. Zero on the exact tiers — their
    /// band is empty, so `exchange::decide` never escalates there.
    #[inline]
    pub fn var_margin_per_term(&self) -> f64 {
        match self {
            LatencyOracle::Embedded(o) => o.margin_per_term(),
            _ => 0.0,
        }
    }

    /// Record one Var decision escalated into the fallback band (no-op on
    /// the exact tiers).
    #[inline]
    pub fn note_escalation(&self) {
        if let LatencyOracle::Embedded(o) = self {
            o.note_escalation();
        }
    }

    /// The physical host backing member `i`.
    #[inline]
    pub fn host(&self, i: MemberIdx) -> PhysNodeId {
        match self {
            LatencyOracle::Dense(o) => o.host(i),
            LatencyOracle::Cached(o) => o.host(i),
            LatencyOracle::Embedded(o) => o.host(i),
        }
    }

    /// Mean physical link latency (stretch denominator).
    #[inline]
    pub fn mean_phys_link_latency(&self) -> f64 {
        match self {
            LatencyOracle::Dense(o) => o.mean_phys_link_latency(),
            LatencyOracle::Cached(o) => o.mean_phys_link_latency(),
            LatencyOracle::Embedded(o) => o.mean_phys_link_latency(),
        }
    }

    /// Mean latency over all ordered member pairs (the paper's Eq. 3
    /// "average latency" over the member population, with `d(i,i) = 0`).
    /// Exact on the dense tier; a deterministic 64-row sample estimate on
    /// the row-cache and embedded tiers.
    pub fn mean_pairwise_latency(&self) -> f64 {
        match self {
            LatencyOracle::Dense(o) => o.mean_pairwise_latency(),
            LatencyOracle::Cached(o) => o.mean_pairwise_latency(),
            LatencyOracle::Embedded(o) => o.mean_pairwise_latency(),
        }
    }

    /// Which tier is live — for logs and experiment reports.
    pub fn tier(&self) -> &'static str {
        match self {
            LatencyOracle::Dense(_) => "dense",
            LatencyOracle::Cached(_) => "row-cache",
            LatencyOracle::Embedded(_) => "coord-embed",
        }
    }

    /// Row-cache counters; `None` on the dense tier (which has no cache).
    /// On the embedded tier these are the internal *exact escalation*
    /// cache's counters.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        match self {
            LatencyOracle::Dense(_) => None,
            LatencyOracle::Cached(o) => Some(o.cache_stats()),
            LatencyOracle::Embedded(o) => Some(o.exact().cache_stats()),
        }
    }

    /// Embedded-tier query/escalation counters; `None` on the exact tiers.
    pub fn embed_stats(&self) -> Option<EmbedStats> {
        match self {
            LatencyOracle::Embedded(o) => Some(o.stats()),
            _ => None,
        }
    }

    /// The embedded tier's committed error calibration; `None` on the
    /// exact tiers.
    pub fn embed_calibration(&self) -> Option<EmbedCalibration> {
        match self {
            LatencyOracle::Embedded(o) => Some(o.calibration()),
            _ => None,
        }
    }

    /// Batch warm-up: ensure the rows for `sources` are resident, fanning
    /// the per-source Dijkstras over Rayon. No-op on the dense tier (every
    /// row is always resident there). On the embedded tier this warms the
    /// internal exact cache — the rows only escalated decisions will read —
    /// so callers should restrict it to slots they expect to escalate.
    pub fn warm_rows(&self, sources: &[MemberIdx]) {
        match self {
            LatencyOracle::Dense(_) => {}
            LatencyOracle::Cached(o) => o.warm_rows(sources),
            LatencyOracle::Embedded(o) => o.warm_exact_rows(sources),
        }
    }
}

impl Latency for LatencyOracle {
    #[inline]
    fn len(&self) -> usize {
        LatencyOracle::len(self)
    }

    #[inline]
    fn d(&self, a: MemberIdx, b: MemberIdx) -> u32 {
        LatencyOracle::d(self, a, b)
    }

    #[inline]
    fn host(&self, i: MemberIdx) -> PhysNodeId {
        LatencyOracle::host(self, i)
    }

    #[inline]
    fn mean_phys_link_latency(&self) -> f64 {
        LatencyOracle::mean_phys_link_latency(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkClass, NodeClass, PhysGraphBuilder};
    use crate::transit_stub::{generate, TransitStubParams};

    fn tiny_oracle(n: usize, seed: u64) -> LatencyOracle {
        let mut rng = SimRng::seed_from(seed);
        let g = generate(&TransitStubParams::tiny(), &mut rng);
        LatencyOracle::select_and_build(&g, n, &mut rng)
    }

    fn tiny_cached(n: usize, seed: u64, capacity: usize) -> LatencyOracle {
        let mut rng = SimRng::seed_from(seed);
        let g = generate(&TransitStubParams::tiny(), &mut rng);
        LatencyOracle::select_and_build_with(&g, n, &mut rng, &OracleConfig::cached(capacity))
    }

    /// Two stub components with no path between them.
    fn disconnected_graph() -> (PhysGraph, Vec<PhysNodeId>) {
        let mut b = PhysGraphBuilder::new();
        let a0 = b.add_node(NodeClass::Stub { domain: 0, gateway: 0 });
        let a1 = b.add_node(NodeClass::Stub { domain: 0, gateway: 0 });
        let b0 = b.add_node(NodeClass::Stub { domain: 1, gateway: 1 });
        let b1 = b.add_node(NodeClass::Stub { domain: 1, gateway: 1 });
        b.add_link(a0, a1, 5, LinkClass::StubStub);
        b.add_link(b0, b1, 5, LinkClass::StubStub);
        (b.build(), vec![a0, a1, b0, b1])
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let o = tiny_oracle(20, 1);
        for a in 0..o.len() {
            assert_eq!(o.d(a, a), 0);
            for b in 0..o.len() {
                assert_eq!(o.d(a, b), o.d(b, a));
            }
        }
    }

    #[test]
    fn triangle_inequality() {
        let o = tiny_oracle(15, 2);
        for a in 0..o.len() {
            for b in 0..o.len() {
                for c in 0..o.len() {
                    assert!(o.d(a, b) <= o.d(a, c) + o.d(c, b));
                }
            }
        }
    }

    #[test]
    fn members_are_stub_hosts() {
        let mut rng = SimRng::seed_from(3);
        let g = generate(&TransitStubParams::tiny(), &mut rng);
        let o = LatencyOracle::select_and_build(&g, 10, &mut rng);
        for i in 0..o.len() {
            assert!(!g.class(o.host(i)).is_transit());
        }
    }

    #[test]
    fn members_are_distinct() {
        let o = tiny_oracle(30, 4);
        let mut hosts: Vec<_> = (0..o.len()).map(|i| o.host(i)).collect();
        hosts.sort();
        hosts.dedup();
        assert_eq!(hosts.len(), 30);
    }

    #[test]
    fn distances_match_direct_dijkstra() {
        let mut rng = SimRng::seed_from(5);
        let g = generate(&TransitStubParams::tiny(), &mut rng);
        let o = LatencyOracle::select_and_build(&g, 12, &mut rng);
        for a in 0..o.len() {
            let full = shortest_paths(&g, o.host(a));
            for b in 0..o.len() {
                assert_eq!(o.d(a, b), full[o.host(b).index()]);
            }
        }
    }

    #[test]
    fn mean_pairwise_latency_positive() {
        let o = tiny_oracle(10, 6);
        let m = o.mean_pairwise_latency();
        assert!(m > 0.0 && m.is_finite());
    }

    #[test]
    #[should_panic(expected = "stub hosts")]
    fn oversubscription_rejected() {
        let _ = tiny_oracle(1000, 7);
    }

    #[test]
    fn deterministic_selection() {
        let a = tiny_oracle(10, 8);
        let b = tiny_oracle(10, 8);
        for i in 0..10 {
            assert_eq!(a.host(i), b.host(i));
        }
    }

    #[test]
    fn default_config_routes_small_populations_to_dense() {
        let o = tiny_oracle(10, 9);
        assert_eq!(o.tier(), "dense");
        assert!(o.cache_stats().is_none());
    }

    #[test]
    fn cached_config_routes_to_row_cache() {
        let o = tiny_cached(10, 9, 1 << 20);
        assert_eq!(o.tier(), "row-cache");
        assert!(o.cache_stats().is_some());
    }

    #[test]
    fn cached_tier_matches_dense_tier() {
        let dense = tiny_oracle(20, 10);
        let cached = tiny_cached(20, 10, 1 << 20);
        assert_eq!(dense.len(), cached.len());
        for a in 0..20 {
            assert_eq!(dense.host(a), cached.host(a));
            for b in 0..20 {
                assert_eq!(dense.d(a, b), cached.d(a, b));
            }
        }
    }

    #[test]
    fn cached_tier_counts_hits_and_misses() {
        let o = tiny_cached(10, 11, 1 << 20);
        let s0 = o.cache_stats().unwrap();
        let first = o.d(3, 4); // row 3 computed
        let again = o.d(3, 5); // row 3 hit
        assert!(first > 0 && again > 0);
        let s = o.cache_stats().unwrap().since(&s0);
        assert_eq!(s.misses, 1);
        assert!(s.hits >= 1);
    }

    #[test]
    fn warm_rows_makes_queries_hits() {
        let o = tiny_cached(12, 12, 1 << 20);
        o.warm_rows(&(0..12).collect::<Vec<_>>());
        let warmed = o.cache_stats().unwrap();
        assert_eq!(warmed.resident_rows, 12);
        for a in 0..12 {
            for b in 0..12 {
                let _ = o.d(a, b);
            }
        }
        let s = o.cache_stats().unwrap().since(&warmed);
        assert_eq!(s.misses, 0, "fully warmed cache answers without Dijkstra");
    }

    #[test]
    fn tiny_capacity_evicts_but_stays_correct() {
        let n = 12;
        // Room for ~2 rows per shard with 1 shard: constant churn.
        let mut rng = SimRng::seed_from(13);
        let g = generate(&TransitStubParams::tiny(), &mut rng);
        let cfg = OracleConfig {
            dense_threshold: 0,
            cache_capacity_bytes: 2 * n * 4,
            cache_shards: 1,
            ..OracleConfig::cached(0)
        };
        let cached = LatencyOracle::select_and_build_with(&g, n, &mut rng, &cfg);
        let mut rng2 = SimRng::seed_from(13);
        let g2 = generate(&TransitStubParams::tiny(), &mut rng2);
        let dense = LatencyOracle::select_and_build(&g2, n, &mut rng2);
        for pass in 0..3 {
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(cached.d(a, b), dense.d(a, b), "pass {pass}, pair ({a},{b})");
                }
            }
        }
        let s = cached.cache_stats().unwrap();
        assert!(s.evictions > 0, "tiny capacity must evict");
        assert!(s.resident_bytes <= s.capacity_bytes);
    }

    #[test]
    fn try_build_reports_offending_pair_dense() {
        let (g, members) = disconnected_graph();
        let err = LatencyOracle::try_build(&g, members.clone()).unwrap_err();
        // Some member of component A cannot reach some member of component B.
        assert_ne!(err.from_member, err.to_member);
        let (a_side, b_side) = (err.from_member < 2, err.to_member < 2);
        assert_ne!(a_side, b_side, "pair must straddle the two components");
        assert_eq!(err.from_host, members[err.from_member]);
        assert_eq!(err.to_host, members[err.to_member]);
    }

    #[test]
    fn try_build_reports_offending_pair_cached() {
        let (g, members) = disconnected_graph();
        let err =
            LatencyOracle::try_build_with(&g, members, &OracleConfig::cached(1 << 20)).unwrap_err();
        assert_eq!(err.from_member, 0, "cached tier validates from the first member");
        assert!(err.to_member >= 2, "components straddled");
    }

    #[test]
    #[should_panic(expected = "disconnected member set")]
    fn build_panics_on_disconnection() {
        let (g, members) = disconnected_graph();
        let _ = LatencyOracle::build(&g, members);
    }

    #[test]
    fn embedded_config_routes_to_coord_embed() {
        let mut rng = SimRng::seed_from(20);
        let g = generate(&TransitStubParams::tiny(), &mut rng);
        let o = LatencyOracle::select_and_build_with(&g, 16, &mut rng, &OracleConfig::embedded());
        assert_eq!(o.tier(), "coord-embed");
        assert!(o.cache_stats().is_some(), "embedded tier exposes its exact cache");
        assert!(o.embed_stats().is_some());
        assert!(o.embed_calibration().is_some());
        assert!(o.var_margin_per_term() >= 1.0);
        // d_exact must agree with a straight Dijkstra even though d() is
        // an estimate.
        let full = shortest_paths(&g, o.host(0));
        for b in 0..16 {
            assert_eq!(o.d_exact(0, b), full[o.host(b).index()]);
        }
    }

    #[test]
    fn exact_tiers_have_empty_fallback_band() {
        let dense = tiny_oracle(10, 21);
        assert_eq!(dense.var_margin_per_term(), 0.0);
        assert!(dense.embed_stats().is_none());
        assert!(dense.embed_calibration().is_none());
        dense.note_escalation(); // no-op, must not panic
        let cached = tiny_cached(10, 21, 1 << 20);
        assert_eq!(cached.var_margin_per_term(), 0.0);
        assert!(cached.embed_stats().is_none());
    }

    #[test]
    fn cached_mean_pairwise_estimate_is_close() {
        let dense = tiny_oracle(30, 14);
        let cached = tiny_cached(30, 14, 1 << 20);
        let exact = dense.mean_pairwise_latency();
        let est = cached.mean_pairwise_latency();
        // 30 ≤ 64 sources ⇒ the "estimate" covers every row and is exact.
        assert!((exact - est).abs() < 1e-9, "exact {exact}, estimate {est}");
    }
}
