//! The latency oracle: `d(u, v)` for overlay members.
//!
//! Every PROP probe, every LTM detector, and every metric evaluation asks
//! for the end-to-end latency between two overlay members. Rather than
//! re-running shortest paths on demand, the oracle precomputes the full
//! member-to-member latency matrix once per experiment: one Dijkstra per
//! member over the physical graph, fanned out across cores with Rayon
//! (~1,000 members × ~3,000-node graph completes in well under a second).
//!
//! Members are addressed by dense [`MemberIdx`] values `0..n`; the overlay
//! crates use the same indexing for peers, so `d(peer_a, peer_b)` is a
//! single array lookup on the hot path.

use crate::dijkstra::shortest_paths;
use crate::graph::{PhysGraph, PhysNodeId};
use prop_engine::SimRng;
use rayon::prelude::*;

/// Dense index of an overlay member inside a [`LatencyOracle`].
pub type MemberIdx = usize;

/// Precomputed member-to-member shortest-path latencies.
pub struct LatencyOracle {
    /// Physical host backing each member.
    members: Vec<PhysNodeId>,
    /// Row-major `n × n` latency matrix, ms.
    matrix: Box<[u32]>,
    n: usize,
    /// Mean physical *link* latency — denominator of the stretch metric.
    mean_phys_link_latency: f64,
}

impl LatencyOracle {
    /// Build the oracle for an explicit member set.
    ///
    /// Panics if any member cannot reach any other (the transit–stub
    /// generator always produces connected graphs, so this indicates a bug).
    pub fn build(graph: &PhysGraph, members: Vec<PhysNodeId>) -> Self {
        let n = members.len();
        let rows: Vec<Vec<u32>> = members
            .par_iter()
            .map(|&src| {
                let full = shortest_paths(graph, src);
                members.iter().map(|&dst| full[dst.index()]).collect()
            })
            .collect();
        let mut matrix = Vec::with_capacity(n * n);
        for row in rows {
            matrix.extend_from_slice(&row);
        }
        assert!(
            matrix.iter().all(|&d| d != crate::dijkstra::UNREACHABLE),
            "latency oracle built over a disconnected member set"
        );
        LatencyOracle {
            members,
            matrix: matrix.into_boxed_slice(),
            n,
            mean_phys_link_latency: graph.mean_link_latency(),
        }
    }

    /// Select `n` overlay members uniformly from the graph's stub (edge
    /// host) population and build the oracle. This mirrors the paper's
    /// setup: overlay peers are end systems, not backbone routers.
    ///
    /// Panics if the graph has fewer than `n` stub nodes.
    pub fn select_and_build(graph: &PhysGraph, n: usize, rng: &mut SimRng) -> Self {
        let stubs = graph.stub_nodes();
        assert!(
            stubs.len() >= n,
            "requested {n} members but the topology has only {} stub hosts",
            stubs.len()
        );
        let members = rng.fork("member-selection").sample_distinct(&stubs, n);
        Self::build(graph, members)
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// End-to-end latency between members `a` and `b`, in ms.
    #[inline]
    pub fn d(&self, a: MemberIdx, b: MemberIdx) -> u32 {
        debug_assert!(a < self.n && b < self.n);
        self.matrix[a * self.n + b]
    }

    /// The physical host backing member `i`.
    #[inline]
    pub fn host(&self, i: MemberIdx) -> PhysNodeId {
        self.members[i]
    }

    /// Mean physical link latency (stretch denominator).
    #[inline]
    pub fn mean_phys_link_latency(&self) -> f64 {
        self.mean_phys_link_latency
    }

    /// Mean latency over all ordered member pairs (the paper's Eq. 3
    /// "average latency" over the member population, with `d(i,i) = 0`).
    pub fn mean_pairwise_latency(&self) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        let total: u64 = self.matrix.iter().map(|&d| d as u64).sum();
        total as f64 / (self.n as f64 * self.n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transit_stub::{generate, TransitStubParams};

    fn tiny_oracle(n: usize, seed: u64) -> LatencyOracle {
        let mut rng = SimRng::seed_from(seed);
        let g = generate(&TransitStubParams::tiny(), &mut rng);
        LatencyOracle::select_and_build(&g, n, &mut rng)
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let o = tiny_oracle(20, 1);
        for a in 0..o.len() {
            assert_eq!(o.d(a, a), 0);
            for b in 0..o.len() {
                assert_eq!(o.d(a, b), o.d(b, a));
            }
        }
    }

    #[test]
    fn triangle_inequality() {
        let o = tiny_oracle(15, 2);
        for a in 0..o.len() {
            for b in 0..o.len() {
                for c in 0..o.len() {
                    assert!(o.d(a, b) <= o.d(a, c) + o.d(c, b));
                }
            }
        }
    }

    #[test]
    fn members_are_stub_hosts() {
        let mut rng = SimRng::seed_from(3);
        let g = generate(&TransitStubParams::tiny(), &mut rng);
        let o = LatencyOracle::select_and_build(&g, 10, &mut rng);
        for i in 0..o.len() {
            assert!(!g.class(o.host(i)).is_transit());
        }
    }

    #[test]
    fn members_are_distinct() {
        let o = tiny_oracle(30, 4);
        let mut hosts: Vec<_> = (0..o.len()).map(|i| o.host(i)).collect();
        hosts.sort();
        hosts.dedup();
        assert_eq!(hosts.len(), 30);
    }

    #[test]
    fn distances_match_direct_dijkstra() {
        let mut rng = SimRng::seed_from(5);
        let g = generate(&TransitStubParams::tiny(), &mut rng);
        let o = LatencyOracle::select_and_build(&g, 12, &mut rng);
        for a in 0..o.len() {
            let full = shortest_paths(&g, o.host(a));
            for b in 0..o.len() {
                assert_eq!(o.d(a, b), full[o.host(b).index()]);
            }
        }
    }

    #[test]
    fn mean_pairwise_latency_positive() {
        let o = tiny_oracle(10, 6);
        let m = o.mean_pairwise_latency();
        assert!(m > 0.0 && m.is_finite());
    }

    #[test]
    #[should_panic(expected = "stub hosts")]
    fn oversubscription_rejected() {
        let _ = tiny_oracle(1000, 7);
    }

    #[test]
    fn deterministic_selection() {
        let a = tiny_oracle(10, 8);
        let b = tiny_oracle(10, 8);
        for i in 0..10 {
            assert_eq!(a.host(i), b.host(i));
        }
    }
}
