//! The tier-agnostic latency interface and its configuration.
//!
//! Every consumer of `d(u, v)` — PROP probes, LTM detection, the metrics —
//! talks to a [`Latency`] implementation. Three tiers exist (see
//! [`crate::LatencyOracle`]):
//!
//! * **dense** — the full `n × n` matrix, precomputed once. O(n²) memory,
//!   O(1) lookups with no synchronization. The fast path for every
//!   paper-scale experiment (n ≤ a few thousand).
//! * **row-cache** — one Dijkstra per *requested source*, rows retained in
//!   a sharded LRU bounded in bytes. O(capacity) memory regardless of `n`,
//!   which is what lets a 100,000-member overlay run at all: the dense
//!   matrix would need 40 GB, the cache runs in a few hundred MB.
//! * **coord-embed** — a Vivaldi-style height-vector coordinate per member,
//!   fit once from sampled exact Dijkstra rows; `d(u, v)` is O(1) with no
//!   graph work at query time and O(n) memory, which is what a
//!   1,000,000-member overlay needs. Estimates carry a calibrated error
//!   margin; Var decisions inside the margin escalate to an internal
//!   row-cache tier (see [`crate::EmbedOracle`] and DESIGN.md §13).
//!
//! Callers never pick a tier by hand; [`OracleConfig::dense_threshold`]
//! and [`OracleConfig::embed_threshold`] route construction, and the
//! facade's `d()` hides the difference.

use crate::embed::EmbedConfig;
use crate::graph::PhysNodeId;
use crate::oracle::MemberIdx;
use serde::{Deserialize, Serialize};

/// Tier-agnostic view of member-to-member latencies.
///
/// Implemented by both oracle tiers and by the [`crate::LatencyOracle`]
/// facade; generic code (equivalence tests, reporting) can treat any of
/// them uniformly.
pub trait Latency: Send + Sync {
    /// Number of members.
    fn len(&self) -> usize;

    /// End-to-end latency between members `a` and `b`, in ms.
    fn d(&self, a: MemberIdx, b: MemberIdx) -> u32;

    /// The physical host backing member `i`.
    fn host(&self, i: MemberIdx) -> PhysNodeId;

    /// Mean physical *link* latency — denominator of the stretch metric.
    fn mean_phys_link_latency(&self) -> f64;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Construction-time knobs for [`crate::LatencyOracle`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Member counts up to this build the dense matrix tier; larger counts
    /// get the row cache. The default (4,096) keeps every paper-scale
    /// experiment on the dense fast path while capping its memory at
    /// 4096² × 4 B = 64 MiB.
    pub dense_threshold: usize,
    /// Byte budget for resident rows in the row-cache tier. One row costs
    /// `4 × n` bytes (plus small bookkeeping), so the default 512 MiB holds
    /// ~1,342 rows at n = 100,000.
    pub cache_capacity_bytes: usize,
    /// Number of independent LRU shards (each with its own lock); must be
    /// ≥ 1. More shards ⇒ less contention under parallel query load.
    pub cache_shards: usize,
    /// Member counts above this get the coordinate-embedded tier instead of
    /// the row cache. The default (150,000) keeps every workload the row
    /// cache has been proven on exact, and routes the million-member scale
    /// — where per-row Dijkstras are the wall — to the O(1) embedding.
    #[serde(default = "default_embed_threshold")]
    pub embed_threshold: usize,
    /// Fit and fallback-band knobs of the coordinate-embedded tier; unused
    /// by the other two.
    #[serde(default)]
    pub embed: EmbedConfig,
}

fn default_embed_threshold() -> usize {
    150_000
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            dense_threshold: 4096,
            cache_capacity_bytes: 512 << 20,
            cache_shards: 16,
            embed_threshold: default_embed_threshold(),
            embed: EmbedConfig::default(),
        }
    }
}

impl OracleConfig {
    /// Force the dense tier at any member count.
    pub fn dense() -> Self {
        OracleConfig { dense_threshold: usize::MAX, ..Default::default() }
    }

    /// Force the row-cache tier (at any member count) with the given byte
    /// budget.
    pub fn cached(capacity_bytes: usize) -> Self {
        OracleConfig {
            dense_threshold: 0,
            cache_capacity_bytes: capacity_bytes,
            embed_threshold: usize::MAX,
            ..Default::default()
        }
    }

    /// Force the coordinate-embedded tier at any member count.
    pub fn embedded() -> Self {
        OracleConfig { dense_threshold: 0, embed_threshold: 0, ..Default::default() }
    }
}

/// A member pair the oracle cannot connect. Returned by the `try_build`
/// constructors instead of the historical panic-after-the-fact, and named
/// precisely so generator bugs are debuggable: *which* members, on *which*
/// hosts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OracleBuildError {
    /// Member index of the unreachable pair's source side.
    pub from_member: MemberIdx,
    /// Physical host backing `from_member`.
    pub from_host: PhysNodeId,
    /// Member index of the unreachable pair's destination side.
    pub to_member: MemberIdx,
    /// Physical host backing `to_member`.
    pub to_host: PhysNodeId,
}

impl std::fmt::Display for OracleBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "latency oracle built over a disconnected member set: \
             member {} (host {:?}) cannot reach member {} (host {:?})",
            self.from_member, self.from_host, self.to_member, self.to_host
        )
    }
}

impl std::error::Error for OracleBuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = OracleConfig::default();
        assert!(c.dense_threshold >= 4096);
        assert!(c.cache_capacity_bytes >= 1 << 20);
        assert!(c.cache_shards >= 1);
    }

    #[test]
    fn forced_tiers() {
        assert_eq!(OracleConfig::dense().dense_threshold, usize::MAX);
        let c = OracleConfig::cached(1 << 20);
        assert_eq!(c.dense_threshold, 0);
        assert_eq!(c.cache_capacity_bytes, 1 << 20);
        assert_eq!(c.embed_threshold, usize::MAX, "cached() must never route to the embedding");
        let e = OracleConfig::embedded();
        assert_eq!(e.dense_threshold, 0);
        assert_eq!(e.embed_threshold, 0);
    }

    #[test]
    fn config_deserializes_without_embed_fields() {
        // Configs serialized before the coord-embed tier existed must keep
        // loading (and must route exactly as they used to).
        let legacy = r#"{"dense_threshold":4096,"cache_capacity_bytes":1048576,"cache_shards":4}"#;
        let c: OracleConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(c.dense_threshold, 4096);
        assert_eq!(c.embed_threshold, 150_000);
        assert_eq!(c.embed, crate::embed::EmbedConfig::default());
    }

    #[test]
    fn error_names_the_pair() {
        let e = OracleBuildError {
            from_member: 3,
            from_host: PhysNodeId(30),
            to_member: 7,
            to_host: PhysNodeId(70),
        };
        let msg = e.to_string();
        assert!(msg.contains("disconnected member set"));
        assert!(msg.contains("member 3"));
        assert!(msg.contains("member 7"));
    }
}
