//! Memory-cap integration test: a 20,000-member oracle (dense equivalent:
//! 20,000² × 4 B = 1.5 GiB) answers a clustered query workload under a
//! 64 MiB row-cache budget — the small-scale twin of the `scale`
//! experiment binary's 100k/512 MiB claim, kept cheap enough for
//! `cargo test`.

use prop_engine::SimRng;
use prop_netsim::{dijkstra, generate, LatencyOracle, OracleConfig, TransitStubParams};

const MEMBERS: usize = 20_000;
const CAP_BYTES: usize = 64 << 20;

#[test]
fn twenty_k_members_stay_under_64_mib() {
    let mut rng = SimRng::seed_from(9);
    let params = TransitStubParams::scaled(MEMBERS);
    let g = generate(&params, &mut rng);
    let oracle = LatencyOracle::select_and_build_with(
        &g,
        MEMBERS,
        &mut rng,
        &OracleConfig { cache_capacity_bytes: CAP_BYTES, ..OracleConfig::default() },
    );
    assert_eq!(oracle.tier(), "row-cache", "20k members must route to the cached tier");
    assert_eq!(oracle.len(), MEMBERS);

    // Clustered workload: 2,000 distinct sources (every 10th member),
    // warmed in cache-friendly batches, three queries each. Total row
    // demand is 2,000 × 80 KB = 156 MiB — 2.4× the budget, so the cache
    // must evict to stay under the cap.
    let sources: Vec<usize> = (0..MEMBERS).step_by(10).collect();
    assert_eq!(sources.len(), 2_000);
    for chunk in sources.chunks(400) {
        oracle.warm_rows(chunk);
        for &s in chunk {
            for k in 1..=3usize {
                let t = (s * 7 + 13 * k) % MEMBERS;
                let d = oracle.d(s, t);
                assert!(d < u32::MAX, "member {s} cannot reach {t}");
            }
        }
    }

    let stats = oracle.cache_stats().expect("cached tier exposes stats");
    assert!(
        stats.peak_resident_bytes <= CAP_BYTES,
        "peak residency {} exceeds the {} byte cap",
        stats.peak_resident_bytes,
        CAP_BYTES
    );
    assert!(stats.evictions > 0, "workload was sized to overflow the cap: {stats:?}");
    assert!(stats.misses >= sources.len() as u64, "each warmed row is a miss: {stats:?}");
    assert!(stats.hits > 0, "in-chunk queries should hit warmed rows: {stats:?}");

    // Spot-check answers against a direct Dijkstra from the same host.
    for &s in sources.iter().step_by(500) {
        let dist = dijkstra::shortest_paths(&g, oracle.host(s));
        for k in 1..=3usize {
            let t = (s * 7 + 13 * k) % MEMBERS;
            assert_eq!(
                oracle.d(s, t),
                dist[oracle.host(t).index()],
                "oracle disagrees with direct Dijkstra for ({s}, {t})"
            );
        }
    }
}
