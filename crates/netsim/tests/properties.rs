//! Property tests for the physical-network substrate: every generated
//! topology, at any parameterization, must satisfy the invariants the rest
//! of the stack assumes.

use prop_engine::SimRng;
use prop_netsim::waxman::{generate_waxman, WaxmanParams};
use prop_netsim::{generate, LatencyOracle, TransitStubParams};
use proptest::test_runner::Config as ProptestConfig;
use proptest::{prop_assert, prop_assert_eq, proptest};

fn ts_params(
    domains: usize,
    transit: usize,
    stubs: usize,
    hosts: usize,
    extra: f64,
) -> TransitStubParams {
    TransitStubParams {
        transit_domains: domains,
        transit_nodes_per_domain: transit,
        stub_domains_per_transit: stubs,
        nodes_per_stub_domain: hosts,
        extra_domain_edge: extra,
        extra_transit_edge: extra,
        extra_stub_edge: extra / 4.0,
        transit_transit_ms: 100,
        stub_transit_ms: 20,
        stub_stub_ms: 5,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any transit–stub parameterization yields a connected graph of the
    /// predicted size with only the three sanctioned link latencies.
    #[test]
    fn transit_stub_always_well_formed(
        domains in 1usize..6,
        transit in 1usize..5,
        stubs in 1usize..4,
        hosts in 1usize..12,
        extra in 0.0f64..0.6,
        seed in 0u64..10_000,
    ) {
        let p = ts_params(domains, transit, stubs, hosts, extra);
        let g = generate(&p, &mut SimRng::seed_from(seed));
        prop_assert_eq!(g.num_nodes(), p.total_nodes());
        prop_assert!(g.is_connected());
        for u in g.nodes() {
            for &(_, w) in g.neighbors(u) {
                prop_assert!([5, 20, 100].contains(&w), "latency {w}");
            }
        }
        // Stub population matches: total − transit.
        let transit_total = domains * transit;
        prop_assert_eq!(g.stub_nodes().len(), p.total_nodes() - transit_total);
    }

    /// Waxman graphs are connected for any parameters, with latencies in
    /// `(0, max]`.
    #[test]
    fn waxman_always_well_formed(
        nodes in 2usize..120,
        alpha in 0.005f64..0.8,
        beta in 0.05f64..0.6,
        seed in 0u64..10_000,
    ) {
        let p = WaxmanParams { nodes, alpha, beta, max_latency_ms: 120 };
        let g = generate_waxman(&p, &mut SimRng::seed_from(seed));
        prop_assert_eq!(g.num_nodes(), nodes);
        prop_assert!(g.is_connected());
        for u in g.nodes() {
            for &(_, w) in g.neighbors(u) {
                prop_assert!(w >= 1 && w <= 120);
            }
        }
    }

    /// The latency oracle is a metric: symmetric, zero diagonal, triangle
    /// inequality — on arbitrary generated topologies and member subsets.
    #[test]
    fn oracle_is_a_metric(
        hosts in 2usize..8,
        stubs in 1usize..3,
        members in 2usize..12,
        seed in 0u64..10_000,
    ) {
        let p = ts_params(2, 2, stubs, hosts, 0.3);
        let mut rng = SimRng::seed_from(seed);
        let g = generate(&p, &mut rng);
        let m = members.min(g.stub_nodes().len());
        let o = LatencyOracle::select_and_build(&g, m, &mut rng);
        for a in 0..m {
            prop_assert_eq!(o.d(a, a), 0);
            for b in 0..m {
                prop_assert_eq!(o.d(a, b), o.d(b, a));
                for c in 0..m {
                    prop_assert!(o.d(a, b) <= o.d(a, c) + o.d(c, b), "triangle violated");
                }
            }
        }
    }
}
