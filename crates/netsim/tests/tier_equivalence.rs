//! Tier-equivalence property tests: the row-cache oracle tier must be
//! observationally identical to the dense tier — the same `u32` latency
//! for every ordered pair — on any topology, member subset, and cache
//! capacity, including capacities tiny enough to evict rows between
//! queries and force recomputation.

use prop_engine::SimRng;
use prop_netsim::waxman::{generate_waxman, WaxmanParams};
use prop_netsim::{
    generate, LatencyOracle, OracleConfig, PhysGraph, PhysNodeId, TransitStubParams,
};
use proptest::test_runner::Config as ProptestConfig;
use proptest::{prop_assert_eq, proptest};

fn ts_params(
    domains: usize,
    transit: usize,
    stubs: usize,
    hosts: usize,
    extra: f64,
) -> TransitStubParams {
    TransitStubParams {
        transit_domains: domains,
        transit_nodes_per_domain: transit,
        stub_domains_per_transit: stubs,
        nodes_per_stub_domain: hosts,
        extra_domain_edge: extra,
        extra_transit_edge: extra,
        extra_stub_edge: extra / 4.0,
        transit_transit_ms: 100,
        stub_transit_ms: 20,
        stub_stub_ms: 5,
    }
}

fn pick_members(g: &PhysGraph, want: usize, rng: &mut SimRng) -> Vec<PhysNodeId> {
    let stubs = g.stub_nodes();
    rng.sample_distinct(&stubs, want.clamp(2, stubs.len()))
}

/// Build both tiers over the same member set and assert every ordered
/// pair agrees, across three query passes (cold, re-queried, reversed) so
/// tiny caches have evicted and recomputed most rows by the end.
fn assert_tiers_agree(
    g: &PhysGraph,
    members: Vec<PhysNodeId>,
    cache_capacity: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let dense = LatencyOracle::try_build_with(g, members.clone(), &OracleConfig::dense())
        .expect("connected member set");
    let cached = LatencyOracle::try_build_with(g, members, &OracleConfig::cached(cache_capacity))
        .expect("connected member set");
    prop_assert_eq!(dense.tier(), "dense");
    prop_assert_eq!(cached.tier(), "row-cache");
    let n = dense.len();

    for a in 0..n {
        for b in 0..n {
            prop_assert_eq!(dense.d(a, b), cached.d(a, b), "cold pass ({}, {})", a, b);
        }
    }
    // Re-query in the same order: rows may now come from cache (or have
    // been evicted by later rows of the first pass).
    for a in 0..n {
        for b in 0..n {
            prop_assert_eq!(dense.d(a, b), cached.d(a, b), "warm pass ({}, {})", a, b);
        }
    }
    // Reversed order maximizes eviction churn under a tiny capacity.
    for a in (0..n).rev() {
        for b in (0..n).rev() {
            prop_assert_eq!(dense.d(a, b), cached.d(a, b), "reverse pass ({}, {})", a, b);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense and row-cache tiers agree on random transit–stub topologies,
    /// at cache capacities from "one row per shard" up to "everything
    /// resident".
    #[test]
    fn tiers_agree_on_transit_stub(
        domains in 1usize..4,
        transit in 1usize..4,
        stubs in 1usize..3,
        hosts in 2usize..8,
        members in 2usize..14,
        cap_bytes in 64usize..(64 << 10),
        seed in 0u64..10_000,
    ) {
        let p = ts_params(domains, transit, stubs, hosts, 0.25);
        let mut rng = SimRng::seed_from(seed);
        let g = generate(&p, &mut rng);
        let m = pick_members(&g, members, &mut rng);
        assert_tiers_agree(&g, m, cap_bytes)?;
    }

    /// Same agreement on flat Waxman graphs (different latency
    /// distribution and degree structure than transit–stub).
    #[test]
    fn tiers_agree_on_waxman(
        nodes in 4usize..90,
        alpha in 0.05f64..0.7,
        beta in 0.1f64..0.6,
        members in 2usize..14,
        cap_bytes in 64usize..(64 << 10),
        seed in 0u64..10_000,
    ) {
        let p = WaxmanParams { nodes, alpha, beta, max_latency_ms: 120 };
        let mut rng = SimRng::seed_from(seed);
        let g = generate_waxman(&p, &mut rng);
        let m = pick_members(&g, members, &mut rng);
        assert_tiers_agree(&g, m, cap_bytes)?;
    }
}

/// Deterministic eviction regression: a capacity that can hold only one
/// row per shard must still answer identically to dense, and must
/// actually evict (the equivalence above would be vacuous if the tiny
/// caps never churned).
#[test]
fn tiny_cache_evicts_and_still_agrees() {
    let p = ts_params(2, 2, 2, 6, 0.3);
    let mut rng = SimRng::seed_from(77);
    let g = generate(&p, &mut rng);
    let members = pick_members(&g, 24, &mut rng);
    let n = members.len();
    let dense = LatencyOracle::try_build_with(&g, members.clone(), &OracleConfig::dense()).unwrap();
    // Row = 4n bytes; a 4n-byte-total budget over the default shard count
    // leaves each shard pinned at its single most recent row.
    let cached = LatencyOracle::try_build_with(&g, members, &OracleConfig::cached(4 * n)).unwrap();
    for pass in 0..3 {
        for a in 0..n {
            for b in 0..n {
                assert_eq!(dense.d(a, b), cached.d(a, b), "pass {pass} pair ({a}, {b})");
            }
        }
    }
    let stats = cached.cache_stats().expect("row-cache tier");
    assert!(stats.evictions > 0, "tiny cache never evicted: {stats:?}");
    assert!(
        stats.resident_bytes <= stats.capacity_bytes.max(4 * n * 16),
        "residency above budget: {stats:?}"
    );
}
