//! Embedding determinism and metric-structure property tests.
//!
//! The coordinate fit is the only floating-point-heavy construction in the
//! oracle stack, so its contract is pinned from the outside here:
//!
//! * **Bit determinism** — the same `(graph, members, config)` produces
//!   bit-identical coordinates, heights, and calibration on every build,
//!   including under rayon pools of different worker counts (the member
//!   fit is embarrassingly parallel by construction).
//! * **Metric structure** — the rounded `d(u,v)` keeps a zero diagonal,
//!   symmetry, and the triangle inequality on any topology, because the
//!   estimate is a norm plus non-negative heights and ceil-rounding
//!   preserves the inequality.
//! * **Escalation agreement** — `d_exact` answers match the dense tier
//!   exactly: the fallback band lands on true distances, not another
//!   approximation.

use prop_engine::SimRng;
use prop_netsim::{
    generate, EmbedConfig, EmbedOracle, LatencyOracle, OracleConfig, PhysGraph, PhysNodeId,
    TransitStubParams,
};
use proptest::test_runner::Config as ProptestConfig;
use proptest::{prop_assert, prop_assert_eq, proptest};

fn ts_params(domains: usize, transit: usize, stubs: usize, hosts: usize) -> TransitStubParams {
    TransitStubParams {
        transit_domains: domains,
        transit_nodes_per_domain: transit,
        stub_domains_per_transit: stubs,
        nodes_per_stub_domain: hosts,
        extra_domain_edge: 0.25,
        extra_transit_edge: 0.25,
        extra_stub_edge: 0.06,
        transit_transit_ms: 100,
        stub_transit_ms: 20,
        stub_stub_ms: 5,
    }
}

fn pick_members(g: &PhysGraph, want: usize, rng: &mut SimRng) -> Vec<PhysNodeId> {
    let stubs = g.stub_nodes();
    rng.sample_distinct(&stubs, want.clamp(2, stubs.len()))
}

fn small_embed_cfg(seed: u64) -> OracleConfig {
    OracleConfig {
        embed: EmbedConfig {
            landmarks: 12,
            landmark_rounds: 48,
            member_rounds: 12,
            calibration_sources: 6,
            calibration_targets: 32,
            seed,
            ..EmbedConfig::default()
        },
        ..OracleConfig::embedded()
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two independent builds over the same inputs are bit-identical —
    /// coordinates, heights, landmarks, calibration, and margin.
    #[test]
    fn same_inputs_same_bits(
        domains in 1usize..3,
        transit in 1usize..4,
        stubs in 1usize..3,
        hosts in 3usize..8,
        members in 4usize..24,
        topo_seed in 0u64..10_000,
        fit_seed in 0u64..10_000,
    ) {
        let p = ts_params(domains, transit, stubs, hosts);
        let mut rng = SimRng::seed_from(topo_seed);
        let g = generate(&p, &mut rng);
        let m = pick_members(&g, members, &mut rng);
        let cfg = small_embed_cfg(fit_seed);
        let a = EmbedOracle::try_build(&g, m.clone(), &cfg).expect("connected");
        let b = EmbedOracle::try_build(&g, m, &cfg).expect("connected");
        prop_assert_eq!(bits(a.coords()), bits(b.coords()));
        prop_assert_eq!(bits(a.heights()), bits(b.heights()));
        prop_assert_eq!(a.landmark_members(), b.landmark_members());
        prop_assert_eq!(a.calibration(), b.calibration());
        prop_assert_eq!(a.margin_per_term().to_bits(), b.margin_per_term().to_bits());
    }

    /// The rounded estimate is a metric: zero diagonal, symmetric, and
    /// triangle inequality over every sampled triple.
    #[test]
    fn rounded_estimate_is_a_metric(
        hosts in 3usize..8,
        members in 4usize..20,
        seed in 0u64..10_000,
    ) {
        let p = ts_params(2, 2, 2, hosts);
        let mut rng = SimRng::seed_from(seed);
        let g = generate(&p, &mut rng);
        let m = pick_members(&g, members, &mut rng);
        let n = m.len();
        let o = EmbedOracle::try_build(&g, m, &small_embed_cfg(seed)).expect("connected");
        for a in 0..n {
            prop_assert_eq!(o.d(a, a), 0);
            for b in 0..n {
                prop_assert_eq!(o.d(a, b), o.d(b, a), "symmetry ({}, {})", a, b);
                for c in 0..n {
                    prop_assert!(
                        o.d(a, c) <= o.d(a, b).saturating_add(o.d(b, c)),
                        "triangle ({}, {}, {})", a, b, c
                    );
                }
            }
        }
    }

    /// The escalation path answers with true distances: every `d_exact`
    /// equals the dense tier's answer over the same members.
    #[test]
    fn exact_fallback_matches_dense(
        hosts in 3usize..8,
        members in 4usize..16,
        seed in 0u64..10_000,
    ) {
        let p = ts_params(2, 2, 2, hosts);
        let mut rng = SimRng::seed_from(seed);
        let g = generate(&p, &mut rng);
        let m = pick_members(&g, members, &mut rng);
        let n = m.len();
        let dense = LatencyOracle::try_build_with(&g, m.clone(), &OracleConfig::dense())
            .expect("connected");
        let emb = EmbedOracle::try_build(&g, m, &small_embed_cfg(seed)).expect("connected");
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(emb.d_exact(a, b), dense.d(a, b), "pair ({}, {})", a, b);
            }
        }
    }
}

/// The fit must not depend on the rayon pool executing it: a worker-count
/// change reorders the parallel member fits, and every per-member fit is
/// independent, so the bits cannot move.
#[test]
fn coordinates_survive_any_worker_count() {
    let p = ts_params(2, 3, 2, 8);
    let mut rng = SimRng::seed_from(4242);
    let g = generate(&p, &mut rng);
    let members = pick_members(&g, 48, &mut rng);
    let cfg = small_embed_cfg(7);

    let reference = EmbedOracle::try_build(&g, members.clone(), &cfg).expect("connected");
    for workers in [1usize, 2, 7] {
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(workers).build().expect("rayon pool");
        let o = pool.install(|| EmbedOracle::try_build(&g, members.clone(), &cfg)).expect("build");
        assert_eq!(bits(o.coords()), bits(reference.coords()), "{workers} workers");
        assert_eq!(bits(o.heights()), bits(reference.heights()), "{workers} workers");
        assert_eq!(o.calibration(), reference.calibration(), "{workers} workers");
    }
}
