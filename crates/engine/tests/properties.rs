//! Model-based property tests for the simulation kernel.

use prop_engine::backoff::TrialOutcome;
use prop_engine::stats::Accumulator;
use prop_engine::{BinaryHeapEventQueue, Duration, EventQueue, MarkovTimer, SimRng, SimTime};
use proptest::prelude::{prop_oneof, Just, Strategy};
use proptest::test_runner::Config as ProptestConfig;
use proptest::{prop_assert, prop_assert_eq, proptest};

#[derive(Clone, Debug)]
enum QueueOp {
    Schedule(u64),
    Pop,
    PopUntil(u64),
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        (0u64..1000).prop_map(QueueOp::Schedule),
        Just(QueueOp::Pop),
        (0u64..1000).prop_map(QueueOp::PopUntil),
    ]
}

/// Differential op set for the wheel-vs-heap equivalence suite: adds
/// same-instant bursts (the FIFO tie-break stressor), multi-level delays
/// (crossing several wheel bytes), and ordered look-ahead reads.
#[derive(Clone, Debug)]
enum DiffOp {
    /// Schedule a single event `dt` after now.
    Schedule(u64),
    /// Schedule `count` events at the *same* instant, `dt` after now.
    Burst {
        dt: u64,
        count: u8,
    },
    Pop,
    PopUntil(u64),
    /// Compare `pending_until(now + dt, k)` on both queues.
    Lookahead {
        dt: u64,
        k: u8,
    },
}

fn diff_op() -> impl Strategy<Value = DiffOp> {
    prop_oneof![
        // Mixed magnitudes: sub-slot, one-level, and cascade-forcing delays
        // up to ~77 hours (wheel level 3).
        prop_oneof![0u64..256, 0u64..70_000, 0u64..300_000_000].prop_map(DiffOp::Schedule),
        (0u64..2_000, 1u8..20).prop_map(|(dt, count)| DiffOp::Burst { dt, count }),
        Just(DiffOp::Pop),
        (0u64..500_000).prop_map(DiffOp::PopUntil),
        (0u64..500_000, 0u8..32).prop_map(|(dt, k)| DiffOp::Lookahead { dt, k }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The heap-backed queue behaves exactly like a sorted-vec reference
    /// model with stable (time, insertion) ordering and a monotone clock.
    #[test]
    fn event_queue_matches_reference_model(ops in proptest::collection::vec(queue_op(), 1..120)) {
        let mut q: EventQueue<u32> = EventQueue::new();
        // Model: (time, seq, payload), popped by (time, seq).
        let mut model: Vec<(u64, u64, u32)> = Vec::new();
        let mut seq = 0u64;
        let mut payload = 0u32;
        let mut now = 0u64;

        for op in ops {
            match op {
                QueueOp::Schedule(dt) => {
                    // Schedule relative to now: always legal.
                    let at = now + dt;
                    q.schedule_at(SimTime(at), payload);
                    model.push((at, seq, payload));
                    seq += 1;
                    payload += 1;
                }
                QueueOp::Pop => {
                    let got = q.pop();
                    model.sort_by_key(|&(t, s, _)| (t, s));
                    let expect = if model.is_empty() { None } else { Some(model.remove(0)) };
                    match (got, expect) {
                        (None, None) => {}
                        (Some((t, v)), Some((mt, _, mv))) => {
                            prop_assert_eq!(t.0, mt);
                            prop_assert_eq!(v, mv);
                            now = mt;
                        }
                        other => prop_assert!(false, "mismatch: {other:?}"),
                    }
                }
                QueueOp::PopUntil(dt) => {
                    let deadline = now + dt;
                    let got = q.pop_until(SimTime(deadline));
                    model.sort_by_key(|&(t, s, _)| (t, s));
                    let expect = match model.first() {
                        Some(&(t, _, _)) if t <= deadline => Some(model.remove(0)),
                        _ => None,
                    };
                    match (got, expect) {
                        (None, None) => {}
                        (Some((t, v)), Some((mt, _, mv))) => {
                            prop_assert_eq!(t.0, mt);
                            prop_assert_eq!(v, mv);
                            now = mt;
                        }
                        other => prop_assert!(false, "mismatch: {other:?}"),
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.now().0, now);
        }
    }

    /// The timer wheel pops **bit-identically** to the retained BinaryHeap
    /// reference across arbitrary schedules: same (time, payload) trace,
    /// same clock, same length — including same-instant bursts (FIFO
    /// tie-break), cascade-forcing multi-level delays, `pop_until`
    /// deadlines, and the ordered `pending_until` look-ahead. This is the
    /// equivalence proof that let the drivers swap queues without
    /// revalidating any simulation output.
    #[test]
    fn timer_wheel_matches_heap_reference(ops in proptest::collection::vec(diff_op(), 1..200)) {
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut heap: BinaryHeapEventQueue<u32> = BinaryHeapEventQueue::new();
        let mut payload = 0u32;

        for op in ops {
            match op {
                DiffOp::Schedule(dt) => {
                    let at = SimTime(wheel.now().0 + dt);
                    wheel.schedule_at(at, payload);
                    heap.schedule_at(at, payload);
                    payload += 1;
                }
                DiffOp::Burst { dt, count } => {
                    let at = SimTime(wheel.now().0 + dt);
                    for _ in 0..count {
                        wheel.schedule_at(at, payload);
                        heap.schedule_at(at, payload);
                        payload += 1;
                    }
                }
                DiffOp::Pop => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    prop_assert_eq!(wheel.pop(), heap.pop());
                }
                DiffOp::PopUntil(dt) => {
                    let deadline = SimTime(wheel.now().0 + dt);
                    prop_assert_eq!(wheel.pop_until(deadline), heap.pop_until(deadline));
                }
                DiffOp::Lookahead { dt, k } => {
                    let deadline = SimTime(wheel.now().0 + dt);
                    let w: Vec<(SimTime, u32)> = wheel
                        .pending_until(deadline, k as usize)
                        .into_iter()
                        .map(|(t, &e)| (t, e))
                        .collect();
                    let h: Vec<(SimTime, u32)> = heap
                        .pending_until(deadline, k as usize)
                        .into_iter()
                        .map(|(t, &e)| (t, e))
                        .collect();
                    prop_assert_eq!(w, h);
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.now(), heap.now());
        }

        // Drain both to the end: every remaining event pops identically.
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }

    /// Schedule-during-pop: a driver-shaped run (every pop reschedules the
    /// popped peer with a backoff-lattice delay, occasionally bursting) pops
    /// identically on both queues. This is the same-seed old-vs-new-queue
    /// regression at the layer where the old queue still exists.
    #[test]
    fn driver_shaped_run_is_identical_on_both_queues(seed in 0u64..u64::MAX, peers in 2u32..40) {
        let mut rng = SimRng::seed_from(seed);
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut heap: BinaryHeapEventQueue<u32> = BinaryHeapEventQueue::new();
        // Initial offsets mimic the drivers' staggered init timers.
        for p in 0..peers {
            let at = SimTime(rng.range(0u64..60_000));
            wheel.schedule_at(at, p);
            heap.schedule_at(at, p);
        }
        // The paper's probe intervals: 2^k minutes, k ≤ 5.
        let lattice: Vec<u64> = (0..6).map(|k| 60_000u64 << k).collect();
        for step in 0..400 {
            if step % 7 == 3 {
                // Interleave a deadline-bounded pop, as run_until does.
                let deadline = SimTime(wheel.now().0 + rng.range(0u64..120_000));
                let (w, h) = (wheel.pop_until(deadline), heap.pop_until(deadline));
                prop_assert_eq!(w, h);
                continue;
            }
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            let Some((t, p)) = w else { break };
            let delay = Duration(*rng.pick(&lattice).unwrap());
            wheel.schedule_at(t + delay, p);
            heap.schedule_at(t + delay, p);
            if rng.chance(0.1) {
                // Same-instant companion event (extra probe after churn).
                wheel.schedule_at(t + delay, p + 1000);
                heap.schedule_at(t + delay, p + 1000);
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.now(), heap.now());
        }
    }

    /// The Markov timer's interval is always `2^k · INIT` with `k ≤ 5`,
    /// resets on success, and wraps after five consecutive doublings.
    #[test]
    fn markov_timer_stays_on_the_lattice(outcomes in proptest::collection::vec(proptest::bool::ANY, 1..200)) {
        let init = Duration::from_secs(30);
        let mut t = MarkovTimer::new(init);
        for ok in outcomes {
            t.record(if ok { TrialOutcome::Exchanged } else { TrialOutcome::NoGain });
            let ratio = t.current().as_millis() / init.as_millis();
            prop_assert!(t.current().as_millis() % init.as_millis() == 0);
            prop_assert!([1, 2, 4, 8, 16, 32].contains(&ratio), "ratio {ratio}");
            if ok {
                prop_assert_eq!(t.current(), init);
            }
        }
    }

    /// Welford accumulator agrees with direct two-pass computation and is
    /// merge-order independent.
    #[test]
    fn accumulator_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 1..300), split in 0usize..300) {
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.add(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        let scale = 1.0 + mean.abs() + var.abs();
        prop_assert!((acc.mean() - mean).abs() / scale < 1e-9);
        prop_assert!((acc.variance() - var).abs() / scale.powi(2).max(scale) < 1e-6);

        // Split-merge agrees with sequential.
        let k = split.min(xs.len());
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..k] {
            left.add(x);
        }
        for &x in &xs[k..] {
            right.add(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), acc.count());
        prop_assert!((left.mean() - acc.mean()).abs() / scale < 1e-9);
    }

    /// Fork streams are stable (same label ⇒ same stream) and independent
    /// of sibling draws.
    #[test]
    fn rng_forks_are_stable(seed in 0u64..u64::MAX, label in "[a-z]{1,12}") {
        let root = SimRng::seed_from(seed);
        let mut a = root.fork(&label);
        // Interleave unrelated forks/draws — must not perturb `b`.
        let mut noise = root.fork("noise");
        let _ = noise.range(0..u64::MAX);
        let mut b = root.fork(&label);
        for _ in 0..8 {
            prop_assert_eq!(a.range(0..u64::MAX), b.range(0..u64::MAX));
        }
    }

    /// sample_distinct returns distinct in-range elements.
    #[test]
    fn sample_distinct_properties(seed in 0u64..u64::MAX, n in 1usize..100, k in 0usize..120) {
        let mut rng = SimRng::seed_from(seed);
        let xs: Vec<usize> = (0..n).collect();
        let s = rng.sample_distinct(&xs, k);
        prop_assert_eq!(s.len(), k.min(n));
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), s.len(), "duplicates in sample");
        for v in s {
            prop_assert!(v < n);
        }
    }
}
