//! Simulated time.
//!
//! The paper works in two time scales: link latencies of a few to a few
//! hundred *milliseconds*, and probe timers of *minutes* (`INIT_TIMER` is one
//! minute, `MAX_TIMER` is 2⁵ minutes). A `u64` millisecond counter covers
//! both with ~585 million years of headroom, and — unlike `f64` seconds —
//! makes event ordering exact and platform-independent.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An instant on the simulated clock, in milliseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Milliseconds since the epoch.
    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    #[inline]
    pub fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional minutes since the epoch — the unit of the paper's x-axes.
    #[inline]
    pub fn as_minutes_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Elapsed time since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Index of the `width`-wide time bucket containing this instant.
    /// Buckets tile the clock as half-open intervals
    /// `[k·width, (k+1)·width)`; generators that derive one RNG stream per
    /// bucket (`SimRng::fork_indexed`) use this so event generation is a
    /// pure function of the bucket, independent of worker count or
    /// generation order.
    #[inline]
    pub fn bucket(self, width: Duration) -> u64 {
        debug_assert!(width.0 > 0, "bucket width must be positive");
        self.0 / width.0.max(1)
    }

    /// Start of bucket `index` under `width`-wide tiling (inverse of
    /// [`SimTime::bucket`] at bucket boundaries).
    #[inline]
    pub fn bucket_start(index: u64, width: Duration) -> SimTime {
        SimTime(index.saturating_mul(width.0))
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);

    /// Build a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms)
    }

    /// Build a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1000)
    }

    /// Build a duration from whole minutes (the paper's timer unit).
    #[inline]
    pub const fn from_minutes(m: u64) -> Duration {
        Duration(m * 60_000)
    }

    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Saturating doubling — used by the Markov backoff timer.
    #[inline]
    pub fn double(self) -> Duration {
        Duration(self.0.saturating_mul(2))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

/// Milliseconds of overlap between the half-open window `[start, end)` and
/// the elapsed interval `[ZERO, upto)` — the building block for accounting
/// how long a scheduled condition (a partition, a crash) has been active as
/// of `upto`. Degenerate windows (`end <= start`) overlap nothing.
#[inline]
pub fn window_overlap_ms(start: SimTime, end: SimTime, upto: SimTime) -> u64 {
    let end = end.0.min(upto.0);
    end.saturating_sub(start.0)
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}min", self.as_minutes_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Duration::from_secs(2), Duration::from_millis(2000));
        assert_eq!(Duration::from_minutes(1), Duration::from_secs(60));
    }

    #[test]
    fn advancing_the_clock() {
        let mut t = SimTime::ZERO;
        t += Duration::from_secs(1);
        assert_eq!(t.as_millis(), 1000);
        let t2 = t + Duration::from_minutes(1);
        assert_eq!(t2 - t, Duration::from_minutes(1));
        assert_eq!(t2.as_secs(), 61);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime(10);
        let late = SimTime(50);
        assert_eq!(late.since(early), Duration(40));
        assert_eq!(early.since(late), Duration::ZERO);
    }

    #[test]
    fn doubling_saturates() {
        assert_eq!(Duration(3).double(), Duration(6));
        assert_eq!(Duration(u64::MAX).double(), Duration(u64::MAX));
    }

    #[test]
    fn minutes_axis_conversion() {
        let t = SimTime::ZERO + Duration::from_secs(90);
        assert!((t.as_minutes_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime(5) < SimTime(6));
        assert!(Duration(100) > Duration(99));
    }

    #[test]
    fn buckets_tile_the_clock_half_open() {
        let w = Duration::from_minutes(5);
        assert_eq!(SimTime::ZERO.bucket(w), 0);
        assert_eq!(SimTime(w.0 - 1).bucket(w), 0);
        assert_eq!(SimTime(w.0).bucket(w), 1);
        assert_eq!(SimTime::bucket_start(3, w), SimTime(3 * w.0));
        assert_eq!(SimTime::bucket_start(3, w).bucket(w), 3);
    }

    #[test]
    fn window_overlap_cases() {
        // Fully elapsed window.
        assert_eq!(window_overlap_ms(SimTime(10), SimTime(30), SimTime(100)), 20);
        // Still-open window: counts only up to `upto`.
        assert_eq!(window_overlap_ms(SimTime(10), SimTime(30), SimTime(20)), 10);
        // Not yet started.
        assert_eq!(window_overlap_ms(SimTime(50), SimTime(60), SimTime(20)), 0);
        // Degenerate window.
        assert_eq!(window_overlap_ms(SimTime(30), SimTime(30), SimTime(100)), 0);
    }
}
