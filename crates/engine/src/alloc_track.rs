//! Heap-allocation accounting for perf proofs.
//!
//! The drivers claim **zero heap allocations per steady-state Walk-mode
//! trial** (DESIGN §16). That claim is only worth committing if a test can
//! falsify it, so this module provides a [`CountingAllocator`]: a
//! pass-through wrapper over the [`System`] allocator that counts every
//! `alloc`/`realloc` call in a process-global atomic.
//!
//! A binary (or integration-test binary — `#[global_allocator]` is
//! per-binary) opts in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: prop_engine::CountingAllocator = prop_engine::CountingAllocator;
//! ```
//!
//! [`allocation_count`] then reads the running total, and a window's
//! allocations are `after - before`. In a binary that did *not* install the
//! allocator the counter never moves; [`counting_active`] distinguishes the
//! two so metric producers (the `perf` binary's `allocs_per_trial` field)
//! can report "not measured" instead of a vacuous zero.
//!
//! Deallocations are deliberately not tracked: the regression target is
//! "the hot path never enters the allocator", and `alloc + realloc` is the
//! precise count of such entries that can grow memory.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]` wrapper over [`System`] that counts every
/// allocator entry (`alloc`, `alloc_zeroed`, `realloc`).
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Total allocator entries since process start, as counted by
/// [`CountingAllocator`]. Stays at 0 forever if the allocator was never
/// installed as `#[global_allocator]`.
#[inline]
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Is the counting allocator actually installed in this binary? Probes by
/// performing one boxed allocation and checking whether the counter moved.
pub fn counting_active() -> bool {
    let before = allocation_count();
    let probe = Box::new(0u64);
    std::hint::black_box(&probe);
    drop(probe);
    allocation_count() > before
}

#[cfg(test)]
mod tests {
    use super::*;

    // The engine's own unit-test binary does not install the allocator, so
    // only the passive behaviors are testable here; the armed path is
    // exercised by prop-core's alloc_regression integration test.
    #[test]
    fn inactive_binary_reports_inactive() {
        assert!(!counting_active());
        assert_eq!(allocation_count(), 0);
    }
}
