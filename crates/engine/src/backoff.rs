//! The paper's probe-interval controller (§3.2).
//!
//! Each peer contacts a random node every `timer` interval. The interval
//! follows a Markov-chain-inspired rule:
//!
//! * after a **failed** peer-exchange attempt the timer **doubles**;
//! * after a **successful** exchange it resets to `INIT_TIMER`;
//! * once it would exceed `MAX_TIMER = 2⁵ · INIT_TIMER` it also resets to
//!   `INIT_TIMER` (the paper: "there are at most five times of suspending");
//! * on **churn** (a neighbor departed or a new one arrived) it resets to
//!   `INIT_TIMER` so the peer re-optimizes promptly.
//!
//! The net effect: a stable, well-placed peer probes exponentially less
//! often, while the cycle through `MAX_TIMER` guarantees it never stops
//! probing entirely.

use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// Outcome of one probe trial, as seen by the timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrialOutcome {
    /// The peer-exchange happened (`Var > MIN_VAR`).
    Exchanged,
    /// The trial completed but no beneficial exchange was found.
    NoGain,
}

/// The exponential-backoff probe timer.
///
/// ```
/// use prop_engine::{MarkovTimer, Duration};
/// use prop_engine::backoff::TrialOutcome;
///
/// let mut t = MarkovTimer::new(Duration::from_minutes(1));
/// t.record(TrialOutcome::NoGain);
/// t.record(TrialOutcome::NoGain);
/// assert_eq!(t.current(), Duration::from_minutes(4)); // doubled twice
/// t.record(TrialOutcome::Exchanged);
/// assert_eq!(t.current(), Duration::from_minutes(1)); // reset on success
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MarkovTimer {
    init: Duration,
    max: Duration,
    current: Duration,
    consecutive_failures: u32,
}

impl MarkovTimer {
    /// Maximum timer as a multiple of the initial timer: `2⁵` per the paper
    /// ("MAX_TIMER = 2⁵ · INIT_TIMER").
    pub const MAX_FACTOR: u64 = 32;

    /// A timer with the paper's default relationship `max = 32 · init`.
    pub fn new(init: Duration) -> Self {
        Self::with_max(init, Duration(init.0.saturating_mul(Self::MAX_FACTOR)))
    }

    /// A timer with an explicit ceiling (must be ≥ `init`).
    pub fn with_max(init: Duration, max: Duration) -> Self {
        assert!(init > Duration::ZERO, "INIT_TIMER must be positive");
        assert!(max >= init, "MAX_TIMER must be ≥ INIT_TIMER");
        MarkovTimer { init, max, current: init, consecutive_failures: 0 }
    }

    /// The interval to wait before the *next* probe.
    #[inline]
    pub fn current(&self) -> Duration {
        self.current
    }

    /// Number of failed trials since the last reset.
    #[inline]
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Record a trial outcome and update the interval.
    pub fn record(&mut self, outcome: TrialOutcome) {
        match outcome {
            TrialOutcome::Exchanged => self.reset(),
            TrialOutcome::NoGain => {
                self.consecutive_failures += 1;
                let doubled = self.current.double();
                // "if Timer ≥ MAX_TIMER, it will also be set as INIT_TIMER"
                if doubled > self.max {
                    self.reset_interval_only();
                } else {
                    self.current = doubled;
                }
            }
        }
    }

    /// Reset on success or churn: interval back to `INIT_TIMER`.
    pub fn reset(&mut self) {
        self.current = self.init;
        self.consecutive_failures = 0;
    }

    fn reset_interval_only(&mut self) {
        self.current = self.init;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minutes(m: u64) -> Duration {
        Duration::from_minutes(m)
    }

    #[test]
    fn doubles_on_failure() {
        let mut t = MarkovTimer::new(minutes(1));
        assert_eq!(t.current(), minutes(1));
        t.record(TrialOutcome::NoGain);
        assert_eq!(t.current(), minutes(2));
        t.record(TrialOutcome::NoGain);
        assert_eq!(t.current(), minutes(4));
    }

    #[test]
    fn resets_on_success() {
        let mut t = MarkovTimer::new(minutes(1));
        for _ in 0..3 {
            t.record(TrialOutcome::NoGain);
        }
        assert_eq!(t.current(), minutes(8));
        t.record(TrialOutcome::Exchanged);
        assert_eq!(t.current(), minutes(1));
        assert_eq!(t.consecutive_failures(), 0);
    }

    #[test]
    fn wraps_at_max_after_five_suspensions() {
        // init=1min, max=32min: intervals go 1,2,4,8,16,32 then wrap to 1.
        let mut t = MarkovTimer::new(minutes(1));
        let mut seen = vec![t.current().as_millis() / 60_000];
        for _ in 0..6 {
            t.record(TrialOutcome::NoGain);
            seen.push(t.current().as_millis() / 60_000);
        }
        assert_eq!(seen, vec![1, 2, 4, 8, 16, 32, 1]);
    }

    #[test]
    fn failure_count_survives_wrap() {
        let mut t = MarkovTimer::new(minutes(1));
        for _ in 0..7 {
            t.record(TrialOutcome::NoGain);
        }
        assert_eq!(t.consecutive_failures(), 7);
    }

    #[test]
    fn churn_reset_clears_everything() {
        let mut t = MarkovTimer::new(minutes(1));
        t.record(TrialOutcome::NoGain);
        t.record(TrialOutcome::NoGain);
        t.reset();
        assert_eq!(t.current(), minutes(1));
        assert_eq!(t.consecutive_failures(), 0);
    }

    #[test]
    fn custom_ceiling_respected() {
        let mut t = MarkovTimer::with_max(minutes(1), minutes(4));
        t.record(TrialOutcome::NoGain); // 2
        t.record(TrialOutcome::NoGain); // 4
        assert_eq!(t.current(), minutes(4));
        t.record(TrialOutcome::NoGain); // would be 8 > 4 ⇒ wrap
        assert_eq!(t.current(), minutes(1));
    }

    #[test]
    #[should_panic(expected = "INIT_TIMER must be positive")]
    fn zero_init_rejected() {
        let _ = MarkovTimer::new(Duration::ZERO);
    }
}
