//! Deterministic randomness.
//!
//! Every stochastic choice in the reproduction — topology generation, overlay
//! wiring, probe walks, workload sampling — draws from a [`SimRng`]. A run is
//! fully determined by one `u64` experiment seed; independent subsystems get
//! *derived streams* (`fork`) so adding randomness to one subsystem never
//! shifts the stream consumed by another. ChaCha8 is used because its output
//! is specified (stable across rand versions and platforms) and fast enough
//! that RNG cost never shows in profiles of these simulations.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A seedable, forkable random stream.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// A root stream for an experiment seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { inner: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Derive an independent stream for a named subsystem.
    ///
    /// The label participates in the derivation, so
    /// `rng.fork("overlay") != rng.fork("workload")` even when called on
    /// clones of the same parent, and forking does **not** advance the
    /// parent's stream.
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent's seed-word stream
        // position. Cheap, stable, and collision-resistant enough for a
        // handful of subsystem labels.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut child = self.inner.clone();
        let salt: u64 = {
            // Use the *current* state deterministically without advancing
            // self: clone, draw one word.
            child.gen()
        };
        SimRng { inner: ChaCha8Rng::seed_from_u64(h ^ salt.rotate_left(17)) }
    }

    /// Derive an independent stream for an indexed entity (peer, trial, …).
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        let mut child = self.fork(label);
        let salt: u64 = child.inner.gen();
        SimRng { inner: ChaCha8Rng::seed_from_u64(salt ^ index.wrapping_mul(0x9e3779b97f4a7c15)) }
    }

    /// Uniform sample from a range (empty ranges panic, as in `rand`).
    #[inline]
    pub fn range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.inner.gen_range(range)
    }

    /// A uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Uniformly pick an element of a slice. `None` on an empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        xs.choose(&mut self.inner)
    }

    /// Uniformly pick an index into a collection of length `len`.
    #[inline]
    pub fn pick_index(&mut self, len: usize) -> Option<usize> {
        (len > 0).then(|| self.inner.gen_range(0..len))
    }

    /// Uniformly pick a *rank* in `0..len`, consuming the stream exactly as
    /// [`SimRng::pick`] does on a slice of length `len`.
    ///
    /// `rand 0.8`'s `SliceRandom::choose` draws a `u32` range when the slice
    /// fits in one (it always does here), which is a *different* stream than
    /// `pick_index`'s `usize` draw. Callers replacing a materialized
    /// `collect() + pick(&v)` with an index structure (the drivers'
    /// live-slot rank select, DESIGN §16) must use this helper to keep the
    /// run bit-identical to the allocating form.
    #[inline]
    pub fn pick_rank(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            return None;
        }
        Some(if len <= u32::MAX as usize {
            self.inner.gen_range(0..len as u32) as usize
        } else {
            self.inner.gen_range(0..len)
        })
    }

    /// Fisher–Yates shuffle in place.
    #[inline]
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        xs.shuffle(&mut self.inner);
    }

    /// Sample `k` distinct elements (by value) without replacement.
    /// Returns fewer than `k` if the slice is shorter than `k`.
    pub fn sample_distinct<T: Copy>(&mut self, xs: &[T], k: usize) -> Vec<T> {
        let k = k.min(xs.len());
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        // Partial Fisher–Yates: only the first k positions need settling.
        for i in 0..k {
            let j = self.inner.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..k].iter().map(|&i| xs[i]).collect()
    }

    /// Exponentially distributed duration with the given mean, in
    /// milliseconds — used for Poisson churn inter-arrival times.
    pub fn exp_millis(&mut self, mean_ms: f64) -> u64 {
        let u = 1.0 - self.unit(); // in (0, 1]
        (-mean_ms * u.ln()).round().max(0.0) as u64
    }

    /// Access the underlying `RngCore` for interop with `rand` APIs.
    #[inline]
    pub fn raw(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.range(0u64..1_000_000), b.range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let va: Vec<u64> = (0..16).map(|_| a.range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let root = SimRng::seed_from(42);
        let mut x1 = root.fork("overlay");
        let mut x2 = root.fork("overlay");
        let mut y = root.fork("workload");
        let a: u64 = x1.range(0..u64::MAX);
        assert_eq!(a, x2.range(0..u64::MAX), "same label ⇒ same stream");
        assert_ne!(a, y.range(0..u64::MAX), "different label ⇒ different stream");
    }

    #[test]
    fn fork_does_not_advance_parent() {
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        let _ = a.fork("x");
        let _ = a.fork_indexed("y", 3);
        assert_eq!(a.range(0u64..u64::MAX), b.range(0u64..u64::MAX));
    }

    #[test]
    fn indexed_forks_differ() {
        let root = SimRng::seed_from(5);
        let mut f0 = root.fork_indexed("peer", 0);
        let mut f1 = root.fork_indexed("peer", 1);
        assert_ne!(f0.range(0..u64::MAX), f1.range(0..u64::MAX));
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let mut rng = SimRng::seed_from(11);
        let xs: Vec<u32> = (0..50).collect();
        let s = rng.sample_distinct(&xs, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
    }

    #[test]
    fn sample_distinct_truncates_to_population() {
        let mut rng = SimRng::seed_from(11);
        let xs = [1, 2, 3];
        let s = rng.sample_distinct(&xs, 10);
        let mut s = s;
        s.sort_unstable();
        assert_eq!(s, vec![1, 2, 3]);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.1));
    }

    #[test]
    fn exp_millis_mean_roughly_right() {
        let mut rng = SimRng::seed_from(13);
        let n = 20_000;
        let mean = 500.0;
        let total: u64 = (0..n).map(|_| rng.exp_millis(mean)).sum();
        let observed = total as f64 / n as f64;
        assert!((observed - mean).abs() < mean * 0.05, "observed {observed}");
    }

    #[test]
    fn pick_empty_is_none() {
        let mut rng = SimRng::seed_from(1);
        let empty: [u8; 0] = [];
        assert!(rng.pick(&empty).is_none());
        assert!(rng.pick_index(0).is_none());
        assert!(rng.pick_rank(0).is_none());
    }

    #[test]
    fn pick_rank_consumes_identically_to_pick() {
        // The whole point of pick_rank: same state + same length ⇒ the same
        // element `pick` would have chosen, and the streams stay in lockstep
        // afterwards.
        for len in [1usize, 2, 3, 7, 100, 4096] {
            let xs: Vec<usize> = (0..len).collect();
            let mut a = SimRng::seed_from(17 ^ len as u64);
            let mut b = a.clone();
            for _ in 0..50 {
                let picked = *a.pick(&xs).unwrap();
                let rank = b.pick_rank(len).unwrap();
                assert_eq!(picked, rank, "len {len}");
            }
            assert_eq!(a.range(0u64..u64::MAX), b.range(0u64..u64::MAX), "streams diverged");
        }
    }
}
