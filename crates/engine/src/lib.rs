//! # prop-engine — discrete-event simulation substrate
//!
//! The PROP protocols are *asynchronous*: every peer runs its own probe timer
//! with Markov-style exponential backoff, churn arrives as a Poisson process,
//! and the paper's evaluation plots metrics against wall-clock simulation
//! time. This crate provides the minimal, deterministic kernel all of that
//! runs on:
//!
//! * [`SimTime`] / [`Duration`] — a millisecond-granularity simulated clock.
//! * [`EventQueue`] — a stable (FIFO within a timestamp) pending-event set:
//!   a hierarchical timer wheel with amortized O(1) schedule/pop and a
//!   bounded ordered look-ahead ([`EventQueue::pending_until`]). The
//!   pre-wheel heap survives as [`BinaryHeapEventQueue`], the reference
//!   oracle the equivalence proptests pop against.
//! * [`SimRng`] — seedable, stream-splittable ChaCha8 randomness so every
//!   experiment is reproducible bit-for-bit.
//! * [`MarkovTimer`] — the paper's §3.2 probe-interval controller (double on
//!   failure, reset on success or on exceeding `MAX_TIMER`).
//! * [`stats`] — small online statistics helpers shared by the metrics and
//!   experiment crates.
//! * [`alloc_track`] — an opt-in counting global allocator so perf claims
//!   ("zero allocations per steady-state trial") are testable, not folklore.
//!
//! The kernel is intentionally *pull-based*: the simulation driver pops
//! `(time, event)` pairs and dispatches them itself. This keeps the kernel
//! free of trait objects and borrows, which matters because handlers need
//! `&mut` access to large shared state (the overlay, the latency oracle).

pub mod alloc_track;
pub mod backoff;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use alloc_track::{allocation_count, counting_active, CountingAllocator};
pub use backoff::MarkovTimer;
pub use queue::{BinaryHeapEventQueue, EventQueue};
pub use rng::SimRng;
pub use time::{window_overlap_ms, Duration, SimTime};
