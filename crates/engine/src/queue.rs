//! The pending-event set.
//!
//! [`EventQueue`] is a deterministic **hierarchical timer wheel** (a bucketed
//! calendar queue): 8 levels × 256 slots, one level per byte of the `u64`
//! millisecond clock. Scheduling and popping are amortized O(1) — the costs
//! that made the previous `BinaryHeap` calendar the drivers' wall at million
//! scale (O(log n) per op, plus an O(n) full-heap scan for trial prefetch)
//! are gone. Two details matter for reproducibility, and both are preserved
//! bit-for-bit from the heap implementation (which survives below as
//! [`BinaryHeapEventQueue`], the reference oracle for the differential
//! proptests in `tests/properties.rs`):
//!
//! 1. **Stable ordering.** Events pop in `(time, seq)` order, where `seq` is
//!    a monotonically increasing sequence number: same-instant events pop in
//!    the order they were scheduled (FIFO). The wheel keeps this invariant
//!    structurally — buckets are FIFO lists, a cascade drains its source
//!    bucket front-to-back (so every child bucket receives a seq-increasing
//!    subsequence), and a direct placement into some bucket always carries a
//!    larger seq than anything a later cascade could add in front of it,
//!    because cascades into that bucket's window happen *before* the cursor
//!    enters the window and direct placements only after.
//! 2. **Monotonic clock.** Popping an event advances the queue's notion of
//!    `now`; scheduling strictly in the past is a logic error and panics in
//!    debug builds (it is clamped to `now` in release builds).
//!
//! ## Layout
//!
//! An event at absolute time `t` lives at level `l` = the index of the
//! most-significant byte in which `t` differs from the cursor (`now`), in
//! slot `(t >> 8l) & 0xff`. Level-0 buckets are time-homogeneous (every
//! entry shares one exact millisecond); higher-level buckets cover windows
//! of `256^l` ms. When a pop finds level 0 empty it *cascades* the
//! lowest-level first-occupied bucket: its entries re-distribute strictly
//! downward (their shared high bytes become the new sub-cursor), so each
//! event cascades at most 7 times over its whole life.
//!
//! Entries live in a slab (`Vec` + intrusive free list) and buckets are
//! intrusive singly-linked lists, so steady-state churn — pop an event,
//! schedule its successor — touches no allocator at all once the slab has
//! reached its high-water mark. That property is load-bearing for the
//! zero-alloc-per-trial driver guarantee (see `prop-core`'s
//! `alloc_regression` test) and holds regardless of *which* buckets are in
//! use, unlike a per-bucket `VecDeque` design where an idle bucket's first
//! touch allocates.

use crate::time::{Duration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const LEVELS: usize = 8;
const SLOTS: usize = 256;
const SLOT_MASK: u64 = 0xff;
const BUCKETS: usize = LEVELS * SLOTS;
const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Key {
    time: SimTime,
    seq: u64,
}

/// Bucket index for time `t` relative to `cursor`: the level is the
/// most-significant differing byte, the slot is `t`'s byte at that level.
/// `t == cursor` lands at level 0 (slot = low byte).
#[inline]
fn bucket_of(cursor: u64, t: u64) -> usize {
    let diff = cursor ^ t;
    if diff == 0 {
        (t & SLOT_MASK) as usize
    } else {
        let level = (63 - diff.leading_zeros() as usize) / 8;
        let slot = ((t >> (8 * level)) & SLOT_MASK) as usize;
        level * SLOTS + slot
    }
}

struct Node<E> {
    key: Key,
    /// `Some` while pending; `None` marks a slab slot on the free list.
    event: Option<E>,
    next: u32,
}

/// A deterministic pending-event set: a hierarchical timer wheel keyed by
/// `(time, seq)`.
///
/// ```
/// use prop_engine::{EventQueue, SimTime, Duration};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime(25), "later");
/// q.schedule_at(SimTime(10), "sooner");
/// assert_eq!(q.pop(), Some((SimTime(10), "sooner")));
/// // The clock advanced; relative scheduling is now anchored at t = 10.
/// q.schedule_in(Duration::from_millis(5), "relative");
/// assert_eq!(q.pop(), Some((SimTime(15), "relative")));
/// assert_eq!(q.pop(), Some((SimTime(25), "later")));
/// ```
pub struct EventQueue<E> {
    nodes: Vec<Node<E>>,
    /// Head of the slab free list (`NIL` when the slab is full).
    free: u32,
    head: Box<[u32; BUCKETS]>,
    tail: Box<[u32; BUCKETS]>,
    /// One bit per bucket: 4 words × 64 bits = 256 slots per level.
    occupancy: [[u64; 4]; LEVELS],
    len: usize,
    now: SimTime,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            nodes: Vec::new(),
            free: NIL,
            head: Box::new([NIL; BUCKETS]),
            tail: Box::new([NIL; BUCKETS]),
            occupancy: [[0; 4]; LEVELS],
            len: 0,
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// The current simulated instant — the timestamp of the last popped
    /// event, or `t = 0` if nothing has been popped yet.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn set_occupied(&mut self, bucket: usize) {
        self.occupancy[bucket >> 8][(bucket & 255) >> 6] |= 1 << (bucket & 63);
    }

    #[inline]
    fn clear_occupied(&mut self, bucket: usize) {
        self.occupancy[bucket >> 8][(bucket & 255) >> 6] &= !(1 << (bucket & 63));
    }

    /// Smallest occupied slot at `level`, if any.
    #[inline]
    fn first_occupied(&self, level: usize) -> Option<usize> {
        for (w, &bits) in self.occupancy[level].iter().enumerate() {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Lowest occupied (level, slot) above level 0.
    fn first_occupied_high(&self) -> Option<(usize, usize)> {
        (1..LEVELS).find_map(|l| self.first_occupied(l).map(|s| (l, s)))
    }

    fn alloc_node(&mut self, key: Key, event: E) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            node.key = key;
            node.event = Some(event);
            node.next = NIL;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx != NIL, "event queue slab overflow");
            self.nodes.push(Node { key, event: Some(event), next: NIL });
            idx
        }
    }

    /// Append node `idx` at the tail of `bucket` (FIFO).
    fn link(&mut self, bucket: usize, idx: u32) {
        self.nodes[idx as usize].next = NIL;
        if self.head[bucket] == NIL {
            self.head[bucket] = idx;
            self.set_occupied(bucket);
        } else {
            let tail = self.tail[bucket];
            self.nodes[tail as usize].next = idx;
        }
        self.tail[bucket] = idx;
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error: panics in debug builds, clamps to `now` in release.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {at:?} < {:?}", self.now);
        let at = at.max(self.now);
        let key = Key { time: at, seq: self.next_seq };
        self.next_seq += 1;
        let idx = self.alloc_node(key, event);
        self.link(bucket_of(self.now.0, at.0), idx);
        self.len += 1;
    }

    /// Schedule `event` a relative `delay` after `now`.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the next event without popping it.
    ///
    /// O(1) when level 0 is occupied (the common steady-state case);
    /// otherwise a scan of the single lowest-window bucket, whose entries
    /// the very next `pop` cascades anyway — amortized O(1) per pop.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(slot) = self.first_occupied(0) {
            let idx = self.head[slot];
            return Some(self.nodes[idx as usize].key.time);
        }
        let (level, slot) = self.first_occupied_high().expect("non-empty queue has a bucket");
        let mut idx = self.head[level * SLOTS + slot];
        let mut min = u64::MAX;
        while idx != NIL {
            let node = &self.nodes[idx as usize];
            min = min.min(node.key.time.0);
            idx = node.next;
        }
        Some(SimTime(min))
    }

    /// Non-destructive view of every pending event, in **unspecified**
    /// order (the slab's internal layout). For look-ahead that is
    /// insensitive to ordering — not for dispatch. Prefer
    /// [`EventQueue::pending_until`] when order or bounded work matters.
    pub fn pending(&self) -> impl Iterator<Item = (SimTime, &E)> + '_ {
        self.nodes.iter().filter_map(|n| n.event.as_ref().map(|e| (n.key.time, e)))
    }

    /// The next `k` pending events with `time <= deadline`, in exact
    /// `(time, seq)` pop order, without popping anything.
    ///
    /// This is the bounded look-ahead the drivers use for trial prefetch:
    /// O(k) plus the cost of ordering at most one coarse bucket, instead of
    /// scanning the entire pending set. Level-0 buckets are already exact
    /// (one instant, FIFO by seq); a higher-level bucket covers a window
    /// disjoint from — and strictly earlier than — every bucket after it in
    /// (level, slot) order, so a local sort per bucket yields the global
    /// order.
    pub fn pending_until(&self, deadline: SimTime, k: usize) -> Vec<(SimTime, &E)> {
        let mut out = Vec::with_capacity(k.min(self.len));
        if k == 0 || self.len == 0 {
            return out;
        }
        let mut scratch: Vec<(Key, u32)> = Vec::new();
        'levels: for level in 0..LEVELS {
            let mut slot_base = 0usize;
            for &word in &self.occupancy[level] {
                let mut bits = word;
                while bits != 0 {
                    let slot = slot_base + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let bucket = level * SLOTS + slot;
                    if level == 0 {
                        // Homogeneous instant, list already seq-ordered.
                        let mut idx = self.head[bucket];
                        while idx != NIL {
                            let node = &self.nodes[idx as usize];
                            if node.key.time > deadline {
                                break 'levels;
                            }
                            let ev = node.event.as_ref().expect("linked node is live");
                            out.push((node.key.time, ev));
                            if out.len() == k {
                                break 'levels;
                            }
                            idx = node.next;
                        }
                    } else {
                        scratch.clear();
                        let mut idx = self.head[bucket];
                        while idx != NIL {
                            let node = &self.nodes[idx as usize];
                            scratch.push((node.key, idx));
                            idx = node.next;
                        }
                        scratch.sort_unstable_by_key(|&(key, _)| key);
                        for &(key, idx) in &scratch {
                            if key.time > deadline {
                                break 'levels;
                            }
                            let ev = self.nodes[idx as usize].event.as_ref();
                            out.push((key.time, ev.expect("linked node is live")));
                            if out.len() == k {
                                break 'levels;
                            }
                        }
                    }
                }
                slot_base += 64;
            }
        }
        out
    }

    /// Re-distribute every entry of high-level bucket `(level, slot)` one or
    /// more levels down. All entries share their bytes at and above `level`,
    /// so re-placing them relative to their common window base sends each
    /// strictly below `level`. FIFO drain keeps each destination bucket
    /// seq-ordered.
    fn cascade(&mut self, level: usize, slot: usize) {
        debug_assert!(level > 0);
        let bucket = level * SLOTS + slot;
        let mut idx = self.head[bucket];
        debug_assert!(idx != NIL, "cascading an empty bucket");
        self.head[bucket] = NIL;
        self.tail[bucket] = NIL;
        self.clear_occupied(bucket);
        // The window base must come from the entries themselves, not from
        // `now`: during a multi-step cascade the cursor's bytes below the
        // original level are stale.
        let shift = 8 * level;
        let base = (self.nodes[idx as usize].key.time.0 >> shift) << shift;
        while idx != NIL {
            let next = self.nodes[idx as usize].next;
            let t = self.nodes[idx as usize].key.time.0;
            debug_assert_eq!(t >> shift << shift, base, "bucket entries share the window");
            self.link(bucket_of(base, t), idx);
            idx = next;
        }
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            if let Some(slot) = self.first_occupied(0) {
                // Any level-0 event precedes every higher-level event, and
                // the smallest occupied slot is the earliest instant.
                let idx = self.head[slot];
                let next = self.nodes[idx as usize].next;
                let key = self.nodes[idx as usize].key;
                let event = self.nodes[idx as usize].event.take().expect("linked node is live");
                self.head[slot] = next;
                if next == NIL {
                    self.tail[slot] = NIL;
                    self.clear_occupied(slot);
                }
                self.nodes[idx as usize].next = self.free;
                self.free = idx;
                self.len -= 1;
                self.now = key.time;
                return Some((key.time, event));
            }
            let (level, slot) = self.first_occupied_high().expect("non-empty queue has a bucket");
            self.cascade(level, slot);
        }
    }

    /// Pop the earliest event only if it is scheduled at or before `deadline`.
    /// The clock never advances past `deadline` through this method, so a
    /// driver can interleave externally-clocked work at a fixed cadence.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Drop every pending event, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free = NIL;
        self.head.fill(NIL);
        self.tail.fill(NIL);
        self.occupancy = [[0; 4]; LEVELS];
        self.len = 0;
    }
}

// ---------------------------------------------------------------------------
// Reference implementation
// ---------------------------------------------------------------------------

struct HeapEntry<E> {
    key: Key,
    event: E,
}

// Manual impls: `E` need not be Ord/Eq, ordering is entirely by `key`.
impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// The pre-wheel `BinaryHeap` calendar, kept as the **reference oracle**:
/// the differential proptests in `tests/properties.rs` drive it and
/// [`EventQueue`] through identical schedules and require bit-identical pop
/// traces, which is what lets the drivers swap queues without re-validating
/// a single simulation result. O(log n) per op — do not use it on hot
/// paths; it exists to keep the wheel honest.
pub struct BinaryHeapEventQueue<E> {
    heap: BinaryHeap<Reverse<HeapEntry<E>>>,
    now: SimTime,
    next_seq: u64,
}

impl<E> Default for BinaryHeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapEventQueue<E> {
    /// An empty queue with the clock at `t = 0`.
    pub fn new() -> Self {
        BinaryHeapEventQueue { heap: BinaryHeap::new(), now: SimTime::ZERO, next_seq: 0 }
    }

    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error: panics in debug builds, clamps to `now` in release.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {at:?} < {:?}", self.now);
        let at = at.max(self.now);
        let key = Key { time: at, seq: self.next_seq };
        self.next_seq += 1;
        self.heap.push(Reverse(HeapEntry { key, event }));
    }

    /// Schedule `event` a relative `delay` after `now`.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.key.time)
    }

    /// Non-destructive view of every pending event, in **unspecified** order.
    pub fn pending(&self) -> impl Iterator<Item = (SimTime, &E)> + '_ {
        self.heap.iter().map(|Reverse(e)| (e.key.time, &e.event))
    }

    /// The next `k` events with `time <= deadline` in `(time, seq)` order —
    /// same contract as [`EventQueue::pending_until`], realized by a full
    /// sort (this is the reference, not the fast path).
    pub fn pending_until(&self, deadline: SimTime, k: usize) -> Vec<(SimTime, &E)> {
        let mut all: Vec<(Key, &E)> =
            self.heap.iter().map(|Reverse(e)| (e.key, &e.event)).collect();
        all.sort_unstable_by_key(|&(key, _)| key);
        all.into_iter()
            .take_while(|&(key, _)| key.time <= deadline)
            .take(k)
            .map(|(key, e)| (key.time, e))
            .collect()
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.key.time;
        Some((entry.key.time, entry.event))
    }

    /// Pop the earliest event only if it is scheduled at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Drop every pending event, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(42));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(100), 1u8);
        q.pop();
        q.schedule_in(Duration(50), 2u8);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime(150), 2));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), "early");
        q.schedule_at(SimTime(100), "late");
        assert_eq!(q.pop_until(SimTime(50)).map(|(_, e)| e), Some("early"));
        assert_eq!(q.pop_until(SimTime(50)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_until(SimTime(100)).map(|(_, e)| e), Some("late"));
    }

    #[test]
    fn interleaved_scheduling_stays_stable() {
        // Events scheduled from within the run loop keep global (time, seq)
        // order, mimicking peers rescheduling their own timers.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(1), 0u32);
        let mut seen = Vec::new();
        while let Some((t, e)) = q.pop() {
            seen.push(e);
            if e < 5 {
                q.schedule_at(t + Duration(1), e + 1);
                q.schedule_at(t + Duration(1), e + 100);
            }
        }
        assert_eq!(seen, vec![0, 1, 100, 2, 101, 3, 102, 4, 103, 5, 104]);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        q.schedule_at(SimTime(5), ());
    }

    #[test]
    fn pending_sees_everything_without_popping() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        let mut seen: Vec<_> = q.pending().collect();
        seen.sort();
        assert_eq!(seen, vec![(SimTime(10), &"a"), (SimTime(20), &"b"), (SimTime(30), &"c")]);
        assert_eq!(q.len(), 3, "pending must not consume");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(7), ());
        q.pop();
        q.schedule_at(SimTime(9), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime(7));
    }

    #[test]
    fn far_events_cascade_correctly() {
        // Delays spanning several wheel levels still pop in exact order.
        let mut q = EventQueue::new();
        let times = [
            3u64,
            255,
            256,
            300_000,        // level 2 from t = 0
            70_000_000,     // level 3
            20_000_000_000, // level 4
            u64::MAX / 2,   // level 7
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, e)) = q.pop() {
            popped.push((t.0, e));
        }
        let expected: Vec<_> = times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        assert_eq!(popped, expected);
    }

    #[test]
    fn pending_until_is_ordered_and_bounded() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(300_000), "far");
        q.schedule_at(SimTime(20), "b");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "c"); // same instant as b, later seq
        let next: Vec<_> = q.pending_until(SimTime(1_000_000), 3);
        assert_eq!(next, vec![(SimTime(10), &"a"), (SimTime(20), &"b"), (SimTime(20), &"c")]);
        // Deadline cuts the look-ahead short even when k would allow more.
        let next: Vec<_> = q.pending_until(SimTime(25), 10);
        assert_eq!(next.len(), 3);
        assert_eq!(q.len(), 4, "pending_until must not consume");
    }

    #[test]
    fn slab_is_reused_after_pops() {
        // Steady-state churn keeps the slab at its high-water mark instead
        // of growing: the free list recycles popped nodes.
        let mut q = EventQueue::new();
        for i in 0..16u64 {
            q.schedule_at(SimTime(i), i);
        }
        let high_water = q.nodes.len();
        for round in 0..100u64 {
            let (t, _) = q.pop().unwrap();
            q.schedule_at(t + Duration(16 + round % 7), round);
            assert_eq!(q.nodes.len(), high_water, "slab grew during steady churn");
        }
        assert_eq!(q.len(), 16);
    }
}
