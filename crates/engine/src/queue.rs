//! The pending-event set.
//!
//! A classic calendar built on [`std::collections::BinaryHeap`]. Two details
//! matter for reproducibility:
//!
//! 1. **Stable ordering.** Events scheduled for the same instant pop in the
//!    order they were scheduled (FIFO), enforced by a monotonically
//!    increasing sequence number. Without this, heap order would depend on
//!    insertion history in ways that are easy to perturb and hard to debug.
//! 2. **Monotonic clock.** Popping an event advances the queue's notion of
//!    `now`; scheduling strictly in the past is a logic error and panics in
//!    debug builds (it is clamped to `now` in release builds).

use crate::time::{Duration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: SimTime,
    seq: u64,
}

struct Entry<E> {
    key: Key,
    event: E,
}

// Manual impls: `E` need not be Ord/Eq, ordering is entirely by `key`.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic pending-event set: a min-heap keyed by `(time, seq)`.
///
/// ```
/// use prop_engine::{EventQueue, SimTime, Duration};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime(25), "later");
/// q.schedule_at(SimTime(10), "sooner");
/// assert_eq!(q.pop(), Some((SimTime(10), "sooner")));
/// // The clock advanced; relative scheduling is now anchored at t = 10.
/// q.schedule_in(Duration::from_millis(5), "relative");
/// assert_eq!(q.pop(), Some((SimTime(15), "relative")));
/// assert_eq!(q.pop(), Some((SimTime(25), "later")));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at `t = 0`.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), now: SimTime::ZERO, next_seq: 0 }
    }

    /// The current simulated instant — the timestamp of the last popped
    /// event, or `t = 0` if nothing has been popped yet.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error: panics in debug builds, clamps to `now` in release.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {at:?} < {:?}", self.now);
        let at = at.max(self.now);
        let key = Key { time: at, seq: self.next_seq };
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { key, event }));
    }

    /// Schedule `event` a relative `delay` after `now`.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.key.time)
    }

    /// Non-destructive view of every pending event, in **unspecified**
    /// order (the heap's internal layout). For look-ahead that is
    /// insensitive to ordering — e.g. a driver prefetching latency rows for
    /// the slots its next batch of events will touch — not for dispatch.
    pub fn pending(&self) -> impl Iterator<Item = (SimTime, &E)> + '_ {
        self.heap.iter().map(|Reverse(e)| (e.key.time, &e.event))
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.key.time;
        Some((entry.key.time, entry.event))
    }

    /// Pop the earliest event only if it is scheduled at or before `deadline`.
    /// The clock never advances past `deadline` through this method, so a
    /// driver can interleave externally-clocked work at a fixed cadence.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Drop every pending event, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(42));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(100), 1u8);
        q.pop();
        q.schedule_in(Duration(50), 2u8);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime(150), 2));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), "early");
        q.schedule_at(SimTime(100), "late");
        assert_eq!(q.pop_until(SimTime(50)).map(|(_, e)| e), Some("early"));
        assert_eq!(q.pop_until(SimTime(50)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_until(SimTime(100)).map(|(_, e)| e), Some("late"));
    }

    #[test]
    fn interleaved_scheduling_stays_stable() {
        // Events scheduled from within the run loop keep global (time, seq)
        // order, mimicking peers rescheduling their own timers.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(1), 0u32);
        let mut seen = Vec::new();
        while let Some((t, e)) = q.pop() {
            seen.push(e);
            if e < 5 {
                q.schedule_at(t + Duration(1), e + 1);
                q.schedule_at(t + Duration(1), e + 100);
            }
        }
        assert_eq!(seen, vec![0, 1, 100, 2, 101, 3, 102, 4, 103, 5, 104]);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        q.schedule_at(SimTime(5), ());
    }

    #[test]
    fn pending_sees_everything_without_popping() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        let mut seen: Vec<_> = q.pending().collect();
        seen.sort();
        assert_eq!(seen, vec![(SimTime(10), &"a"), (SimTime(20), &"b"), (SimTime(30), &"c")]);
        assert_eq!(q.len(), 3, "pending must not consume");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(7), ());
        q.pop();
        q.schedule_at(SimTime(9), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime(7));
    }
}
