//! Small statistics helpers shared by the metrics and experiment crates.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm).
///
/// Used for every averaged metric in the evaluation; numerically stable even
/// over millions of samples, and mergeable so per-thread accumulators from a
/// Rayon sweep can be combined.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    pub fn new() -> Self {
        Accumulator { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (Chan et al. parallel update).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance; `NaN` when empty.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Exact percentile over a full sample set (nearest-rank definition).
///
/// `q` in `[0, 1]`. Returns `None` on an empty slice. Sorts a copy: callers
/// in this workspace hold at most a few hundred thousand samples.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    Some(v[rank - 1])
}

/// Mean of a slice; `NaN` when empty.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.add(x);
        }
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.variance() - 4.0).abs() < 1e-12);
        assert!((acc.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn empty_accumulator_is_nan() {
        let acc = Accumulator::new();
        assert!(acc.mean().is_nan());
        assert!(acc.variance().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..317] {
            left.add(x);
        }
        for &x in &xs[317..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Accumulator::new();
        a.add(3.0);
        let before = a.mean();
        a.merge(&Accumulator::new());
        assert_eq!(a.mean(), before);

        let mut e = Accumulator::new();
        e.merge(&a);
        assert_eq!(e.mean(), before);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.30), Some(20.0));
        assert_eq!(percentile(&xs, 0.40), Some(20.0));
        assert_eq!(percentile(&xs, 0.50), Some(35.0));
        assert_eq!(percentile(&xs, 1.00), Some(50.0));
        assert_eq!(percentile(&xs, 0.00), Some(15.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn mean_helper() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
    }
}
